package nodesampling

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nodesampling/internal/metrics"
)

func newTestService(t *testing.T, c int, opts ...ServiceOption) *Service {
	t.Helper()
	s, err := NewSampler(c, WithSeed(1), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil); err == nil {
		t.Error("nil sampler should fail")
	}
	s, err := NewSampler(3, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(s, WithInputBuffer(-1)); err == nil {
		t.Error("negative buffer should fail")
	}
}

func TestServicePushAndSample(t *testing.T) {
	svc := newTestService(t, 4)
	for i := 0; i < 100; i++ {
		if err := svc.Push(NodeID(i % 7)); err != nil {
			t.Fatal(err)
		}
	}
	_ = svc.Close()
	id, ok := svc.Sample()
	if !ok {
		t.Fatal("no sample after 100 pushes")
	}
	if id > 6 {
		t.Fatalf("sample %d outside pushed ids", id)
	}
	if mem := svc.Memory(); len(mem) == 0 || len(mem) > 4 {
		t.Fatalf("memory size %d", len(mem))
	}
}

func TestServicePushAfterClose(t *testing.T) {
	svc := newTestService(t, 3)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Push(1); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("Push after close = %v, want ErrServiceClosed", err)
	}
	// Idempotent close.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceSubscribe(t *testing.T) {
	svc := newTestService(t, 4)
	ch, err := svc.Subscribe(256)
	if err != nil {
		t.Fatal(err)
	}
	const pushes = 128
	for i := 0; i < pushes; i++ {
		if err := svc.Push(NodeID(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	_ = svc.Close()
	received := 0
	for range ch {
		received++
	}
	if received+int(svc.Dropped()) != pushes {
		t.Fatalf("received %d + dropped %d != pushed %d", received, svc.Dropped(), pushes)
	}
	if received == 0 {
		t.Fatal("subscriber received nothing")
	}
}

func TestServiceSubscribeValidation(t *testing.T) {
	svc := newTestService(t, 3)
	if _, err := svc.Subscribe(0); err == nil {
		t.Error("capacity 0 should fail")
	}
	_ = svc.Close()
	if _, err := svc.Subscribe(1); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("Subscribe after close = %v", err)
	}
}

func TestServiceSlowSubscriberDoesNotBlock(t *testing.T) {
	svc := newTestService(t, 4, WithInputBuffer(4))
	// Subscribe with capacity 1 and never read: pushes must still complete.
	if _, err := svc.Subscribe(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := svc.Push(NodeID(i % 9)); err != nil {
			t.Fatal(err)
		}
	}
	_ = svc.Close()
	if svc.Dropped() == 0 {
		t.Fatal("expected drops with a stuck subscriber")
	}
}

// TestServiceConcurrentProducers hammers the service from many goroutines
// while a reader polls samples; run with -race this doubles as the data-race
// test for the pipeline.
func TestServiceConcurrentProducers(t *testing.T) {
	svc := newTestService(t, 8, WithInputBuffer(64))
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := svc.Push(NodeID((p*perProducer + i) % 50)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		// Concurrent reads for the race detector; assertions happen after
		// the pipeline quiesces.
		for i := 0; i < 2000; i++ {
			_, _ = svc.Sample()
			_ = svc.Memory()
		}
	}()
	wg.Wait()
	rg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Sample(); !ok {
		t.Fatal("no sample after all producers finished")
	}
}

// TestServiceCloseRacesWithPush: concurrent Close and Push must neither
// panic nor deadlock; pushes report ErrServiceClosed once closed.
func TestServiceCloseRacesWithPush(t *testing.T) {
	for round := 0; round < 20; round++ {
		s, err := NewSampler(4, WithSeed(uint64(round)), WithSketch(8, 3))
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(s)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if err := svc.Push(NodeID(i)); err != nil {
						return // closed mid-stream: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = svc.Close()
		}()
		wg.Wait()
		_ = svc.Close()
	}
}

// TestServiceEndToEndUniformity runs the full pipeline over a biased input
// and checks the subscribed output stream is much closer to uniform. The
// sketch is sized well below the population (k ≪ n), per the sizing rule in
// NewSampler's documentation.
func TestServiceEndToEndUniformity(t *testing.T) {
	s, err := NewSampler(16, WithSeed(1), WithSketch(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(s, WithInputBuffer(128))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	ch, err := svc.Subscribe(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	const n, m = 50, 30000
	// Biased producer: id 0 takes half the stream.
	for i := 0; i < m; i++ {
		id := NodeID(i % (2 * n))
		if id >= n {
			id = 0
		}
		input.Add(uint64(id))
		if err := svc.Push(id); err != nil {
			t.Fatal(err)
		}
	}
	_ = svc.Close()
	output := metrics.NewHistogram()
	for id := range ch {
		output.Add(uint64(id))
	}
	if output.Total() == 0 {
		t.Fatal("no output received")
	}
	g, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.5 {
		t.Fatalf("end-to-end gain %v", g)
	}
}

// TestServiceSubscriberStats pins the subhub backfill: per-subscriber
// offered/delivered/dropped/filtered accounting and decimation, with the
// cumulative Dropped surviving cancellation of the hub at Close.
func TestServiceSubscriberStats(t *testing.T) {
	svc := newTestService(t, 4)
	if _, err := svc.SubscribeEvery(8, 0); err == nil {
		t.Error("every=0 should fail")
	}
	full, err := svc.Subscribe(512)
	if err != nil {
		t.Fatal(err)
	}
	const every = 4
	thin, err := svc.SubscribeEvery(512, every)
	if err != nil {
		t.Fatal(err)
	}
	const pushes = 256
	for i := 0; i < pushes; i++ {
		if err := svc.Push(NodeID(i % 9)); err != nil {
			t.Fatal(err)
		}
	}
	var st []SubscriberStats
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = svc.SubscriberStats()
		if len(st) == 2 && st[0].Offered == pushes && st[1].Offered == pushes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st[0].Every != 1 || st[1].Every != every {
		t.Fatalf("every fields: %+v", st)
	}
	if st[0].Filtered != 0 {
		t.Fatalf("full subscription filtered %d", st[0].Filtered)
	}
	if want := uint64(pushes - pushes/every); st[1].Filtered != want {
		t.Fatalf("thin subscription filtered %d, want %d", st[1].Filtered, want)
	}
	_ = svc.Close()
	nFull, nThin := 0, 0
	for range full {
		nFull++
	}
	for range thin {
		nThin++
	}
	if nFull != pushes {
		t.Fatalf("full subscriber received %d of %d", nFull, pushes)
	}
	if nThin != pushes/every {
		t.Fatalf("thin subscriber received %d, want %d", nThin, pushes/every)
	}
}
