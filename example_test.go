package nodesampling_test

import (
	"fmt"

	"nodesampling"
	"nodesampling/internal/rng"
)

// ExampleNewSampler unbiases a stream in which a single Sybil identifier
// carries half of everything the node hears.
func ExampleNewSampler() {
	sampler, err := nodesampling.NewSampler(20,
		nodesampling.WithSeed(42),
		nodesampling.WithSketch(15, 5))
	if err != nil {
		fmt.Println(err)
		return
	}
	const population, streamLen = 500, 100000
	sybil := nodesampling.NodeID(0)
	r := rng.New(7)
	var inPeak, outPeak int
	for i := 0; i < streamLen; i++ {
		id := sybil
		if r.Bernoulli(0.5) {
			id = nodesampling.NodeID(r.Intn(population))
		}
		if id == sybil {
			inPeak++
		}
		if sampler.Process(id) == sybil {
			outPeak++
		}
	}
	fmt.Printf("sybil share: input %d%%, output below 5%%: %v\n",
		inPeak*100/streamLen, outPeak*100/streamLen < 5)
	// Output:
	// sybil share: input 50%, output below 5%: true
}

// ExampleAttackEffort shows the defender's memory-vs-safety trade-off: the
// number of distinct certified identifiers an adversary must create grows
// linearly with the sketch width k.
func ExampleAttackEffort() {
	for _, k := range []int{10, 50, 250} {
		targeted, flooding, err := nodesampling.AttackEffort(k, 10, 1e-4)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("k=%-3d targeted=%-5d flooding=%d\n", k, targeted, flooding)
	}
	// Output:
	// k=10  targeted=111   flooding=110
	// k=50  targeted=571   flooding=650
	// k=250 targeted=2874  flooding=3676
}

// ExampleService runs the sampler behind its concurrent pipeline.
func ExampleService() {
	sampler, err := nodesampling.NewSampler(8,
		nodesampling.WithSeed(1),
		nodesampling.WithSketch(8, 3))
	if err != nil {
		fmt.Println(err)
		return
	}
	svc, err := nodesampling.NewService(sampler)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	for i := 0; i < 1000; i++ {
		if err := svc.Push(nodesampling.NodeID(i % 40)); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := svc.Close(); err != nil { // drain, then read the final sample
		fmt.Println(err)
		return
	}
	id, ok := svc.Sample()
	fmt.Println(ok, id < 40)
	// Output:
	// true true
}

// ExampleHashString derives stable node identifiers from node names, as the
// paper's SHA-1 identifier scheme does.
func ExampleHashString() {
	a := nodesampling.HashString("node-a.example.com:4000")
	b := nodesampling.HashString("node-b.example.com:4000")
	fmt.Println(a == nodesampling.HashString("node-a.example.com:4000"), a == b)
	// Output:
	// true false
}
