package nodesampling_test

// End-to-end integration tests across the whole stack: trace substrate →
// public sampling service → divergence metrics, and the analytical attack
// planner against the simulated attack.

import (
	"sync"
	"testing"

	"nodesampling"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/trace"
	"nodesampling/internal/urn"
)

// TestTraceThroughPublicService replays a synthetic Zipf trace through the
// concurrent public Service from multiple producer goroutines and verifies
// the subscribed output stream is substantially closer to uniform.
func TestTraceThroughPublicService(t *testing.T) {
	spec := trace.Spec{Name: "integration", M: 120000, N: 800, MaxFreq: 12000}
	tr, err := trace.Synthesize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := nodesampling.NewSampler(30,
		nodesampling.WithSeed(6), nodesampling.WithSketch(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := nodesampling.NewService(sampler, nodesampling.WithInputBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Subscribe(1 << 18)
	if err != nil {
		t.Fatal(err)
	}

	input := metrics.NewHistogram()
	ids := tr.IDs()
	for _, id := range ids {
		input.Add(id)
	}
	// Concurrent producers partition the trace; interleaving changes the
	// order but not the multiset, which is what the measured divergences
	// depend on.
	const producers = 4
	var wg sync.WaitGroup
	chunk := (len(ids) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for _, id := range part {
				if err := svc.Push(nodesampling.NodeID(id)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(ids[lo:hi])
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	output := metrics.NewHistogram()
	for id := range out {
		output.Add(uint64(id))
	}
	if output.Total()+svc.Dropped() != uint64(len(ids)) {
		t.Fatalf("output %d + dropped %d != pushed %d", output.Total(), svc.Dropped(), len(ids))
	}
	g, err := metrics.Gain(input, output, spec.N)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.5 {
		t.Fatalf("end-to-end gain %v over the trace", g)
	}
}

// TestPlannerPredictsSimulatedAttack ties Section V's analysis to an actual
// attacked sampler: an adversary owning fewer distinct ids than the
// targeted-attack threshold cannot noticeably bias a victim's output share,
// by the very mechanism (uncorrupted minimum-row estimate) the analysis
// counts urns for.
func TestPlannerPredictsSimulatedAttack(t *testing.T) {
	const k, s, c = 15, 5, 20
	L, err := urn.TargetedEffort(k, s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if L < 20 {
		t.Fatalf("threshold %d unexpectedly small", L)
	}
	// The adversary owns L/8 decoys — far below the threshold.
	decoys := L / 8
	sampler, err := nodesampling.NewSampler(c,
		nodesampling.WithSeed(7), nodesampling.WithSketch(k, s))
	if err != nil {
		t.Fatal(err)
	}
	const n, m = 400, 150000
	victim := nodesampling.NodeID(399)
	r := rng.New(8)
	output := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		var id nodesampling.NodeID
		switch {
		case r.Bernoulli(0.4): // adversarial injections over the decoys
			id = nodesampling.NodeID(r.Intn(decoys))
		default: // legitimate uniform gossip
			id = nodesampling.NodeID(r.Intn(n))
		}
		output.Add(uint64(sampler.Process(id)))
	}
	share := float64(output.Count(uint64(victim))) / float64(output.Total())
	uniform := 1.0 / n
	if share < uniform/3 {
		t.Fatalf("victim output share %v collapsed below a third of uniform %v despite sub-threshold attack",
			share, uniform)
	}
}
