package nodesampling

import (
	"errors"
	"fmt"

	"nodesampling/internal/core"
	"nodesampling/internal/shard"
	"nodesampling/internal/subhub"
)

// ErrPoolClosed is returned by Pool.Push, Pool.PushBatch and Pool.Flush
// after Close.
var ErrPoolClosed = errors.New("nodesampling: pool closed")

// WithShardBuffer sets each shard's ingest queue capacity, counted in
// batches (default 16). Raise it for bursty producers; it bounds how far
// ingestion can run ahead of the shard samplers. Only affects NewPool.
func WithShardBuffer(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("nodesampling: negative shard buffer %d", n)
		}
		c.shardBuffer = n
		c.shardBufferSet = true
		return nil
	}
}

// WithNonBlockingIngest makes Pool.Push and Pool.PushBatch drop (and count)
// sub-batches aimed at a full shard queue instead of blocking the producer.
// This is the right policy for a network daemon absorbing hostile floods: a
// slow shard costs samples — which a uniform sampling stream can afford —
// rather than stalling the listener. Only affects NewPool.
func WithNonBlockingIngest() Option {
	return func(c *config) error {
		c.nonBlocking = true
		return nil
	}
}

// ShardStats is one shard's activity snapshot.
type ShardStats struct {
	Processed  uint64 // ids processed by the shard's sampler
	Dropped    uint64 // ids discarded because the shard queue was full
	Halvings   uint64 // decay halvings applied to the shard's sketch
	QueueDepth int    // batches currently waiting in the shard queue
	MemorySize int    // current |Γ| of the shard's sampler
}

// SubscriberStats is one output-stream subscription's delivery accounting.
type SubscriberStats struct {
	ID        uint64 // stable per-pool subscription identifier
	Offered   uint64 // σ′ draws published while the subscription was live
	Delivered uint64 // draws handed to the subscription's buffer
	Dropped   uint64 // draws lost to the drop-oldest policy
	Filtered  uint64 // draws thinned away by the decimation interval
	Capped    uint64 // draws discarded by the delivery rate cap
	Capacity  int    // subscription buffer capacity
	Depth     int    // draws currently buffered
	Every     int    // decimation interval (1 delivers everything)
	Rate      uint32 // delivery rate cap in ids/second (0 = uncapped)
}

// PoolStats is a whole-pool activity snapshot.
type PoolStats struct {
	Shards      []ShardStats
	Epoch       uint64 // shard map epoch: 0 at creation, +1 per Resize
	Processed   uint64 // includes work done by shards retired through Resize
	Dropped     uint64 // includes drops at shards retired through Resize
	EmitDropped uint64 // σ′ draws lost before reaching the subscription hub
	Subscribers []SubscriberStats
}

// Pool is the horizontally scaled form of Service: N independent
// knowledge-free sampler shards, each with its own Count-Min sketch,
// sampling memory Γ of c identifiers and worker goroutine. Identifiers are
// partitioned across shards by an epoch-versioned shard map (salted
// rendezvous hashing, unpredictable to an adversary and stable between
// resizes), so shards never contend; PushBatch amortises the hand-off over
// many ids. Sample draws a shard weighted by its current |Γ| and then a
// uniform element of it — a uniform draw over the union of the memories,
// preserving the paper's Uniformity at the population level, while
// Freshness holds per shard because every id keeps hashing to the same
// shard's single-stream sampler.
//
// The pool is elastic and durable: Resize re-partitions a live pool to a
// new shard count (Γ and sketch state follow the moved ids), and
// Snapshot/RestorePool serialise and revive the whole plane so attacker
// frequency estimates survive restarts.
//
// All methods are safe for concurrent use. A Pool must be created with
// NewPool (or RestorePool) and released with Close.
type Pool struct {
	inner *shard.Pool
}

// NewPool creates a sharded sampling pool of the given shard count (at
// most 256), each shard holding a sampling memory of c identifiers. It accepts the same
// options as NewSampler (seed, sketch shape or accuracy, decay,
// conservative update — applied to every shard, with independent per-shard
// randomness split from the seed) plus the pool-specific WithShardBuffer
// and WithNonBlockingIngest.
func NewPool(c, shards int, opts ...Option) (*Pool, error) {
	if c < 1 {
		return nil, fmt.Errorf("nodesampling: memory size c must be at least 1, got %d", c)
	}
	if shards < 1 || shards > shard.MaxShards {
		return nil, fmt.Errorf("nodesampling: shard count must be in [1, %d], got %d", shard.MaxShards, shards)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	sc, err := poolShardConfig(c, shards, cfg)
	if err != nil {
		return nil, err
	}
	inner, err := shard.New(sc)
	if err != nil {
		return nil, err
	}
	return &Pool{inner: inner}, nil
}

// poolShardConfig translates the public options into the internal shard
// configuration shared by NewPool and RestorePool: the strategy name
// resolves against the core registry, binding the sketch shape (or accuracy
// targets) and per-sampler options into one factory every shard builds
// from.
func poolShardConfig(c, shards int, cfg config) (shard.Config, error) {
	factory, err := core.NewFactory(cfg.strategy, core.StrategyParams{
		K: cfg.k, S: cfg.s,
		UseAccuracy: cfg.useAcc, Epsilon: cfg.eps, Delta: cfg.del,
		Options: cfg.coreOption,
	})
	if err != nil {
		return shard.Config{}, err
	}
	buffer := 16
	if cfg.shardBufferSet {
		buffer = cfg.shardBuffer
	}
	return shard.Config{
		Shards:   shards,
		Buffer:   buffer,
		Block:    !cfg.nonBlocking,
		Seed:     cfg.seed,
		Capacity: c,
		// WithDecay is implemented pool-wide: the shards share one decay
		// epoch derived from the total processed count (see
		// shard.Config.DecayEvery) instead of each decaying on its own
		// count, so per-shard samplers are never passed the core-level
		// halving option here.
		DecayEvery: cfg.decayEvery,
		// One sampler template per pool: every shard clones it empty, so all
		// shards share a hash/seed family and stay mergeable across Resize.
		Sampler: factory,
	}, nil
}

// RestorePool revives a pool from a Pool.Snapshot blob: the shard map,
// every shard's sketch and sampling memory Γ, and the decay epoch resume
// exactly where the snapshot left them, so frequency estimates — including
// an attacker's — survive a restart. The snapshot governs the shard count,
// memory capacity and sketch shape; pass the same functional options the
// original pool was built with (decay, conservative updates, buffering —
// they are configuration, not state, and are not persisted). A sketch
// shape requested via WithSketch/WithSketchAccuracy is checked against the
// snapshot and mismatches fail loudly.
func RestorePool(data []byte, opts ...Option) (*Pool, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	// Capacity and shard count come from the blob; the placeholder values
	// here only shape the template used for validation.
	sc, err := poolShardConfig(1, 1, cfg)
	if err != nil {
		return nil, err
	}
	inner, err := shard.Restore(sc, data)
	if err != nil {
		return nil, err
	}
	return &Pool{inner: inner}, nil
}

// Resize re-partitions the live pool to the given shard count under the
// next shard-map epoch. A flush barrier quiesces the shards (the only
// ingestion stall), Γ entries move to their new owners, and sketch state
// follows by merging, so frequency estimates of moved ids survive within
// standard Count-Min error. Growing adds parallel capacity for free;
// shrinking concentrates the pool (shedding uniformly chosen Γ overflow
// only when the total memory no longer fits). See shard.Pool.Resize for
// the precise hand-off semantics.
func (p *Pool) Resize(shards int) error {
	return poolErr(p.inner.Resize(shards))
}

// Snapshot serialises the pool — shard map, per-shard sketches and Γ, and
// the decay epoch — into one versioned blob for RestorePool. Taken under
// live ingest it is internally consistent per shard; call Flush first for
// an exact cut. The blob embeds the pool's private partition salt, so
// store it like key material.
func (p *Pool) Snapshot() ([]byte, error) {
	return p.inner.Snapshot()
}

// Epoch returns the shard map epoch: 0 at creation, incremented by every
// completed Resize, preserved across Snapshot/RestorePool.
func (p *Pool) Epoch() uint64 { return p.inner.Epoch() }

// NumShards returns the pool's shard count.
func (p *Pool) NumShards() int { return p.inner.NumShards() }

// Topology returns the shard map epoch and the shard count from a single
// atomic load of the shard map. Calling Epoch and NumShards separately can
// straddle a concurrent Resize and pair epoch N with the shard count of
// epoch N+1; Topology can not.
func (p *Pool) Topology() (epoch uint64, shards int) { return p.inner.Topology() }

// LoadSignals is a cheap snapshot of the pool's ingest pressure — the
// input of a load-driven resize policy. Queue figures are instantaneous;
// the counters are cumulative and stay monotone across Resize, so a
// controller diffs successive snapshots for per-tick rates.
type LoadSignals struct {
	Epoch       uint64 // shard map epoch, consistent with Shards
	Shards      int    // current shard count
	QueueLen    int    // batches waiting across all shard queues
	QueueCap    int    // total queue capacity (Shards × shard buffer)
	MaxQueueLen int    // deepest single shard queue, in batches
	Processed   uint64 // cumulative ids processed (incl. retired shards)
	Dropped     uint64 // cumulative ids dropped at full queues (incl. retired)
	EmitDropped uint64 // cumulative σ′ draws lost before the subscription hub
}

// LoadSignals returns the pool's current load signals: the surface a
// caller embedding a Pool drives its own Resize policy against (the unsd
// daemon's autoscaler consumes the same signals).
func (p *Pool) LoadSignals() LoadSignals {
	return LoadSignals(p.inner.LoadSignals())
}

// Push feeds a single id from the input stream. PushBatch is the efficient
// path; Push exists as a drop-in for single-id producers.
func (p *Pool) Push(id NodeID) error {
	return poolErr(p.inner.Push(uint64(id)))
}

// PushBatch feeds a batch of ids, partitioning them across the shards in
// one pass (the conversion and the partition share a single copy). The
// slice may be reused immediately.
func (p *Pool) PushBatch(ids []NodeID) error {
	return poolErr(shard.PushBatchOf(p.inner, ids))
}

// Sample returns one uniform sample. ok is false only while every shard is
// still empty.
func (p *Pool) Sample() (NodeID, bool) {
	id, ok := p.inner.Sample()
	return NodeID(id), ok
}

// SampleN returns n independent samples (fewer while the pool is empty).
func (p *Pool) SampleN(n int) []NodeID {
	return convertIDs(p.inner.SampleN(n))
}

// Memory returns the concatenation of every shard's sampling memory Γ.
func (p *Pool) Memory() []NodeID {
	return convertIDs(p.inner.Memory())
}

// Flush blocks until every id pushed before the call has been processed by
// its shard. Useful before reading Stats or Memory deterministically.
func (p *Pool) Flush() error {
	return poolErr(p.inner.Flush())
}

// Stats returns per-shard and aggregate counters: processed ids, drops
// under WithNonBlockingIngest, queue depths, memory sizes, decay halvings
// and the output plane's per-subscriber delivery accounting.
func (p *Pool) Stats() PoolStats {
	st := p.inner.Stats()
	out := PoolStats{
		Shards:      make([]ShardStats, len(st.Shards)),
		Epoch:       st.Epoch,
		Processed:   st.Processed,
		Dropped:     st.Dropped,
		EmitDropped: st.EmitDropped,
		Subscribers: make([]SubscriberStats, len(st.Subscribers)),
	}
	for i, s := range st.Shards {
		out.Shards[i] = ShardStats(s)
	}
	for i, s := range st.Subscribers {
		out.Subscribers[i] = SubscriberStats(s)
	}
	return out
}

// PoolSubscription is a live subscription to the pool's output stream σ′:
// one uniform draw from the pooled memories per ingested id, exactly the
// continuous output stream of the paper's Algorithm 1 at sharded
// throughput. Obtain one from Pool.Subscribe; read ids from C; release it
// with Cancel (or Pool.Unsubscribe).
type PoolSubscription struct {
	inner *subhub.Subscription
	out   chan NodeID
}

// Subscribe registers a subscriber to the pool's output stream σ′ with a
// buffer of the given capacity, in ids. Output draws are only generated
// while at least one subscription is live, so an unsubscribed pool pays
// nothing for the streaming plane. A subscriber that lags loses the oldest
// buffered elements (counted in Stats) instead of slowing ingestion — the
// same guarantee Service.Subscribe gives, at pool scale.
func (p *Pool) Subscribe(capacity int) (*PoolSubscription, error) {
	return p.SubscribeEvery(capacity, 1)
}

// SubscribeEvery is Subscribe with per-subscription decimation: only every
// every-th σ′ draw is delivered (the rest are counted as filtered in
// Stats). A 1-in-k thinning of an i.i.d. uniform stream is itself i.i.d.
// uniform, so a decimated subscriber keeps the paper's guarantees at a
// rate it can afford.
func (p *Pool) SubscribeEvery(capacity, every int) (*PoolSubscription, error) {
	if capacity < 1 || capacity > subhub.MaxSubscriptionBuffer {
		return nil, fmt.Errorf("nodesampling: subscription capacity must be in [1, %d], got %d", subhub.MaxSubscriptionBuffer, capacity)
	}
	if every < 1 || every > subhub.MaxDecimation {
		return nil, fmt.Errorf("nodesampling: decimation interval must be in [1, %d], got %d", subhub.MaxDecimation, every)
	}
	inner, err := p.inner.SubscribeEvery(capacity, every)
	if err != nil {
		return nil, poolErr(err)
	}
	s := &PoolSubscription{inner: inner, out: make(chan NodeID, capacity)}
	go s.forward()
	return s, nil
}

// Unsubscribe cancels a subscription obtained from Subscribe. Nil-safe and
// idempotent; equivalent to s.Cancel.
func (p *Pool) Unsubscribe(s *PoolSubscription) {
	if s != nil {
		s.Cancel()
	}
}

// forward bridges the internal uint64 stream to the typed public channel.
// A send to a slow consumer blocks here — never upstream, where the hub
// keeps absorbing and dropping oldest — and cancellation unblocks it.
func (s *PoolSubscription) forward() {
	defer close(s.out)
	for {
		id, ok := <-s.inner.C()
		if !ok {
			return
		}
		select {
		case s.out <- NodeID(id):
		case <-s.inner.Done():
			return
		}
	}
}

// C returns the channel carrying the output stream σ′. It is closed when
// the subscription is cancelled or the pool closes.
func (s *PoolSubscription) C() <-chan NodeID { return s.out }

// Delivered reports how many draws were handed to this subscription's
// buffer.
func (s *PoolSubscription) Delivered() uint64 { return s.inner.Delivered() }

// Dropped reports how many draws this subscription lost to the drop-oldest
// policy (a measure of how far the consumer lags the stream).
func (s *PoolSubscription) Dropped() uint64 { return s.inner.Dropped() }

// Cancel detaches the subscription and closes its channel. Idempotent.
func (s *PoolSubscription) Cancel() { s.inner.Cancel() }

// Close stops every shard worker after draining what was already enqueued.
// Idempotent; pushes racing with Close either complete or return
// ErrPoolClosed.
func (p *Pool) Close() error {
	return p.inner.Close()
}

// poolErr rewrites the internal sentinel into the public one so callers can
// errors.Is against ErrPoolClosed.
func poolErr(err error) error {
	if errors.Is(err, shard.ErrPoolClosed) {
		return ErrPoolClosed
	}
	return err
}
