package nodesampling

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 4); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewPool(5, 0); err == nil {
		t.Error("shards=0 should fail")
	}
	if _, err := NewPool(5, 4, WithSketch(0, 3)); err == nil {
		t.Error("bad sketch shape should fail")
	}
	if _, err := NewPool(5, 4, WithShardBuffer(-1)); err == nil {
		t.Error("negative shard buffer should fail")
	}
}

func TestPoolBasicFlow(t *testing.T) {
	p, err := NewPool(4, 3, WithSeed(1), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	if _, ok := p.Sample(); ok {
		t.Fatal("sample ok before input")
	}
	if err := p.Push(42); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if id, ok := p.Sample(); !ok || id != 42 {
		t.Fatalf("sample = (%d, %v)", id, ok)
	}
	if mem := p.Memory(); len(mem) != 1 || mem[0] != 42 {
		t.Fatalf("memory = %v", mem)
	}
	st := p.Stats()
	if st.Processed != 1 || len(st.Shards) != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPoolUnbiasesAttack runs the quickstart attack scenario through the
// sharded pool: the KL gain must match what the single sampler achieves.
func TestPoolUnbiasesAttack(t *testing.T) {
	const n, m = 500, 120000
	pmf, err := stream.PeakPMF(n, 7, 50000, 50)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(8, 4, WithSeed(22), WithSketch(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	// Mirror the single-sampler scenario's one-output-per-input semantics:
	// after each ingested batch, draw as many samples from the evolving
	// memories (a frozen final state could never cover more than the pool's
	// total memory, which would cap the measurable gain).
	batch := make([]NodeID, 0, 512)
	drain := func() {
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		for range batch {
			id, ok := p.Sample()
			if !ok {
				t.Fatal("sample not ok on a warm pool")
			}
			output.Add(uint64(id))
		}
		batch = batch[:0]
	}
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		batch = append(batch, NodeID(id))
		if len(batch) == cap(batch) {
			drain()
		}
	}
	drain()
	g, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.5 {
		t.Fatalf("pool gain %v under peak attack, want > 0.5", g)
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	p, err := NewPool(10, 8, WithSeed(3), WithSketch(10, 5), WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g) + 10)
			batch := make([]NodeID, 64)
			for b := 0; b < 40; b++ {
				for i := range batch {
					batch[i] = NodeID(src.Uint64n(5000))
				}
				if err := p.PushBatch(batch); err != nil {
					t.Error(err)
					return
				}
				p.Sample()
			}
		}(g)
	}
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if want := uint64(8 * 40 * 64); st.Processed != want {
		t.Fatalf("processed %d, want %d", st.Processed, want)
	}
	if st.Dropped != 0 {
		t.Fatalf("blocking pool dropped %d", st.Dropped)
	}
	if len(p.SampleN(10)) != 10 {
		t.Fatal("SampleN short on a warm pool")
	}
}

func TestPoolNonBlockingIngestDrops(t *testing.T) {
	p, err := NewPool(5, 1, WithSeed(4), WithSketch(200, 8),
		WithShardBuffer(0), WithNonBlockingIngest())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	big := make([]NodeID, 4096)
	for i := range big {
		big[i] = NodeID(i)
	}
	for i := 0; i < 200 && p.Stats().Dropped == 0; i++ {
		if err := p.PushBatch(big); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().Dropped == 0 {
		t.Fatal("unbuffered non-blocking pool never dropped under a flood")
	}
}

// TestPoolSubscribe drives the public streaming surface: draws arrive on
// the subscription channel, come from the pushed population, and the
// counters surface through Stats.
func TestPoolSubscribe(t *testing.T) {
	p, err := NewPool(10, 4, WithSeed(6), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	if _, err := p.Subscribe(0); err == nil {
		t.Error("capacity 0 should fail")
	}
	sub, err := p.Subscribe(2048)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]NodeID, 400)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < 200 {
		select {
		case id := <-sub.C():
			if id < 1 || id > 400 {
				t.Fatalf("draw %d outside the pushed population", id)
			}
			seen++
		case <-deadline:
			t.Fatalf("received only %d draws", seen)
		}
	}
	st := p.Stats()
	if len(st.Subscribers) != 1 || st.Subscribers[0].Delivered == 0 {
		t.Fatalf("subscriber stats = %+v", st.Subscribers)
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	p.Unsubscribe(sub)
	p.Unsubscribe(nil)
	// The channel must close after cancellation (possibly after buffered
	// draws drain).
	deadline = time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.C():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel never closed after Cancel")
		}
	}
}

// TestPoolSlowSubscriberNeverBlocksIngest is the satellite guarantee: a
// subscriber that never reads must not stall a *blocking* pool's ingestion,
// and the drop counters must account for every undelivered draw.
func TestPoolSlowSubscriberNeverBlocksIngest(t *testing.T) {
	p, err := NewPool(10, 4, WithSeed(8), WithSketch(16, 4), WithShardBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	sub, err := p.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody ever reads sub.C().
	batch := make([]NodeID, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < 100; r++ {
			for i := range batch {
				batch[i] = NodeID(r*len(batch) + i)
			}
			if err := p.PushBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
		if err := p.Flush(); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ingestion blocked behind a stalled subscriber")
	}
	// Wait for the emitter to drain, then pin the accounting identity:
	// every draw generated was offered to the subscriber or dropped by the
	// emitter, and after cancellation offered == delivered + dropped.
	deadline := time.Now().Add(5 * time.Second)
	var st PoolStats
	for {
		st = p.Stats()
		if len(st.Subscribers) == 1 &&
			st.Subscribers[0].Offered+st.EmitDropped == st.Processed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("emission accounting never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Subscribers[0].Dropped == 0 {
		t.Fatal("stalled subscriber dropped nothing")
	}
	offered := st.Subscribers[0].Offered
	sub.Cancel()
	if got := sub.Delivered() + sub.Dropped(); got != offered {
		t.Fatalf("accounting leak: delivered %d + dropped %d != offered %d",
			sub.Delivered(), sub.Dropped(), offered)
	}
}

// TestPoolCloseRaces fires Close in the middle of concurrent PushBatch,
// Sample, Stats and Subscribe traffic; the race detector plus the
// either-complete-or-ErrPoolClosed contract are the assertions.
func TestPoolCloseRaces(t *testing.T) {
	for round := 0; round < 5; round++ {
		p, err := NewPool(10, 4, WithSeed(uint64(round)+30), WithSketch(10, 4),
			WithShardBuffer(4), WithNonBlockingIngest())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(4)
			go func(g int) {
				defer wg.Done()
				<-start
				batch := make([]NodeID, 64)
				for i := range batch {
					batch[i] = NodeID(g*1000 + i)
				}
				for j := 0; j < 50; j++ {
					if err := p.PushBatch(batch); err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("PushBatch: %v", err)
						}
						return
					}
				}
			}(g)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					p.Sample()
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					p.Stats()
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 10; j++ {
					sub, err := p.Subscribe(8)
					if err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("Subscribe: %v", err)
						}
						return
					}
					select {
					case <-sub.C():
					default:
					}
					sub.Cancel()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := p.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		_ = p.Close()
	}
}

// TestPoolDecayPublicAPI exercises WithDecay through NewPool: the global
// clock must halve every shard the same number of times.
func TestPoolDecayPublicAPI(t *testing.T) {
	p, err := NewPool(10, 4, WithSeed(40), WithSketch(16, 4), WithDecay(500))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	src := rng.New(41)
	batch := make([]NodeID, 250)
	for r := 0; r < 8; r++ { // 2000 ids = 4 epochs
		for i := range batch {
			batch[i] = NodeID(src.Uint64n(1 << 40))
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	for i, s := range st.Shards {
		if s.Halvings != 4 {
			t.Fatalf("shard %d halvings = %d, want 4: %+v", i, s.Halvings, st.Shards)
		}
	}
	if _, ok := p.Sample(); !ok {
		t.Fatal("decaying pool cannot sample")
	}
}

// TestPoolResizePublic drives the elastic plane through the public API:
// resize up and down under traffic, with counters, epoch and memory
// surviving.
func TestPoolResizePublic(t *testing.T) {
	p, err := NewPool(50, 2, WithSeed(91), WithSketch(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	ids := make([]NodeID, 1024)
	for i := range ids {
		ids[i] = NodeID(i%100 + 1)
	}
	for r := 0; r < 4; r++ {
		if err := p.PushBatch(ids); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	memBefore := p.Memory()
	if err := p.Resize(6); err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 6 || p.Epoch() != 1 {
		t.Fatalf("shards=%d epoch=%d after resize", p.NumShards(), p.Epoch())
	}
	st := p.Stats()
	if len(st.Shards) != 6 || st.Epoch != 1 || st.Processed != 4*1024 {
		t.Fatalf("stats after resize = %+v", st)
	}
	if len(p.Memory()) != len(memBefore) {
		t.Fatalf("memory %d after resize, want %d", len(p.Memory()), len(memBefore))
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Sample(); !ok {
		t.Fatal("resized pool cannot sample")
	}
	if err := p.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
}

// TestPoolSnapshotRestorePublic: the public round trip — estimates, Γ and
// counters revive, and a pool restored with mismatched sketch options
// fails loudly.
func TestPoolSnapshotRestorePublic(t *testing.T) {
	p, err := NewPool(50, 3, WithSeed(92), WithSketch(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	ids := make([]NodeID, 2048)
	for i := range ids {
		ids[i] = NodeID(i%200 + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := RestorePool(blob, WithSketch(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = q.Close() }()
	if q.NumShards() != 3 || q.Epoch() != p.Epoch() {
		t.Fatalf("restored shape shards=%d epoch=%d", q.NumShards(), q.Epoch())
	}
	pm, qm := p.Memory(), q.Memory()
	if len(pm) != len(qm) {
		t.Fatalf("restored memory %d, want %d", len(qm), len(pm))
	}
	if qs := q.Stats(); qs.Processed != 2048 {
		t.Fatalf("restored processed = %d", qs.Processed)
	}
	if _, ok := q.Sample(); !ok {
		t.Fatal("restored pool cannot sample without new input")
	}
	if _, err := RestorePool(blob, WithSketch(10, 2)); err == nil {
		t.Error("mismatched sketch shape should fail")
	}
	if _, err := RestorePool([]byte("junk")); err == nil {
		t.Error("junk blob should fail")
	}
}

// TestPoolSubscribeEvery pins decimation end to end at pool level: a
// 1-in-k subscription receives roughly offered/k draws and accounts the
// rest as filtered.
func TestPoolSubscribeEvery(t *testing.T) {
	p, err := NewPool(10, 4, WithSeed(93), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	if _, err := p.SubscribeEvery(8, 0); err == nil {
		t.Error("every=0 should fail")
	}
	const every = 8
	sub, err := p.SubscribeEvery(4096, every)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]NodeID, 4096)
	for i := range ids {
		ids[i] = NodeID(i%500 + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for the emission plane to settle, then check the arithmetic.
	deadline := time.After(5 * time.Second)
	for {
		st := p.Stats()
		if len(st.Subscribers) == 1 && st.Subscribers[0].Offered+st.EmitDropped == st.Processed {
			s := st.Subscribers[0]
			if s.Every != every {
				t.Fatalf("stats report every=%d, want %d", s.Every, every)
			}
			if s.Filtered == 0 {
				t.Fatal("decimated subscription filtered nothing")
			}
			if total := s.Delivered + s.Dropped + s.Filtered; total != s.Offered {
				t.Fatalf("accounting: delivered %d + dropped %d + filtered %d != offered %d",
					s.Delivered, s.Dropped, s.Filtered, s.Offered)
			}
			if kept := s.Offered - s.Filtered; kept != s.Offered/every {
				t.Fatalf("kept %d of %d offered, want 1 in %d", kept, s.Offered, every)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("emission accounting never settled: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
	sub.Cancel()
}

func TestPoolClose(t *testing.T) {
	p, err := NewPool(5, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := p.Push(2); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Push after close = %v, want ErrPoolClosed", err)
	}
	if err := p.PushBatch([]NodeID{3}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("PushBatch after close = %v, want ErrPoolClosed", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Flush after close = %v, want ErrPoolClosed", err)
	}
}

// TestPoolTopology pins the coherent (epoch, shards) read on the public
// surface: both values must come from one shard-map load and track Resize.
func TestPoolTopology(t *testing.T) {
	p, err := NewPool(8, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if epoch, shards := p.Topology(); epoch != 0 || shards != 3 {
		t.Fatalf("fresh topology (%d, %d), want (0, 3)", epoch, shards)
	}
	if err := p.Resize(5); err != nil {
		t.Fatal(err)
	}
	epoch, shards := p.Topology()
	if epoch != 1 || shards != 5 {
		t.Fatalf("topology after resize (%d, %d), want (1, 5)", epoch, shards)
	}
	if epoch != p.Epoch() || shards != p.NumShards() {
		t.Fatal("Topology disagrees with Epoch/NumShards on a quiet pool")
	}
}

// TestPoolLoadSignalsPublic pins the public policy surface: the signals a
// library user drives their own Resize policy against.
func TestPoolLoadSignalsPublic(t *testing.T) {
	p, err := NewPool(8, 2, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ids := make([]NodeID, 128)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	sig := p.LoadSignals()
	if sig.Shards != 2 || sig.Epoch != 0 || sig.Processed != 128 || sig.Dropped != 0 {
		t.Fatalf("signals %+v", sig)
	}
	if sig.QueueCap == 0 || sig.QueueLen != 0 {
		t.Fatalf("queue figures %+v", sig)
	}
}
