package nodesampling

import (
	"errors"
	"sync"
	"testing"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 4); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewPool(5, 0); err == nil {
		t.Error("shards=0 should fail")
	}
	if _, err := NewPool(5, 4, WithSketch(0, 3)); err == nil {
		t.Error("bad sketch shape should fail")
	}
	if _, err := NewPool(5, 4, WithShardBuffer(-1)); err == nil {
		t.Error("negative shard buffer should fail")
	}
}

func TestPoolBasicFlow(t *testing.T) {
	p, err := NewPool(4, 3, WithSeed(1), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	if _, ok := p.Sample(); ok {
		t.Fatal("sample ok before input")
	}
	if err := p.Push(42); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if id, ok := p.Sample(); !ok || id != 42 {
		t.Fatalf("sample = (%d, %v)", id, ok)
	}
	if mem := p.Memory(); len(mem) != 1 || mem[0] != 42 {
		t.Fatalf("memory = %v", mem)
	}
	st := p.Stats()
	if st.Processed != 1 || len(st.Shards) != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPoolUnbiasesAttack runs the quickstart attack scenario through the
// sharded pool: the KL gain must match what the single sampler achieves.
func TestPoolUnbiasesAttack(t *testing.T) {
	const n, m = 500, 120000
	pmf, err := stream.PeakPMF(n, 7, 50000, 50)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(8, 4, WithSeed(22), WithSketch(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	// Mirror the single-sampler scenario's one-output-per-input semantics:
	// after each ingested batch, draw as many samples from the evolving
	// memories (a frozen final state could never cover more than the pool's
	// total memory, which would cap the measurable gain).
	batch := make([]NodeID, 0, 512)
	drain := func() {
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		for range batch {
			id, ok := p.Sample()
			if !ok {
				t.Fatal("sample not ok on a warm pool")
			}
			output.Add(uint64(id))
		}
		batch = batch[:0]
	}
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		batch = append(batch, NodeID(id))
		if len(batch) == cap(batch) {
			drain()
		}
	}
	drain()
	g, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.5 {
		t.Fatalf("pool gain %v under peak attack, want > 0.5", g)
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	p, err := NewPool(10, 8, WithSeed(3), WithSketch(10, 5), WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g) + 10)
			batch := make([]NodeID, 64)
			for b := 0; b < 40; b++ {
				for i := range batch {
					batch[i] = NodeID(src.Uint64n(5000))
				}
				if err := p.PushBatch(batch); err != nil {
					t.Error(err)
					return
				}
				p.Sample()
			}
		}(g)
	}
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if want := uint64(8 * 40 * 64); st.Processed != want {
		t.Fatalf("processed %d, want %d", st.Processed, want)
	}
	if st.Dropped != 0 {
		t.Fatalf("blocking pool dropped %d", st.Dropped)
	}
	if len(p.SampleN(10)) != 10 {
		t.Fatal("SampleN short on a warm pool")
	}
}

func TestPoolNonBlockingIngestDrops(t *testing.T) {
	p, err := NewPool(5, 1, WithSeed(4), WithSketch(200, 8),
		WithShardBuffer(0), WithNonBlockingIngest())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	big := make([]NodeID, 4096)
	for i := range big {
		big[i] = NodeID(i)
	}
	for i := 0; i < 200 && p.Stats().Dropped == 0; i++ {
		if err := p.PushBatch(big); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().Dropped == 0 {
		t.Fatal("unbuffered non-blocking pool never dropped under a flood")
	}
}

func TestPoolClose(t *testing.T) {
	p, err := NewPool(5, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := p.Push(2); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Push after close = %v, want ErrPoolClosed", err)
	}
	if err := p.PushBatch([]NodeID{3}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("PushBatch after close = %v, want ErrPoolClosed", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Flush after close = %v, want ErrPoolClosed", err)
	}
}
