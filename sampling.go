package nodesampling

import (
	cryptorand "crypto/rand"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"

	"nodesampling/internal/adversary"
	"nodesampling/internal/core"
	"nodesampling/internal/rng"
)

// NodeID identifies a node. The paper draws identifiers from {1, …, 2^160}
// (SHA-1 images); this implementation uses their first 64 bits, which keeps
// the collision probability negligible at any simulated scale while leaving
// the algorithms unchanged. Use HashID/HashString to derive ids from
// arbitrary node names, addresses or certificates.
type NodeID uint64

// HashID maps arbitrary bytes (a node certificate, address, public key) to
// a NodeID via SHA-1, mirroring the paper's identifier construction.
func HashID(data []byte) NodeID {
	sum := sha1.Sum(data)
	return NodeID(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string to a NodeID via SHA-1.
func HashString(s string) NodeID { return HashID([]byte(s)) }

// Sampler is the node sampling service: a one-pass component that reads the
// (possibly adversarially biased) input stream of node identifiers and
// emits a stream satisfying Uniformity and Freshness.
//
// Implementations returned by this package are not safe for concurrent use;
// wrap them in a Service for that.
type Sampler interface {
	// Process consumes one id from the input stream and returns the id
	// emitted to the output stream at this step.
	Process(id NodeID) NodeID
	// Sample returns the current sample without consuming input. ok is
	// false before the first Process call.
	Sample() (id NodeID, ok bool)
	// Memory returns a copy of the sampling memory Γ.
	Memory() []NodeID
}

// Oracle supplies the omniscient strategy with the true occurrence
// probability of every identifier in the input stream.
type Oracle interface {
	// Prob returns p_j, the occurrence probability of id j.
	Prob(id NodeID) float64
	// MinProb returns the smallest non-zero occurrence probability over the
	// population.
	MinProb() float64
}

// config collects the constructor options.
type config struct {
	seed       uint64
	seedSet    bool
	strategy   string
	k, s       int
	useAcc     bool
	eps, del   float64
	coreOption []core.Option
	decayEvery uint64

	// Pool-only knobs (see NewPool); ignored by the sampler constructors.
	shardBuffer    int
	shardBufferSet bool
	nonBlocking    bool
}

// Option customises a sampler constructor.
type Option func(*config) error

// WithSeed fixes the sampler's random seed, making its behaviour
// reproducible. Without it a seed is derived from a private source.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		c.seedSet = true
		return nil
	}
}

// WithStrategy selects the sampling strategy by registry name. The default
// is "knowledge-free", the paper's Algorithm 3; "basalt" selects the
// BASALT-style seeded-ranking sampler (sketch-free — the sketch options are
// ignored by strategies that keep no sketch). Strategies lists the
// registered names. The strategy applies to NewSampler and to every shard
// of a NewPool, and is recorded in Pool.Snapshot blobs: a snapshot restores
// only under the strategy that wrote it.
func WithStrategy(name string) Option {
	return func(c *config) error {
		if name == "" {
			return errors.New("nodesampling: empty strategy name")
		}
		c.strategy = name
		return nil
	}
}

// Strategies lists the registered sampling strategy names, sorted.
func Strategies() []string { return core.Strategies() }

// WithSketch sets the Count-Min sketch shape to k columns × s rows (the
// paper's notation). Width k is the defender's main lever: the adversary
// needs Θ(k) distinct identifiers to mount a successful attack.
func WithSketch(k, s int) Option {
	return func(c *config) error {
		if k < 1 || s < 1 {
			return fmt.Errorf("nodesampling: invalid sketch shape k=%d s=%d", k, s)
		}
		c.k, c.s = k, s
		c.useAcc = false
		return nil
	}
}

// WithSketchAccuracy sizes the sketch from the Count-Min accuracy targets:
// k = ⌈e/ε⌉ columns and s = ⌈log₂(1/δ)⌉ rows.
func WithSketchAccuracy(epsilon, delta float64) Option {
	return func(c *config) error {
		if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) {
			return fmt.Errorf("nodesampling: invalid accuracy targets epsilon=%v delta=%v", epsilon, delta)
		}
		c.eps, c.del = epsilon, delta
		c.useAcc = true
		return nil
	}
}

// WithDecay makes the knowledge-free sampler halve its sketch counters
// every `every` processed ids, exponentially forgetting old stream
// elements. The paper assumes churn ceases at a time T0; enable decay when
// the population keeps changing slowly, so that departed nodes wash out of
// the frequency estimates and fresh attackers are suppressed promptly
// (extension; see the ablation-churn experiment). Affects knowledge-free
// samplers only. In a NewPool the period is a global decay clock: every
// shard halves each time the pool as a whole has processed `every` further
// ids, so shard estimates stay comparable even when the salted partition
// is momentarily skewed.
func WithDecay(every uint64) Option {
	return func(c *config) error {
		if every == 0 {
			return fmt.Errorf("nodesampling: decay period must be positive")
		}
		c.decayEvery = every
		return nil
	}
}

// WithConservativeEstimates switches the sketch to the conservative-update
// rule (CM-CU), which keeps the no-underestimate guarantee while shedding
// most of the collision over-count. Affects knowledge-free samplers only:
// those from NewSampler and every shard of a NewPool (extension; see the
// ablation-cu experiment).
func WithConservativeEstimates() Option {
	return func(c *config) error {
		c.coreOption = append(c.coreOption, core.WithConservativeUpdate())
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	cfg := config{k: 50, s: 10} // a Table I operating point: L≈571, E≈650 adversary effort
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	if !cfg.seedSet {
		cfg.seed = seedFromEntropy()
	}
	return cfg, nil
}

// seedFromEntropy draws a fresh random seed from the operating system,
// used when the caller did not ask for reproducibility via WithSeed.
func seedFromEntropy() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand.Read practically cannot fail; fall back to a fixed
		// odd constant rather than propagate an error from a constructor
		// path that is otherwise infallible.
		return 0x9e3779b97f4a7c15
	}
	return binary.BigEndian.Uint64(b[:])
}

// strategySampler adapts any registered core.PoolSampler strategy to the
// public NodeID API.
type strategySampler struct {
	inner core.PoolSampler
}

var _ Sampler = (*strategySampler)(nil)

func (w *strategySampler) Process(id NodeID) NodeID { return NodeID(w.inner.Process(uint64(id))) }

func (w *strategySampler) Sample() (NodeID, bool) {
	id, ok := w.inner.Sample()
	return NodeID(id), ok
}

func (w *strategySampler) Memory() []NodeID { return convertIDs(w.inner.Memory()) }

// omniscient adapts core.Omniscient to the public NodeID API.
type omniscient struct {
	inner *core.Omniscient
}

var _ Sampler = (*omniscient)(nil)

func (w *omniscient) Process(id NodeID) NodeID { return NodeID(w.inner.Process(uint64(id))) }

func (w *omniscient) Sample() (NodeID, bool) {
	id, ok := w.inner.Sample()
	return NodeID(id), ok
}

func (w *omniscient) Memory() []NodeID { return convertIDs(w.inner.Memory()) }

func convertIDs(in []uint64) []NodeID {
	out := make([]NodeID, len(in))
	for i, v := range in {
		out[i] = NodeID(v)
	}
	return out
}

// oracleAdapter bridges the public Oracle to the internal one.
type oracleAdapter struct{ o Oracle }

func (a oracleAdapter) Prob(id uint64) float64 { return a.o.Prob(NodeID(id)) }
func (a oracleAdapter) MinProb() float64       { return a.o.MinProb() }

// NewSampler returns the sampling service with sampling memory capacity c,
// running the configured strategy (WithStrategy; the default is the paper's
// knowledge-free Algorithm 3, estimating frequencies online with a
// Count-Min sketch sized by WithSketch or WithSketchAccuracy, default
// 50×10).
//
// Sizing rule for the default strategy: keep the sketch width k well below
// the expected number of distinct identifiers in the stream (the paper's
// evaluation uses k ∈ [10, 50] for populations of 1000). If a sketch column
// is never hit — possible when k approaches the population size — the
// global minimum counter stays at zero and the memory stops refreshing.
func NewSampler(c int, opts ...Option) (Sampler, error) {
	if c < 1 {
		return nil, fmt.Errorf("nodesampling: memory size c must be at least 1, got %d", c)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.decayEvery > 0 {
		// Single sampler: the decay clock is simply its own processed count.
		cfg.coreOption = append(cfg.coreOption, core.WithPeriodicHalving(cfg.decayEvery))
	}
	factory, err := core.NewFactory(cfg.strategy, core.StrategyParams{
		K: cfg.k, S: cfg.s,
		UseAccuracy: cfg.useAcc, Epsilon: cfg.eps, Delta: cfg.del,
		Options: cfg.coreOption,
	})
	if err != nil {
		return nil, err
	}
	inner, err := factory.New(c, rng.New(cfg.seed))
	if err != nil {
		return nil, err
	}
	return &strategySampler{inner: inner}, nil
}

// NewOmniscientSampler returns the omniscient strategy (the paper's
// Algorithm 1): provably uniform and fresh given an oracle for the true
// occurrence probabilities. Use it as a reference in evaluations, or with
// an exact counting pass (NewCountingOracle) over recorded streams.
func NewOmniscientSampler(c int, oracle Oracle, opts ...Option) (Sampler, error) {
	if c < 1 {
		return nil, fmt.Errorf("nodesampling: memory size c must be at least 1, got %d", c)
	}
	if oracle == nil {
		return nil, errors.New("nodesampling: nil oracle")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewOmniscient(c, oracleAdapter{oracle}, rng.New(cfg.seed))
	if err != nil {
		return nil, err
	}
	return &omniscient{inner: inner}, nil
}

// NewCountingOracle builds an Oracle from exact occurrence counts (for
// example a preliminary pass over a recorded trace).
func NewCountingOracle(counts map[NodeID]uint64) (Oracle, error) {
	raw := make(map[uint64]uint64, len(counts))
	for id, c := range counts {
		raw[uint64(id)] = c
	}
	inner, err := core.NewCountOracle(raw)
	if err != nil {
		return nil, err
	}
	return countingOracle{inner}, nil
}

type countingOracle struct{ inner *core.CountOracle }

func (o countingOracle) Prob(id NodeID) float64 { return o.inner.Prob(uint64(id)) }
func (o countingOracle) MinProb() float64       { return o.inner.MinProb() }

// AttackEffort reports the minimum number of distinct identifiers an
// adversary must create to defeat a sampler configured with a k×s sketch,
// with success probability exceeding 1−eta (the paper's Section V):
// targeted is L_{k,s} (bias one chosen victim id), flooding is E_k (bias
// every id). Raising k raises both linearly — the "memory buys safety"
// trade-off of the paper's Table I.
func AttackEffort(k, s int, eta float64) (targeted, flooding int, err error) {
	p, err := adversary.NewPlan(k, s, eta)
	if err != nil {
		return 0, 0, err
	}
	return p.TargetedIDs, p.FloodingIDs, nil
}
