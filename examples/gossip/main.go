// Gossip overlay: run the sampling service at every correct node of a
// simulated epidemic overlay while 10% of the nodes flood Sybil ids — the
// paper's second motivating application (epidemic protocols keep their
// overlay connected by periodically selecting random neighbours; a biased
// sampler lets the adversary eclipse correct nodes).
//
// The example contrasts two overlays — one whose nodes pick neighbours from
// the raw gossip stream, one whose nodes pick them from the sampling
// service — and reports attack pressure, per-node uniformity gain, and how
// many distinct correct ids survive in the nodes' candidate sets.
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"os"
	"runtime"

	"nodesampling/internal/core"
	"nodesampling/internal/gossip"
	"nodesampling/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gossip:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := gossip.Config{
		Nodes:             150,
		MaliciousFraction: 0.1,
		SybilIDs:          15,
		Fanout:            3,
		ForwardBuffer:     16,
		Burst:             12,
		Degree:            4,
		Seed:              7,
	}
	nw, err := gossip.NewNetwork(cfg, func(_ int, r *rng.Xoshiro) (core.Sampler, error) {
		return core.NewKnowledgeFree(25, 8, 4, r)
	})
	if err != nil {
		return err
	}

	fmt.Println("=== epidemic overlay under a Sybil flood ===")
	fmt.Printf("%d nodes (%d malicious), %d sybil identifiers, overlay degree %d\n",
		cfg.Nodes, nw.NumMalicious(), cfg.SybilIDs, cfg.Degree)

	workers := runtime.NumCPU()
	const warmup, measured = 600, 900
	if err := nw.RunParallel(warmup, workers); err != nil {
		return err
	}
	nw.ResetStreamStats()
	if err := nw.RunParallel(measured, workers); err != nil {
		return err
	}

	fmt.Printf("rounds: %d warm-up + %d measured\n", warmup, measured)
	fmt.Printf("sybil pressure: %.1f%% of everything correct nodes hear is a sybil id\n",
		100*nw.SybilPressure())

	sum, err := nw.CorrectGains()
	if err != nil {
		return err
	}
	fmt.Printf("\nper-node uniformity gain of the sampling service (steady state):\n")
	fmt.Printf("  mean %.3f, min %.3f, max %.3f over %d correct nodes\n",
		sum.Mean, sum.Min, sum.Max, sum.Nodes)

	correct := cfg.Nodes - nw.NumMalicious()
	fmt.Printf("\nneighbour-candidate diversity (distinct correct ids in candidate sets):\n")
	fmt.Printf("  from sampling memories: %d / %d correct nodes represented\n",
		nw.SampleCoverage(), correct)

	// Eclipse resistance: how much of the nodes' candidate memory did the
	// adversary capture, versus what it captured of the raw stream? Under
	// uniformity the sybil share of memory should approach the sybils'
	// population share, well below their stream share.
	var sybilSlots, totalSlots int
	for _, i := range nw.CorrectIndices() {
		for _, id := range nw.Sampler(i).Memory() {
			totalSlots++
			if id >= uint64(cfg.Nodes) {
				sybilSlots++
			}
		}
	}
	popShare := float64(cfg.SybilIDs) / float64(cfg.Nodes+cfg.SybilIDs)
	fmt.Printf("\neclipse resistance (share of candidate slots captured by sybil ids):\n")
	fmt.Printf("  in sampling memories: %.1f%%  (stream share %.1f%%, population share %.1f%%)\n",
		100*float64(sybilSlots)/float64(totalSlots), 100*nw.SybilPressure(), 100*popShare)
	return nil
}
