// Churn: defend a population that changes after deployment.
//
// The paper's model assumes churn ceases at a time T0, after which the
// population is fixed. Real overlays only approximate that: nodes keep
// joining and leaving slowly. This example shows the failure mode and the
// fix, using only the public API:
//
//   - A sampler is deployed and runs for a while against population A.
//
//   - The overlay is then migrated: population A leaves, population B joins,
//     and an attacker immediately floods B with a new Sybil identifier.
//
//   - A plain sampler is slow to suppress the new attacker, because its
//     stale frequency sketch keeps the admission floor (minσ) at population
//     A's level — the fresh attacker is admitted freely until its own
//     estimate climbs past that stale floor.
//
//   - A sampler with WithDecay periodically halves its sketch, forgets
//     population A, and re-establishes the defence quickly.
//
//     go run ./examples/churn
package main

import (
	"fmt"
	"math/rand"
	"os"

	"nodesampling"
)

const (
	popSize   = 300     // nodes per population
	phaseLen  = 100_000 // stream elements per phase
	sybilRate = 2       // attacker sends every 2nd element after the switch
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

func run() error {
	plain, err := nodesampling.NewSampler(25,
		nodesampling.WithSeed(1), nodesampling.WithSketch(10, 5))
	if err != nil {
		return err
	}
	decaying, err := nodesampling.NewSampler(25,
		nodesampling.WithSeed(1), nodesampling.WithSketch(10, 5),
		nodesampling.WithDecay(phaseLen/20))
	if err != nil {
		return err
	}

	idA := func(i int) nodesampling.NodeID {
		return nodesampling.HashString(fmt.Sprintf("gen-a/node-%d", i))
	}
	idB := func(i int) nodesampling.NodeID {
		return nodesampling.HashString(fmt.Sprintf("gen-b/node-%d", i))
	}
	sybil := nodesampling.HashString("gen-b/sybil")

	r := rand.New(rand.NewSource(3))
	// Phase 1: quiet life with population A.
	for i := 0; i < phaseLen; i++ {
		id := idA(r.Intn(popSize))
		plain.Process(id)
		decaying.Process(id)
	}
	// Phase 2: migration + attack. Count how often each sampler emits the
	// new Sybil id during the critical window right after the switch.
	windows := []int{phaseLen / 10, phaseLen / 2, phaseLen}
	fmt.Println("=== population migration followed by a fresh Sybil flood ===")
	fmt.Printf("%d ids leave, %d ids join, attacker sends every %dth element\n\n",
		popSize, popSize, sybilRate)
	fmt.Printf("%-28s %14s %14s\n", "window after switch", "plain sampler", "with decay")
	plainSybil, decaySybil, step := 0, 0, 0
	for _, until := range windows {
		for ; step < until; step++ {
			id := idB(r.Intn(popSize))
			if step%sybilRate == 0 {
				id = sybil
			}
			if plain.Process(id) == sybil {
				plainSybil++
			}
			if decaying.Process(id) == sybil {
				decaySybil++
			}
		}
		fmt.Printf("first %-22d %13.2f%% %13.2f%%\n", until,
			100*float64(plainSybil)/float64(until),
			100*float64(decaySybil)/float64(until))
	}
	fmt.Printf("\n(uniform share would be %.2f%%; the attacker holds %d%% of the raw stream)\n",
		100.0/(popSize+1), 100/sybilRate)
	return nil
}
