// Attack planner: how much must a colluding adversary spend to defeat the
// sampling service, and does the theory hold in practice?
//
// The paper's Section V shows the adversary's only lever against the
// knowledge-free strategy is corrupting the Count-Min estimates, which
// requires minting distinct certified identifiers: L_{k,s} of them to bias
// one victim id, E_k to bias everyone. Both grow linearly with the sketch
// width k — so a correct node buys safety with memory. This example prints
// the effort table for several sketch shapes, verifies the thresholds
// empirically against freshly drawn hash families, and closes with a small
// strategy tournament: every registered sampling strategy (built through
// the same registry unsd's -strategy flag uses) against the four attack
// models, scored with the windowed KL divergence and G_KL gain.
//
//	go run ./examples/attackplanner
package main

import (
	"fmt"
	"os"

	"nodesampling"
	"nodesampling/internal/adversary"
	"nodesampling/internal/rng"
	"nodesampling/internal/urn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackplanner:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== adversary effort against the knowledge-free sampler ===")
	fmt.Println("(distinct certified identifiers the adversary must create)")
	fmt.Println()
	fmt.Printf("%6s %4s %10s %14s %14s %12s\n", "k", "s", "eta", "targeted L", "flooding E", "sketch mem")
	shapes := []struct {
		k, s int
		eta  float64
	}{
		{10, 5, 1e-1}, {10, 5, 1e-4},
		{50, 10, 1e-1}, {50, 10, 1e-4},
		{250, 10, 1e-4},
	}
	for _, sh := range shapes {
		plan, err := adversary.NewPlan(sh.k, sh.s, sh.eta)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %4d %10.0e %14d %14d %10d B\n",
			plan.K, plan.S, plan.Eta, plan.TargetedIDs, plan.FloodingIDs, plan.SketchBytes)
	}

	fmt.Println()
	fmt.Println("key property: doubling k roughly doubles the adversary's cost, at 8*s bytes per column.")
	fmt.Println()

	// Empirical verification for one operating point.
	const k, s, eta = 10, 5, 0.1
	L, err := urn.TargetedEffort(k, s, eta)
	if err != nil {
		return err
	}
	r := rng.New(99)
	fmt.Printf("empirical check at k=%d, s=%d, eta=%.1f (3000 hash-family draws):\n", k, s, eta)
	for _, decoys := range []int{L / 4, L / 2, L, 2 * L} {
		p, err := adversary.EmpiricalTargetedSuccess(k, s, decoys, 3000, r)
		if err != nil {
			return err
		}
		marker := ""
		if decoys == L {
			marker = fmt.Sprintf("  <- L_{k,s}, theory promises > %.1f", 1-eta)
		}
		fmt.Printf("  %4d distinct ids -> targeted attack succeeds with prob %.3f%s\n", decoys, p, marker)
	}

	// A small strategy tournament: which registered sampler backend holds
	// up against which attack? Strategies come from the shared registry,
	// so any newly registered backend joins this table automatically.
	fmt.Println()
	fmt.Printf("=== strategy tournament (registered: %v) ===\n", nodesampling.Strategies())
	res, err := adversary.RunTournament(adversary.TournamentConfig{
		Population: 128, Capacity: 16, K: k, S: s,
		Ids: 16384, Window: 2048, Seed: 99,
	})
	if err != nil {
		return err
	}
	return res.WriteTable(os.Stdout)
}
