// Streaming: push batches up and consume σ′ down over one TCP connection.
//
// The demo embeds a minimal framed-protocol server (the same wire format
// cmd/unsd serves on -stream) backed by a public Pool, then drives it with
// the public client package: a single persistent connection carries id
// batches upstream — including a Sybil flood — while the sampling
// service's continuous output stream σ′ flows back downstream. The client
// counts how much of the output the attacker captured; the uniform sampler
// holds it near the attacker's fair population share, far below its share
// of the input traffic.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"nodesampling"
	"nodesampling/client"
	"nodesampling/internal/netgossip"
)

const (
	honestNodes = 400
	sybilIDs    = 3
	sybilBase   = uint64(1 << 32)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run() error {
	pool, err := nodesampling.NewPool(25, 4, nodesampling.WithSeed(1), nodesampling.WithSketch(30, 5))
	if err != nil {
		return err
	}
	defer pool.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go serve(ln, pool)

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer c.Close()

	out, err := c.Subscribe(8192)
	if err != nil {
		return err
	}

	// The input stream: every honest id once per round, the three Sybil ids
	// fifty times each per round — the attacker owns ~27% of the traffic.
	batch := make([]nodesampling.NodeID, 0, honestNodes+50*sybilIDs)
	for i := 0; i < honestNodes; i++ {
		batch = append(batch, nodesampling.NodeID(i+1))
	}
	for s := 0; s < sybilIDs; s++ {
		for r := 0; r < 50; r++ {
			batch = append(batch, nodesampling.NodeID(sybilBase+uint64(s)))
		}
	}
	// Keep the input stream flowing until the consumer has seen enough; the
	// output plane sheds what the connection cannot carry (drop-oldest), so
	// the producer never has to pace itself.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.PushBatch(batch); err != nil {
				return
			}
		}
	}()

	// Consume σ′ from the same connection and measure the attacker's share.
	var total, sybil int
	timeout := time.After(30 * time.Second)
	for total < 50000 {
		select {
		case id, ok := <-out:
			if !ok {
				return fmt.Errorf("stream closed early: %v", c.Err())
			}
			total++
			if uint64(id) >= sybilBase {
				sybil++
			}
		case <-timeout:
			return fmt.Errorf("timed out after %d stream elements", total)
		}
	}

	inputShare := float64(50*sybilIDs) / float64(honestNodes+50*sybilIDs)
	fairShare := float64(sybilIDs) / float64(honestNodes+sybilIDs)
	gotShare := float64(sybil) / float64(total)
	fmt.Printf("attacker input share:  %5.1f%% of the pushed stream\n", 100*inputShare)
	fmt.Printf("attacker fair share:   %5.1f%% of the population\n", 100*fairShare)
	fmt.Printf("attacker output share: %5.1f%% of %d σ′ draws over one TCP conn (dropped client-side: %d)\n",
		100*gotShare, total, c.StreamDropped())
	if s, err := c.Sample(3); err == nil {
		fmt.Printf("on-demand samples over the same connection: %v\n", s)
	}
	return nil
}

// serve accepts framed connections and answers them from the pool — a
// pocket edition of the unsd daemon's -stream endpoint.
func serve(ln net.Listener, pool *nodesampling.Pool) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handle(conn, pool)
	}
}

func handle(conn net.Conn, pool *nodesampling.Pool) {
	defer conn.Close()
	var wmu sync.Mutex // the stream goroutine and the reply path share conn
	write := func(f netgossip.Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return netgossip.WriteFrame(conn, f)
	}
	var sub *nodesampling.PoolSubscription
	defer func() {
		if sub != nil {
			sub.Cancel()
		}
	}()
	for {
		f, err := netgossip.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case netgossip.FramePushBatch:
			ids := make([]nodesampling.NodeID, len(f.IDs))
			for i, id := range f.IDs {
				ids[i] = nodesampling.NodeID(id)
			}
			_ = pool.PushBatch(ids)
		case netgossip.FrameSample:
			n := int(f.N)
			if n > netgossip.MaxBatch {
				n = netgossip.MaxBatch // the response frame's capacity
			}
			samples := pool.SampleN(n)
			raw := make([]uint64, len(samples))
			for i, id := range samples {
				raw[i] = uint64(id)
			}
			if err := write(netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: raw}); err != nil {
				return
			}
		case netgossip.FrameSubscribe:
			if sub != nil {
				continue
			}
			s, err := pool.Subscribe(int(f.N))
			if err != nil {
				return
			}
			sub = s
			go streamOut(s, write)
		case netgossip.FramePing:
			if err := write(netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// streamOut forwards σ′ draws as StreamData frames, draining whatever is
// already buffered into each frame.
func streamOut(s *nodesampling.PoolSubscription, write func(netgossip.Frame) error) {
	buf := make([]uint64, 0, netgossip.MaxBatch)
	for {
		id, ok := <-s.C()
		if !ok {
			return
		}
		buf = append(buf[:0], uint64(id))
	fill:
		for len(buf) < cap(buf) {
			select {
			case more, ok := <-s.C():
				if !ok {
					break fill
				}
				buf = append(buf, uint64(more))
			default:
				break fill
			}
		}
		if err := write(netgossip.Frame{Type: netgossip.FrameStreamData, IDs: buf}); err != nil {
			s.Cancel()
			return
		}
	}
}
