// Secureclient: drive a TLS-secured unsd daemon end to end with mutual
// authentication — the deployment shape of the paper's sampling service on
// an open network, where the transport (not good faith) keeps malicious
// nodes from owning the stream.
//
// Start a secured daemon (certificates as produced by any PKI; the CA file
// signs the client certificates the daemon will accept):
//
//	unsd -stream 127.0.0.1:7947 \
//	     -tls-cert server.pem -tls-key server.key -tls-client-ca ca.pem \
//	     -admin-token "$UNSD_ADMIN_TOKEN" \
//	     -snapshot-path pool.snap -snapshot-key-file snap.key
//
// then run this client against it:
//
//	go run ./examples/secureclient -addr 127.0.0.1:7947 \
//	    -ca ca.pem -cert client.pem -key client.key
//
// The client handshakes (proving its certificate chains to the daemon's
// CA and verifying the daemon's in return), pushes a batch, samples, and
// rides the σ′ stream for a few seconds — reconnecting with the same
// credentials if the daemon restarts underneath it.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"time"

	"nodesampling"
	"nodesampling/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "secureclient:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7947", "daemon stream address")
	caPath := flag.String("ca", "", "CA certificate (PEM) that signed the daemon's certificate")
	certPath := flag.String("cert", "", "this client's certificate (PEM), for mutual TLS")
	keyPath := flag.String("key", "", "this client's private key (PEM)")
	flag.Parse()
	if *caPath == "" || *certPath == "" || *keyPath == "" {
		flag.Usage()
		return fmt.Errorf("-ca, -cert and -key are required")
	}

	caPEM, err := os.ReadFile(*caPath)
	if err != nil {
		return err
	}
	roots := x509.NewCertPool()
	if !roots.AppendCertsFromPEM(caPEM) {
		return fmt.Errorf("no CA certificates in %s", *caPath)
	}
	cert, err := tls.LoadX509KeyPair(*certPath, *keyPath)
	if err != nil {
		return err
	}

	c, err := client.DialWithOptions(*addr, client.DialOptions{
		TLS: &tls.Config{
			RootCAs:      roots,
			Certificates: []tls.Certificate{cert},
			MinVersion:   tls.VersionTLS12,
		},
		Reconnect: true, // same credentials on every redial
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Println("mutually authenticated with", *addr)

	out, err := c.Subscribe(4096)
	if err != nil {
		return err
	}
	ids := make([]nodesampling.NodeID, 256)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	if err := c.PushBatch(ids); err != nil {
		return err
	}
	samples, err := c.Sample(5)
	if err != nil {
		return err
	}
	fmt.Println("uniform samples over TLS:", samples)

	seen := 0
	timeout := time.After(5 * time.Second)
	for seen < 100 {
		select {
		case id, ok := <-out:
			if !ok {
				return fmt.Errorf("stream closed: %v", c.Err())
			}
			_ = id
			seen++
		case <-timeout:
			fmt.Printf("σ′ stream delivered %d draws in 5s\n", seen)
			return nil
		}
	}
	fmt.Printf("σ′ stream delivered %d draws (reconnects: %d)\n", seen, c.Reconnects())
	return nil
}
