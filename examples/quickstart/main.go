// Quickstart: unbias an adversarially skewed stream of node identifiers
// with the knowledge-free sampling service, using only the public API.
//
// A colluding adversary floods the stream so that one Sybil identifier
// makes up half of everything a node hears. The sampler — with 20 ids of
// memory and a 15x5 sketch — recovers a near-uniform output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"nodesampling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		population = 500     // node ids 0..499
		streamLen  = 200_000 // ids observed by this node
		sybil      = nodesampling.NodeID(0)
	)

	sampler, err := nodesampling.NewSampler(20,
		nodesampling.WithSeed(42),
		nodesampling.WithSketch(15, 5))
	if err != nil {
		return err
	}

	r := rand.New(rand.NewSource(7))
	inputCount := make(map[nodesampling.NodeID]int)
	outputCount := make(map[nodesampling.NodeID]int)

	for i := 0; i < streamLen; i++ {
		// Adversarial stream: half the elements are the Sybil id, the rest
		// is legitimate uniform gossip.
		id := sybil
		if r.Intn(2) == 0 {
			id = nodesampling.NodeID(r.Intn(population))
		}
		inputCount[id]++
		outputCount[sampler.Process(id)]++
	}

	fmt.Println("=== uniform node sampling: quickstart ===")
	fmt.Printf("population: %d ids, stream: %d elements\n", population, streamLen)
	fmt.Printf("input  stream: sybil id seen %d times (%.1f%% of stream), %d distinct ids\n",
		inputCount[sybil], 100*float64(inputCount[sybil])/streamLen, len(inputCount))
	fmt.Printf("output stream: sybil id emitted %d times (%.1f%% of stream), %d distinct ids\n",
		outputCount[sybil], 100*float64(outputCount[sybil])/streamLen, len(outputCount))
	fmt.Printf("uniform share would be %.2f%%\n", 100.0/population)

	if id, ok := sampler.Sample(); ok {
		fmt.Printf("current sample: node %d\n", id)
	}

	// How hard would the adversary have to work to defeat this sampler?
	targeted, flooding, err := nodesampling.AttackEffort(15, 5, 1e-4)
	if err != nil {
		return err
	}
	fmt.Printf("to defeat this 15x5 sketch with 99.99%% certainty, an adversary needs\n")
	fmt.Printf("  %d distinct certified ids for a targeted attack, %d for a flooding attack\n",
		targeted, flooding)
	return nil
}
