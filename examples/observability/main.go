// Observability: export the uniformity gauge over /metrics and watch an
// attack through it.
//
// The demo wires the observability plane at library level — the same
// pieces cmd/unsd assembles behind GET /metrics. A public Pool ingests
// three traffic phases (uniform baseline, targeted flood, recovery); a
// telemetry.Registry serves the Prometheus text exposition with the live
// uniformity gauge (windowed KL divergence to uniform over the input
// stream σ and the output stream σ′, plus the paper's G_KL gain) and a
// collector adapted from the pool's own Stats. After each phase the demo
// scrapes itself with client.ScrapeMetrics — the same parser cmd/unsload
// uses — and prints the gauge: input divergence spikes under the flood
// while output divergence stays flat, which is the paper's evaluation
// running as a live SLO.
//
//	go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nodesampling"
	"nodesampling/client"
	"nodesampling/internal/adversary"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
	"nodesampling/internal/telemetry"
)

const (
	population = 1024
	perPhase   = 32768
	batchSize  = 1024
	window     = 2048   // uniformity window: 2x population keeps estimates stable
	outDraws   = window // σ′-equivalent draws per scrape: refill the whole output window
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "observability:", err)
		os.Exit(1)
	}
}

func run() error {
	// Γ must cover the population (4 shards x 512 >= 1024 ids) or the
	// output window diverges from uniform for capacity reasons alone.
	pool, err := nodesampling.NewPool(512, 4, nodesampling.WithSeed(1), nodesampling.WithSketch(30, 5))
	if err != nil {
		return err
	}
	defer pool.Close()

	// The gauge plus a Stats adapter, exactly the registry shape the daemon
	// builds: collectors run at scrape time, never on the per-id path.
	uni := telemetry.NewUniformity(window, 1)
	reg := telemetry.NewRegistry()
	reg.Register(uni, telemetry.CollectorFunc(func() []telemetry.Family {
		st := pool.Stats()
		return []telemetry.Family{
			telemetry.C("unsd_pool_processed_ids_total", "Ids admitted by the shard workers.", float64(st.Processed)),
			telemetry.C("unsd_pool_dropped_ids_total", "Ids dropped at full shard queues.", float64(st.Dropped)),
			telemetry.G("unsd_pool_shards", "Current shard count.", float64(pool.NumShards())),
		}
	}))

	// Serve /metrics; the output window refreshes at scrape time from
	// SampleN draws, distributionally identical to the σ′ stream.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if draws := pool.SampleN(outDraws); len(draws) > 0 {
			out := make([]uint64, len(draws))
			for i, id := range draws {
				out[i] = uint64(id)
			}
			uni.Out.Offer(out)
		}
		reg.Handler().ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/metrics"

	base := stream.UniformPMF(population)
	flooded, err := adversary.Peak(base, population/2, 0.8) // 80% of traffic is one Sybil id
	if err != nil {
		return err
	}
	phases := []struct {
		name string
		pmf  []float64
		seed uint64
	}{
		{"uniform baseline", base, 2},
		{"targeted flood", flooded, 3},
		{"recovery", base, 4},
	}

	fmt.Printf("scraping %s after each phase (%d ids per phase)\n\n", url, perPhase)
	for _, ph := range phases {
		src, err := stream.NewCategorical(ph.pmf, rng.New(ph.seed))
		if err != nil {
			return err
		}
		ids := make([]nodesampling.NodeID, batchSize)
		raw := make([]uint64, batchSize)
		for sent := 0; sent < perPhase; sent += batchSize {
			for i := range ids {
				raw[i] = src.Next()
				ids[i] = nodesampling.NodeID(raw[i])
			}
			uni.In.Offer(raw) // the daemon's ingestTap, inlined
			if err := pool.PushBatch(ids); err != nil {
				return err
			}
		}
		if err := pool.Flush(); err != nil {
			return err
		}

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s, err := client.ScrapeMetrics(ctx, nil, url, "")
		cancel()
		if err != nil {
			return err
		}
		report(ph.name, s)
	}
	return nil
}

func report(phase string, s *telemetry.Scrape) {
	inKL, _ := s.Value("unsd_uniformity_input_kl")
	outKL, _ := s.Value("unsd_uniformity_output_kl")
	processed, _ := s.Value("unsd_pool_processed_ids_total")
	fmt.Printf("after %-16s  input KL %.3f   output KL %.3f", phase, inKL, outKL)
	if g, ok := s.Value("unsd_uniformity_gain"); ok {
		fmt.Printf("   gain %.2f", g)
	}
	fmt.Printf("   (processed %.0f ids)\n", processed)
}
