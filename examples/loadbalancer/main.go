// Load balancer: pick a backend uniformly at random from a gossiped
// membership stream that a Sybil attacker is flooding.
//
// This is the paper's first motivating application: "choosing a host at
// random among those that are available is often a choice that provides
// performance close to that offered by more complex selection criteria".
// A dispatcher that picks backends straight from the (biased) membership
// stream funnels most requests to attacker-advertised backends; routing
// the stream through the sampling service restores an even spread.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"

	"nodesampling"
)

const (
	backends  = 64      // honest backends b0..b63
	announces = 150_000 // membership announcements heard
	requests  = 30_000  // requests to dispatch
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbalancer:", err)
		os.Exit(1)
	}
}

func run() error {
	// Backend identifiers, as a real deployment would derive them.
	ids := make([]nodesampling.NodeID, backends)
	for i := range ids {
		ids[i] = nodesampling.HashString(fmt.Sprintf("backend-%02d.svc.local", i))
	}
	attacker := nodesampling.HashString("evil-backend.svc.local")

	sampler, err := nodesampling.NewSampler(16,
		nodesampling.WithSeed(1),
		nodesampling.WithSketch(10, 5))
	if err != nil {
		return err
	}
	svc, err := nodesampling.NewService(sampler, nodesampling.WithInputBuffer(64))
	if err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()

	// Membership announcements flow continuously (the attacker advertises
	// its backend 60% of the time) while requests arrive interleaved —
	// one dispatch every few announcements, as in a live system.
	r := rand.New(rand.NewSource(2))
	recent := make([]nodesampling.NodeID, 0, announces)
	naiveLoad := map[nodesampling.NodeID]int{}
	protectedLoad := map[nodesampling.NodeID]int{}
	dispatchEvery := announces / requests
	for i := 0; i < announces; i++ {
		id := attacker
		if r.Intn(5) >= 3 { // 40% honest
			id = ids[r.Intn(backends)]
		}
		recent = append(recent, id)
		if err := svc.Push(id); err != nil {
			return err
		}
		if i%dispatchEvery != 0 || i == 0 {
			continue
		}
		// Dispatch strategy A: naive — a random recently announced backend.
		naiveLoad[recent[r.Intn(len(recent))]]++
		// Dispatch strategy B: ask the sampling service.
		if id, ok := svc.Sample(); ok {
			protectedLoad[id]++
		}
	}

	fmt.Println("=== load balancing under a Sybil flood ===")
	fmt.Printf("%d honest backends, attacker advertises 60%% of the membership stream\n\n", backends)
	report("naive dispatcher (raw stream)", naiveLoad, attacker)
	report("sampling-service dispatcher", protectedLoad, attacker)
	return nil
}

func report(name string, load map[nodesampling.NodeID]int, attacker nodesampling.NodeID) {
	honest := make([]int, 0, len(load))
	total := 0
	for id, c := range load {
		total += c
		if id != attacker {
			honest = append(honest, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(honest)))
	maxHonest, minHonest := 0, 0
	if len(honest) > 0 {
		maxHonest, minHonest = honest[0], honest[len(honest)-1]
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  requests to attacker: %d / %d (%.1f%%)\n",
		load[attacker], total, 100*float64(load[attacker])/float64(total))
	fmt.Printf("  honest backends hit: %d / %d (max load %d, min load %d)\n\n",
		len(honest), backends, maxHonest, minHonest)
}
