// Netpeers: the sampling service over real TCP connections.
//
// Five peers run on localhost: four honest ones gossip their identifiers
// (and forward what they hear), while a fifth floods everyone with three
// Sybil identifiers on every round — the wire-level version of the paper's
// adversary. Each honest peer runs the knowledge-free sampling service on
// its incoming byte stream; the demo reports what fraction of the received
// traffic versus the sampled memories the attacker captured.
//
//	go run ./examples/netpeers
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"nodesampling/internal/netgossip"
)

const (
	honestPeers = 4
	rounds      = 800
	sybilBase   = uint64(1 << 32) // sybil ids live far from honest ids
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netpeers:", err)
		os.Exit(1)
	}
}

func run() error {
	// Honest peers listen on ephemeral localhost ports.
	peers := make([]*netgossip.Peer, honestPeers)
	listeners := make([]net.Listener, honestPeers)
	for i := range peers {
		p, err := netgossip.NewPeer(netgossip.Config{
			Self: uint64(i), C: 20, K: 6, S: 3,
			Fanout: 2, ForwardBuffer: 16, ForwardPerPush: 2,
			Seed: uint64(i) + 1,
		})
		if err != nil {
			return err
		}
		defer func() { _ = p.Close() }()
		ln, err := p.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		peers[i], listeners[i] = p, ln
	}
	// Full mesh between honest peers.
	for i := 0; i < honestPeers; i++ {
		for j := i + 1; j < honestPeers; j++ {
			if err := peers[i].Connect(listeners[j].Addr().String()); err != nil {
				return err
			}
		}
	}
	// The attacker connects to every honest peer.
	attacker, err := netgossip.NewPeer(netgossip.Config{
		Self: sybilBase, C: 1, K: 2, S: 1, Fanout: 1, Seed: 99,
	})
	if err != nil {
		return err
	}
	defer func() { _ = attacker.Close() }()
	for i := range listeners {
		if err := attacker.Connect(listeners[i].Addr().String()); err != nil {
			return err
		}
	}
	sybils := []uint64{sybilBase, sybilBase + 1, sybilBase + 2}

	fmt.Println("=== sampling service over TCP (localhost) ===")
	fmt.Printf("%d honest peers in a mesh, 1 attacker flooding %d sybil ids\n",
		honestPeers, len(sybils))
	for r := 0; r < rounds; r++ {
		for _, p := range peers {
			if _, err := p.PushRound(); err != nil {
				return err
			}
		}
		if err := attacker.Inject(sybils); err != nil {
			return err
		}
	}
	// Let in-flight reads drain.
	time.Sleep(100 * time.Millisecond)

	var sybilIn, totalIn uint64
	var sybilSlots, totalSlots int
	for _, p := range peers {
		for id, c := range p.InputStats() {
			totalIn += c
			if id >= sybilBase {
				sybilIn += c
			}
		}
		for _, id := range p.Memory() {
			totalSlots++
			if id >= sybilBase {
				sybilSlots++
			}
		}
	}
	fmt.Printf("received traffic captured by the attacker: %.1f%%\n",
		100*float64(sybilIn)/float64(totalIn))
	fmt.Printf("sampling-memory slots captured:            %.1f%%\n",
		100*float64(sybilSlots)/float64(totalSlots))
	fmt.Printf("population share of the sybil ids:         %.1f%%\n",
		100*float64(len(sybils))/float64(honestPeers+len(sybils)))
	for i, p := range peers {
		if id, ok := p.Sample(); ok {
			fmt.Printf("peer %d current sample: %d\n", i, id)
		}
	}
	return nil
}
