package main

// The daemon's observability surface: the /metrics endpoint (Prometheus
// text format v0.0.4, internal/telemetry), the daemon-level collector for
// counters the generic collectors cannot see (listeners, auth, snapshots),
// the live uniformity gauge's plumbing, the unified ingest funnel (batch
// latency histogram plus the sampled root span of the ingest→σ′ trace),
// and the pprof mount. Scrape-side work is pull-only — collectors read
// atomics and short-lived-lock snapshots at scrape time; the per-batch
// ingest cost is two atomic histogram updates and, unsampled, one atomic
// add in the tracer.

import (
	"net/http"
	"net/http/pprof"
	"time"

	"nodesampling/internal/shard"
	"nodesampling/internal/spans"
	"nodesampling/internal/telemetry"
)

// ingestTap is the netgossip sink: the daemon's unified ingest funnel,
// labelled with the gossip surface. Embedding the pool keeps the peer's
// Sample/Memory pass-through (SampleSource) intact.
type ingestTap struct {
	*shard.Pool
	d *daemon
}

func (t ingestTap) PushBatch(ids []uint64) error {
	return t.d.ingestRouted(ids, "gossip")
}

// ingest is the one funnel every ingest front shares — HTTP POST /push, the
// framed stream's PushBatch frames, and gossip batches. It offers the batch
// to the uniformity gauge's input probe (drops included: an attacker's
// flood is part of the input distribution), observes the wire-batch ingest
// latency, and — one batch in -trace-sample — opens the root "ingest" span
// under which the shard, emit and delivery spans hang.
func (d *daemon) ingest(ids []uint64, surface string) error {
	began := time.Now()
	d.uniformity.In.Offer(ids)
	tc := d.tracer.Root("ingest")
	err := d.pool.PushBatchTraced(ids, tc)
	if tc.Sampled() {
		outcome := "ok"
		if err != nil {
			outcome = "rejected"
		}
		tc.End(spans.Str("surface", surface), spans.Int("ids", len(ids)), spans.Str("outcome", outcome))
	}
	d.latency.IngestBatch.ObserveSince(began)
	return err
}

// uniformityInputEvery decimates the input probe: one of every 8 offered
// ids enters the sliding window, bounding the probe's share of a hostile
// flood's cost while sampling the stream's composition uniformly.
const uniformityInputEvery = 8

// outputProbeDraws is how many σ′-equivalent draws refresh the output
// window per scrape. Drawn via SampleN at scrape time — distributionally
// identical to the hub's σ′ stream, with zero cost between scrapes.
const outputProbeDraws = 256

// handleMetrics serves the Prometheus exposition. The output-side
// uniformity window refreshes here, at scrape time, so an unscraped daemon
// never pays for it.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if d.uniformity.Out.Window() > 0 {
		if draws := d.pool.SampleN(outputProbeDraws); len(draws) > 0 {
			d.uniformity.Out.Offer(draws)
		}
	}
	d.registry.Handler().ServeHTTP(w, r)
}

// newRegistry assembles the daemon's metric registry: pool ingest and
// fan-out accounting, autoscaler state, the uniformity gauge and the
// daemon-level counters below.
func (d *daemon) newRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Register(
		telemetry.PoolCollector(d.pool),
		telemetry.AutoscaleCollector(d.ctrl),
		d.uniformity,
		d.latency,
		telemetry.CollectorFunc(d.collectDaemon),
	)
	if d.cluster != nil {
		reg.Register(telemetry.CollectorFunc(d.collectCluster))
	}
	return reg
}

// collectDaemon exports what only the daemon sees: uptime, both network
// front-ends' connection accounting, admin-plane auth failures, and the
// durability plane's snapshot outcomes.
func (d *daemon) collectDaemon() []telemetry.Family {
	var accepted, rejected, frameErrs, conns float64
	if s := d.stream; s != nil {
		accepted = float64(s.accepted.Load())
		rejected = float64(s.rejected.Load())
		frameErrs = float64(s.frameErrors.Load())
		conns = float64(d.streamConns())
	}
	return []telemetry.Family{
		{
			Name: "unsd_info",
			Help: "Constant 1, labelled with the daemon's build-time facts: the active sampler strategy.",
			Type: telemetry.Gauge,
			Samples: []telemetry.Sample{{
				Labels: []telemetry.Label{{Name: "strategy", Value: d.pool.Strategy()}},
				Value:  1,
			}},
		},
		telemetry.G("unsd_uptime_seconds",
			"Seconds since the daemon started.",
			time.Since(d.start).Seconds()),
		telemetry.G("unsd_gossip_connections",
			"Live netgossip connections on the framed gossip listener.",
			float64(d.peer.NumConns())),
		telemetry.G("unsd_stream_connections",
			"Live framed-protocol stream connections.",
			conns),
		telemetry.C("unsd_stream_accepted_total",
			"Stream connections accepted since boot.",
			accepted),
		telemetry.C("unsd_stream_rejected_total",
			"Stream connections refused at the connection limit.",
			rejected),
		telemetry.C("unsd_stream_frame_errors_total",
			"Framed-protocol violations: undecodable frames, unexpected types, double subscribes.",
			frameErrs),
		telemetry.C("unsd_auth_failures_total",
			"Requests rejected by the admin bearer-token gate (missing or wrong credential).",
			float64(d.authFailures.Load())),
		telemetry.C("unsd_snapshot_writes_total",
			"Durable snapshots written successfully.",
			float64(d.snapWrites.Load())),
		telemetry.C("unsd_snapshot_failures_total",
			"Snapshot writes that failed.",
			float64(d.snapFailures.Load())),
		telemetry.G("unsd_snapshot_last_size_bytes",
			"Size of the most recent snapshot blob.",
			float64(d.snapBytes.Load())),
		telemetry.G("unsd_snapshot_last_unixtime",
			"Unix time of the most recent successful snapshot write.",
			float64(d.snapUnix.Load())),
		telemetry.G("unsd_snapshot_last_duration_seconds",
			"Wall time of the most recent successful snapshot write.",
			time.Duration(d.snapDurNanos.Load()).Seconds()),
		telemetry.G("unsd_snapshot_sealed",
			"Whether snapshots are sealed with AES-GCM at rest (1) or written plaintext (0).",
			telemetry.B(d.snapKey != nil)),
		telemetry.G("unsd_restored",
			"Whether this process restored its pool from a snapshot at boot.",
			telemetry.B(d.restored)),
	}
}

// mountPprof exposes net/http/pprof on the admin mux, every handler behind
// the bearer-token gate: profiles reveal memory contents and timing, so
// they are operator material, never public. newDaemon refuses -pprof
// without an admin token, which keeps the no-credential path answering 401
// with a challenge and a wrong credential 403 — the admin plane's usual
// vocabulary.
func (d *daemon) mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", d.requireToken(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", d.requireToken(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", d.requireToken(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", d.requireToken(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", d.requireToken(pprof.Trace))
}
