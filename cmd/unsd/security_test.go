package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodesampling/internal/shard"
)

// doJSON issues a request with an optional bearer token and returns the
// response (body closed via cleanup).
func doJSON(t *testing.T, method, url, token string, body string) *http.Response {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("{}")
	} else {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

// errBody decodes the JSON error object every refusal must carry.
func errBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error response is not the JSON error object: %v", err)
	}
	if e.Error == "" {
		t.Fatal("error response carries an empty error message")
	}
	return e.Error
}

// TestAdminTokenGatesMutatingEndpoints pins the 401/403 split on the admin
// surface: no credential at all is 401 (with a challenge), a wrong or
// malformed credential is 403, the right token reaches the handler (whose
// own 400/409 vocabulary stays untouched) — and the read surface stays
// open by default.
func TestAdminTokenGatesMutatingEndpoints(t *testing.T) {
	o := defaultOptions()
	o.adminToken = "hunter2"
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	for _, ep := range []string{"/resize", "/snapshot", "/autoscale"} {
		resp := doJSON(t, http.MethodPost, ts.URL+ep, "", "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless POST %s: status %d, want 401", ep, resp.StatusCode)
		}
		if ep == "/resize" {
			if c := resp.Header.Get("WWW-Authenticate"); !strings.Contains(c, "Bearer") {
				t.Fatalf("401 without a Bearer challenge: %q", c)
			}
			errBody(t, resp)
		}
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/resize", "wrong-token", `{"shards":2}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong token: status %d, want 403", resp.StatusCode)
	}
	// A malformed scheme is a presented-but-invalid credential: 403.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/resize", strings.NewReader(`{"shards":2}`))
	req.Header.Set("Authorization", "Basic aHVudGVyMg==")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("basic-auth credential: status %d, want 403", resp.StatusCode)
	}
	// The right token reaches the handler; its own validation still runs.
	if resp := doJSON(t, http.MethodPost, ts.URL+"/resize", "hunter2", `{"shards":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("authorised resize: status %d, want 200", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/resize", "hunter2", `{"shards":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("authorised bad body: status %d, want 400", resp.StatusCode)
	}
	// The read and data surface stays open without a token.
	if resp := postPush(t, ts.URL, []uint64{1, 2, 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("open /push with admin token configured: status %d", resp.StatusCode)
	}
	var stats struct {
		Processed uint64 `json:"processed"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("open /stats: status %d", code)
	}
}

// TestAdminTokenAllGatesEverything: under -admin-token-all even the read
// surface wants the token.
func TestAdminTokenAllGatesEverything(t *testing.T) {
	o := defaultOptions()
	o.adminToken = "hunter2"
	o.adminTokenAll = true
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	for _, ep := range []string{"/stats", "/sample", "/memory"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless GET %s under -admin-token-all: status %d, want 401", ep, resp.StatusCode)
		}
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/push", "", `{"ids":[1]}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless POST /push under -admin-token-all: status %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("Authorization", "Bearer hunter2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorised /stats: status %d, want 200", resp.StatusCode)
	}
	// The flag without a token is a misconfiguration, not silent openness.
	bad := defaultOptions()
	bad.adminTokenAll = true
	if _, err := newDaemon(bad); err == nil {
		t.Fatal("-admin-token-all without a token should fail")
	}
}

// TestAdminTokenFromEnv: run() falls back to UNSD_ADMIN_TOKEN when the
// flag is absent, so the token need not appear in process listings.
func TestAdminTokenFromEnv(t *testing.T) {
	t.Setenv("UNSD_ADMIN_TOKEN", "from-the-env")
	ctx, cancel := testContext(t)
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0",
			"-shards", "1", "-c", "5", "-k", "6", "-s", "3", "-seed", "17",
		}, &sb)
	}()
	url := "http://" + waitForListener(t, &sb, "http listening on ")
	if resp := doJSON(t, http.MethodPost, url+"/resize", "", `{"shards":2}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless resize with env token set: status %d, want 401", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, url+"/resize", "from-the-env", `{"shards":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("env-token resize: status %d, want 200", resp.StatusCode)
	}
	cancel()
	<-done
}

// writeKeyFile writes a snapshot key file with the given bytes and mode.
func writeKeyFile(t *testing.T, dir, name string, data []byte, mode os.FileMode) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, mode); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEncryptedSnapshotRoundTrip is the at-rest acceptance e2e: a daemon
// with -snapshot-key-file writes only sealed blobs, a restart with the
// same key restores bit-identical estimates, the wrong key and a missing
// key both refuse loudly, and a plaintext-era blob still restores.
func TestEncryptedSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := writeKeyFile(t, dir, "snap.key",
		[]byte("f00dbabe"+strings.Repeat("ab", 28)), 0o600) // 64 hex chars
	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	o.snapshotKeyFile = key

	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	const hot = uint64(424242)
	ids := make([]uint64, 1024)
	for i := range ids {
		if i%2 == 0 {
			ids[i] = hot
		} else {
			ids[i] = uint64(i + 1)
		}
	}
	if err := d1.pool.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	estBefore := d1.pool.Estimate(hot)
	if estBefore == 0 {
		t.Fatal("hot id estimate is zero before the restart")
	}
	d1.Close() // writes the final (sealed) snapshot

	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !shard.SnapshotSealed(blob) {
		t.Fatal("snapshot on disk is not sealed despite -snapshot-key-file")
	}
	if bytes.Contains(blob, []byte("UNSS")) {
		t.Fatal("sealed blob contains the plaintext snapshot magic")
	}

	// Same key: bit-identical restore.
	d2, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.restored {
		t.Fatal("daemon did not restore from the sealed snapshot")
	}
	if got := d2.pool.Estimate(hot); got != estBefore {
		t.Fatalf("hot id estimate %d after sealed restart, want %d", got, estBefore)
	}
	d2.Close()

	// Wrong key: loud refusal at boot.
	wrong := o
	wrong.snapshotKeyFile = writeKeyFile(t, dir, "wrong.key", []byte(strings.Repeat("cd", 32)), 0o600)
	if _, err := newDaemon(wrong); err == nil || !strings.Contains(err.Error(), "authentication") {
		t.Fatalf("wrong key restore = %v, want authentication failure", err)
	}
	// No key at all: the daemon must name the missing flag.
	bare := o
	bare.snapshotKeyFile = ""
	if _, err := newDaemon(bare); err == nil || !strings.Contains(err.Error(), "-snapshot-key-file") {
		t.Fatalf("keyless restore of a sealed snapshot = %v", err)
	}
}

// TestPlaintextSnapshotStillRestoresUnderKey: enabling encryption on an
// existing deployment must not strand the pre-encryption blob — it
// restores with a warning, and the next write seals.
func TestPlaintextSnapshotStillRestoresUnderKey(t *testing.T) {
	dir := t.TempDir()
	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")

	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.PushBatch([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	d1.Close() // plaintext snapshot

	var warn safeBuilder
	o2 := o
	o2.snapshotKeyFile = writeKeyFile(t, dir, "snap.key", []byte(strings.Repeat("ef", 32)), 0o600)
	o2.warnw = &warn
	d2, err := newDaemon(o2)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.restored {
		t.Fatal("plaintext-era snapshot did not restore under a configured key")
	}
	if !strings.Contains(warn.String(), "plaintext") {
		t.Fatalf("no plaintext-restore warning, got: %q", warn.String())
	}
	if _, err := d2.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	d2.Close()
	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !shard.SnapshotSealed(blob) {
		t.Fatal("snapshot written after key configuration is not sealed")
	}
}

// TestSnapshotKeyFileValidation: short, long, non-hex and over-permissive
// key files all refuse at boot; raw 32-byte keys are accepted.
func TestSnapshotKeyFileValidation(t *testing.T) {
	dir := t.TempDir()
	raw32 := make([]byte, 32)
	for i := range raw32 {
		raw32[i] = byte(i)
	}
	if key, err := readSnapshotKey(writeKeyFile(t, dir, "raw", raw32, 0o600)); err != nil || len(key) != 32 {
		t.Fatalf("raw 32-byte key rejected: %v", err)
	}
	if key, err := readSnapshotKey(writeKeyFile(t, dir, "hex", []byte(strings.Repeat("0a", 32)+"\n"), 0o600)); err != nil || len(key) != 32 {
		t.Fatalf("hex key with trailing newline rejected: %v", err)
	}
	for name, data := range map[string][]byte{
		"short":  make([]byte, 16),
		"long":   make([]byte, 48),
		"nonhex": []byte(strings.Repeat("zz", 32)),
	} {
		if _, err := readSnapshotKey(writeKeyFile(t, dir, name, data, 0o600)); err == nil {
			t.Fatalf("%s key accepted", name)
		}
	}
	if _, err := readSnapshotKey(writeKeyFile(t, dir, "lax", raw32, 0o644)); err == nil || !strings.Contains(err.Error(), "0644") {
		t.Fatalf("group/world-readable key file accepted: %v", err)
	}
	// A key file without a snapshot path is a misconfiguration.
	o := defaultOptions()
	o.snapshotKeyFile = writeKeyFile(t, dir, "ok", raw32, 0o600)
	if _, err := newDaemon(o); err == nil {
		t.Fatal("-snapshot-key-file without -snapshot-path should fail")
	}
}

// TestSnapshotRestorePermissions pins the restore-time permission check on
// the blob itself: an operator-copied, group/world-readable snapshot warns
// by default (the state is still the best recovery option) and refuses
// under -strict-snapshot-perms.
func TestSnapshotRestorePermissions(t *testing.T) {
	dir := t.TempDir()
	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.PushBatch([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d1.Close()
	if err := os.Chmod(o.snapshotPath, 0o644); err != nil {
		t.Fatal(err)
	}

	// Default: warn and continue.
	var warn safeBuilder
	lax := o
	lax.warnw = &warn
	d2, err := newDaemon(lax)
	if err != nil {
		t.Fatalf("lax mode refused a readable snapshot: %v", err)
	}
	if !d2.restored {
		t.Fatal("lax mode did not restore")
	}
	d2.Close()
	if !strings.Contains(warn.String(), "group/world-accessible") {
		t.Fatalf("no permission warning, got: %q", warn.String())
	}
	// Closing d2 rewrote the snapshot 0600 (durableWrite); re-create the
	// operator-copy situation for the strict case.
	if err := os.Chmod(o.snapshotPath, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict: refuse, naming the mode and the flag.
	strict := o
	strict.strictSnapshotPerms = true
	if _, err := newDaemon(strict); err == nil || !strings.Contains(err.Error(), "0644") {
		t.Fatalf("strict mode = %v, want a refusal naming mode 0644", err)
	}

	// A private blob sails through strict mode.
	if err := os.Chmod(o.snapshotPath, 0o600); err != nil {
		t.Fatal(err)
	}
	d3, err := newDaemon(strict)
	if err != nil {
		t.Fatalf("strict mode refused a 0600 snapshot: %v", err)
	}
	if !d3.restored {
		t.Fatal("strict mode did not restore a private snapshot")
	}
	d3.Close()
}

// TestSampleInputClasses audits GET /sample?n= byte by byte: every present
// but invalid n — non-numeric, zero, negative, explicitly empty,
// whitespace-padded, float-shaped, over the cap, or beyond int range —
// answers 400 with a JSON error object, and valid forms still work.
func TestSampleInputClasses(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if resp := postPush(t, ts.URL, ids); resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}

	bad := []string{
		"n=",                     // explicitly empty value
		"n=0",                    // below range
		"n=-3",                   // negative
		"n=abc",                  // non-numeric
		"n=1e3",                  // float notation is not a decimal count
		"n=%205",                 // leading whitespace
		"n=5x",                   // trailing garbage
		"n=0x10",                 // hex is not a decimal count
		"n=65537",                // maxSampleN + 1
		"n=99999999999999999999", // overflows int64 (Atoi ErrRange)
		"n=abc&n=5",              // first value wins and is garbage
		"n=+5",                   // '+' is a query-encoded space: " 5"
	}
	for _, q := range bad {
		resp, err := http.Get(ts.URL + "/sample?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			resp.Body.Close()
			t.Fatalf("/sample?%s status %d, want 400", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			resp.Body.Close()
			t.Fatalf("/sample?%s content-type %q", q, ct)
		}
		errBody(t, resp)
		resp.Body.Close()
	}

	var sampled struct {
		Samples []string `json:"samples"`
	}
	for q, want := range map[string]int{"": 1, "n=1": 1, "n=64": 64} {
		url := ts.URL + "/sample"
		if q != "" {
			url += "?" + q
		}
		if code := getJSON(t, url, &sampled); code != http.StatusOK || len(sampled.Samples) != want {
			t.Fatalf("/sample?%s = code %d, %d samples, want 200 with %d", q, code, len(sampled.Samples), want)
		}
	}
}
