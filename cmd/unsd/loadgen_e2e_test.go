package main

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesampling/internal/loadgen"
)

// TestScrapeUnderFlood is the observability acceptance e2e: the unsload
// generator drives the full standard scenario (uniform, targeted flood,
// churn, slow trickle, recovery) over the framed protocol while /metrics is
// scraped concurrently from multiple goroutines. Every scrape must be a
// valid exposition, the counters must reconcile with what was pushed, and
// the uniformity gauge must visibly degrade during the flood and recover
// afterwards. Run under -race this is also the telemetry plane's
// concurrency audit: scrapes race live ingest by construction.
func TestScrapeUnderFlood(t *testing.T) {
	o := defaultOptions()
	o.uniformityWindow = 512
	d, ln := testStreamDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Background scrapers: valid expositions under fire, continuously.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var scrapes, scrapeFailures atomic.Uint64
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if _, err := loadgen.ScrapeMetrics(ctx, nil, ts.URL+"/metrics", ""); err != nil {
					if ctx.Err() == nil {
						scrapeFailures.Add(1)
					}
				} else {
					scrapes.Add(1)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Each phase pushes enough to cycle the decimated input window
	// (window x every = 512 x 8 = 4096) twice over.
	const perPhase = 8192
	phases, err := loadgen.StandardPhases(256, perPhase, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New(loadgen.Config{
		Addr:           ln.Addr().String(),
		MetricsURL:     ts.URL + "/metrics",
		Batch:          1024,
		ScrapeInterval: 2 * time.Millisecond,
		LatencySample:  4, // 8 batches per phase -> 2 sampled round trips each
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Stream pushes are fire-and-forget, so a phase's wire completion races
	// the server's frame draining: run the phases one at a time and let each
	// settle into the gauge before asserting. settledKL waits until the
	// daemon has accounted for every id pushed so far, then returns the
	// input divergence of the now-quiescent window.
	pushed := 0
	settledKL := func(name string) float64 {
		t.Helper()
		var kl float64
		waitFor(t, name+" ids to be accounted and the gauge to report", func() bool {
			s, err := g.Scrape(context.Background())
			if err != nil {
				return false
			}
			proc, _ := s.Value("unsd_pool_processed_ids_total")
			drop, _ := s.Value("unsd_pool_dropped_ids_total")
			if proc+drop < float64(pushed) {
				return false
			}
			v, ok := s.Value("unsd_uniformity_input_kl")
			kl = v
			return ok
		})
		return kl
	}
	sampleRPCs := 0
	runPhase := func(ph loadgen.Phase) loadgen.Report {
		t.Helper()
		reports, err := g.Run(context.Background(), []loadgen.Phase{ph})
		if err != nil {
			t.Fatalf("phase %s: %v", ph.Name, err)
		}
		rep := reports[0]
		if rep.Offered != perPhase {
			t.Fatalf("phase %s offered %d, want %d", rep.Name, rep.Offered, perPhase)
		}
		if rep.Scrapes < 2 {
			t.Fatalf("phase %s completed %d scrapes", rep.Name, rep.Scrapes)
		}
		if rep.PushAck.Count < 1 || rep.SampleRPC.Count < 1 {
			t.Fatalf("phase %s measured no client-observed latency: %+v / %+v",
				rep.Name, rep.PushAck, rep.SampleRPC)
		}
		sampleRPCs += rep.SampleRPC.Count
		pushed += rep.Offered
		return rep
	}

	// The thresholds match the uniformity-gauge unit tests: multinomial
	// noise over a 512-id window of 256 ids stays well under 0.4, while the
	// flood's 80% point mass adds far more than 0.5.
	runPhase(phases[0]) // uniform baseline
	baseline := settledKL(loadgen.PhaseUniform)
	if baseline > 0.4 {
		t.Fatalf("uniform baseline input KL %.3f, want < 0.4", baseline)
	}
	runPhase(phases[1]) // targeted flood
	flooded := settledKL(loadgen.PhaseFlood)
	if flooded < baseline+0.5 {
		t.Fatalf("flood did not degrade the live gauge: baseline %.3f, flooded %.3f", baseline, flooded)
	}
	runPhase(phases[2]) // churn storm (coverage: ever-fresh ids)
	runPhase(phases[3]) // slow-trickle bias
	runPhase(phases[4]) // uniform recovery
	recovered := settledKL(loadgen.PhaseRecovery)
	if recovered > 0.4 {
		t.Fatalf("gauge did not recover: flooded %.3f, recovered %.3f", flooded, recovered)
	}

	// Cross-check the client-observed latency against the server's own
	// histograms: every sampled Sample RPC was timed by the daemon too, and
	// every wire batch crossed the ingest funnel.
	final, err := g.Scrape(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h := final.Histogram("unsd_sample_duration_seconds"); h == nil || h.Count < float64(sampleRPCs) {
		t.Fatalf("server sample histogram does not cover the %d client-sampled RPCs: %+v", sampleRPCs, h)
	}
	if h := final.Histogram("unsd_ingest_batch_duration_seconds"); h == nil || h.Count < float64(pushed/1024) {
		t.Fatalf("server ingest histogram missed wire batches: %+v", h)
	}

	cancel()
	wg.Wait()
	if n := scrapeFailures.Load(); n > 0 {
		t.Fatalf("%d concurrent scrapes failed during the flood", n)
	}
	if scrapes.Load() == 0 {
		t.Fatal("background scrapers never completed a scrape")
	}
}
