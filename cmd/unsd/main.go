// Command unsd is the uniform node sampling daemon: the deployable,
// high-throughput form of the paper's sampling service. It absorbs node
// identifiers from three directions — netgossip batches on a TCP listener
// (the overlay's σ streams), POST /push over HTTP, and PushBatch frames on
// the stream listener — into a sharded sampling pool, and serves uniform
// samples, the pooled memory Γ, the continuous output stream σ′ and
// operational statistics.
//
// Usage:
//
//	unsd -http 127.0.0.1:8080 -stream 127.0.0.1:7947 -gossip 127.0.0.1:7946 -shards 8 -c 25
//
// HTTP endpoints:
//
//	POST /push      {"ids":[1,2,3]}    feed identifiers
//	GET  /sample?n=K                   K uniform samples (default 1; any
//	                                   present but invalid n answers 400)
//	GET  /memory                       the pooled sampling memory Γ
//	GET  /stats                        drops, per-shard depth, throughput,
//	                                   shard map epoch, per-subscriber
//	                                   delivery accounting
//	POST /resize    {"shards":N}       live re-partition to N shards: a
//	                                   flush barrier quiesces the pool, Γ
//	                                   and sketch state follow the moved
//	                                   ids; answers 409 + Retry-After while
//	                                   another resize or a snapshot is in
//	                                   flight
//	POST /snapshot                     write a durable snapshot to
//	                                   -snapshot-path now (409 while busy)
//	POST /autoscale {"enabled":b,...}  enable/disable/tune the autoscaler:
//	                                   min, max, grow_threshold,
//	                                   shrink_threshold, cooldown_ms —
//	                                   partial updates, {} reports state
//	POST /migrate   {"from_slot":a,    hand a slot range this member owns —
//	                 "to_slot":b,      its Γ ids and merged frequency state
//	                 "target":addr}    — to another cluster member, live;
//	                                   400 on a standalone daemon, 409
//	                                   while busy or when the range is not
//	                                   wholly owned here; behind the admin
//	                                   token like the other mutators
//	GET  /metrics                      Prometheus text exposition (v0.0.4):
//	                                   every pool/shard/subscriber/autoscale/
//	                                   stream/snapshot counter, the live
//	                                   uniformity gauge, and the latency
//	                                   histograms (snapshot write, resize,
//	                                   Sample, per-batch ingest, σ′
//	                                   emit→delivery lag); read-open unless
//	                                   -admin-token-all
//	GET  /trace                        the sampled ingest→σ′ span ring as
//	                                   Chrome trace-event JSON (load it in
//	                                   chrome://tracing or ui.perfetto.dev);
//	                                   behind the admin token when one is set
//
// Observability plane:
//
//	-log-level/-log-format  leveled structured logs (log/slog): connection
//	                     lifecycle, resize and autoscale decisions, snapshot
//	                     outcomes and auth failures carry structured fields;
//	                     -log-format json emits one JSON object per line.
//	                     The machine-parsed "<plane> listening on <addr>"
//	                     startup lines stay plain and stable.
//	-uniformity-window   sliding-window size of the live uniformity gauge:
//	                     /metrics exports the KL divergence to uniform of
//	                     the ingest window (unsd_uniformity_input_kl — rises
//	                     under a targeted flood), of a σ′ output window
//	                     (unsd_uniformity_output_kl — the live SLO), and the
//	                     paper's G_KL gain between them. 0 disables.
//	-pprof               mount net/http/pprof under /debug/pprof/ behind
//	                     the admin token (refuses to boot without one)
//	-trace-sample        record one in N ingest batches as a span tree —
//	                     ingest (wire batch) → shard (worker) → emit (σ′
//	                     queue wait) → delivery (hub fan-out) — in a bounded
//	                     in-memory ring served by GET /trace. Unsampled
//	                     batches cost one atomic add; 0 disables tracing.
//
// Latency histograms: /metrics exports fixed-bucket histogram families
// (unsd_*_duration_seconds / unsd_emit_delivery_lag_seconds) for snapshot
// writes, resize hand-offs, Sample calls on both the HTTP and stream
// surfaces, per-wire-batch ingest, and the lag between a shard worker
// emitting σ′ draws and the hub fanning them out. dashboards/unsd.json is
// a committed Grafana dashboard over exactly these families.
//
// cmd/unsload is the companion load generator: it replays adversarial
// scenarios (uniform baseline, targeted flood, churn storm, slow-trickle
// bias) against a live daemon over the framed protocol while scraping
// /metrics, and reports achieved rate, drop fractions and the uniformity
// gauge's trajectory per phase.
//
// Security plane (all opt-in; without these flags the daemon trusts its
// network, which is only appropriate on loopback or inside a private
// enclave):
//
//	-tls-cert/-tls-key   serve TLS on the HTTP, framed stream and legacy
//	                     gossip listeners
//	-tls-client-ca       require and verify client certificates on the
//	                     framed stream and gossip listeners (mutual TLS): a
//	                     peer that cannot present a certificate chained to
//	                     this CA never reaches the frame decoder
//	-admin-token         bearer token on the mutating admin endpoints
//	                     (/resize, /snapshot, /autoscale); falls back to
//	                     $UNSD_ADMIN_TOKEN so the secret stays out of
//	                     process listings. Requests without a credential
//	                     get 401 plus a WWW-Authenticate challenge;
//	                     requests with a wrong or malformed one get 403 —
//	                     disjoint from the handlers' own 400 (bad input)
//	                     and 409 (busy) vocabulary. Comparison is
//	                     constant-time. /sample, /memory, /stats and
//	                     /push stay open unless -admin-token-all gates
//	                     every endpoint.
//	-snapshot-key-file   a 32-byte AES-256 key (raw or 64 hex chars, file
//	                     mode 0600 enforced): snapshots are sealed with
//	                     AES-256-GCM in a versioned "UNSE" envelope, so a
//	                     blob at rest reveals neither the secret partition
//	                     salt nor the sampling state and cannot be
//	                     tampered with undetected. A wrong key refuses at
//	                     boot; plaintext (pre-encryption) blobs still
//	                     restore, and the next write seals them.
//	-snapshot-key-file-old  the previous key during a rotation: a blob that
//	                     fails under the new key is retried under this one
//	                     (with a warning), and the next snapshot write
//	                     re-seals it under the new key — rotation without a
//	                     plaintext intermediate. Retire the flag once the
//	                     blob has been rewritten.
//	-strict-snapshot-perms  refuse to restore a group/world-accessible
//	                     snapshot blob (default: warn and continue)
//
// With -autoscale the daemon runs a load-driven control loop
// (internal/autoscale) over the elastic shard plane: each
// -autoscale-interval it condenses the pool's load signals — queue
// occupancy, ingest drop rate, σ′ emit drops — into a smoothed pressure
// figure and grows or shrinks the shard set between -min-shards and
// -max-shards, with hysteresis and a post-resize cooldown so a one-batch
// spike cannot thrash the plane. An adversary flooding the input stream is
// met with more parallel capacity instead of silent sample loss, and the
// plane contracts again once the flood subsides. /stats reports the
// controller's state (pressure EWMA, last decision and reason, cooldown,
// resize count) under "autoscale".
//
// The -stream listener speaks the framed bidirectional protocol of
// internal/netgossip (and the public client package): a single persistent
// TCP connection pushes id batches up and receives σ′ stream frames,
// sample responses and pong keepalives down — the paper's stream-in/
// stream-out service shape, without per-sample HTTP round trips.
// Subscribe frames may carry a decimation interval (sample-every-k) and a
// per-second rate cap (token bucket, one-second burst), so modest
// consumers ride the hub at a rate they can afford; an extended-form
// subscribe (rate cap or resume token — legacy forms are never acked,
// since their clients predate the ack frame) is acknowledged with a
// resume token a reconnecting decimated subscriber presents to continue
// its 1-in-k phase where the dropped connection left off.
//
// Cluster plane (all members must share -seed and sampler flags):
//
//	-cluster             run as one member of a daemon fleet sharing the
//	                     sampling plane: ingest arriving at any member is
//	                     partitioned by the same salted rendezvous
//	                     placement the pool uses for its shards and
//	                     forwarded in batches to the owning members over
//	                     persistent framed connections, and Sample/SampleN
//	                     fan out to the fleet, merging the members' draws
//	                     weighted by their actual |Γ| — uniform over the
//	                     union no matter which member answers. Requires
//	                     -stream, -members and an explicit shared -seed.
//	-members             comma-separated stream addresses of every member,
//	                     this daemon's own -stream address included; every
//	                     member must be started with the identical set
//	-cluster-ca          CA bundle verifying other members' stream
//	                     listeners; with -tls-cert/-tls-key the daemon's
//	                     serving certificate doubles as its client
//	                     certificate (mutual TLS between members)
//
// POST /migrate moves a slot range between members while the fleet runs
// (flush barrier, one versioned state blob, epoch-bumped ownership flip
// broadcast to every member — the moved ids' learned frequency estimates
// survive), /stats gains a "cluster" block (epoch, per-member connectivity
// and forwarding accounting), and /metrics gains the unsd_cluster_*
// families.
//
// Durability: with -snapshot-path set the daemon restores the pool from
// the snapshot at boot (the snapshot governs shard count, memory capacity
// and sketch shape; mismatched -k/-s flags fail loudly), writes it
// periodically when -snapshot-interval is positive, and writes a final
// snapshot on graceful shutdown. The blob is the versioned format of
// internal/shard (magic "UNSS"): shard map + salt, per-shard Count-Min
// sketches and sampling memories Γ, decay epoch and counters — everything
// needed so a restarted daemon does not forget attacker frequencies. It
// embeds the secret partition salt; protect the file like key material —
// or better, set -snapshot-key-file and let the daemon seal it at rest.
//
// Identifiers are 64-bit; HTTP responses encode them as decimal strings
// and /push accepts numbers or strings, because JSON doubles corrupt
// integers above 2^53.
package main

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"log/slog"

	"nodesampling/internal/autoscale"
	"nodesampling/internal/cluster"
	"nodesampling/internal/core"
	"nodesampling/internal/netgossip"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
	"nodesampling/internal/spans"
	"nodesampling/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unsd:", err)
		os.Exit(1)
	}
}

// options collects the daemon's configuration.
type options struct {
	shards, c, k, s  int
	strategy         string // sampler strategy registry name ("" = default)
	buffer           int
	block            bool
	seed             uint64
	self             uint64
	snapshotPath     string
	snapshotInterval time.Duration

	// The security plane, all opt-in: TLS on the stream and HTTP listeners
	// (tlsClientCA additionally demands client certificates on the framed
	// protocol), bearer-token auth on the admin endpoints (adminTokenAll
	// extends it to the read surface), at-rest snapshot encryption, and the
	// strict mode of the restore-time snapshot permission check.
	tlsCert, tlsKey     string
	tlsClientCA         string
	adminToken          string
	adminTokenAll       bool
	snapshotKeyFile     string
	snapshotKeyFileOld  string
	strictSnapshotPerms bool

	// The observability plane: pprof mounts net/http/pprof behind the admin
	// token; logLevel/logFormat configure the structured logger ("" takes
	// the defaults: info, text); uniformityWindow sizes the live uniformity
	// gauge's sliding windows (0 disables the gauge's divergence samples,
	// the metadata families stay).
	pprof            bool
	logLevel         string
	logFormat        string
	uniformityWindow int

	// traceSample records one in N ingest batches as a full span tree
	// (ingest → shard → emit → delivery) in the in-memory ring behind
	// GET /trace; 0 disables tracing entirely (the zero value, so tests
	// constructing options directly trace nothing unless they ask).
	traceSample int

	// The cluster plane (all empty/zero when the daemon runs standalone):
	// clusterMembers is every member's stream address including our own
	// (clusterSelf, the -stream address); clusterCA verifies other members'
	// stream listeners when they serve TLS.
	clusterMembers []string
	clusterSelf    string
	clusterCA      string

	// warnw receives boot-time warnings (nil discards them); run() passes
	// its output writer.
	warnw io.Writer

	// The autoscaling plane: the controller is always constructed (so POST
	// /autoscale can arm it at runtime and /stats always shows live
	// pressure) and starts enabled only with -autoscale.
	autoscale         bool
	minShards         int           // 0 defaults to 1
	maxShards         int           // 0 defaults to 64
	autoscaleInterval time.Duration // 0 defaults to 1s
}

// daemon ties the sharded pool to its gossip and stream front-ends. The
// HTTP layer is a plain handler over it, so tests can drive a live listener
// via httptest.
type daemon struct {
	pool   *shard.Pool
	peer   *netgossip.Peer
	stream *streamServer // nil until listenStream
	ctrl   *autoscale.Controller
	start  time.Time

	// The cluster plane (nil/zero standalone): the fleet view of
	// internal/cluster, the merge randomness of the cluster-wide sample
	// fan-out, and the fan-out counters only the daemon layer sees.
	cluster              *cluster.Cluster
	srng                 *sampleRNG
	clusterFanouts       atomic.Uint64
	clusterFanoutMissing atomic.Uint64
	// migrateHook, when set (tests only), runs inside a migration's
	// transfer window — after the slot range is exported and the epoch
	// proposed, before the blob travels — where ingest continues and a
	// concurrent migration elsewhere can win the epoch race.
	migrateHook func()

	// The security plane (all zero when the daemon runs open, the
	// backwards-compatible default): tlsHTTP serves the HTTP listener,
	// tlsStream the framed listener (same certificate, plus mutual-TLS
	// client verification when -tls-client-ca is set); the admin bearer
	// token gates the mutating admin endpoints (every endpoint under
	// adminTokenAll) — only its SHA-256 digest is retained, computed once
	// at construction, so the plaintext secret never sits in a long-lived
	// struct; snapKey seals snapshots at rest.
	tlsHTTP        *tls.Config
	tlsStream      *tls.Config
	adminTokenHash [sha256.Size]byte
	adminTokenSet  bool
	adminTokenAll  bool
	snapKey        []byte
	snapKeyOld     []byte

	// The observability plane: the structured logger (never nil — a daemon
	// constructed without one logs to io.Discard), the metric registry
	// behind GET /metrics, the live uniformity gauge whose input probe
	// rides every ingest front, and the counters only the daemon layer
	// sees. pprofEnabled mounts net/http/pprof behind the admin token.
	logger       *slog.Logger
	registry     *telemetry.Registry
	uniformity   *telemetry.Uniformity
	latency      *telemetry.Latency
	tracer       *spans.Tracer
	pprofEnabled bool
	authFailures atomic.Uint64
	snapWrites   atomic.Uint64
	snapFailures atomic.Uint64
	snapDurNanos atomic.Int64

	// opMu is the admin-plane gate: it serialises the mutating operations —
	// resizes (manual and autoscaler-issued) and snapshot writes — so they
	// queue behind each other in a known order instead of piling up on the
	// pool's internal locks. The HTTP handlers TryLock it and answer 409
	// when it is busy (a clean retry signal); the snapshot ticker and the
	// autoscaler wait their turn.
	opMu sync.Mutex

	// The durability plane: writeSnapshot serialises the pool to
	// snapshotPath (atomically: temp file + fsync + rename + directory
	// fsync), on demand (POST /snapshot), periodically (startSnapshotLoop)
	// and finally at Close.
	snapshotPath string
	restored     bool
	snapBytes    atomic.Int64
	snapUnix     atomic.Int64
	snapStop     chan struct{}
	snapDone     chan struct{}

	// needReseal marks a restore that left the on-disk blob behind the
	// configured key: sealed under the previous key (-snapshot-key-file-old)
	// or plaintext from before encryption. startReseal then rewrites it
	// automatically, so rotation completes without waiting for the next
	// scheduled or manual snapshot.
	needReseal bool
	resealStop chan struct{}
	resealDone chan struct{}
}

// scaleTarget adapts the daemon for the autoscale controller: signals come
// straight from the pool, resizes go through the daemon's admin gate so
// the controller, manual POST /resize and the snapshot ticker never
// surprise each other.
type scaleTarget struct{ d *daemon }

func (t scaleTarget) LoadSignals() shard.LoadSignals { return t.d.pool.LoadSignals() }

func (t scaleTarget) Resize(n int) error {
	t.d.opMu.Lock()
	defer t.d.opMu.Unlock()
	from := t.d.pool.NumShards()
	began := time.Now()
	err := t.d.pool.Resize(n)
	if err != nil {
		t.d.logger.Error("autoscale resize failed", "from", from, "to", n, "error", err)
		return err
	}
	t.d.latency.Resize.ObserveSince(began)
	epoch, shards := t.d.pool.Topology()
	t.d.logger.Info("autoscale resize", "from", from, "to", shards, "epoch", epoch)
	return nil
}

func newDaemon(o options) (*daemon, error) {
	warnw := o.warnw
	if warnw == nil {
		warnw = io.Discard
	}
	logger, err := newLogger(o.warnw, o.logLevel, o.logFormat)
	if err != nil {
		return nil, err
	}
	// len() comparisons only on the token, never ==/!= — CI greps for raw
	// equality on it, since that is how a timing side channel sneaks in.
	if o.adminTokenAll && len(o.adminToken) == 0 {
		return nil, errors.New("-admin-token-all requires -admin-token (or UNSD_ADMIN_TOKEN)")
	}
	if o.pprof && len(o.adminToken) == 0 {
		return nil, errors.New("-pprof requires -admin-token (or UNSD_ADMIN_TOKEN): profiles expose memory contents")
	}
	tlsHTTP, tlsStream, err := loadTLSConfigs(o)
	if err != nil {
		return nil, err
	}
	var snapKey, snapKeyOld []byte
	if o.snapshotKeyFile != "" {
		if o.snapshotPath == "" {
			return nil, errors.New("-snapshot-key-file requires -snapshot-path")
		}
		if snapKey, err = readSnapshotKey(o.snapshotKeyFile); err != nil {
			return nil, err
		}
	}
	if o.snapshotKeyFileOld != "" {
		if snapKey == nil {
			return nil, errors.New("-snapshot-key-file-old requires -snapshot-key-file (the new key to re-seal under)")
		}
		if snapKeyOld, err = readSnapshotKey(o.snapshotKeyFileOld); err != nil {
			return nil, err
		}
	}
	if o.uniformityWindow < 0 {
		return nil, fmt.Errorf("negative -uniformity-window %d", o.uniformityWindow)
	}
	if o.traceSample < 0 {
		return nil, fmt.Errorf("negative -trace-sample %d", o.traceSample)
	}
	uniformity := telemetry.NewUniformity(o.uniformityWindow, uniformityInputEvery)
	latency := telemetry.NewLatency()
	// The sampler strategy resolves against the core registry, so every
	// place the daemon builds a sampler honours -strategy; an unknown name
	// fails here with the registered names listed.
	factory, err := core.NewFactory(o.strategy, core.StrategyParams{K: o.k, S: o.s})
	if err != nil {
		return nil, err
	}
	scfg := shard.Config{
		Shards:    o.shards,
		Buffer:    o.buffer,
		Block:     o.block,
		Seed:      o.seed,
		Capacity:  o.c,
		Sampler:   factory,
		OnEmitLag: latency.EmitLag.Observe,
	}
	var pool *shard.Pool
	restored, needReseal := false, false
	if o.snapshotPath != "" {
		blob, err := os.ReadFile(o.snapshotPath)
		switch {
		case err == nil:
			// The snapshot governs shard count, memory capacity and sketch
			// shape; the -k/-s flags are validated against it and -shards/-c
			// are superseded (resize later via POST /resize).
			if err := checkSnapshotPerms(o.snapshotPath, o.strictSnapshotPerms, warnw); err != nil {
				return nil, err
			}
			if blob, needReseal, err = unsealSnapshot(blob, snapKey, snapKeyOld, warnw); err != nil {
				return nil, fmt.Errorf("restore %s: %w", o.snapshotPath, err)
			}
			if pool, err = shard.Restore(scfg, blob); err != nil {
				return nil, fmt.Errorf("restore %s: %w", o.snapshotPath, err)
			}
			restored = true
		case errors.Is(err, fs.ErrNotExist):
			// First boot: start fresh, snapshots will appear at this path.
		default:
			return nil, err
		}
	}
	if pool == nil {
		var err error
		if pool, err = shard.New(scfg); err != nil {
			return nil, err
		}
	}
	d := &daemon{
		pool:          pool,
		start:         time.Now(),
		snapshotPath:  o.snapshotPath,
		restored:      restored,
		needReseal:    needReseal,
		tlsHTTP:       tlsHTTP,
		tlsStream:     tlsStream,
		adminTokenAll: o.adminTokenAll,
		snapKey:       snapKey,
		snapKeyOld:    snapKeyOld,
		logger:        logger,
		uniformity:    uniformity,
		latency:       latency,
		tracer:        spans.New(o.traceSample, traceRingSize),
		pprofEnabled:  o.pprof,
	}
	peer, err := netgossip.NewPeer(netgossip.Config{
		Self:   o.self,
		Sink:   ingestTap{Pool: pool, d: d},
		Fanout: 1,
		Seed:   o.seed + 1,
		// The exact per-id histogram is unbounded state an attacker could
		// grow with distinct Sybil ids; the daemon exposes bounded shard
		// stats instead.
		DisableInputStats: true,
	})
	if err != nil {
		_ = pool.Close()
		return nil, err
	}
	d.peer = peer
	if len(o.clusterMembers) > 0 {
		var clTLS *tls.Config
		if o.clusterCA != "" {
			if clTLS, err = loadClusterTLS(o.clusterCA, o.tlsCert, o.tlsKey); err != nil {
				_ = peer.Close()
				_ = pool.Close()
				return nil, err
			}
		}
		cl, err := cluster.New(cluster.Config{
			Members: o.clusterMembers,
			Self:    o.clusterSelf,
			Seed:    o.seed,
			TLS:     clTLS,
			Logger:  logger,
			// Undeliverable forwards ingest locally under the "forward"
			// surface, which never re-forwards: misplaced, not lost.
			Fallback: func(ids []uint64) { _ = d.ingest(ids, "forward") },
		})
		if err != nil {
			_ = peer.Close()
			_ = pool.Close()
			return nil, err
		}
		d.cluster = cl
		d.srng = newSampleRNG(o.seed)
		cl.Start()
	}
	if len(o.adminToken) > 0 {
		d.adminTokenHash = sha256.Sum256([]byte(o.adminToken))
		d.adminTokenSet = true
	}
	minShards, maxShards := o.minShards, o.maxShards
	if minShards == 0 {
		minShards = 1
	}
	if maxShards == 0 {
		maxShards = 64
	}
	interval := o.autoscaleInterval
	if interval == 0 {
		interval = time.Second
	}
	ctrl, err := autoscale.New(scaleTarget{d}, autoscale.Config{
		Min:      minShards,
		Max:      maxShards,
		Interval: interval,
		Enabled:  o.autoscale,
	})
	if err != nil {
		_ = peer.Close()
		_ = pool.Close()
		return nil, err
	}
	d.ctrl = ctrl
	d.registry = d.newRegistry()
	ctrl.Start()
	if d.needReseal {
		d.startReseal()
	}
	return d, nil
}

// traceRingSize bounds the span ring behind GET /trace: old spans are
// overwritten, never accumulated, so tracing costs fixed memory no matter
// how long the daemon runs.
const traceRingSize = 4096

// resealRetryInterval paces re-seal retries after a failed automatic
// snapshot write (disk full, path gone); the first attempt is immediate.
const resealRetryInterval = time.Second

// startReseal rewrites the snapshot blob in the background until one write
// succeeds: the restore left the on-disk bytes behind the configured key
// (previous-key sealed, or plaintext from before encryption), and key
// rotation only completes when the old key stops opening the blob. An
// operator should not have to wait for the snapshot ticker — or remember a
// manual POST /snapshot — to retire the old key.
func (d *daemon) startReseal() {
	d.resealStop = make(chan struct{})
	d.resealDone = make(chan struct{})
	go func() {
		defer close(d.resealDone)
		ticker := time.NewTicker(resealRetryInterval)
		defer ticker.Stop()
		for {
			if _, err := d.writeSnapshot(); err == nil {
				d.logger.Info("snapshot re-sealed under the configured key", "path", d.snapshotPath)
				return
			}
			select {
			case <-ticker.C:
			case <-d.resealStop:
				return
			}
		}
	}()
}

// newLogger builds the daemon's structured logger from the -log-level and
// -log-format flags. Empty values take the defaults (info, text); unknown
// values refuse at boot. A nil writer logs to io.Discard, so a daemon
// constructed directly in tests stays quiet without nil checks at every
// call site.
func newLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	if w == nil {
		w = io.Discard
	}
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
	}
}

// loadTLSConfigs builds the listener-side TLS configurations from the
// -tls-* options. Both listeners serve the same certificate; the framed
// stream listener additionally demands and verifies a client certificate
// when -tls-client-ca is set — mutual TLS is the peer-authentication story
// of the framed protocol, while HTTP callers authenticate per request with
// the bearer token instead. Nil configs mean the daemon runs plaintext
// (the backwards-compatible default).
func loadTLSConfigs(o options) (httpConf, streamConf *tls.Config, err error) {
	if o.tlsCert == "" && o.tlsKey == "" && o.tlsClientCA == "" {
		return nil, nil, nil
	}
	if o.tlsCert == "" || o.tlsKey == "" {
		return nil, nil, errors.New("-tls-cert and -tls-key must be set together (-tls-client-ca requires both)")
	}
	cert, err := tls.LoadX509KeyPair(o.tlsCert, o.tlsKey)
	if err != nil {
		return nil, nil, fmt.Errorf("load TLS certificate: %w", err)
	}
	base := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	streamConf = base.Clone()
	if o.tlsClientCA != "" {
		pemBytes, err := os.ReadFile(o.tlsClientCA)
		if err != nil {
			return nil, nil, err
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return nil, nil, fmt.Errorf("no CA certificates in %s", o.tlsClientCA)
		}
		streamConf.ClientCAs = pool
		streamConf.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return base, streamConf, nil
}

// readSnapshotKey loads the AES-256 snapshot sealing key: either 32 raw
// bytes or 64 hex characters (surrounding whitespace ignored). The file
// must be private to its owner — a group- or world-accessible key would
// undo exactly the protection the sealed snapshot adds — so unlike the
// snapshot blob's permission check, this one always refuses.
func readSnapshotKey(path string) ([]byte, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if perm := fi.Mode().Perm(); perm&0o077 != 0 {
		return nil, fmt.Errorf("snapshot key file %s is mode %04o; it must be accessible only by its owner (chmod 600)", path, perm)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(raw)); len(trimmed) == 2*shard.SnapshotKeyLen {
		if key, err := hex.DecodeString(trimmed); err == nil {
			return key, nil
		}
	}
	if len(raw) == shard.SnapshotKeyLen {
		return raw, nil
	}
	return nil, fmt.Errorf("snapshot key file %s must hold %d raw bytes or %d hex characters", path, shard.SnapshotKeyLen, 2*shard.SnapshotKeyLen)
}

// checkSnapshotPerms guards the restore path against salt exposure through
// an operator copy: durableWrite creates blobs 0600, but a blob copied or
// restored from backup can arrive group- or world-readable, leaking the
// secret partition salt (and, unencrypted, the whole sampling state) to
// every local user. By default the daemon warns and continues — the blob
// is still the operator's best recovery state; under -strict-snapshot-perms
// it refuses to boot.
func checkSnapshotPerms(path string, strict bool, warnw io.Writer) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if perm := fi.Mode().Perm(); perm&0o077 != 0 {
		if strict {
			return fmt.Errorf("snapshot %s is mode %04o (group/world-accessible) and embeds the secret partition salt; chmod 600 it or drop -strict-snapshot-perms", path, perm)
		}
		fmt.Fprintf(warnw, "warning: snapshot %s is mode %04o (group/world-accessible); it embeds the secret partition salt — chmod 600 it (-strict-snapshot-perms turns this warning into a refusal)\n", path, perm)
	}
	return nil
}

// unsealSnapshot maps an on-disk blob to the plaintext the restore path
// needs: sealed blobs require the key (a wrong key fails authentication
// loudly at boot, never a silently corrupt restore), while plaintext blobs
// from before encryption was enabled still restore — with a warning when a
// key is configured, since the next write will seal.
//
// oldKey is the rotation path (-snapshot-key-file-old): a blob that fails
// under the new key is retried under the previous one, so operators rotate
// sealed-snapshot keys without ever writing a plaintext intermediate.
//
// needReseal reports that the on-disk bytes lag the configured key —
// previous-key sealed, or plaintext with a key set — and the daemon should
// rewrite the blob (startReseal) so the old key can be retired.
func unsealSnapshot(blob, key, oldKey []byte, warnw io.Writer) (plain []byte, needReseal bool, err error) {
	if shard.SnapshotSealed(blob) {
		if key == nil {
			return nil, false, errors.New("snapshot is encrypted; set -snapshot-key-file")
		}
		plain, err := shard.OpenSealedSnapshot(blob, key)
		if err != nil && oldKey != nil {
			if plain, err2 := shard.OpenSealedSnapshot(blob, oldKey); err2 == nil {
				fmt.Fprintln(warnw, "warning: snapshot restored under the previous key (-snapshot-key-file-old); the daemon re-seals it under the new key automatically")
				return plain, true, nil
			}
		}
		return plain, false, err
	}
	if key != nil {
		fmt.Fprintln(warnw, "warning: restoring a plaintext (pre-encryption) snapshot; the daemon re-seals it automatically")
		return blob, true, nil
	}
	return blob, false, nil
}

// writeSnapshot serialises the pool and installs it at snapshotPath,
// crash-durably: the blob is written to a temp file which is fsynced
// before the rename, and the directory is fsynced after it. Either alone
// is not enough — an unsynced file can rename into place and still be
// empty after power loss (the metadata outruns the data), and an unsynced
// rename can simply vanish, but a pre-rename blob that never got its
// rename is only a lost update, never a corrupt one. A failed write
// removes its orphaned temp file. Returns the blob size.
func (d *daemon) writeSnapshot() (int, error) {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.writeSnapshotLocked()
}

// writeSnapshotLocked is writeSnapshot for callers already holding opMu
// (the TryLock path of POST /snapshot). Every outcome is counted and
// logged here, so on-demand, periodic and shutdown writes report alike.
func (d *daemon) writeSnapshotLocked() (n int, err error) {
	began := time.Now()
	defer func() {
		if err != nil {
			d.snapFailures.Add(1)
			d.logger.Error("snapshot failed", "path", d.snapshotPath, "error", err)
			return
		}
		took := time.Since(began)
		d.snapWrites.Add(1)
		d.snapDurNanos.Store(int64(took))
		d.latency.SnapshotWrite.Observe(took.Seconds())
		d.logger.Info("snapshot written", "path", d.snapshotPath,
			"bytes", n, "sealed", d.snapKey != nil, "duration", took)
	}()
	if d.snapshotPath == "" {
		return 0, errors.New("no -snapshot-path configured")
	}
	blob, err := d.pool.Snapshot()
	if err != nil {
		return 0, err
	}
	if d.snapKey != nil {
		// Seal before anything touches the disk: with a key configured, no
		// plaintext snapshot byte (the salt above all) ever leaves memory.
		if blob, err = shard.SealSnapshot(blob, d.snapKey); err != nil {
			return 0, err
		}
	}
	tmp := d.snapshotPath + ".tmp"
	if err := durableWrite(tmp, blob); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, d.snapshotPath); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	syncDir(filepath.Dir(d.snapshotPath))
	d.snapBytes.Store(int64(len(blob)))
	d.snapUnix.Store(time.Now().Unix())
	return len(blob), nil
}

// durableWrite writes blob to path (0600 — it embeds the pool's secret
// partition salt) and fsyncs it before returning, so the bytes are on
// stable storage before the caller renames the file into place.
func durableWrite(path string, blob []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-completed rename inside it survives
// power loss. Best effort: some filesystems refuse to sync directories,
// and the write itself already succeeded.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = f.Sync()
	_ = f.Close()
}

// startSnapshotLoop writes a snapshot every interval until Close. Outcomes
// (success and failure alike) are logged by writeSnapshotLocked.
func (d *daemon) startSnapshotLoop(interval time.Duration) {
	d.snapStop = make(chan struct{})
	d.snapDone = make(chan struct{})
	go func() {
		defer close(d.snapDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = d.writeSnapshot()
			case <-d.snapStop:
				return
			}
		}
	}()
}

// Close shuts the autoscaler down first (no resize may race the
// teardown), then the network front-ends so no batch races the pool's
// shutdown, writes a final snapshot while the pool is still serving, then
// closes the pool (which closes the subscription hub and thereby every
// remaining stream subscription).
func (d *daemon) Close() {
	d.ctrl.Close()
	if d.resealStop != nil {
		close(d.resealStop)
		<-d.resealDone
		d.resealStop = nil
	}
	if d.snapStop != nil {
		close(d.snapStop)
		<-d.snapDone
		d.snapStop = nil
	}
	if d.stream != nil {
		d.stream.Close()
	}
	_ = d.peer.Close()
	if d.cluster != nil {
		// After the ingest fronts: queued forwards drain into local ingest,
		// so the final snapshot still captures them.
		d.cluster.Close()
	}
	if d.snapshotPath != "" {
		// Ingest fronts are gone, so the barrier is exact: ids already
		// acknowledged into shard queues reach the samplers before the
		// final snapshot captures them.
		_ = d.pool.Flush()
		_, _ = d.writeSnapshot()
	}
	_ = d.pool.Close()
}

// maxPushBody bounds a /push request body and maxPushIDs caps the ids one
// request may carry (the wire protocol's MaxBatch): a flood has to arrive
// as many requests, and no single HTTP push can monopolise shard workers
// longer than a gossip batch could.
const (
	maxPushBody = 1 << 20
	maxPushIDs  = netgossip.MaxBatch
)

// maxSampleN bounds how many samples one /sample request may ask for.
const maxSampleN = 65536

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	// The mutating admin endpoints are always behind the bearer token when
	// one is configured; the data and read surface joins them only under
	// -admin-token-all (an overlay usually needs /push and /sample open).
	readOpen := func(h http.HandlerFunc) http.HandlerFunc {
		if d.adminTokenAll {
			return d.requireToken(h)
		}
		return h
	}
	mux.HandleFunc("POST /push", readOpen(d.handlePush))
	mux.HandleFunc("GET /sample", readOpen(d.handleSample))
	mux.HandleFunc("GET /memory", readOpen(d.handleMemory))
	mux.HandleFunc("GET /stats", readOpen(d.handleStats))
	mux.HandleFunc("GET /metrics", readOpen(d.handleMetrics))
	mux.HandleFunc("GET /trace", d.requireToken(d.handleTrace))
	mux.HandleFunc("POST /resize", d.requireToken(d.handleResize))
	mux.HandleFunc("POST /migrate", d.requireToken(d.handleMigrate))
	mux.HandleFunc("POST /snapshot", d.requireToken(d.handleSnapshot))
	mux.HandleFunc("POST /autoscale", d.requireToken(d.handleAutoscale))
	if d.pprofEnabled {
		d.mountPprof(mux)
	}
	return mux
}

// requireToken gates a handler behind the configured admin bearer token.
// The status split mirrors HTTP semantics and stays disjoint from the
// handlers' own 400/409 vocabulary: 401 (with a WWW-Authenticate
// challenge) when no credential was presented at all, 403 when one was
// presented and does not match. With no token configured the handler runs
// open — security is opt-in, and ROADMAP tracks the default.
func (d *daemon) requireToken(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !d.adminTokenSet {
			h(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		if auth == "" {
			d.authFailures.Add(1)
			d.logger.Warn("auth failure", "status", http.StatusUnauthorized,
				"path", r.URL.Path, "remote", r.RemoteAddr, "reason", "no credential")
			w.Header().Set("WWW-Authenticate", `Bearer realm="unsd admin"`)
			httpError(w, http.StatusUnauthorized, "authorization required (Bearer token)")
			return
		}
		const scheme = "Bearer "
		if len(auth) < len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) ||
			!tokenMatches(auth[len(scheme):], d.adminTokenHash) {
			d.authFailures.Add(1)
			d.logger.Warn("auth failure", "status", http.StatusForbidden,
				"path", r.URL.Path, "remote", r.RemoteAddr, "reason", "invalid token")
			httpError(w, http.StatusForbidden, "invalid bearer token")
			return
		}
		h(w, r)
	}
}

// tokenMatches compares a presented token against the configured token's
// digest in constant time. The presented side is hashed to the same fixed
// width, so the comparison leaks neither content nor length — a raw ==
// would let a remote caller binary-search the token byte by byte through
// response timing.
func tokenMatches(presented string, wantHash [sha256.Size]byte) bool {
	p := sha256.Sum256([]byte(presented))
	return subtle.ConstantTimeCompare(p[:], wantHash[:]) == 1
}

// maxAdminBody bounds an admin-endpoint request body: the legitimate
// payloads are a handful of small fields.
const maxAdminBody = 1024

// decodeAdminJSON parses a small admin request body strictly: unknown
// fields, trailing data, oversized bodies and malformed JSON are all
// client errors (the caller answers 400), never 500s or panics.
func decodeAdminJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxAdminBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("body exceeds %d bytes", mbe.Limit)
		}
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// conflict answers 409 with a Retry-After hint: the admin plane is busy
// with another resize or snapshot, and the client should simply try again.
func conflict(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusConflict, msg)
}

// jsonID carries a 64-bit id through JSON losslessly: it renders as a
// decimal string and accepts both strings and plain numbers on input.
// Doubles (the number type of JavaScript and most JSON parsers) corrupt
// integers above 2^53, and node ids are full-range 64-bit hashes.
type jsonID uint64

func (v jsonID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + strconv.FormatUint(uint64(v), 10) + `"`), nil
}

func (v *jsonID) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	u, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return fmt.Errorf("id %s: %w", string(data), err)
	}
	*v = jsonID(u)
	return nil
}

func toJSONIDs(ids []uint64) []jsonID {
	out := make([]jsonID, len(ids))
	for i, id := range ids {
		out[i] = jsonID(id)
	}
	return out
}

func (d *daemon) handlePush(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs []jsonID `json:"ids"`
	}
	body := http.MaxBytesReader(w, r.Body, maxPushBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, "no ids")
		return
	}
	if len(req.IDs) > maxPushIDs {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d ids exceeds limit %d", len(req.IDs), maxPushIDs))
		return
	}
	ids := make([]uint64, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = uint64(id)
	}
	if err := d.ingestRouted(ids, "http"); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]any{"accepted": len(ids)})
}

func (d *daemon) handleSample(w http.ResponseWriter, r *http.Request) {
	// Every present n must parse as a plain decimal in [1, maxSampleN]:
	// non-numeric garbage, n <= 0, out-of-int-range digits (Atoi reports
	// ErrRange) and an explicitly empty "?n=" all answer 400 with a JSON
	// error — never a 200 with a surprising body, never a panic. Only a
	// genuinely absent parameter takes the default of one sample.
	n := 1
	if vals, present := r.URL.Query()["n"]; present {
		v, err := strconv.Atoi(vals[0])
		if err != nil || v < 1 || v > maxSampleN {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be a decimal in [1, %d], got %q", maxSampleN, vals[0]))
			return
		}
		n = v
	}
	began := time.Now()
	// Clustered daemons answer over the union of member memories; the
	// standalone path is the pool untouched.
	samples := d.sampleN(n)
	d.latency.Sample.ObserveSince(began)
	if len(samples) == 0 {
		httpError(w, http.StatusServiceUnavailable, "pool is empty")
		return
	}
	writeJSON(w, map[string]any{"samples": toJSONIDs(samples)})
}

func (d *daemon) handleMemory(w http.ResponseWriter, r *http.Request) {
	mem := d.pool.Memory()
	writeJSON(w, map[string]any{"memory": toJSONIDs(mem), "size": len(mem)})
}

// handleResize serves the elastic-plane admin surface: a live
// re-partition of the pool to the requested shard count. A request racing
// another resize (manual or autoscaler-issued) or a snapshot write gets a
// clean 409 + Retry-After instead of queueing on the pool's locks.
func (d *daemon) handleResize(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shards *int `json:"shards"`
	}
	if err := decodeAdminJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if req.Shards == nil {
		httpError(w, http.StatusBadRequest, `missing "shards"`)
		return
	}
	if *req.Shards < 1 || *req.Shards > shard.MaxShards {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shards must be in [1, %d]", shard.MaxShards))
		return
	}
	if !d.opMu.TryLock() {
		conflict(w, "another resize or snapshot is in progress")
		return
	}
	defer d.opMu.Unlock()
	from := d.pool.NumShards()
	began := time.Now()
	if err := d.pool.Resize(*req.Shards); err != nil {
		d.logger.Error("resize failed", "source", "admin", "from", from, "to", *req.Shards, "error", err)
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	d.latency.Resize.ObserveSince(began)
	// One map load for the pair, so a concurrent autoscaler resize between
	// two separate getters cannot produce an epoch from one topology and a
	// shard count from the next.
	epoch, shards := d.pool.Topology()
	d.logger.Info("resize", "source", "admin", "from", from, "to", shards, "epoch", epoch)
	writeJSON(w, map[string]any{"shards": shards, "epoch": epoch})
}

// handleSnapshot writes a durable snapshot to -snapshot-path on demand.
func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if d.snapshotPath == "" {
		httpError(w, http.StatusBadRequest, "no -snapshot-path configured")
		return
	}
	if !d.opMu.TryLock() {
		conflict(w, "another resize or snapshot is in progress")
		return
	}
	defer d.opMu.Unlock()
	n, err := d.writeSnapshotLocked()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"path": d.snapshotPath, "bytes": n})
}

// handleAutoscale enables, disables or tunes the autoscaling controller at
// runtime. The body is a partial update — absent fields keep their current
// value — and an empty object just reports the current state:
//
//	{"enabled":true,"min":2,"max":32,
//	 "grow_threshold":0.5,"shrink_threshold":0.05,"cooldown_ms":3000}
func (d *daemon) handleAutoscale(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Enabled         *bool    `json:"enabled"`
		Min             *int     `json:"min"`
		Max             *int     `json:"max"`
		GrowThreshold   *float64 `json:"grow_threshold"`
		ShrinkThreshold *float64 `json:"shrink_threshold"`
		CooldownMS      *int64   `json:"cooldown_ms"`
	}
	if err := decodeAdminJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	t := autoscale.Tuning{
		Enabled:         req.Enabled,
		Min:             req.Min,
		Max:             req.Max,
		GrowThreshold:   req.GrowThreshold,
		ShrinkThreshold: req.ShrinkThreshold,
	}
	if req.CooldownMS != nil {
		// Bound before converting: a huge millisecond count would wrap the
		// int64 duration and could land on a small positive value, slipping
		// garbage past Tune's non-negative check.
		if *req.CooldownMS < 0 || *req.CooldownMS > math.MaxInt64/int64(time.Millisecond) {
			httpError(w, http.StatusBadRequest, "cooldown_ms out of range")
			return
		}
		cd := time.Duration(*req.CooldownMS) * time.Millisecond
		t.Cooldown = &cd
	}
	st, err := d.ctrl.Tune(t)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	d.logger.Info("autoscale tuned", "enabled", st.Enabled, "min", st.Min, "max", st.Max,
		"grow_threshold", st.GrowThreshold, "shrink_threshold", st.ShrinkThreshold,
		"cooldown", st.Cooldown)
	writeJSON(w, autoscaleJSON(st))
}

// autoscaleJSON renders controller state for /autoscale and /stats.
func autoscaleJSON(st autoscale.State) map[string]any {
	return map[string]any{
		"enabled":               st.Enabled,
		"min":                   st.Min,
		"max":                   st.Max,
		"interval_ms":           st.Interval.Milliseconds(),
		"grow_threshold":        st.GrowThreshold,
		"shrink_threshold":      st.ShrinkThreshold,
		"cooldown_ms":           st.Cooldown.Milliseconds(),
		"load_ewma":             st.EWMA,
		"ticks":                 st.Ticks,
		"resizes":               st.Resizes,
		"cooldown_remaining_ms": st.CooldownRemaining.Milliseconds(),
		"last_decision":         decisionJSON(st.Last),
		"last_resize":           decisionJSON(st.LastResize),
	}
}

// decisionJSON renders one controller decision.
func decisionJSON(d autoscale.Decision) map[string]any {
	out := map[string]any{
		"action":   string(d.Action),
		"reason":   d.Reason,
		"from":     d.From,
		"to":       d.To,
		"pressure": d.Pressure,
		"ewma":     d.EWMA,
	}
	if !d.At.IsZero() {
		out["unix_ms"] = d.At.UnixMilli()
	}
	if d.Err != "" {
		out["error"] = d.Err
	}
	return out
}

// shardStatsJSON is one shard's row in /stats.
type shardStatsJSON struct {
	Processed  uint64 `json:"processed"`
	Dropped    uint64 `json:"dropped"`
	Halvings   uint64 `json:"halvings"`
	QueueDepth int    `json:"queue_depth"`
	MemorySize int    `json:"memory_size"`
}

// subscriberStatsJSON is one output-stream subscription's row in /stats.
type subscriberStatsJSON struct {
	ID        uint64 `json:"id"`
	Offered   uint64 `json:"offered"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Filtered  uint64 `json:"filtered"`
	Capped    uint64 `json:"capped"`
	Capacity  int    `json:"capacity"`
	Depth     int    `json:"depth"`
	Every     int    `json:"every"`
	Rate      uint32 `json:"rate"`
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st := d.pool.Stats()
	shards := make([]shardStatsJSON, len(st.Shards))
	for i, s := range st.Shards {
		shards[i] = shardStatsJSON(s)
	}
	subs := make([]subscriberStatsJSON, len(st.Subscribers))
	for i, s := range st.Subscribers {
		subs[i] = subscriberStatsJSON(s)
	}
	uptime := time.Since(d.start).Seconds()
	throughput := 0.0
	if uptime > 0 {
		throughput = float64(st.Processed) / uptime
	}
	var clusterStats any
	if d.cluster != nil {
		clusterStats = d.cluster.Stats()
	}
	writeJSON(w, map[string]any{
		"cluster":                   clusterStats,
		"uptime_seconds":            uptime,
		"processed":                 st.Processed,
		"dropped":                   st.Dropped,
		"emit_dropped":              st.EmitDropped,
		"throughput_ids_per_second": throughput,
		"gossip_connections":        d.peer.NumConns(),
		"stream_connections":        d.streamConns(),
		"shard_count":               len(shards),
		"strategy":                  d.pool.Strategy(),
		"map_epoch":                 st.Epoch,
		"restored":                  d.restored,
		"snapshot_bytes":            d.snapBytes.Load(),
		"snapshot_unix":             d.snapUnix.Load(),
		"autoscale":                 autoscaleJSON(d.ctrl.State()),
		"shards":                    shards,
		"subscribers":               subs,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unsd", flag.ContinueOnError)
	var (
		httpAddr   = fs.String("http", "127.0.0.1:8080", "HTTP listen address")
		streamAddr = fs.String("stream", "", "framed stream TCP listen address (empty disables)")
		gossipAddr = fs.String("gossip", "", "netgossip TCP listen address (empty disables)")
		connect    = fs.String("connect", "", "comma-separated netgossip peers to dial")
		self       = fs.Uint64("self", 0, "this node's identifier (0 derives one from the seed)")
		shards     = fs.Int("shards", 8, "sampler shards")
		c          = fs.Int("c", 25, "sampling memory size per shard")
		k          = fs.Int("k", 50, "sketch columns per shard")
		s          = fs.Int("s", 10, "sketch rows per shard")
		strategy   = fs.String("strategy", core.DefaultStrategy, "sampler strategy, one of: "+strings.Join(core.Strategies(), ", "))
		buffer     = fs.Int("buffer", 64, "per-shard ingest queue, in batches")
		block      = fs.Bool("block", false, "block producers on a full shard queue instead of dropping")
		seed       = fs.Uint64("seed", 0, "random seed (0 means time-derived)")
		snapPath   = fs.String("snapshot-path", "", "durable pool snapshot file: restored at boot, written by POST /snapshot, -snapshot-interval and shutdown (a restored snapshot supersedes -shards and -c)")
		snapEvery  = fs.Duration("snapshot-interval", 0, "write a snapshot this often (0 disables periodic snapshots; requires -snapshot-path)")
		autoOn     = fs.Bool("autoscale", false, "grow and shrink the shard plane automatically from observed load (queue occupancy and drop rates)")
		minSh      = fs.Int("min-shards", 1, "autoscaler's lower shard bound")
		maxSh      = fs.Int("max-shards", 64, "autoscaler's upper shard bound")
		autoEvery  = fs.Duration("autoscale-interval", time.Second, "autoscaler tick period")
		tlsCert    = fs.String("tls-cert", "", "TLS certificate (PEM) served by the HTTP and stream listeners; enables TLS together with -tls-key")
		tlsKey     = fs.String("tls-key", "", "TLS private key (PEM) for -tls-cert")
		tlsCA      = fs.String("tls-client-ca", "", "CA bundle (PEM): the framed stream listener then requires and verifies client certificates (mutual TLS); needs -tls-cert/-tls-key")
		adminTok   = fs.String("admin-token", "", "bearer token required on POST /resize, /snapshot and /autoscale (empty falls back to $UNSD_ADMIN_TOKEN; both empty leaves the admin surface open)")
		adminAll   = fs.Bool("admin-token-all", false, "require the admin token on every HTTP endpoint, the read surface included")
		snapKeyF   = fs.String("snapshot-key-file", "", "file with a 32-byte AES-256 key (raw or hex, mode 0600): snapshots are sealed with it at rest and unsealed at boot; plaintext snapshots still restore")
		snapKeyOld = fs.String("snapshot-key-file-old", "", "previous snapshot key (rotation): a snapshot that fails under -snapshot-key-file is retried under this key, and the next write re-seals it under the new one")
		strictPerm = fs.Bool("strict-snapshot-perms", false, "refuse to restore a group/world-accessible snapshot instead of warning")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ behind the admin token (requires -admin-token)")
		logLevel   = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat  = fs.String("log-format", "text", "structured log encoding: text or json")
		uniWindow  = fs.Int("uniformity-window", 4096, "sliding-window size of the live uniformity gauge on /metrics (0 disables the divergence samples)")
		traceEvery = fs.Int("trace-sample", 1024, "record one in N ingest batches as an ingest→σ′ span tree served by GET /trace (0 disables tracing)")
		clusterOn  = fs.Bool("cluster", false, "run as one member of a daemon fleet sharing the sampling plane (requires -stream, -members and an explicit -seed shared by every member)")
		membersF   = fs.String("members", "", "comma-separated stream addresses of every cluster member, this daemon's -stream address included")
		clusterCAF = fs.String("cluster-ca", "", "CA bundle (PEM) verifying other members' stream listeners; with -tls-cert/-tls-key the daemon's certificate doubles as its client certificate for mutual TLS")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var members []string
	if *clusterOn {
		if *streamAddr == "" {
			return errors.New("-cluster requires -stream (members exchange frames on the stream listener)")
		}
		if *seed == 0 {
			return errors.New("-cluster requires an explicit shared -seed (ids must route identically on every member)")
		}
		for _, m := range strings.Split(*membersF, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if len(members) == 0 {
			return errors.New("-cluster requires -members")
		}
	} else if *membersF != "" {
		return errors.New("-members requires -cluster")
	}
	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano())
	}
	if *self == 0 {
		*self = rng.Mix64(*seed)
	}
	if *snapEvery < 0 {
		return fmt.Errorf("negative -snapshot-interval %v", *snapEvery)
	}
	if *snapEvery > 0 && *snapPath == "" {
		return errors.New("-snapshot-interval requires -snapshot-path")
	}
	if *minSh < 1 || *maxSh < *minSh || *maxSh > shard.MaxShards {
		return fmt.Errorf("-min-shards/-max-shards range [%d, %d] outside [1, %d]", *minSh, *maxSh, shard.MaxShards)
	}
	if *autoEvery <= 0 {
		return fmt.Errorf("non-positive -autoscale-interval %v", *autoEvery)
	}
	token := *adminTok
	if token == "" {
		token = os.Getenv("UNSD_ADMIN_TOKEN")
	}
	d, err := newDaemon(options{
		shards: *shards, c: *c, k: *k, s: *s,
		strategy: *strategy,
		buffer:   *buffer, block: *block, seed: *seed, self: *self,
		snapshotPath: *snapPath, snapshotInterval: *snapEvery,
		autoscale: *autoOn, minShards: *minSh, maxShards: *maxSh,
		autoscaleInterval: *autoEvery,
		tlsCert:           *tlsCert, tlsKey: *tlsKey, tlsClientCA: *tlsCA,
		adminToken: token, adminTokenAll: *adminAll,
		snapshotKeyFile:     *snapKeyF,
		snapshotKeyFileOld:  *snapKeyOld,
		strictSnapshotPerms: *strictPerm,
		pprof:               *pprofOn,
		logLevel:            *logLevel,
		logFormat:           *logFormat,
		uniformityWindow:    *uniWindow,
		traceSample:         *traceEvery,
		clusterMembers:      members,
		clusterSelf:         *streamAddr,
		clusterCA:           *clusterCAF,
		warnw:               w,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if d.tlsHTTP != nil {
		fmt.Fprintf(w, "tls enabled (stream client certificates required: %v)\n", *tlsCA != "")
	}
	if d.adminTokenSet {
		if *adminAll {
			fmt.Fprintln(w, "bearer token required on all HTTP endpoints")
		} else {
			fmt.Fprintln(w, "bearer token required on admin endpoints")
		}
	}
	if d.snapKey != nil {
		fmt.Fprintln(w, "snapshots sealed with AES-256-GCM at rest")
	}
	if *autoOn {
		fmt.Fprintf(w, "autoscale enabled: shards in [%d, %d], tick %v\n", *minSh, *maxSh, *autoEvery)
	}
	if d.cluster != nil {
		fmt.Fprintf(w, "cluster enabled: %d members, self %s\n",
			len(d.cluster.Members()), *streamAddr)
	}
	if d.restored {
		st := d.pool.Stats()
		fmt.Fprintf(w, "restored %s: %d shards, epoch %d, %d ids processed\n",
			*snapPath, len(st.Shards), st.Epoch, st.Processed)
	}
	if *snapEvery > 0 {
		d.startSnapshotLoop(*snapEvery)
	}

	if *streamAddr != "" {
		ln, err := d.listenStream(*streamAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "stream listening on %s\n", ln.Addr())
	}
	if *gossipAddr != "" {
		// The gossip listener (framed PushBatch exchange between peers) rides
		// the same TLS plane as the stream listener (certificate and, under
		// -tls-client-ca, mutual-TLS client verification): no listener trusts
		// its network.
		ln, err := net.Listen("tcp", *gossipAddr)
		if err != nil {
			return err
		}
		if d.tlsStream != nil {
			ln = tls.NewListener(ln, d.tlsStream)
		}
		d.peer.Serve(ln)
		defer ln.Close()
		fmt.Fprintf(w, "gossip listening on %s\n", ln.Addr())
	}
	for _, addr := range strings.Split(*connect, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			if err := d.peer.Connect(addr); err != nil {
				return err
			}
			fmt.Fprintf(w, "gossip connected to %s\n", addr)
		}
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	if d.tlsHTTP != nil {
		// Server-authenticated TLS only on the HTTP side: callers prove
		// themselves per request with the bearer token, not a certificate.
		ln = tls.NewListener(ln, d.tlsHTTP)
	}
	srv := &http.Server{
		Handler: d.handler(),
		// A daemon built to absorb hostile floods must not let a client pin
		// a connection by trickling bytes (slowloris); the body size is
		// already bounded by maxPushBody.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(w, "http listening on %s\n", ln.Addr())
	fmt.Fprintf(w, "pool: %d shards, strategy %s, c=%d, sketch %dx%d, buffer %d, block=%v\n",
		d.pool.NumShards(), d.pool.Strategy(), *c, *k, *s, *buffer, *block)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "shut down")
	return nil
}
