package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodesampling/internal/shard"
)

// TestSnapshotKeyRotation pins the online rotation path: a snapshot sealed
// under key A restores on a daemon booted with -snapshot-key-file=B and
// -snapshot-key-file-old=A (warning the operator), and the very next write
// re-seals under B — after which A no longer opens the blob and B does, so
// the old key can actually be retired.
func TestSnapshotKeyRotation(t *testing.T) {
	dir := t.TempDir()
	keyA := writeKeyFile(t, dir, "a.key", []byte(strings.Repeat("ab", 32)), 0o600)
	keyB := writeKeyFile(t, dir, "b.key", []byte(strings.Repeat("cd", 32)), 0o600)

	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	o.snapshotKeyFile = keyA

	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	const hot = uint64(424242)
	ids := make([]uint64, 1024)
	for i := range ids {
		if i%2 == 0 {
			ids[i] = hot
		} else {
			ids[i] = uint64(i + 1)
		}
	}
	if err := d1.pool.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	estBefore := d1.pool.Estimate(hot)
	if estBefore == 0 {
		t.Fatal("hot id estimate is zero before the rotation")
	}
	d1.Close() // final snapshot, sealed under key A

	// Rotation boot: new key B, old key A. The restore must succeed (from
	// the A-sealed blob), warn about the fallback, and keep the state.
	var warn safeBuilder
	o2 := o
	o2.snapshotKeyFile = keyB
	o2.snapshotKeyFileOld = keyA
	o2.warnw = &warn
	d2, err := newDaemon(o2)
	if err != nil {
		t.Fatalf("rotation restore: %v", err)
	}
	if !d2.restored {
		t.Fatal("daemon did not restore from the old-key snapshot")
	}
	if got := d2.pool.Estimate(hot); got != estBefore {
		t.Fatalf("hot id estimate %d after rotation restore, want %d", got, estBefore)
	}
	if !strings.Contains(warn.String(), "-snapshot-key-file-old") {
		t.Fatalf("no old-key restore warning, got: %q", warn.String())
	}

	// The next write re-seals under the new key — no explicit re-key step.
	if _, err := d2.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	d2.Close()
	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !shard.SnapshotSealed(blob) {
		t.Fatal("rotated snapshot is not sealed")
	}
	bKey, err := readSnapshotKey(keyB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.OpenSealedSnapshot(blob, bKey); err != nil {
		t.Fatalf("rotated snapshot does not open under the new key: %v", err)
	}
	aKey, err := readSnapshotKey(keyA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.OpenSealedSnapshot(blob, aKey); err == nil {
		t.Fatal("rotated snapshot still opens under the retired key")
	}

	// Retirement boot: key B alone now suffices, and the old-key warning is
	// gone.
	var quiet safeBuilder
	o3 := o
	o3.snapshotKeyFile = keyB
	o3.warnw = &quiet
	d3, err := newDaemon(o3)
	if err != nil {
		t.Fatalf("post-rotation restore under the new key alone: %v", err)
	}
	if !d3.restored {
		t.Fatal("post-rotation daemon did not restore")
	}
	if got := d3.pool.Estimate(hot); got != estBefore {
		t.Fatalf("hot id estimate %d after retirement boot, want %d", got, estBefore)
	}
	d3.Close()
	if strings.Contains(quiet.String(), "previous key") {
		t.Fatalf("new-key restore still warns about the old key: %q", quiet.String())
	}
}

// TestSnapshotKeyRotationValidation: the old-key flag is only meaningful
// next to the new-key flag, a wrong old key still refuses loudly, and the
// old key is held to the same file hygiene as the primary.
func TestSnapshotKeyRotationValidation(t *testing.T) {
	dir := t.TempDir()
	keyA := writeKeyFile(t, dir, "a.key", []byte(strings.Repeat("ab", 32)), 0o600)
	keyB := writeKeyFile(t, dir, "b.key", []byte(strings.Repeat("cd", 32)), 0o600)
	keyC := writeKeyFile(t, dir, "c.key", []byte(strings.Repeat("ef", 32)), 0o600)

	// Old key without a new key is a misconfiguration, named by flag.
	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	o.snapshotKeyFileOld = keyA
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "-snapshot-key-file-old") {
		t.Fatalf("-snapshot-key-file-old alone = %v, want a refusal naming the flag", err)
	}

	// Seal a snapshot under A, then boot with new=B old=C: neither key
	// opens the blob, so the daemon must refuse rather than start empty.
	o2 := defaultOptions()
	o2.snapshotPath = filepath.Join(dir, "pool.snap")
	o2.snapshotKeyFile = keyA
	d1, err := newDaemon(o2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.PushBatch([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	bad := o2
	bad.snapshotKeyFile = keyB
	bad.snapshotKeyFileOld = keyC
	if _, err := newDaemon(bad); err == nil || !strings.Contains(err.Error(), "authentication") {
		t.Fatalf("restore with two wrong keys = %v, want authentication failure", err)
	}

	// A lax-permission old-key file refuses at boot like the primary.
	lax := o2
	lax.snapshotKeyFile = keyB
	lax.snapshotKeyFileOld = writeKeyFile(t, dir, "lax.key", []byte(strings.Repeat("ab", 32)), 0o644)
	if _, err := newDaemon(lax); err == nil || !strings.Contains(err.Error(), "0644") {
		t.Fatalf("world-readable old key file accepted: %v", err)
	}
}

// TestAutomaticReseal pins the rotation satellite: a daemon that restored
// its snapshot under the previous key (-snapshot-key-file-old) rewrites
// the blob under the new key on its own — no push, no manual POST
// /snapshot, no snapshot ticker — after which the old key no longer opens
// it. Rotation completes by booting the daemon, full stop.
func TestAutomaticReseal(t *testing.T) {
	dir := t.TempDir()
	keyA := writeKeyFile(t, dir, "a.key", []byte(strings.Repeat("ab", 32)), 0o600)
	keyB := writeKeyFile(t, dir, "b.key", []byte(strings.Repeat("cd", 32)), 0o600)

	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	o.snapshotKeyFile = keyA
	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.pool.PushBatch([]uint64{7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	d1.Close() // final snapshot, sealed under key A

	aKey, err := readSnapshotKey(keyA)
	if err != nil {
		t.Fatal(err)
	}
	bKey, err := readSnapshotKey(keyB)
	if err != nil {
		t.Fatal(err)
	}

	// Rotation boot. The daemon stays idle: the automatic re-seal alone
	// must move the blob from key A to key B.
	o2 := o
	o2.snapshotKeyFile = keyB
	o2.snapshotKeyFileOld = keyA
	d2, err := newDaemon(o2)
	if err != nil {
		t.Fatalf("rotation restore: %v", err)
	}
	defer d2.Close()
	if !d2.needReseal {
		t.Fatal("old-key restore did not mark the blob for re-sealing")
	}
	waitFor(t, "the blob to be re-sealed under the new key", func() bool {
		blob, err := os.ReadFile(o.snapshotPath)
		if err != nil || !shard.SnapshotSealed(blob) {
			return false
		}
		_, err = shard.OpenSealedSnapshot(blob, bKey)
		return err == nil
	})
	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.OpenSealedSnapshot(blob, aKey); err == nil {
		t.Fatal("automatically re-sealed snapshot still opens under the retired key")
	}
}
