package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestStrategyBasaltDaemonServes boots the daemon under -strategy basalt and
// checks the full read surface: samples come out, /stats reports the active
// strategy, and /metrics carries the unsd_info gauge labelled with it.
func TestStrategyBasaltDaemonServes(t *testing.T) {
	o := defaultOptions()
	o.strategy = "basalt"
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 512)
	for i := range ids {
		ids[i] = uint64(i%64 + 1)
	}
	if resp := postPush(t, ts.URL, ids); resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}

	var sampled struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample?n=16", &sampled); code != http.StatusOK {
		t.Fatalf("/sample status %d", code)
	}
	if len(sampled.Samples) != 16 {
		t.Fatalf("got %d samples, want 16", len(sampled.Samples))
	}

	var stats struct {
		Strategy string `json:"strategy"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if stats.Strategy != "basalt" {
		t.Fatalf("/stats strategy %q, want basalt", stats.Strategy)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `unsd_info{strategy="basalt"} 1`) {
		t.Fatalf("/metrics missing the strategy info gauge:\n%s", body)
	}
}

// TestStrategyDefaultInStats checks that the default daemon reports the
// knowledge-free strategy on both observability surfaces.
func TestStrategyDefaultInStats(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	var stats struct {
		Strategy string `json:"strategy"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if stats.Strategy != "knowledge-free" {
		t.Fatalf("/stats strategy %q, want knowledge-free", stats.Strategy)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `unsd_info{strategy="knowledge-free"} 1`) {
		t.Fatalf("/metrics missing the strategy info gauge:\n%s", body)
	}
}

// TestStrategyUnknownRefused checks the registry error surfaces through
// daemon construction with the registered names listed.
func TestStrategyUnknownRefused(t *testing.T) {
	o := defaultOptions()
	o.strategy = "no-such-strategy"
	if _, err := newDaemon(o); err == nil {
		t.Fatal("unknown strategy should fail daemon construction")
	} else if !strings.Contains(err.Error(), "no-such-strategy") {
		t.Fatalf("error %v does not name the unknown strategy", err)
	}
}

// TestStrategySnapshotMismatchRefused is the durability cross-check: a
// snapshot written by a basalt daemon must refuse to restore into a
// knowledge-free daemon, and the error names both strategies.
func TestStrategySnapshotMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.snap")
	o := defaultOptions()
	o.strategy = "basalt"
	o.snapshotPath = path

	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(d1.handler())
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if resp := postPush(t, ts1.URL, ids); resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	if err := d1.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	d1.Close() // writes the final snapshot

	// Same path, same sketch flags, but the default (knowledge-free)
	// strategy: the restore must fail loudly, naming both sides.
	mismatched := defaultOptions()
	mismatched.snapshotPath = path
	_, err = newDaemon(mismatched)
	if err == nil {
		t.Fatal("strategy mismatch against the snapshot should fail")
	}
	if !strings.Contains(err.Error(), "basalt") || !strings.Contains(err.Error(), "knowledge-free") {
		t.Fatalf("mismatch error %v does not name both strategies", err)
	}

	// Restarting under the matching strategy succeeds and restores.
	d2, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.restored {
		t.Fatal("matching-strategy daemon did not restore from the snapshot")
	}
	if got := d2.pool.Strategy(); got != "basalt" {
		t.Fatalf("restored pool strategy %q, want basalt", got)
	}
}
