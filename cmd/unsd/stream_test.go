package main

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/client"
	"nodesampling/internal/netgossip"
)

func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx, cancel
}

// waitForListener scans run()'s output for "<prefix><addr>\n" and returns
// the address.
func waitForListener(t *testing.T, sb *safeBuilder, prefix string) string {
	t.Helper()
	var addr string
	waitFor(t, "the line "+strings.TrimSpace(prefix), func() bool {
		out := sb.String()
		i := strings.Index(out, prefix)
		if i < 0 {
			return false
		}
		rest := out[i+len(prefix):]
		j := strings.IndexByte(rest, '\n')
		if j < 0 {
			return false
		}
		addr = rest[:j]
		return true
	})
	return addr
}

func testStreamDaemon(t *testing.T, o options) (*daemon, net.Listener) {
	t.Helper()
	d := testDaemon(t, o)
	ln, err := d.listenStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return d, ln
}

// TestStreamEndToEnd is the acceptance scenario: one framed TCP connection
// pushes id batches, subscribes, and receives σ′ stream frames whose ids
// are drawn from the pushed population; /stats reports the subscription's
// delivery accounting.
func TestStreamEndToEnd(t *testing.T) {
	d, ln := testStreamDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Sampling before any push answers an empty (not failed) response.
	if ids, err := c.Sample(3); err != nil || len(ids) != 0 {
		t.Fatalf("Sample on empty pool = (%v, %v)", ids, err)
	}

	out, err := c.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	const population = 600
	ids := make([]nodesampling.NodeID, population)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	// Push in several batches, like a gossiping overlay would.
	for lo := 0; lo < population; lo += 200 {
		if err := c.PushBatch(ids[lo : lo+200]); err != nil {
			t.Fatal(err)
		}
	}

	seen := 0
	deadline := time.After(10 * time.Second)
	for seen < 300 {
		select {
		case id := <-out:
			if id < 1 || id > population {
				t.Fatalf("σ′ draw %d outside the pushed population", id)
			}
			seen++
		case <-deadline:
			t.Fatalf("received only %d σ′ draws", seen)
		}
	}

	// The request/response plane keeps working on the same connection while
	// the stream flows.
	samples, err := c.Sample(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	for _, id := range samples {
		if id < 1 || id > population {
			t.Fatalf("sample %d outside the pushed population", id)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// /stats must expose the subscription's delivery accounting.
	var stats struct {
		StreamConns int `json:"stream_connections"`
		Subscribers []struct {
			ID        uint64 `json:"id"`
			Offered   uint64 `json:"offered"`
			Delivered uint64 `json:"delivered"`
			Dropped   uint64 `json:"dropped"`
			Capacity  int    `json:"capacity"`
		} `json:"subscribers"`
	}
	waitFor(t, "subscriber stats to surface", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return len(stats.Subscribers) == 1 && stats.Subscribers[0].Delivered > 0
	})
	if stats.StreamConns != 1 {
		t.Fatalf("stream_connections = %d, want 1", stats.StreamConns)
	}
	if s := stats.Subscribers[0]; s.Offered < s.Delivered {
		t.Fatalf("inconsistent subscriber accounting: %+v", s)
	}
}

// TestStreamStalledSubscriber pins the slow-subscriber guarantee end to
// end: a raw framed connection subscribes and then never reads a byte,
// while a well-behaved client keeps pushing. Ingestion must proceed (the
// pool blocks producers, so a stalled emit path would wedge PushBatch), and
// /stats must eventually report drops for the stalled subscription.
func TestStreamStalledSubscriber(t *testing.T) {
	o := defaultOptions()
	d, ln := testStreamDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// The stalled subscriber: speaks just enough protocol to subscribe with
	// a tiny buffer, then goes silent without ever reading.
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := netgossip.WriteFrame(stalled, netgossip.Frame{Type: netgossip.FrameSubscribe, N: 1}); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Subscribers []struct {
			Dropped   uint64 `json:"dropped"`
			Delivered uint64 `json:"delivered"`
		} `json:"subscribers"`
	}
	waitFor(t, "the stalled subscription to register", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return len(stats.Subscribers) == 1
	})

	// The pusher: a normal client shoving batches through the same daemon.
	pusher, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	batch := make([]nodesampling.NodeID, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < 200; r++ {
			for i := range batch {
				batch[i] = nodesampling.NodeID(r*len(batch) + i)
			}
			if err := pusher.PushBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pushes stalled behind a dead subscriber")
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drops to surface for the stalled subscriber", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return len(stats.Subscribers) == 1 && stats.Subscribers[0].Dropped > 0
	})
}

// TestStreamProtocolErrors checks the failure surfaces: garbage bytes earn
// an Error frame and a hang-up; a second Subscribe earns an Error frame
// with the connection kept alive.
func TestStreamProtocolErrors(t *testing.T) {
	_, ln := testStreamDaemon(t, defaultOptions())

	// Garbage: the server must answer with an Error frame and close.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := netgossip.ReadFrame(raw)
	if err != nil {
		t.Fatalf("expected an Error frame, read failed: %v", err)
	}
	if f.Type != netgossip.FrameError {
		t.Fatalf("frame type %d, want FrameError", f.Type)
	}
	if _, err := netgossip.ReadFrame(raw); err == nil {
		t.Fatal("connection should be closed after protocol error")
	}

	// Double subscribe: Error frame, then the server hangs up (FrameError
	// is terminal by protocol contract).
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 2; i++ {
		if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameSubscribe, N: 8}); err != nil {
			t.Fatal(err)
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	// The first Subscribe used the legacy 4-byte form, so it must NOT be
	// acknowledged — pre-extension clients treat an unexpected frame type
	// as fatal, and an upgraded daemon must not disconnect them. The first
	// frame back is therefore the second Subscribe's protocol violation.
	f, err = netgossip.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != netgossip.FrameError || f.Msg != "already subscribed" {
		t.Fatalf("frame = %+v, want already-subscribed error (and no SubAck for a legacy subscribe)", f)
	}
	waitFor(t, "the server to hang up after the error", func() bool {
		// Drain any σ′ frames still in flight until the close surfaces.
		_, err := netgossip.ReadFrame(conn)
		return err != nil
	})
}

// TestStreamRunFlag boots the daemon through run() with -stream and drives
// it with the public client, proving the flag wiring end to end.
func TestStreamRunFlag(t *testing.T) {
	ctx, cancel := testContext(t)
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0", "-stream", "127.0.0.1:0",
			"-shards", "2", "-c", "5", "-k", "6", "-s", "3", "-seed", "13",
		}, &sb)
	}()
	addr := waitForListener(t, &sb, "stream listening on ")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PushBatch([]nodesampling.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pushed ids to become sampleable", func() bool {
		ids, err := c.Sample(1)
		return err == nil && len(ids) == 1
	})
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestStreamSubscribeDecimation drives sample-every-k through the wire: a
// decimated subscription receives roughly 1-in-k of the σ′ rate and /stats
// reports the interval and the filtered count.
func TestStreamSubscribeDecimation(t *testing.T) {
	d, ln := testStreamDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const every = 6
	out, err := c.SubscribeEvery(4096, every)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodesampling.NodeID, 600)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	if err := c.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	// A decimated stream still flows and stays inside the population.
	select {
	case id := <-out:
		if id < 1 || id > 600 {
			t.Fatalf("stream draw %d outside the population", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decimated stream data")
	}
	var stats struct {
		Subscribers []struct {
			Offered  uint64 `json:"offered"`
			Filtered uint64 `json:"filtered"`
			Every    int    `json:"every"`
		} `json:"subscribers"`
	}
	waitFor(t, "the decimated subscription in /stats", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return len(stats.Subscribers) == 1 && stats.Subscribers[0].Filtered > 0
	})
	sub := stats.Subscribers[0]
	if sub.Every != every {
		t.Fatalf("stats report every=%d, want %d", sub.Every, every)
	}
	if kept := sub.Offered - sub.Filtered; kept != sub.Offered/every {
		t.Fatalf("kept %d of %d offered, want 1 in %d", kept, sub.Offered, every)
	}
}
