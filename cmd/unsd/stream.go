package main

import (
	"crypto/rand"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling/internal/cluster"
	"nodesampling/internal/netgossip"
	"nodesampling/internal/subhub"
)

// newResumeToken draws a non-zero random resume token. Tokens gate nothing
// security-sensitive (a resumed phase only changes decimation spacing) but
// are unguessable anyway so one subscriber cannot disturb another's.
func newResumeToken() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0 // no entropy: subscriptions proceed without resume
		}
		if t := binary.BigEndian.Uint64(b[:]); t != 0 {
			return t
		}
	}
}

// Stream-endpoint limits. A subscriber asking for more buffer than
// maxSubscribeBuffer is clamped, not rejected: the cap is the daemon's
// memory-protection concern, not the client's. The read deadlines are the
// stream plane's slowloris defence, mirroring the HTTP server's timeouts:
// a connection that neither completes frames nor subscribes is cut after
// streamIdleTimeout, and even a subscribed connection must show some
// inbound life (a Ping suffices) within streamSubscribedIdleTimeout, so an
// attacker cannot pin goroutines and fds by opening connections and going
// silent. maxStreamConns bounds the total either way.
const (
	maxSubscribeBuffer          = 65536
	maxStreamConns              = 4096
	streamWriteTimeout          = 30 * time.Second
	streamIdleTimeout           = 2 * time.Minute
	streamSubscribedIdleTimeout = 15 * time.Minute
)

// streamServer serves the framed bidirectional protocol (version 2) on a
// TCP listener: persistent connections that push id batches up and carry
// the pool's output stream σ′, sample responses and keepalives down. It is
// the subscription-shaped surface the HTTP endpoints cannot offer — one
// connection instead of a poll loop per sample.
type streamServer struct {
	d *daemon

	// Connection accounting for /metrics: accepted admissions, refusals at
	// the connection limit, and protocol violations (undecodable frames,
	// unexpected types, double subscribes). Plain atomics — the telemetry
	// collector reads them at scrape time.
	accepted    atomic.Uint64
	rejected    atomic.Uint64
	frameErrors atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// The subscription resume cache: when a subscribed connection tears
	// down, its decimation phase (Subscription.Seen) is parked here under
	// the resume token the SubAck handed out, so a reconnecting subscriber
	// presenting the token continues the 1-in-every cadence where the old
	// session left off instead of restarting the window. Entries are single
	// use, TTL-bounded and capped, so an attacker cannot grow the cache.
	resumeMu sync.Mutex
	resumes  map[uint64]resumeEntry
}

// resumeEntry is one parked decimation phase.
type resumeEntry struct {
	seen    uint64
	expires time.Time
}

// Resume-cache bounds: entries outlive a reconnect window, not a workday,
// and the cache can never hold more entries than the connection limit
// would have produced in a few cycles.
const (
	resumeTTL        = 15 * time.Minute
	maxResumeEntries = 4 * maxStreamConns
)

// parkResume stores a closed subscription's phase under its token.
func (s *streamServer) parkResume(token, seen uint64) {
	if token == 0 {
		return
	}
	now := time.Now()
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	if len(s.resumes) >= maxResumeEntries {
		for t, e := range s.resumes {
			if now.After(e.expires) {
				delete(s.resumes, t)
			}
		}
		if len(s.resumes) >= maxResumeEntries {
			return // still full of live entries: drop the newcomer, not them
		}
	}
	s.resumes[token] = resumeEntry{seen: seen, expires: now.Add(resumeTTL)}
}

// takeResume redeems a resume token: single use, expired entries refused.
func (s *streamServer) takeResume(token uint64) (uint64, bool) {
	if token == 0 {
		return 0, false
	}
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	e, ok := s.resumes[token]
	if !ok {
		return 0, false
	}
	delete(s.resumes, token)
	if time.Now().After(e.expires) {
		return 0, false
	}
	return e.seen, true
}

// listenStream starts serving the framed protocol on addr and returns the
// live listener (addr may carry port 0). With the TLS plane configured the
// listener is wrapped so every connection handshakes before its first
// frame — and, when -tls-client-ca is set, proves a certificate chained to
// that CA (mutual TLS): an unauthenticated peer never reaches the frame
// decoder, let alone the pool. The per-connection read deadlines double as
// handshake deadlines, since the handshake runs inside the first read.
func (d *daemon) listenStream(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return d.serveStream(ln), nil
}

// serveStream starts the framed protocol on an existing listener (tests
// pre-bind theirs so cluster member addresses are known before the daemons
// are constructed) and returns it, TLS-wrapped when the plane is on.
func (d *daemon) serveStream(ln net.Listener) net.Listener {
	if d.tlsStream != nil {
		ln = tls.NewListener(ln, d.tlsStream)
	}
	s := &streamServer{d: d, ln: ln, conns: make(map[net.Conn]struct{}), resumes: make(map[uint64]resumeEntry)}
	d.stream = s
	s.wg.Add(1)
	go s.acceptLoop()
	return ln
}

// streamConns reports the number of live framed connections (0 when the
// stream listener is disabled).
func (d *daemon) streamConns() int {
	if d.stream == nil {
		return 0
	}
	d.stream.mu.Lock()
	defer d.stream.mu.Unlock()
	return len(d.stream.conns)
}

func (s *streamServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		if len(s.conns) >= maxStreamConns {
			s.mu.Unlock()
			s.rejected.Add(1)
			s.d.logger.Warn("stream connection rejected",
				"remote", conn.RemoteAddr().String(), "reason", "connection limit",
				"limit", maxStreamConns)
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.d.logger.Debug("stream connection accepted", "remote", conn.RemoteAddr().String())
		go s.handle(conn)
	}
}

// Close stops the listener and every live connection, then joins all
// connection goroutines. Idempotent.
func (s *streamServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *streamServer) drop(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

// connWriter serialises frame writes from the read loop (sample responses,
// pongs, errors) and the subscription writer onto one connection. Every
// write carries a deadline so a stalled subscriber's TCP window cannot pin
// the goroutine forever.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(f netgossip.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout)); err != nil {
		return err
	}
	return netgossip.WriteFrame(w.conn, f)
}

// handle runs one framed connection until protocol error, read failure or
// shutdown.
func (s *streamServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.drop(conn)
	defer s.d.logger.Debug("stream connection closed", "remote", conn.RemoteAddr().String())
	w := &connWriter{conn: conn}
	var sub *subhub.Subscription
	var subDone chan struct{}
	var resumeToken uint64
	var subEvery int
	defer func() {
		if sub != nil {
			sub.Cancel()
			<-subDone
			// Park the decimation phase so a reconnect presenting the token
			// resumes the 1-in-every cadence mid-window.
			if subEvery > 1 {
				s.parkResume(resumeToken, sub.Seen())
			}
		}
	}()
	// Buffer-reusing frame decoder: the ingest funnel and the pool copy the
	// ids they keep before the next Read overwrites them, so a persistent
	// stream connection pushes with zero per-frame allocations.
	fr := netgossip.NewFrameReader(conn)
	for {
		idle := streamIdleTimeout
		if sub != nil {
			idle = streamSubscribedIdleTimeout
		}
		if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return
		}
		f, err := fr.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.frameErrors.Add(1)
				s.d.logger.Debug("stream frame error",
					"remote", conn.RemoteAddr().String(), "error", err)
				// Best effort: name the offence before hanging up.
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: trimErr(err)})
			}
			return
		}
		switch f.Type {
		case netgossip.FramePushBatch:
			// A closed or overloaded pool only costs stream elements, like
			// the gossip path: the connection stays up. The shared ingest
			// funnel observes the offered stream (uniformity probe, batch
			// latency, sampled trace) before the pool takes ownership of
			// the slice — and under -cluster, batches are partitioned and
			// routed to their owner members first.
			_ = s.d.ingestRouted(f.IDs, "stream")
		case netgossip.FrameForward:
			// A batch another member routed here because we own its slots.
			// Receivers ingest locally and NEVER re-forward: whatever the
			// routing tables say, a forwarded batch terminates here, so no
			// epoch disagreement can loop it. A stale epoch tag is counted;
			// the ids are still ingested (cluster sampling is Γ-weighted, a
			// misplaced id remains exactly as samplable).
			if s.d.cluster == nil {
				s.frameErrors.Add(1)
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: "not clustered"})
				return
			}
			if f.Token < s.d.cluster.Epoch() {
				s.d.cluster.NoteStaleForward()
			}
			_ = s.d.ingest(f.IDs, "forward")
		case netgossip.FrameSampleLocal:
			// A member's half of a cluster-wide sample fan-out: strictly
			// local draws plus the |Γ| weight they carry in the requester's
			// multinomial merge. Answering with d.sampleN here would fan out
			// recursively — this frame is the recursion's base case.
			n := int(f.N)
			if n > netgossip.MaxBatch {
				n = netgossip.MaxBatch
			}
			draws := s.d.pool.SampleN(n)
			gamma := uint64(s.d.pool.MemoryTotal())
			if err := w.write(netgossip.Frame{Type: netgossip.FrameSampleLocalResp, Token: gamma, IDs: draws}); err != nil {
				return
			}
		case netgossip.FrameMigrateState:
			// The import side of a live slot-range hand-off.
			m, err := cluster.DecodeMigration(f.Blob)
			if err != nil {
				s.frameErrors.Add(1)
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: trimErr(err)})
				return
			}
			epoch, err := s.d.importMigration(m)
			if err != nil {
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: trimErr(err)})
				return
			}
			if err := w.write(netgossip.Frame{Type: netgossip.FrameMigrateAck, Token: epoch}); err != nil {
				return
			}
		case netgossip.FramePlacementUpdate:
			// A migration elsewhere announcing its ownership flip. Stale
			// epochs are rejected by ApplyPlacement; nothing to answer.
			if s.d.cluster == nil {
				s.frameErrors.Add(1)
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: "not clustered"})
				return
			}
			s.d.cluster.ApplyPlacement(f.Token, int(f.SlotFrom), int(f.SlotTo), int(f.Owner))
		case netgossip.FrameSample:
			// A SampleResp frame carries at most MaxBatch ids, so that is
			// the cap here (tighter than the HTTP plane's maxSampleN): a
			// larger n must not make the response unencodable. Clustered
			// daemons answer over the union of member memories.
			n := int(f.N)
			if n > netgossip.MaxBatch {
				n = netgossip.MaxBatch
			}
			began := time.Now()
			samples := s.d.sampleN(n)
			s.d.latency.Sample.ObserveSince(began)
			if err := w.write(netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: samples}); err != nil {
				return
			}
		case netgossip.FrameSubscribe:
			if sub != nil {
				// FrameError is terminal by protocol contract (the client
				// treats it as fatal), so hang up rather than leave the two
				// ends disagreeing about connection state.
				s.frameErrors.Add(1)
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: "already subscribed"})
				return
			}
			capacity := int(f.N)
			if capacity > maxSubscribeBuffer {
				capacity = maxSubscribeBuffer
			}
			every := int(f.Every)
			if every < 1 {
				every = 1
			}
			if every > subhub.MaxDecimation {
				every = subhub.MaxDecimation
			}
			// A presented token redeems the previous session's decimation
			// phase; an unknown or expired one just starts a fresh window.
			var initialSeen uint64
			if f.Token != 0 {
				initialSeen, _ = s.takeResume(f.Token)
			}
			var err error
			sub, err = s.d.pool.SubscribeWith(subhub.SubOptions{
				Capacity:    capacity,
				Every:       every,
				RatePerSec:  f.Rate,
				InitialSeen: initialSeen,
			})
			if err != nil {
				_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: trimErr(err)})
				return
			}
			subEvery = every
			// The SubAck (and the resume token it carries) goes only to
			// clients that demonstrated awareness of the extension by using
			// the 12- or 20-byte Subscribe form — a rate cap or a presented
			// resume token, neither of which pre-extension daemons accept.
			// Clients on the legacy 4/8-byte forms predate the ack and treat
			// an unexpected frame type as a fatal protocol error, so for
			// them the subscribe stays silent, exactly as older daemons
			// behaved; their reconnects restart the decimation window, which
			// can only stretch delivery spacing, never compress it.
			if f.Rate > 0 || f.Token != 0 {
				resumeToken = newResumeToken()
				if err := w.write(netgossip.Frame{Type: netgossip.FrameSubAck, Token: resumeToken}); err != nil {
					return
				}
			}
			subDone = make(chan struct{})
			go streamWriter(sub, w, subDone)
		case netgossip.FramePing:
			if err := w.write(netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
				return
			}
		default:
			s.frameErrors.Add(1)
			_ = w.write(netgossip.Frame{Type: netgossip.FrameError, Msg: "unexpected frame type"})
			return
		}
	}
}

// streamWriter forwards a subscription's σ′ draws as StreamData frames,
// batching greedily: after a blocking read it drains whatever else is
// already buffered (up to the wire limit) into the same frame, so a fast
// stream costs one syscall per burst rather than per id. Exits when the
// subscription is cancelled or the connection dies.
func streamWriter(sub *subhub.Subscription, w *connWriter, done chan struct{}) {
	defer close(done)
	batch := make([]uint64, 0, netgossip.MaxBatch)
	for {
		id, ok := <-sub.C()
		if !ok {
			return
		}
		batch = append(batch[:0], id)
	fill:
		for len(batch) < cap(batch) {
			select {
			case id, ok := <-sub.C():
				if !ok {
					break fill
				}
				batch = append(batch, id)
			default:
				break fill
			}
		}
		if err := w.write(netgossip.Frame{Type: netgossip.FrameStreamData, IDs: batch}); err != nil {
			// The connection is gone, or the subscriber stalled past the
			// write deadline — in which case a partial write may have left a
			// truncated frame on the wire, so the connection is unusable
			// either way. Drop it (the read loop then unwinds) and cancel
			// the subscription so the hub accounts the rest as drops.
			sub.Cancel()
			_ = w.conn.Close()
			return
		}
	}
}

// trimErr bounds an error message to what an Error frame may carry.
func trimErr(err error) string {
	msg := err.Error()
	if len(msg) > netgossip.MaxErrorLen {
		msg = msg[:netgossip.MaxErrorLen]
	}
	if msg == "" {
		msg = "internal error"
	}
	return msg
}
