package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// postRaw posts a raw body and returns the status code.
func postRaw(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestAdminBadBodies pins the hardening of the admin surface: malformed,
// oversized, unknown-field and out-of-range bodies are all client errors
// (400), never 500s or panics.
func TestAdminBadBodies(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	cases := []struct {
		endpoint, body string
	}{
		{"/resize", "not json"},
		{"/resize", `{"shards":0}`},
		{"/resize", `{"shards":257}`},
		{"/resize", `{"shards":"x"}`},
		{"/resize", `{}`},
		{"/resize", `{"shard":4}`},                                         // unknown field (typo)
		{"/resize", `{"shards":2}{"shards"}`},                              // trailing garbage
		{"/resize", `{"shards":2, "bogus":1}`},                             // unknown field
		{"/resize", `{"shards":2,` + strings.Repeat(" ", 2048) + `"x":1}`}, // oversized
		{"/autoscale", "not json"},
		{"/autoscale", `{"min":0}`},
		{"/autoscale", `{"min":8,"max":2}`},
		{"/autoscale", `{"grow_threshold":0.1,"shrink_threshold":0.5}`},
		{"/autoscale", `{"cooldown_ms":-5}`},
		{"/autoscale", `{"bogus":true}`},
	}
	for _, c := range cases {
		if code := postRaw(t, ts.URL+c.endpoint, c.body); code != http.StatusBadRequest {
			t.Errorf("POST %s %q → %d, want 400", c.endpoint, c.body, code)
		}
	}
	// None of the rejects may have touched the plane.
	if epoch, shards := d.pool.Topology(); epoch != 0 || shards != 4 {
		t.Fatalf("rejected requests moved the plane: epoch %d, %d shards", epoch, shards)
	}
	if st := d.ctrl.State(); st.Min != 1 || st.Max != 64 || st.Enabled {
		t.Fatalf("rejected requests retuned the controller: %+v", st)
	}
}

// TestAdminConflictWhileBusy pins the 409 path: while a resize or a
// snapshot holds the admin gate, POST /resize and POST /snapshot answer
// 409 with a Retry-After hint instead of queueing or failing opaquely.
func TestAdminConflictWhileBusy(t *testing.T) {
	o := defaultOptions()
	o.snapshotPath = filepath.Join(t.TempDir(), "pool.snap")
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Occupy the admin gate, standing in for a long resize quiesce or a
	// snapshot write in flight.
	d.opMu.Lock()
	resp, err := http.Post(ts.URL+"/resize", "application/json", strings.NewReader(`{"shards":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resize while busy → %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("409 without a Retry-After hint")
	}
	if code := postRaw(t, ts.URL+"/snapshot", ""); code != http.StatusConflict {
		t.Fatalf("snapshot while busy → %d, want 409", code)
	}
	d.opMu.Unlock()

	// With the gate free both operations succeed.
	var rr struct {
		Shards int    `json:"shards"`
		Epoch  uint64 `json:"epoch"`
	}
	if code := postJSON(t, ts.URL+"/resize", map[string]int{"shards": 2}, &rr); code != http.StatusOK {
		t.Fatalf("resize after release → %d", code)
	}
	if rr.Shards != 2 || rr.Epoch != 1 {
		t.Fatalf("resize answered %+v", rr)
	}
	var sr struct {
		Bytes int `json:"bytes"`
	}
	if code := postJSON(t, ts.URL+"/snapshot", struct{}{}, &sr); code != http.StatusOK || sr.Bytes == 0 {
		t.Fatalf("snapshot after release → %d, %d bytes", code, sr.Bytes)
	}
}

// TestSnapshotWriteFailureLeavesNoOrphan injects write failures into the
// snapshot path and pins the cleanup contract: a failed write reports an
// error, removes its orphaned .tmp file, and never disturbs the last good
// snapshot.
func TestSnapshotWriteFailureLeavesNoOrphan(t *testing.T) {
	dir := t.TempDir()
	o := defaultOptions()
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	d := testDaemon(t, o)

	// A good write first, so there is a last-good snapshot to protect.
	if _, err := d.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}

	// Injected failure after the temp write: turn the rename target into a
	// directory, so os.Rename must fail.
	if err := os.Remove(o.snapshotPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(o.snapshotPath, 0o700); err != nil {
		t.Fatal(err)
	}
	if _, err := d.writeSnapshot(); err == nil {
		t.Fatal("snapshot write onto a directory reported success")
	}
	if _, err := os.Stat(o.snapshotPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed write left an orphaned temp file (stat err %v)", err)
	}

	// Injected failure before the temp write: an unwritable path errors
	// without creating anything.
	if err := os.RemoveAll(o.snapshotPath); err != nil {
		t.Fatal(err)
	}
	d.snapshotPath = filepath.Join(dir, "missing", "pool.snap")
	if _, err := d.writeSnapshot(); err == nil {
		t.Fatal("snapshot write into a missing directory reported success")
	}
	if _, err := os.Stat(d.snapshotPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed open left a temp file (stat err %v)", err)
	}

	// The durable path still works end to end afterwards: write, restore,
	// byte-compatible with the earlier good blob's shape.
	d.snapshotPath = o.snapshotPath
	if _, err := d.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 || !bytes.Equal(blob[:4], good[:4]) {
		t.Fatalf("recovered snapshot malformed: %d bytes", len(blob))
	}
}

// TestAutoscaleCooldownOverflowRejected pins the overflow guard: a
// millisecond count that would wrap the int64 duration must be a 400, not
// a silently-installed garbage cooldown.
func TestAutoscaleCooldownOverflowRejected(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	if code := postRaw(t, ts.URL+"/autoscale", `{"cooldown_ms":9223372036854776}`); code != http.StatusBadRequest {
		t.Fatalf("overflowing cooldown_ms → %d, want 400", code)
	}
	if st := d.ctrl.State(); st.Cooldown != 3*time.Second {
		t.Fatalf("overflowing cooldown leaked into the controller: %v", st.Cooldown)
	}
}
