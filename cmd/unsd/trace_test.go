package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// chromeEvent mirrors one Chrome trace-event object as GET /trace emits it.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// TestTraceEndpointSpanTree is the tentpole's tracing acceptance: with
// -trace-sample=1, one pushed batch yields a connected span tree — the
// "ingest" root, a "shard" child per worker sub-batch, and the σ′ "emit"
// and "delivery" spans — all under one trace id, served by GET /trace as
// Chrome trace-event JSON (which getJSON implicitly validates).
func TestTraceEndpointSpanTree(t *testing.T) {
	o := defaultOptions()
	o.traceSample = 1
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// σ′ draws (and with them the emit/delivery spans) are only generated
	// while a subscriber is live — the pool's draw-free fast path otherwise.
	sub, err := d.pool.Subscribe(1024)
	if err != nil {
		t.Fatal(err)
	}
	defer d.pool.Unsubscribe(sub)

	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if code := postPush(t, ts.URL, ids).StatusCode; code != http.StatusOK {
		t.Fatalf("/push status %d", code)
	}

	// The shard, emit and delivery spans finish asynchronously after the
	// push returns; poll until one trace carries the full chain.
	var doc chromeTrace
	var traceID any
	waitFor(t, "a trace with ingest, shard, emit and delivery spans", func() bool {
		doc = chromeTrace{}
		if code := getJSON(t, ts.URL+"/trace", &doc); code != http.StatusOK {
			t.Fatalf("/trace status %d", code)
		}
		byTrace := make(map[any]map[string]bool)
		for _, ev := range doc.TraceEvents {
			id := ev.Args["trace_id"]
			if byTrace[id] == nil {
				byTrace[id] = make(map[string]bool)
			}
			byTrace[id][ev.Name] = true
		}
		for id, names := range byTrace {
			if names["ingest"] && names["shard"] && names["emit"] && names["delivery"] {
				traceID = id
				return true
			}
		}
		return false
	})

	// Structural checks on the complete trace: every event is a ph="X"
	// complete event with sane timing, the root is the ingest span (no
	// parent), and every non-root parent link resolves to a span id of the
	// same trace — the tree is connected, not a bag of orphans.
	spanIDs := make(map[any]string)
	for _, ev := range doc.TraceEvents {
		if ev.Args["trace_id"] != traceID {
			continue
		}
		if ev.Ph != "X" {
			t.Errorf("span %s has ph %q, want complete event X", ev.Name, ev.Ph)
		}
		if ev.Ts <= 0 || ev.Dur < 0 {
			t.Errorf("span %s has ts/dur %v/%v", ev.Name, ev.Ts, ev.Dur)
		}
		spanIDs[ev.Args["span_id"]] = ev.Name
	}
	for _, ev := range doc.TraceEvents {
		if ev.Args["trace_id"] != traceID {
			continue
		}
		parent, has := ev.Args["parent_span_id"]
		if ev.Name == "ingest" {
			if has {
				t.Errorf("ingest root has a parent_span_id %v", parent)
			}
			if ev.Args["surface"] != "http" {
				t.Errorf("ingest surface = %v, want http", ev.Args["surface"])
			}
			continue
		}
		if !has {
			t.Errorf("span %s has no parent_span_id", ev.Name)
			continue
		}
		if _, ok := spanIDs[parent]; !ok {
			t.Errorf("span %s parent %v does not resolve within its trace", ev.Name, parent)
		}
	}
}

// TestTraceDisabledAndGated: with -trace-sample=0 the ring stays empty
// (the default for options built directly), and with an admin token plus
// -admin-token-all unset, /trace still demands the credential — traces are
// operator material like pprof.
func TestTraceDisabledAndGated(t *testing.T) {
	d := testDaemon(t, defaultOptions()) // traceSample zero value: disabled
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	if code := postPush(t, ts.URL, []uint64{1, 2, 3}).StatusCode; code != http.StatusOK {
		t.Fatalf("/push status %d", code)
	}
	var doc chromeTrace
	if code := getJSON(t, ts.URL+"/trace", &doc); code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("disabled tracer exported %d spans", len(doc.TraceEvents))
	}

	o := defaultOptions()
	o.adminToken = "trace-secret"
	gated := testDaemon(t, o)
	ts2 := httptest.NewServer(gated.handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("credential-less /trace: status %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/trace", nil)
	req.Header.Set("Authorization", "Bearer trace-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized /trace: status %d", resp.StatusCode)
	}
}
