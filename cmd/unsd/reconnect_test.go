package main

import (
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/client"
)

// subAccounting is the /stats subscriber row the reconnect test tracks.
type subAccounting struct {
	Offered   uint64 `json:"offered"`
	Delivered uint64 `json:"delivered"`
	Filtered  uint64 `json:"filtered"`
	Every     int    `json:"every"`
}

func subscriberRow(t *testing.T, url string) (subAccounting, bool) {
	t.Helper()
	var stats struct {
		Subscribers []subAccounting `json:"subscribers"`
	}
	getJSON(t, url+"/stats", &stats)
	if len(stats.Subscribers) != 1 {
		return subAccounting{}, false
	}
	return stats.Subscribers[0], true
}

// TestStreamReconnectDecimationPhaseResets pins the documented decimation
// semantics across a daemon restart: the client's auto-resubscribe starts
// a fresh server-side decimation window, so the k-1 draws the old session
// had already counted toward the next delivery are forgotten. The reset
// can only stretch the spacing between two deliveries — the re-issued
// subscription must see a full k fresh offers before its first delivery,
// never fewer — so a decimated consumer's rate cap survives the restart.
func TestStreamReconnectDecimationPhaseResets(t *testing.T) {
	const every = 5
	o := defaultOptions()
	d1, ln1 := testStreamDaemon(t, o)
	addr := ln1.Addr().String()
	ts1 := httptest.NewServer(d1.handler())

	c, err := client.DialWithOptions(addr, client.DialOptions{
		Reconnect:  true,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.SubscribeEvery(64, every)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the subscription on the first daemon", func() bool {
		_, ok := subscriberRow(t, ts1.URL)
		return ok
	})

	// every-1 ids: all filtered, nothing delivered — the window is one
	// offer short when the daemon dies.
	if err := c.PushBatch([]nodesampling.NodeID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the pre-crash offers to be accounted", func() bool {
		row, ok := subscriberRow(t, ts1.URL)
		return ok && row.Offered == every-1
	})
	if row, _ := subscriberRow(t, ts1.URL); row.Delivered != 0 || row.Filtered != every-1 {
		t.Fatalf("pre-crash accounting %+v, want 0 delivered, %d filtered", row, every-1)
	}

	// Crash the daemon; bring a fresh one (empty pool) back on the same
	// stream address and let the client re-subscribe.
	ts1.Close()
	d1.Close()
	d2, err := newDaemon(defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Close)
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		if ln2, err = d2.listenStream(addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	_ = ln2
	ts2 := httptest.NewServer(d2.handler())
	defer ts2.Close()
	waitFor(t, "the re-issued subscription on the second daemon", func() bool {
		row, ok := subscriberRow(t, ts2.URL)
		return ok && row.Every == every
	})

	// The fresh window: another every-1 offers must still deliver nothing.
	// (Were the old session's phase carried over, the first post-restart
	// offer would complete the old window and deliver early.)
	if err := c.PushBatch([]nodesampling.NodeID{11, 12, 13, 14}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the post-restart offers to be accounted", func() bool {
		row, ok := subscriberRow(t, ts2.URL)
		return ok && row.Offered == every-1
	})
	if row, _ := subscriberRow(t, ts2.URL); row.Delivered != 0 {
		t.Fatalf("delivery before %d fresh offers after reconnect: %+v", every, row)
	}
	select {
	case id := <-out:
		t.Fatalf("stream delivered %d fewer than %d offers after the restart", id, every)
	default:
	}

	// The every-th fresh offer completes the window and delivers.
	if err := c.PushBatch([]nodesampling.NodeID{15}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the first post-restart delivery", func() bool {
		row, ok := subscriberRow(t, ts2.URL)
		return ok && row.Delivered == 1
	})
	select {
	case id := <-out:
		if id < 11 || id > 15 {
			t.Fatalf("post-restart delivery %d outside the pushed population", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accounted delivery never reached the client channel")
	}
}
