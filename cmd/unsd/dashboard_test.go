package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nodesampling/internal/loadgen"
)

// TestDashboardFamiliesExported is the static gate between the committed
// Grafana dashboard and the daemon's live exposition: every unsd_* token a
// dashboard query mentions must resolve to a family a real daemon exports.
// Rename a metric without updating dashboards/unsd.json (or vice versa) and
// this test goes red — the dashboard can never drift into querying series
// that do not exist.
func TestDashboardFamiliesExported(t *testing.T) {
	raw, err := os.ReadFile("../../dashboards/unsd.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dashboards/unsd.json is not valid JSON: %v", err)
	}

	tokens := regexp.MustCompile(`unsd_[a-z_]*[a-z]`).FindAllString(string(raw), -1)
	want := make(map[string]bool)
	for _, tok := range tokens {
		// Histogram queries address the exposition series; map them back to
		// the family that exports them.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			tok = strings.TrimSuffix(tok, suffix)
		}
		want[tok] = true
	}
	if len(want) < 10 {
		t.Fatalf("dashboard references only %d families — the extraction regex or the dashboard is broken", len(want))
	}

	// A live daemon with a subscriber attached exports every family group,
	// including the per-subscription fan-out series.
	d := testDaemon(t, defaultOptions())
	sub, err := d.pool.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	defer d.pool.Unsubscribe(sub)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	s, err := loadgen.ScrapeMetrics(context.Background(), nil, ts.URL+"/metrics", "")
	if err != nil {
		t.Fatal(err)
	}
	exported := make(map[string]bool)
	for _, name := range s.SortedNames() {
		exported[name] = true
	}

	var missing []string
	for name := range want {
		if !exported[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("dashboard queries families the daemon does not export:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
