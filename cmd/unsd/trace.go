package main

// GET /trace: the sampled ingest→σ′ span ring rendered as Chrome
// trace-event JSON, the format chrome://tracing and ui.perfetto.dev load
// directly. Each span becomes one complete ("ph":"X") event; the span and
// trace identities ride in args, with every trace on its own track (tid)
// so a batch's ingest → shard → emit → delivery chain reads as one lane.
// The endpoint sits behind the admin bearer token when one is configured:
// traces carry timing an attacker could mine, like pprof profiles.

import (
	"net/http"
	"strconv"
)

// traceEvent is one Chrome trace-event object: a complete event with
// microsecond timestamps, as consumed by Perfetto and chrome://tracing.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // µs since the unix epoch
	Dur  float64        `json:"dur"` // µs
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	exported := d.tracer.Export()
	events := make([]traceEvent, 0, len(exported))
	for _, s := range exported {
		args := map[string]any{
			"trace_id": strconv.FormatUint(s.Trace, 10),
			"span_id":  strconv.FormatUint(s.ID, 10),
		}
		if s.Parent != 0 {
			args["parent_span_id"] = strconv.FormatUint(s.Parent, 10)
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  s.Trace,
			Args: args,
		})
	}
	writeJSON(w, map[string]any{
		"traceEvents": events,
		"metadata": map[string]any{
			"sampled":   d.tracer.Enabled(),
			"spanCount": len(events),
		},
	})
}
