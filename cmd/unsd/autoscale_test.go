package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesampling/internal/autoscale"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
)

// waitForLong is waitFor with a caller-chosen deadline, for the flood
// phases that legitimately take a while under the race detector.
func waitForLong(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// statsSnapshot is the /stats subset the flood test tracks.
type statsSnapshot struct {
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped"`
	ShardNum  int    `json:"shard_count"`
	MapEpoch  uint64 `json:"map_epoch"`
	Autoscale struct {
		Enabled  bool    `json:"enabled"`
		Min      int     `json:"min"`
		Max      int     `json:"max"`
		EWMA     float64 `json:"load_ewma"`
		Ticks    uint64  `json:"ticks"`
		Resizes  uint64  `json:"resizes"`
		Cooldown int64   `json:"cooldown_remaining_ms"`
		Last     struct {
			Action string `json:"action"`
			Reason string `json:"reason"`
			From   int    `json:"from"`
			To     int    `json:"to"`
		} `json:"last_decision"`
		LastResize struct {
			Action string `json:"action"`
			From   int    `json:"from"`
			To     int    `json:"to"`
		} `json:"last_resize"`
	} `json:"autoscale"`
}

// TestAutoscaleFloodGrowShrinkLifecycle is the acceptance e2e for the
// autoscaling plane. A hostile flood of single-id pushes overruns a
// one-shard daemon's ingest queue until drops appear; the controller must
// observe the drop rate and grow the plane to its configured max, after
// which the same flood fits in the widened queue capacity and the drop
// rate collapses. Once the flood subsides the idle plane must shrink back
// to min on its own — and throughout the autonomous resizes, Sample must
// stay chi-square-uniform over the population.
func TestAutoscaleFloodGrowShrinkLifecycle(t *testing.T) {
	const (
		popSize   = 512
		burst     = 300
		minShards = 1
		maxShards = 8
	)
	o := options{
		shards: minShards, c: popSize, k: 32, s: 4,
		buffer: 64, block: false, seed: 99, self: 17,
		autoscale: true, minShards: minShards, maxShards: maxShards,
		autoscaleInterval: 10 * time.Millisecond,
	}
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Phase-1 tuning, through the admin endpoint: sensitive growth, and a
	// shrink threshold of zero so the plane cannot contract while the flood
	// (and the post-grow measurement) is still running.
	var tuned struct {
		Enabled bool    `json:"enabled"`
		Grow    float64 `json:"grow_threshold"`
	}
	if code := postJSON(t, ts.URL+"/autoscale", map[string]any{
		"grow_threshold": 0.05, "shrink_threshold": 0.0, "cooldown_ms": 50,
	}, &tuned); code != http.StatusOK {
		t.Fatalf("autoscale tune status %d", code)
	}
	if !tuned.Enabled || tuned.Grow != 0.05 {
		t.Fatalf("tune answered %+v", tuned)
	}

	// The flood: bursts of single-id pushes from the population, far larger
	// than one shard's queue (64) but comfortably inside eight shards'
	// spread capacity — so growth, not raw CPU, is what ends the drops.
	pop := make([]uint64, popSize)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		r := rng.New(5)
		for {
			select {
			case <-stopFlood:
				return
			default:
			}
			for i := 0; i < burst; i++ {
				_ = d.pool.Push(pop[r.Intn(popSize)])
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Drops must appear, and must trigger growth.
	waitForLong(t, "ingest drops under the flood", 20*time.Second, func() bool {
		return d.pool.Stats().Dropped > 0
	})
	var preGrow shard.Stats
	waitForLong(t, "the first autonomous grow", 20*time.Second, func() bool {
		if d.pool.NumShards() > minShards {
			preGrow = d.pool.Stats()
			return true
		}
		return false
	})
	preFrac := float64(preGrow.Dropped) / float64(preGrow.Dropped+preGrow.Processed)
	if preFrac < 0.1 {
		t.Fatalf("pre-grow drop fraction %.3f too small to prove anything", preFrac)
	}
	waitForLong(t, "growth to max shards", 30*time.Second, func() bool {
		return d.pool.NumShards() == maxShards
	})

	// At max, the same flood must mostly fit: measure the drop rate over a
	// settled window and compare with the one-shard era.
	time.Sleep(200 * time.Millisecond)
	a := d.pool.Stats()
	time.Sleep(500 * time.Millisecond)
	b := d.pool.Stats()
	dDrop := b.Dropped - a.Dropped
	dProc := b.Processed - a.Processed
	if dProc == 0 {
		t.Fatal("flood stalled during the post-grow window")
	}
	postFrac := float64(dDrop) / float64(dDrop+dProc)
	if postFrac >= preFrac/2 {
		t.Fatalf("drop rate did not fall after growth: pre %.3f, post %.3f", preFrac, postFrac)
	}

	// Flood over. Phase-2 tuning: normal thresholds so the idle plane
	// shrinks, and a grow threshold high enough that the gentle coverage
	// traffic below cannot regrow it.
	close(stopFlood)
	floodWG.Wait()
	if code := postJSON(t, ts.URL+"/autoscale", map[string]any{
		"grow_threshold": 0.5, "shrink_threshold": 0.05, "cooldown_ms": 50,
	}, nil); code != http.StatusOK {
		t.Fatalf("autoscale retune status %d", code)
	}

	// Warm every shard's Γ to its full sub-population (capacity equals the
	// population, so coverage is total once admission has seen enough).
	waitForLong(t, "full Γ coverage of the population", 30*time.Second, func() bool {
		if err := d.pool.PushBatch(pop); err != nil {
			t.Fatal(err)
		}
		if err := d.pool.Flush(); err != nil {
			t.Fatal(err)
		}
		return len(d.pool.Memory()) == popSize
	})

	// Sample while the autoscaler shrinks the plane underneath: uniformity
	// must hold across the autonomous resizes.
	byID := metrics.NewHistogram()
	sampled := 0
	waitForLong(t, "shrink back to min while sampling", 60*time.Second, func() bool {
		for _, id := range d.pool.SampleN(2000) {
			byID.Add(id)
		}
		sampled += 2000
		return sampled >= 100000 && d.pool.NumShards() == minShards
	})
	chi, err := byID.ChiSquareUniform(popSize)
	if err != nil {
		t.Fatal(err)
	}
	// df = 511; the 99.99th percentile is ≈ 630.
	if chi > 700 {
		t.Fatalf("samples not uniform across autonomous resizes: chi2 = %v over %d samples", chi, sampled)
	}

	// The operational surface must tell the story: epoch == resizes (every
	// resize was autonomous), a shrink as the last decision, and the
	// controller disarmable at runtime.
	var st statsSnapshot
	getJSON(t, ts.URL+"/stats", &st)
	if st.ShardNum != minShards {
		t.Fatalf("final shard count %d, want %d", st.ShardNum, minShards)
	}
	if st.Autoscale.Resizes < 6 || st.MapEpoch != st.Autoscale.Resizes {
		t.Fatalf("resize accounting: epoch %d, resizes %d (want ≥6, equal)", st.MapEpoch, st.Autoscale.Resizes)
	}
	if st.Autoscale.LastResize.Action != "shrink" || st.Autoscale.LastResize.To != minShards {
		t.Fatalf("last resize %+v, want a shrink to %d", st.Autoscale.LastResize, minShards)
	}
	if st.Autoscale.Last.Reason == "" {
		t.Fatal("last decision carries no reason")
	}
	if !st.Autoscale.Enabled || st.Autoscale.Min != minShards || st.Autoscale.Max != maxShards {
		t.Fatalf("autoscale state in /stats: %+v", st.Autoscale)
	}
	if code := postJSON(t, ts.URL+"/autoscale", map[string]bool{"enabled": false}, nil); code != http.StatusOK {
		t.Fatalf("disable status %d", code)
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Autoscale.Enabled {
		t.Fatal("controller still enabled after POST /autoscale disable")
	}
}

// TestAutoscaleRacesWithManualResizeAndClose drives the controller at full
// speed against concurrent ingest, sampling, manual POST /resize and
// finally daemon Close. The race detector plus clean status codes are the
// assertions: a manual resize racing the controller answers 200, 409 or
// (after close) 503 — never anything opaque.
func TestAutoscaleRacesWithManualResizeAndClose(t *testing.T) {
	o := defaultOptions()
	o.block = false
	o.buffer = 2
	o.autoscale = true
	o.minShards, o.maxShards = 1, 8
	o.autoscaleInterval = time.Millisecond
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	// Hair-trigger thresholds so the controller really fights the others.
	grow, shrink, cooldown := 0.1, 0.05, 2*time.Millisecond
	if _, err := d.ctrl.Tune(autoscale.Tuning{
		GrowThreshold: &grow, ShrinkThreshold: &shrink, Cooldown: &cooldown,
	}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			batch := make([]uint64, 512)
			for !stop.Load() {
				for i := range batch {
					batch[i] = r.Uint64()
				}
				if err := d.pool.PushBatch(batch); err != nil {
					if !errors.Is(err, shard.ErrPoolClosed) {
						t.Errorf("push: %v", err)
					}
					return
				}
			}
		}(uint64(g) + 31)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d.pool.SampleN(64)
			d.pool.LoadSignals()
			d.ctrl.State()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			code := postJSON(t, ts.URL+"/resize", map[string]int{"shards": 2 + i%3}, nil)
			switch code {
			case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable:
			default:
				t.Errorf("manual resize status %d", code)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	// Close the daemon while everything is still flying.
	d.Close()
	stop.Store(true)
	wg.Wait()
	if st := d.ctrl.State(); st.Ticks == 0 {
		t.Fatalf("controller never ticked: %+v", st)
	}
}
