package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nodesampling/internal/netgossip"
)

func testDaemon(t *testing.T, o options) *daemon {
	t.Helper()
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func defaultOptions() options {
	return options{shards: 4, c: 10, k: 10, s: 5, buffer: 16, block: true, seed: 1, self: 99}
}

func postPush(t *testing.T, url string, ids []uint64) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string][]uint64{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/push", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPushSampleMemoryStats(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	resp := postPush(t, ts.URL, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/push status %d", resp.StatusCode)
	}
	var pushed struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pushed); err != nil {
		t.Fatal(err)
	}
	if pushed.Accepted != 500 {
		t.Fatalf("accepted %d, want 500", pushed.Accepted)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}

	var sampled struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample?n=100", &sampled); code != http.StatusOK {
		t.Fatalf("/sample status %d", code)
	}
	if len(sampled.Samples) != 100 {
		t.Fatalf("got %d samples, want 100", len(sampled.Samples))
	}
	for _, raw := range sampled.Samples {
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatalf("sample %q is not a decimal id: %v", raw, err)
		}
		if id < 1 || id > 500 {
			t.Fatalf("sample %d outside the pushed population", id)
		}
	}

	var mem struct {
		Memory []string `json:"memory"`
		Size   int      `json:"size"`
	}
	if code := getJSON(t, ts.URL+"/memory", &mem); code != http.StatusOK {
		t.Fatalf("/memory status %d", code)
	}
	if mem.Size != 4*10 || len(mem.Memory) != mem.Size {
		t.Fatalf("memory size %d (len %d), want full 40", mem.Size, len(mem.Memory))
	}

	// Ids above 2^53 must round-trip exactly: push as a string, observe the
	// same string come back through /memory (doubles would corrupt it).
	hugeID := "18446744073709551615" // 2^64 - 1
	r2, err := http.Post(ts.URL+"/push", "application/json",
		strings.NewReader(`{"ids":["`+hugeID+`", 17]}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("huge-id push status %d", r2.StatusCode)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/memory", &mem); code != http.StatusOK {
		t.Fatalf("/memory status %d", code)
	}
	found := false
	for _, raw := range mem.Memory {
		if raw == hugeID {
			found = true
		}
	}
	if !found {
		t.Fatalf("huge id did not round-trip through /memory: %v", mem.Memory)
	}

	var stats struct {
		Processed  uint64  `json:"processed"`
		Dropped    uint64  `json:"dropped"`
		Throughput float64 `json:"throughput_ids_per_second"`
		Conns      int     `json:"gossip_connections"`
		Shards     []struct {
			Processed  uint64 `json:"processed"`
			Dropped    uint64 `json:"dropped"`
			QueueDepth int    `json:"queue_depth"`
			MemorySize int    `json:"memory_size"`
		} `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if stats.Processed != 502 || stats.Dropped != 0 { // 500 + the 2 round-trip ids
		t.Fatalf("stats processed/dropped = %d/%d", stats.Processed, stats.Dropped)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats has %d shards, want 4", len(stats.Shards))
	}
	var sum uint64
	for i, s := range stats.Shards {
		sum += s.Processed
		if s.MemorySize != 10 {
			t.Fatalf("shard %d memory %d, want full 10", i, s.MemorySize)
		}
	}
	if sum != stats.Processed {
		t.Fatalf("per-shard processed sums to %d, total says %d", sum, stats.Processed)
	}
	if stats.Throughput <= 0 {
		t.Fatalf("throughput %v", stats.Throughput)
	}
}

// TestStatsExposesPerShardDrops floods a deliberately tiny daemon (one
// shard, unbuffered queue, drop policy, heavy sketch) until /stats reports
// a non-zero per-shard drop count.
func TestStatsExposesPerShardDrops(t *testing.T) {
	o := defaultOptions()
	o.shards, o.buffer, o.block = 1, 0, false
	o.k, o.s = 300, 10 // slow per-batch digestion so follow-up pushes collide
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint64(i)
	}
	body, err := json.Marshal(map[string][]uint64{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	// Slam the daemon from several concurrent producers: with a single
	// unbuffered shard, pushes that land while the worker digests an
	// earlier batch must be dropped, not queued.
	stop := make(chan struct{})
	defer close(stop)
	for g := 0; g < 8; g++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/push", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	var stats struct {
		Dropped uint64 `json:"dropped"`
		Shards  []struct {
			Dropped uint64 `json:"dropped"`
		} `json:"shards"`
	}
	waitFor(t, "a drop to surface in /stats", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return stats.Dropped > 0
	})
	if len(stats.Shards) != 1 || stats.Shards[0].Dropped != stats.Dropped {
		t.Fatalf("per-shard drops inconsistent with total: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Sampling an empty pool is a 503, not an empty success.
	resp, err := http.Get(ts.URL + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/sample on empty pool status %d", resp.StatusCode)
	}
	// GET on /push (wrong method).
	resp, err = http.Get(ts.URL + "/push")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /push status %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/push", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", resp.StatusCode)
	}
	// Empty batch.
	if resp := postPush(t, ts.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	// Oversized batch (id count above the wire-protocol-aligned cap).
	big := make([]uint64, maxPushIDs+1)
	if resp := postPush(t, ts.URL, big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	// Out-of-range n.
	for _, q := range []string{"n=0", "n=-3", "n=abc", fmt.Sprintf("n=%d", maxSampleN+1)} {
		resp, err := http.Get(ts.URL + "/sample?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/sample?%s status %d", q, resp.StatusCode)
		}
	}
}

// TestGossipFeedsDaemon drives the other ingestion path: a netgossip peer
// dials the daemon's TCP listener and gossips; the ids must become visible
// through the HTTP surface.
func TestGossipFeedsDaemon(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ln, err := d.peer.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	sender, err := netgossip.NewPeer(netgossip.Config{
		Self: 7, C: 10, K: 8, S: 4, Fanout: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if err := sender.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := sender.PushRound(); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var stats struct {
		Processed uint64 `json:"processed"`
		Conns     int    `json:"gossip_connections"`
	}
	waitFor(t, "gossiped ids to reach the pool", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return stats.Processed > 0 && stats.Conns == 1
	})
	var sampled struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample", &sampled); code != http.StatusOK {
		t.Fatalf("/sample status %d", code)
	}
	if len(sampled.Samples) != 1 || sampled.Samples[0] != "7" {
		t.Fatalf("samples = %v, want the gossiping peer's id 7", sampled.Samples)
	}
}

// safeBuilder is a strings.Builder safe for the cross-goroutine
// write-then-poll pattern of TestRunLifecycle.
type safeBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0",
			"-shards", "2", "-c", "5", "-k", "6", "-s", "3", "-seed", "11",
		}, &sb)
	}()
	var url string
	waitFor(t, "the http listener to come up", func() bool {
		out := sb.String()
		i := strings.Index(out, "http listening on ")
		if i < 0 {
			return false
		}
		rest := out[i+len("http listening on "):]
		j := strings.IndexByte(rest, '\n')
		if j < 0 {
			return false
		}
		url = "http://" + rest[:j]
		return true
	})
	resp := postPush(t, url, []uint64{1, 2, 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/push against run() daemon: status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
	if !strings.Contains(sb.String(), "gossip listening on ") {
		t.Fatalf("missing gossip listener line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "shut down") {
		t.Fatalf("missing shutdown line:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb safeBuilder
	if err := run(context.Background(), []string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run(context.Background(), []string{"-shards", "0"}, &sb); err == nil {
		t.Error("zero shards should fail")
	}
	if err := run(context.Background(), []string{"-http", "256.0.0.1:bad"}, &sb); err == nil {
		t.Error("unusable http address should fail")
	}
	if err := run(context.Background(), []string{"-min-shards", "0"}, &sb); err == nil {
		t.Error("zero min-shards should fail")
	}
	if err := run(context.Background(), []string{"-min-shards", "8", "-max-shards", "4"}, &sb); err == nil {
		t.Error("inverted autoscale range should fail")
	}
	if err := run(context.Background(), []string{"-max-shards", "1000"}, &sb); err == nil {
		t.Error("max-shards beyond the shard cap should fail")
	}
	if err := run(context.Background(), []string{"-autoscale-interval", "-1s"}, &sb); err == nil {
		t.Error("negative autoscale interval should fail")
	}
}

// postJSON posts a JSON body and decodes the JSON answer.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestResizeEndpoint drives the elastic plane over HTTP: a live resize
// changes the shard count in /stats, bumps the map epoch, and the pool
// keeps serving samples from the re-partitioned memory.
func TestResizeEndpoint(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 512)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	resp := postPush(t, ts.URL, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Shards int    `json:"shards"`
		Epoch  uint64 `json:"epoch"`
	}
	if code := postJSON(t, ts.URL+"/resize", map[string]int{"shards": 8}, &rr); code != http.StatusOK {
		t.Fatalf("resize status %d", code)
	}
	if rr.Shards != 8 || rr.Epoch != 1 {
		t.Fatalf("resize answered %+v", rr)
	}
	var stats struct {
		ShardCount int        `json:"shard_count"`
		MapEpoch   uint64     `json:"map_epoch"`
		Processed  uint64     `json:"processed"`
		Shards     []struct{} `json:"shards"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.ShardCount != 8 || len(stats.Shards) != 8 || stats.MapEpoch != 1 {
		t.Fatalf("stats after resize: %+v", stats)
	}
	if stats.Processed != 512 {
		t.Fatalf("processed %d across resize, want 512", stats.Processed)
	}
	var sample struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample?n=16", &sample); code != http.StatusOK || len(sample.Samples) != 16 {
		t.Fatalf("sample after resize: code %d, %d samples", code, len(sample.Samples))
	}
	// Bad requests.
	if code := postJSON(t, ts.URL+"/resize", map[string]int{"shards": 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("resize 0 status %d", code)
	}
	if code := postJSON(t, ts.URL+"/resize", map[string]string{"shards": "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed resize status %d", code)
	}
}

// TestSnapshotEndpointRequiresPath: without -snapshot-path the endpoint
// must refuse rather than pretend.
func TestSnapshotEndpointRequiresPath(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	// Asking for the impossible is a client error (409 is reserved for the
	// transient "another resize or snapshot is running" case).
	if code := postJSON(t, ts.URL+"/snapshot", struct{}{}, nil); code != http.StatusBadRequest {
		t.Fatalf("snapshot without path status %d", code)
	}
}

// TestSnapshotRestartServesRestoredState is the acceptance e2e: a daemon
// with -snapshot-path is killed and restarted, and the successor serves
// Sample//memory//stats from the restored Γ and sketch state — attacker
// frequencies are not forgotten.
func TestSnapshotRestartServesRestoredState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.snap")
	o := defaultOptions()
	o.snapshotPath = path

	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(d1.handler())
	// An "attack": one hot id pushed massively among background noise.
	const hot = uint64(7777)
	ids := make([]uint64, 1024)
	for i := range ids {
		if i%2 == 0 {
			ids[i] = hot
		} else {
			ids[i] = uint64(i + 1)
		}
	}
	for r := 0; r < 4; r++ {
		if resp := postPush(t, ts1.URL, ids); resp.StatusCode != http.StatusOK {
			t.Fatalf("push status %d", resp.StatusCode)
		}
	}
	if err := d1.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Path  string `json:"path"`
		Bytes int    `json:"bytes"`
	}
	if code := postJSON(t, ts1.URL+"/snapshot", struct{}{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	if snap.Path != path || snap.Bytes == 0 {
		t.Fatalf("snapshot answered %+v", snap)
	}
	var memBefore struct {
		Memory []string `json:"memory"`
		Size   int      `json:"size"`
	}
	getJSON(t, ts1.URL+"/memory", &memBefore)
	estBefore := d1.pool.Estimate(hot)
	if estBefore == 0 {
		t.Fatal("hot id estimate is zero before the restart")
	}
	ts1.Close()
	d1.Close() // also writes the final snapshot

	// The restarted daemon restores from the same path (no pushes at all).
	d2, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.restored {
		t.Fatal("second daemon did not restore from the snapshot")
	}
	ts2 := httptest.NewServer(d2.handler())
	defer ts2.Close()
	var stats struct {
		Processed uint64 `json:"processed"`
		Restored  bool   `json:"restored"`
	}
	getJSON(t, ts2.URL+"/stats", &stats)
	if !stats.Restored || stats.Processed != 4*1024 {
		t.Fatalf("restored stats: %+v", stats)
	}
	var memAfter struct {
		Memory []string `json:"memory"`
		Size   int      `json:"size"`
	}
	getJSON(t, ts2.URL+"/memory", &memAfter)
	if memAfter.Size != memBefore.Size {
		t.Fatalf("restored memory %d ids, want %d", memAfter.Size, memBefore.Size)
	}
	sortStrings := func(s []string) { sort.Strings(s) }
	sortStrings(memBefore.Memory)
	sortStrings(memAfter.Memory)
	for i := range memBefore.Memory {
		if memBefore.Memory[i] != memAfter.Memory[i] {
			t.Fatalf("restored memory differs at %d: %s vs %s", i, memBefore.Memory[i], memAfter.Memory[i])
		}
	}
	// The sketch state survived: the hot id's frequency estimate is intact.
	if got := d2.pool.Estimate(hot); got != estBefore {
		t.Fatalf("hot id estimate %d after restart, want %d (attacker forgotten)", got, estBefore)
	}
	// And the daemon serves samples with zero new input.
	var sample struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts2.URL+"/sample?n=8", &sample); code != http.StatusOK || len(sample.Samples) != 8 {
		t.Fatalf("restored daemon sample: code %d, %d samples", code, len(sample.Samples))
	}
	// A daemon restarted with contradicting sketch flags must refuse.
	bad := o
	bad.k, bad.s = 3, 2
	if _, err := newDaemon(bad); err == nil {
		t.Fatal("sketch-shape mismatch against the snapshot should fail")
	}
}

// TestSnapshotFlagValidation covers the run()-level flag contract.
func TestSnapshotFlagValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sb safeBuilder
	if err := run(ctx, []string{"-snapshot-interval", "5s"}, &sb); err == nil {
		t.Fatal("-snapshot-interval without -snapshot-path should fail")
	}
	if err := run(ctx, []string{"-snapshot-interval", "-5s", "-snapshot-path", "x"}, &sb); err == nil {
		t.Fatal("negative -snapshot-interval should fail")
	}
}
