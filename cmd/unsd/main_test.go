package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nodesampling/internal/netgossip"
)

func testDaemon(t *testing.T, o options) *daemon {
	t.Helper()
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func defaultOptions() options {
	return options{shards: 4, c: 10, k: 10, s: 5, buffer: 16, block: true, seed: 1, self: 99}
}

func postPush(t *testing.T, url string, ids []uint64) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string][]uint64{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/push", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPushSampleMemoryStats(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	resp := postPush(t, ts.URL, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/push status %d", resp.StatusCode)
	}
	var pushed struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pushed); err != nil {
		t.Fatal(err)
	}
	if pushed.Accepted != 500 {
		t.Fatalf("accepted %d, want 500", pushed.Accepted)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}

	var sampled struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample?n=100", &sampled); code != http.StatusOK {
		t.Fatalf("/sample status %d", code)
	}
	if len(sampled.Samples) != 100 {
		t.Fatalf("got %d samples, want 100", len(sampled.Samples))
	}
	for _, raw := range sampled.Samples {
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatalf("sample %q is not a decimal id: %v", raw, err)
		}
		if id < 1 || id > 500 {
			t.Fatalf("sample %d outside the pushed population", id)
		}
	}

	var mem struct {
		Memory []string `json:"memory"`
		Size   int      `json:"size"`
	}
	if code := getJSON(t, ts.URL+"/memory", &mem); code != http.StatusOK {
		t.Fatalf("/memory status %d", code)
	}
	if mem.Size != 4*10 || len(mem.Memory) != mem.Size {
		t.Fatalf("memory size %d (len %d), want full 40", mem.Size, len(mem.Memory))
	}

	// Ids above 2^53 must round-trip exactly: push as a string, observe the
	// same string come back through /memory (doubles would corrupt it).
	hugeID := "18446744073709551615" // 2^64 - 1
	r2, err := http.Post(ts.URL+"/push", "application/json",
		strings.NewReader(`{"ids":["`+hugeID+`", 17]}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("huge-id push status %d", r2.StatusCode)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/memory", &mem); code != http.StatusOK {
		t.Fatalf("/memory status %d", code)
	}
	found := false
	for _, raw := range mem.Memory {
		if raw == hugeID {
			found = true
		}
	}
	if !found {
		t.Fatalf("huge id did not round-trip through /memory: %v", mem.Memory)
	}

	var stats struct {
		Processed  uint64  `json:"processed"`
		Dropped    uint64  `json:"dropped"`
		Throughput float64 `json:"throughput_ids_per_second"`
		Conns      int     `json:"gossip_connections"`
		Shards     []struct {
			Processed  uint64 `json:"processed"`
			Dropped    uint64 `json:"dropped"`
			QueueDepth int    `json:"queue_depth"`
			MemorySize int    `json:"memory_size"`
		} `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if stats.Processed != 502 || stats.Dropped != 0 { // 500 + the 2 round-trip ids
		t.Fatalf("stats processed/dropped = %d/%d", stats.Processed, stats.Dropped)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats has %d shards, want 4", len(stats.Shards))
	}
	var sum uint64
	for i, s := range stats.Shards {
		sum += s.Processed
		if s.MemorySize != 10 {
			t.Fatalf("shard %d memory %d, want full 10", i, s.MemorySize)
		}
	}
	if sum != stats.Processed {
		t.Fatalf("per-shard processed sums to %d, total says %d", sum, stats.Processed)
	}
	if stats.Throughput <= 0 {
		t.Fatalf("throughput %v", stats.Throughput)
	}
}

// TestStatsExposesPerShardDrops floods a deliberately tiny daemon (one
// shard, unbuffered queue, drop policy, heavy sketch) until /stats reports
// a non-zero per-shard drop count.
func TestStatsExposesPerShardDrops(t *testing.T) {
	o := defaultOptions()
	o.shards, o.buffer, o.block = 1, 0, false
	o.k, o.s = 300, 10 // slow per-batch digestion so follow-up pushes collide
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint64(i)
	}
	body, err := json.Marshal(map[string][]uint64{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	// Slam the daemon from several concurrent producers: with a single
	// unbuffered shard, pushes that land while the worker digests an
	// earlier batch must be dropped, not queued.
	stop := make(chan struct{})
	defer close(stop)
	for g := 0; g < 8; g++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/push", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	var stats struct {
		Dropped uint64 `json:"dropped"`
		Shards  []struct {
			Dropped uint64 `json:"dropped"`
		} `json:"shards"`
	}
	waitFor(t, "a drop to surface in /stats", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return stats.Dropped > 0
	})
	if len(stats.Shards) != 1 || stats.Shards[0].Dropped != stats.Dropped {
		t.Fatalf("per-shard drops inconsistent with total: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// Sampling an empty pool is a 503, not an empty success.
	resp, err := http.Get(ts.URL + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/sample on empty pool status %d", resp.StatusCode)
	}
	// GET on /push (wrong method).
	resp, err = http.Get(ts.URL + "/push")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /push status %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/push", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", resp.StatusCode)
	}
	// Empty batch.
	if resp := postPush(t, ts.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	// Oversized batch (id count above the wire-protocol-aligned cap).
	big := make([]uint64, maxPushIDs+1)
	if resp := postPush(t, ts.URL, big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	// Out-of-range n.
	for _, q := range []string{"n=0", "n=-3", "n=abc", fmt.Sprintf("n=%d", maxSampleN+1)} {
		resp, err := http.Get(ts.URL + "/sample?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/sample?%s status %d", q, resp.StatusCode)
		}
	}
}

// TestGossipFeedsDaemon drives the other ingestion path: a netgossip peer
// dials the daemon's TCP listener and gossips; the ids must become visible
// through the HTTP surface.
func TestGossipFeedsDaemon(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ln, err := d.peer.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	sender, err := netgossip.NewPeer(netgossip.Config{
		Self: 7, C: 10, K: 8, S: 4, Fanout: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if err := sender.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := sender.PushRound(); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var stats struct {
		Processed uint64 `json:"processed"`
		Conns     int    `json:"gossip_connections"`
	}
	waitFor(t, "gossiped ids to reach the pool", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return stats.Processed > 0 && stats.Conns == 1
	})
	var sampled struct {
		Samples []string `json:"samples"`
	}
	if code := getJSON(t, ts.URL+"/sample", &sampled); code != http.StatusOK {
		t.Fatalf("/sample status %d", code)
	}
	if len(sampled.Samples) != 1 || sampled.Samples[0] != "7" {
		t.Fatalf("samples = %v, want the gossiping peer's id 7", sampled.Samples)
	}
}

// safeBuilder is a strings.Builder safe for the cross-goroutine
// write-then-poll pattern of TestRunLifecycle.
type safeBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0",
			"-shards", "2", "-c", "5", "-k", "6", "-s", "3", "-seed", "11",
		}, &sb)
	}()
	var url string
	waitFor(t, "the http listener to come up", func() bool {
		out := sb.String()
		i := strings.Index(out, "http listening on ")
		if i < 0 {
			return false
		}
		rest := out[i+len("http listening on "):]
		j := strings.IndexByte(rest, '\n')
		if j < 0 {
			return false
		}
		url = "http://" + rest[:j]
		return true
	})
	resp := postPush(t, url, []uint64{1, 2, 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/push against run() daemon: status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
	if !strings.Contains(sb.String(), "gossip listening on ") {
		t.Fatalf("missing gossip listener line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "shut down") {
		t.Fatalf("missing shutdown line:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb safeBuilder
	if err := run(context.Background(), []string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run(context.Background(), []string{"-shards", "0"}, &sb); err == nil {
		t.Error("zero shards should fail")
	}
	if err := run(context.Background(), []string{"-http", "256.0.0.1:bad"}, &sb); err == nil {
		t.Error("unusable http address should fail")
	}
}
