package main

// The daemon's cluster plane: ingest partitioning and forwarding, the
// cluster-wide weighted sample fan-out, the live-migration admin endpoint
// (POST /migrate) and the cluster metric families. Everything here is
// inert when -cluster is off: d.cluster stays nil, ingest and Sample take
// their standalone paths, and /migrate answers 400.

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"nodesampling/internal/cluster"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
	"nodesampling/internal/telemetry"
)

// clusterSampleTimeout bounds the remote half of a sample fan-out; a member
// that cannot answer within it is excluded from the merge (and counted).
const clusterSampleTimeout = 10 * time.Second

// clusterMigrateTimeout bounds a migration transfer end to end: blob write,
// target-side import, ack.
const clusterMigrateTimeout = 60 * time.Second

// ingestRouted is the cluster-aware front of the ingest funnel: batches are
// partitioned against the routing table, the locally-owned ids ingested
// here, and the rest forwarded to their owner members. Forward arrivals
// (surface "forward") are ingested locally unconditionally — a receiver
// never re-forwards, so no routing disagreement can loop a batch.
func (d *daemon) ingestRouted(ids []uint64, surface string) error {
	if d.cluster == nil || surface == "forward" {
		return d.ingest(ids, surface)
	}
	local, remote := d.cluster.Partition(ids)
	for member, batch := range remote {
		if len(batch) > 0 {
			d.cluster.Forward(member, batch)
		}
	}
	if len(local) == 0 {
		return nil
	}
	return d.ingest(local, surface)
}

// sampleN answers a sample request cluster-wide: n local draws plus n draws
// from every reachable member, merged by a multinomial weighted on each
// member's |Γ| — the same estimate-the-union trick the pool plays across
// its shards, so the cluster-wide output stays uniform over the union of
// member memories no matter how unevenly the ids are distributed. Standalone
// daemons take the pool path untouched.
func (d *daemon) sampleN(n int) []uint64 {
	if d.cluster == nil {
		return d.pool.SampleN(n)
	}
	d.clusterFanouts.Add(1)
	type source struct {
		gamma uint64
		ids   []uint64
	}
	var srcs []source
	if local := d.pool.SampleN(n); len(local) > 0 {
		srcs = append(srcs, source{gamma: uint64(d.pool.MemoryTotal()), ids: local})
	}
	for _, md := range d.cluster.SampleMembers(n, clusterSampleTimeout) {
		if md.Err != nil {
			d.clusterFanoutMissing.Add(1)
			continue
		}
		if md.Gamma == 0 || len(md.IDs) == 0 {
			continue
		}
		srcs = append(srcs, source{gamma: md.Gamma, ids: md.IDs})
	}
	if len(srcs) == 0 {
		return nil
	}
	var total uint64
	for _, s := range srcs {
		total += s.gamma
	}
	out := make([]uint64, 0, n)
	d.srng.mu.Lock()
	defer d.srng.mu.Unlock()
	for len(out) < n {
		// Weighted pick among sources that still have unconsumed draws; each
		// member's draws are i.i.d. uniform over its Γ, so a random remaining
		// draw keeps every merged draw an exact P(id) = 1/|union| sample (up
		// to the per-member duplicates a union sample inherently tolerates).
		pick := d.srng.r.Uint64n(total)
		chosen := -1
		for i := range srcs {
			g := srcs[i].gamma
			if pick < g {
				chosen = i
				break
			}
			pick -= g
		}
		if chosen < 0 || len(srcs[chosen].ids) == 0 {
			// The chosen member's draws are exhausted (it answered with fewer
			// than requested): retire it from the multinomial and retry.
			if chosen >= 0 {
				total -= srcs[chosen].gamma
				srcs[chosen].gamma = 0
			}
			if total == 0 {
				break
			}
			continue
		}
		// Consume a uniformly random remaining draw, not the front one: the
		// pool groups its draws by shard, so when fewer than all of a
		// member's draws are consumed, taking a prefix would systematically
		// exclude its later shards' ids from the merge.
		ids := srcs[chosen].ids
		j := int(d.srng.r.Uint64n(uint64(len(ids))))
		out = append(out, ids[j])
		ids[j] = ids[len(ids)-1]
		srcs[chosen].ids = ids[:len(ids)-1]
	}
	return out
}

// loadClusterTLS builds the client-side TLS configuration for dialling
// other members' stream listeners: the -cluster-ca bundle verifies them,
// and the daemon's own serving certificate doubles as its client
// certificate (mutual TLS) when one is configured.
func loadClusterTLS(caFile, certFile, keyFile string) (*tls.Config, error) {
	pemBytes, err := os.ReadFile(caFile)
	if err != nil {
		return nil, err
	}
	roots := x509.NewCertPool()
	if !roots.AppendCertsFromPEM(pemBytes) {
		return nil, fmt.Errorf("no CA certificates in %s", caFile)
	}
	cfg := &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12}
	if certFile != "" && keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("load cluster client certificate: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// handleMigrate serves POST /migrate: a live hand-off of one slot range —
// the Γ ids living in it and the pool's merged frequency state — to another
// member, installed cluster-wide under a bumped placement epoch.
//
//	{"from_slot": 0, "to_slot": 1023, "target": "10.0.0.2:7947"}
//
// The transfer is flush-barriered (in-queue ids reach the samplers before
// export) and loses no Γ state: the ids and the sketch evidence travel
// together, and the target merges both before the ownership flip routes new
// arrivals its way. Ids ingested at the source between export and the flip
// stay where they are — transiently misplaced, still sampled correctly,
// since cluster sampling weights members by realised |Γ|.
func (d *daemon) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if d.cluster == nil {
		httpError(w, http.StatusBadRequest, "daemon is not clustered (-cluster)")
		return
	}
	var req struct {
		FromSlot *int   `json:"from_slot"`
		ToSlot   *int   `json:"to_slot"`
		Target   string `json:"target"`
	}
	if err := decodeAdminJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if req.FromSlot == nil || req.ToSlot == nil || req.Target == "" {
		httpError(w, http.StatusBadRequest, `missing "from_slot", "to_slot" or "target"`)
		return
	}
	from, to := *req.FromSlot, *req.ToSlot
	if from < 0 || to >= shard.PlacementSlots || from > to {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("slot range [%d, %d] outside [0, %d]", from, to, shard.PlacementSlots-1))
		return
	}
	target := d.cluster.IndexOf(req.Target)
	if target < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("target %q is not a cluster member", req.Target))
		return
	}
	if target == d.cluster.SelfIndex() {
		httpError(w, http.StatusBadRequest, "target is this member")
		return
	}
	if !d.opMu.TryLock() {
		conflict(w, "another migration, resize or snapshot is in progress")
		return
	}
	defer d.opMu.Unlock()
	if !d.cluster.OwnsRange(from, to) {
		httpError(w, http.StatusConflict, fmt.Sprintf("this member does not own all of slots [%d, %d]", from, to))
		return
	}
	began := time.Now()
	// Barrier: ids already acknowledged into shard queues reach the
	// samplers (and therefore the export) before the range is read.
	if err := d.pool.Flush(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	inRange := func(id uint64) bool {
		slot := d.cluster.SlotOf(id)
		return slot >= from && slot <= to
	}
	ids, state, err := d.pool.ExportState(inRange)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	epoch := d.cluster.Epoch() + 1
	blob, err := cluster.EncodeMigration(cluster.Migration{
		Epoch:    epoch,
		FromSlot: uint32(from),
		ToSlot:   uint32(to),
		Strategy: d.pool.Strategy(),
		IDs:      ids,
		State:    state,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if d.migrateHook != nil {
		d.migrateHook()
	}
	ackEpoch, err := d.cluster.MigrateTo(target, blob, clusterMigrateTimeout)
	if err != nil {
		d.logger.Error("migration failed", "target", req.Target,
			"from_slot", from, "to_slot", to, "error", err)
		httpError(w, http.StatusBadGateway, fmt.Sprintf("transfer to %s: %v", req.Target, err))
		return
	}
	// The target holds the range's state now. Flip ownership before
	// dropping anything: epochs are allocated without fleet-wide
	// coordination (each source proposes Epoch()+1 under its own opMu), so
	// a concurrent migration elsewhere can have installed this epoch first.
	// When that race is lost, keep our copy — the target's duplicate is
	// merely over-remembered, which is safe — and surface the conflict
	// instead of silently reporting success against a routing table that
	// never flipped.
	if !d.cluster.ApplyPlacement(ackEpoch, from, to, target) {
		cur := d.cluster.Epoch()
		d.logger.Error("migration epoch conflict", "target", req.Target,
			"from_slot", from, "to_slot", to, "epoch", ackEpoch, "current_epoch", cur)
		httpError(w, http.StatusConflict, fmt.Sprintf(
			"placement epoch %d was superseded by a concurrent migration (current epoch %d); nothing dropped, state duplicated on %s — retry",
			ackEpoch, cur, req.Target))
		return
	}
	d.cluster.BroadcastPlacement(ackEpoch, from, to, target)
	// Drop exactly the exported Γ ids, not the whole slot range: ingest
	// continued throughout the transfer, and in-range ids that arrived
	// after the export were never sent to the target — they stay here,
	// transiently misplaced but still sampled (cluster sampling weights
	// members by realised |Γ|), rather than vanishing from the cluster-wide
	// Γ. The frequency sketches stay merged on both sides —
	// over-remembering an attacker is safe, forgetting is not.
	exported := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		exported[id] = struct{}{}
	}
	dropped, err := d.pool.DropMemory(func(id uint64) bool {
		_, ok := exported[id]
		return ok
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	d.cluster.NoteMigration(false)
	d.logger.Info("migration complete", "target", req.Target,
		"from_slot", from, "to_slot", to, "moved_ids", len(ids),
		"dropped", dropped, "epoch", ackEpoch, "duration", time.Since(began))
	writeJSON(w, map[string]any{
		"target":    req.Target,
		"from_slot": from,
		"to_slot":   to,
		"moved_ids": len(ids),
		"epoch":     ackEpoch,
	})
}

// importMigration is the target side of a hand-off: merge the range's
// frequency state and Γ ids into the local pool, then take ownership. A
// proposal whose epoch is not newer than the current table is rejected —
// acking it would let the source drop ids behind a routing flip that the
// fleet will never install (sources allocate epochs uncoordinated, so two
// concurrent migrations can propose the same one).
func (d *daemon) importMigration(m cluster.Migration) (uint64, error) {
	if d.cluster == nil {
		return 0, errors.New("daemon is not clustered")
	}
	if m.Strategy != d.pool.Strategy() {
		return 0, fmt.Errorf("migration carries strategy %q, this member runs %q", m.Strategy, d.pool.Strategy())
	}
	if cur := d.cluster.Epoch(); m.Epoch <= cur {
		return 0, fmt.Errorf("migration epoch %d is stale (placement epoch is already %d) — concurrent migration won the race, retry", m.Epoch, cur)
	}
	if err := d.pool.ImportState(m.IDs, m.State); err != nil {
		return 0, err
	}
	if !d.cluster.ApplyPlacement(m.Epoch, int(m.FromSlot), int(m.ToSlot), d.cluster.SelfIndex()) {
		// A concurrent placement bump landed between the staleness check
		// and the install. The imported ids stay in our Γ (misplaced,
		// never lost); erroring out keeps the source from dropping its
		// copy or flipping ownership under a dead epoch.
		return 0, fmt.Errorf("placement epoch %d was superseded during import (now %d) — imported state retained, source must retry", m.Epoch, d.cluster.Epoch())
	}
	d.cluster.NoteMigration(true)
	d.logger.Info("migration imported", "from_slot", m.FromSlot, "to_slot", m.ToSlot,
		"ids", len(m.IDs), "epoch", m.Epoch)
	return m.Epoch, nil
}

// collectCluster exports the cluster plane's metric families: epoch,
// membership health, per-member forwarding accounting and the sample
// fan-out counters. Registered only when -cluster is on.
func (d *daemon) collectCluster() []telemetry.Family {
	st := d.cluster.Stats()
	fams := []telemetry.Family{
		telemetry.G("unsd_cluster_members",
			"Configured cluster member count.",
			float64(len(st.Members))),
		telemetry.G("unsd_cluster_epoch",
			"Current cluster placement epoch (bumped by each migration).",
			float64(st.Epoch)),
		telemetry.C("unsd_cluster_stale_forwards_total",
			"Forward batches that arrived tagged with an older placement epoch (ingested locally).",
			float64(st.StaleForwards)),
		telemetry.C("unsd_cluster_migrations_in_total",
			"Slot-range migrations imported by this member.",
			float64(st.MigrationsIn)),
		telemetry.C("unsd_cluster_migrations_out_total",
			"Slot-range migrations exported by this member.",
			float64(st.MigrationsOut)),
		telemetry.C("unsd_cluster_sample_fanouts_total",
			"Cluster-wide sample requests fanned out by this member.",
			float64(d.clusterFanouts.Load())),
		telemetry.C("unsd_cluster_sample_member_misses_total",
			"Members excluded from a sample merge because they were down or timed out.",
			float64(d.clusterFanoutMissing.Load())),
	}
	connected := telemetry.Family{
		Name: "unsd_cluster_member_connected",
		Help: "Whether the persistent connection to each member is up (self is always 1).",
		Type: telemetry.Gauge,
	}
	slots := telemetry.Family{
		Name: "unsd_cluster_member_slots",
		Help: "Hash-space slots owned by each member under the current placement.",
		Type: telemetry.Gauge,
	}
	forwarded := telemetry.Family{
		Name: "unsd_cluster_forwarded_ids_total",
		Help: "Ids forwarded to each member over the cluster plane.",
		Type: telemetry.Counter,
	}
	fallbacks := telemetry.Family{
		Name: "unsd_cluster_fallback_ids_total",
		Help: "Ids ingested locally because their owner member was unreachable or its queue full.",
		Type: telemetry.Counter,
	}
	for _, m := range st.Members {
		label := []telemetry.Label{{Name: "member", Value: m.Addr}}
		connected.Samples = append(connected.Samples, telemetry.Sample{Labels: label, Value: telemetry.B(m.Connected)})
		slots.Samples = append(slots.Samples, telemetry.Sample{Labels: label, Value: float64(m.Slots)})
		if m.Self {
			continue
		}
		forwarded.Samples = append(forwarded.Samples, telemetry.Sample{Labels: label, Value: float64(m.ForwardedIDs)})
		fallbacks.Samples = append(fallbacks.Samples, telemetry.Sample{Labels: label, Value: float64(m.FallbackIDs)})
	}
	return append(fams, connected, slots, forwarded, fallbacks)
}

// sampleRNG is the daemon's merge randomness: one generator behind a mutex,
// used only on the (rare, network-bound) cluster sample path.
type sampleRNG struct {
	mu sync.Mutex
	r  *rng.Xoshiro
}

func newSampleRNG(seed uint64) *sampleRNG {
	return &sampleRNG{r: rng.New(rng.Mix64(seed ^ 0x636c7573746572))} // "cluster"
}
