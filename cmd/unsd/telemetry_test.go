package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"nodesampling/internal/telemetry"
)

// scrapeMetrics fetches and parses GET /metrics from a test server.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *telemetry.Scrape {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("/metrics Content-Type %q, want %q", ct, telemetry.ContentType)
	}
	s, err := telemetry.Parse(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return s
}

func pushRange(t *testing.T, d *daemon, n, distinct int) {
	t.Helper()
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i % distinct)
	}
	if err := d.pool.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExpositionFormat pins the satellite contract: every family on
// a live daemon's /metrics carries # TYPE and # HELP lines, every name
// matches [a-z_:]+ with the unsd_ prefix, and every unlabelled counter is
// monotone across live resizes (the retired-shard fold-in must never make
// a counter go backwards).
func TestMetricsExpositionFormat(t *testing.T) {
	o := defaultOptions()
	o.uniformityWindow = 256
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	pushRange(t, d, 2048, 100)
	sub, err := d.pool.Subscribe(128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.pool.Unsubscribe(sub)

	nameRE := regexp.MustCompile(`^unsd_[a-z_:]+$`)
	counters := func(s *telemetry.Scrape) map[string]float64 {
		out := make(map[string]float64)
		for _, f := range s.Families {
			if !nameRE.MatchString(f.Name) {
				t.Errorf("family %q does not match ^unsd_[a-z_:]+$", f.Name)
			}
			if f.Type != "counter" && f.Type != "gauge" && f.Type != "histogram" {
				t.Errorf("family %s has no # TYPE line (or unknown type %q)", f.Name, f.Type)
			}
			if f.Help == "" {
				t.Errorf("family %s has no # HELP line", f.Name)
			}
			if f.Type == "counter" && len(f.Samples) == 1 && len(f.Samples[0].Labels) == 0 {
				out[f.Name] = f.Samples[0].Value
			}
			// Histogram _count and cumulative bucket counts are counters
			// too: the resize hand-off must never lose an observation.
			if f.Type == "histogram" && len(f.Histograms) == 1 && len(f.Histograms[0].Labels) == 0 {
				h := f.Histograms[0]
				out[f.Name+"_count"] = h.Count
				for _, b := range h.Buckets {
					out[fmt.Sprintf("%s_bucket{le=%v}", f.Name, b.UpperBound)] = b.Count
				}
			}
		}
		return out
	}

	before := counters(scrapeMetrics(t, ts))
	if len(before) == 0 {
		t.Fatal("no unlabelled counter families exported")
	}
	for _, n := range []int{7, 3, 6} {
		if err := d.pool.Resize(n); err != nil {
			t.Fatalf("Resize(%d): %v", n, err)
		}
		pushRange(t, d, 2048, 100)
		after := counters(scrapeMetrics(t, ts))
		for name, prev := range before {
			now, ok := after[name]
			if !ok {
				t.Errorf("counter %s disappeared after resize to %d", name, n)
				continue
			}
			if now < prev {
				t.Errorf("counter %s went backwards across resize to %d: %v -> %v", name, n, prev, now)
			}
		}
		before = after
	}

	// The load-bearing families from every plane must be present.
	s := scrapeMetrics(t, ts)
	for _, name := range []string{
		"unsd_pool_processed_ids_total", "unsd_pool_dropped_ids_total",
		"unsd_pool_emit_dropped_ids_total", "unsd_pool_queue_depth_batches",
		"unsd_pool_shards", "unsd_pool_map_epoch",
		"unsd_shard_processed_ids_total", "unsd_subscriber_offered_ids_total",
		"unsd_autoscale_enabled", "unsd_autoscale_load_ewma",
		"unsd_autoscale_ticks_total", "unsd_autoscale_resizes_total",
		"unsd_stream_connections", "unsd_stream_accepted_total",
		"unsd_stream_frame_errors_total", "unsd_gossip_connections",
		"unsd_auth_failures_total", "unsd_snapshot_writes_total",
		"unsd_snapshot_failures_total", "unsd_snapshot_sealed",
		"unsd_uniformity_input_kl", "unsd_uniformity_output_kl",
		"unsd_uniformity_gain", "unsd_uptime_seconds",
		"unsd_snapshot_write_duration_seconds", "unsd_resize_duration_seconds",
		"unsd_sample_duration_seconds", "unsd_ingest_batch_duration_seconds",
		"unsd_emit_delivery_lag_seconds",
	} {
		if s.Family(name) == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	// The latency families are real histograms that Parse round-trips:
	// after driving the ingest and sample paths through HTTP, _count moves
	// and the +Inf bucket agrees with it.
	resp, err := http.Get(ts.URL + "/sample?n=16")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := postPush(t, ts.URL, []uint64{1, 2, 3}).StatusCode; code != http.StatusOK {
		t.Fatalf("/push status %d", code)
	}
	s = scrapeMetrics(t, ts)
	for _, name := range []string{"unsd_sample_duration_seconds", "unsd_ingest_batch_duration_seconds"} {
		h := s.Histogram(name)
		if h == nil {
			t.Fatalf("%s did not parse as a histogram", name)
		}
		if h.Count < 1 {
			t.Errorf("%s _count = %v, want >= 1 after driving the surface", name, h.Count)
		}
		if last := h.Buckets[len(h.Buckets)-1]; last.Count != h.Count {
			t.Errorf("%s +Inf bucket %v != _count %v", name, last.Count, h.Count)
		}
	}
}

// TestMetricsReconcilesWithStats cross-checks the two observability
// surfaces on one daemon: the Prometheus families must agree with the
// /stats JSON they were adapted from.
func TestMetricsReconcilesWithStats(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	pushRange(t, d, 4096, 200)
	sub, err := d.pool.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.pool.Unsubscribe(sub)
	pushRange(t, d, 1024, 200)

	// Scrape after quiescing ingest so both surfaces see the same state.
	s := scrapeMetrics(t, ts)
	var stats struct {
		Processed   uint64 `json:"processed"`
		Dropped     uint64 `json:"dropped"`
		EmitDropped uint64 `json:"emit_dropped"`
		ShardCount  int    `json:"shard_count"`
		MapEpoch    uint64 `json:"map_epoch"`
		GossipConns int    `json:"gossip_connections"`
		StreamConns int    `json:"stream_connections"`
		Subscribers []struct {
			ID      uint64 `json:"id"`
			Offered uint64 `json:"offered"`
		} `json:"subscribers"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}

	check := func(metric string, want float64, labels ...string) {
		t.Helper()
		got, ok := s.Value(metric, labels...)
		if !ok {
			t.Errorf("metric %s%v missing", metric, labels)
			return
		}
		if got != want {
			t.Errorf("metric %s%v = %v, /stats says %v", metric, labels, got, want)
		}
	}
	check("unsd_pool_processed_ids_total", float64(stats.Processed))
	check("unsd_pool_dropped_ids_total", float64(stats.Dropped))
	check("unsd_pool_emit_dropped_ids_total", float64(stats.EmitDropped))
	check("unsd_pool_shards", float64(stats.ShardCount))
	check("unsd_pool_map_epoch", float64(stats.MapEpoch))
	check("unsd_gossip_connections", float64(stats.GossipConns))
	check("unsd_stream_connections", float64(stats.StreamConns))
	if len(stats.Subscribers) != 1 {
		t.Fatalf("want 1 subscriber in /stats, got %d", len(stats.Subscribers))
	}
	check("unsd_subscriber_offered_ids_total", float64(stats.Subscribers[0].Offered),
		"subscriber", fmt.Sprintf("%d", stats.Subscribers[0].ID))
}

// TestMetricsGatedLikeStats: /metrics rides the read surface — open by
// default, behind the bearer token under -admin-token-all.
func TestMetricsGatedLikeStats(t *testing.T) {
	open := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(open.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open daemon /metrics status %d", resp.StatusCode)
	}

	o := defaultOptions()
	o.adminToken = "hunter2hunter2"
	o.adminTokenAll = true
	gated := testDaemon(t, o)
	ts2 := httptest.NewServer(gated.handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless /metrics under -admin-token-all: status %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/metrics", nil)
	req.Header.Set("Authorization", "Bearer hunter2hunter2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized /metrics status %d", resp.StatusCode)
	}
	if _, err := telemetry.Parse(resp.Body); err != nil {
		t.Fatalf("authorized /metrics did not parse: %v", err)
	}
}

// TestPprofBehindAdminToken: the -pprof mount is operator material — no
// credential answers 401 with a challenge, a wrong one 403, the right one
// serves the index; and -pprof without a token refuses at boot.
func TestPprofBehindAdminToken(t *testing.T) {
	o := defaultOptions()
	o.pprof = true
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "-admin-token") {
		t.Fatalf("-pprof without a token: err = %v, want refusal naming -admin-token", err)
	}

	o.adminToken = "profiling-secret"
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("credential-less pprof: status %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/pprof/", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-token pprof: status %d, want 403", resp.StatusCode)
	}
	req.Header.Set("Authorization", "Bearer profiling-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized pprof index: status %d", resp.StatusCode)
	}

	// The auth failures above must be on the counter.
	s := func() *telemetry.Scrape {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc, err := telemetry.Parse(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}()
	if v, ok := s.Value("unsd_auth_failures_total"); !ok || v < 2 {
		t.Fatalf("unsd_auth_failures_total = %v (ok=%v), want >= 2", v, ok)
	}

	// Without -pprof the debug surface must not exist at all.
	bare := testDaemon(t, defaultOptions())
	ts2 := httptest.NewServer(bare.handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: status %d, want 404", resp.StatusCode)
	}
}

// TestUniformityGaugeDegradesAndRecovers is the live-gauge acceptance
// scenario on a real daemon: uniform traffic through the HTTP ingest front
// keeps input KL near zero, a targeted flood (one id dominating) drives it
// up, and uniform traffic again slides the flood out of the window.
func TestUniformityGaugeDegradesAndRecovers(t *testing.T) {
	o := defaultOptions()
	o.uniformityWindow = 512
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// The input probe decimates 1-in-8, so a full window needs
	// window×8 offered ids.
	fill := o.uniformityWindow * uniformityInputEvery
	pushHTTP := func(gen func(i int) uint64, n int) {
		t.Helper()
		const batch = 1024
		ids := make([]uint64, 0, batch)
		for i := 0; i < n; i++ {
			ids = append(ids, gen(i))
			if len(ids) == batch || i == n-1 {
				resp := postPush(t, ts.URL, ids)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("/push status %d", resp.StatusCode)
				}
				ids = ids[:0]
			}
		}
	}
	inputKL := func() float64 {
		t.Helper()
		s := scrapeMetrics(t, ts)
		v, ok := s.Value("unsd_uniformity_input_kl")
		if !ok {
			t.Fatal("unsd_uniformity_input_kl has no sample")
		}
		return v
	}

	// A 512-id window over 64 uniform ids carries multinomial noise of
	// roughly (distinct-1)/(2·window) ≈ 0.06 nats; 0.25 is comfortably
	// above it and far below any flood signal.
	const calm = 0.25
	pushHTTP(func(i int) uint64 { return uint64(i%64) + 1 }, fill)
	baseline := inputKL()
	if baseline > calm {
		t.Fatalf("uniform baseline input KL = %v, want < %v", baseline, calm)
	}

	pushHTTP(func(int) uint64 { return 424242 }, fill*8/10)
	flooded := inputKL()
	if flooded < baseline+0.5 {
		t.Fatalf("targeted flood did not degrade the gauge: baseline %v, flooded %v", baseline, flooded)
	}

	// The output side (fed from Γ at scrape time) must be exported too.
	s := scrapeMetrics(t, ts)
	if _, ok := s.Value("unsd_uniformity_output_kl"); !ok {
		t.Error("unsd_uniformity_output_kl has no sample on a non-empty pool")
	}

	pushHTTP(func(i int) uint64 { return uint64(i%64) + 1 }, fill*2)
	recovered := inputKL()
	if recovered > calm {
		t.Fatalf("gauge did not recover after the flood: KL %v (flooded %v)", recovered, flooded)
	}
}

// TestLogFlagValidation: unknown log levels and formats refuse at boot,
// and the structured logger honours the configured encoding.
func TestLogFlagValidation(t *testing.T) {
	o := defaultOptions()
	o.logLevel = "loud"
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bogus -log-level: err = %v", err)
	}
	o = defaultOptions()
	o.logFormat = "yaml"
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Fatalf("bogus -log-format: err = %v", err)
	}

	var sb safeBuilder
	o = defaultOptions()
	o.logFormat = "json"
	o.warnw = &sb
	d := testDaemon(t, o)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	code := postJSON(t, ts.URL+"/resize", map[string]int{"shards": 2}, &struct{}{})
	if code != http.StatusOK {
		t.Fatalf("/resize status %d", code)
	}
	waitFor(t, "a structured resize log line", func() bool {
		return strings.Contains(sb.String(), `"msg":"resize"`) &&
			strings.Contains(sb.String(), `"source":"admin"`)
	})
}
