package main

import (
	"crypto/tls"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"nodesampling/internal/netgossip"
)

// TestGossipListenerTLS closes the last plaintext gap: with the TLS plane
// configured, the legacy one-way -gossip listener speaks TLS (mutual TLS
// under -tls-client-ca) exactly like the framed stream listener. A
// plaintext gossiper and a certificate-less TLS gossiper are both turned
// away before a single id reaches the pool; a peer presenting a
// certificate chained to the daemon's CA feeds it.
func TestGossipListenerTLS(t *testing.T) {
	kit := newCertKit(t)
	ctx, cancel := testContext(t)
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0",
			"-shards", "2", "-c", "5", "-k", "6", "-s", "3", "-seed", "13",
			"-tls-cert", kit.serverCertPath, "-tls-key", kit.serverKeyPath,
			"-tls-client-ca", kit.caPath,
		}, &sb)
	}()
	gossipAddr := waitForListener(t, &sb, "gossip listening on ")
	httpAddr := waitForListener(t, &sb, "http listening on ")
	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: kit.clientTLS(t, nil)}}
	processed := func() uint64 {
		t.Helper()
		resp, err := hc.Get("https://" + httpAddr + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Processed uint64 `json:"processed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats.Processed
	}

	// Plaintext gossiper: the TLS listener must shut the connection during
	// the handshake, so pushing either errors or lands nowhere. A bounded
	// burst is enough — the /stats assertion below is the real check.
	plain, err := netgossip.NewPeer(netgossip.Config{Self: 7, C: 10, K: 8, S: 4, Fanout: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Connect(gossipAddr); err == nil {
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			if _, err := plain.PushRound(); err != nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Certificate-less TLS gossiper: the handshake itself must fail under
	// RequireAndVerifyClientCert. tls.Dial returns before the server
	// requests the client certificate, so force the handshake explicitly.
	if conn, err := tls.Dial("tcp", gossipAddr, kit.clientTLS(t, nil)); err == nil {
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		if err := conn.Handshake(); err == nil {
			// The server may only reject once the first record arrives.
			if _, err := conn.Write([]byte{0}); err == nil {
				buf := make([]byte, 1)
				if _, err := conn.Read(buf); err == nil {
					t.Fatal("certificate-less TLS connection served by the mTLS gossip listener")
				}
			}
		}
		conn.Close()
	}
	if got := processed(); got != 0 {
		t.Fatalf("unauthenticated gossip fed the pool: processed = %d, want 0", got)
	}

	// The real peer: TLS with the kit's client certificate, speaking the
	// gossip protocol over the authenticated connection.
	sender, err := netgossip.NewPeer(netgossip.Config{Self: 9, C: 10, K: 8, S: 4, Fanout: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	conn, err := tls.Dial("tcp", gossipAddr, kit.clientTLS(t, &kit.clientCert))
	if err != nil {
		t.Fatalf("mTLS dial of the gossip listener: %v", err)
	}
	if err := sender.AddConn(conn); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 500; i++ {
			if _, err := sender.PushRound(); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	waitFor(t, "authenticated gossip ids to reach the pool", func() bool {
		return processed() > 0
	})

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}
