package main

// End-to-end tests for the clustered sampling plane: a real 3-daemon fleet
// over TCP — rendezvous routing of ingest to slot owners, the Γ-weighted
// cluster-wide sample fan-out (chi-square-checked under disproportionate
// member memories), live slot-range migration through POST /migrate, client
// failover across members, rate-capped subscriptions and decimation-phase
// resume, all through the same wire surfaces production uses.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/client"
	"nodesampling/internal/cluster"
	"nodesampling/internal/metrics"
	"nodesampling/internal/netgossip"
	"nodesampling/internal/shard"
)

// testClusterDaemons boots an n-member fleet on pre-bound loopback
// listeners (the member list must be known before the daemons exist) and
// blocks until every member's persistent connections to its peers are up —
// pushing before that would exercise the fallback path, not routing.
func testClusterDaemons(t *testing.T, n int, tweak func(*options)) ([]*daemon, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ds := make([]*daemon, n)
	for i := range ds {
		o := defaultOptions()
		o.clusterMembers = addrs
		o.clusterSelf = addrs[i]
		if tweak != nil {
			tweak(&o)
		}
		d := testDaemon(t, o)
		d.serveStream(lns[i])
		ds[i] = d
	}
	waitFor(t, "the cluster mesh to connect", func() bool {
		for _, d := range ds {
			for _, m := range d.cluster.Stats().Members {
				if !m.Self && !m.Connected {
					return false
				}
			}
		}
		return true
	})
	// The cluster sorts the member list lexicographically, so a daemon's
	// cluster-wide index need not match its boot order. Return both slices
	// in cluster-index order so tests can equate ds[i] with owner index i.
	ordered := make([]*daemon, n)
	orderedAddrs := make([]string, n)
	for i, d := range ds {
		idx := d.cluster.SelfIndex()
		ordered[idx] = d
		orderedAddrs[idx] = addrs[i]
	}
	return ordered, orderedAddrs
}

// ownedBy partitions ids by their owner member, per ds[0]'s routing table
// (every member computes the identical table).
func ownedBy(ds []*daemon, ids []uint64) map[int][]uint64 {
	out := make(map[int][]uint64)
	for _, id := range ids {
		owner := ds[0].cluster.OwnerOf(id)
		out[owner] = append(out[owner], id)
	}
	return out
}

// memorySet flushes the pool and returns its Γ as a sorted slice.
func memorySet(t *testing.T, d *daemon) []uint64 {
	t.Helper()
	if err := d.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	mem := d.pool.Memory()
	sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
	return mem
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterRoutingConvergence is the tentpole's routing half: ids pushed
// at ANY member must land in exactly their owner's Γ. Three members, the
// population pushed through a different entry member per round, and every
// daemon's memory must converge to precisely its owned subset.
func TestClusterRoutingConvergence(t *testing.T) {
	ds, addrs := testClusterDaemons(t, 3, func(o *options) { o.c = 100 })

	const population = 240
	ids := make([]uint64, population)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	byOwner := ownedBy(ds, ids)
	for owner := 0; owner < 3; owner++ {
		if len(byOwner[owner]) == 0 {
			t.Fatalf("degenerate rendezvous split: member %d owns nothing of %d ids", owner, population)
		}
		sort.Slice(byOwner[owner], func(i, j int) bool { return byOwner[owner][i] < byOwner[owner][j] })
	}

	// Each member serves as the ingest entry for one round of the whole
	// population: every id therefore arrives at least once at a member that
	// does NOT own it and must be forwarded.
	batch := make([]nodesampling.NodeID, population)
	for i, id := range ids {
		batch[i] = nodesampling.NodeID(id)
	}
	for _, addr := range addrs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	// Forwarding is asynchronous; converge means every daemon's Γ is
	// exactly its owned subset — nothing missing, nothing misplaced.
	waitFor(t, "every id to reach its owner and only its owner", func() bool {
		for i, d := range ds {
			if !equalU64(memorySet(t, d), byOwner[i]) {
				return false
			}
		}
		return true
	})

	// The fleet actually forwarded (this is not a single-node degenerate
	// case), and the stats surface says so.
	forwarded := uint64(0)
	for _, d := range ds {
		for _, m := range d.cluster.Stats().Members {
			forwarded += m.ForwardedIDs
		}
	}
	if forwarded == 0 {
		t.Fatal("no ids were forwarded between members")
	}
}

// TestClusterSampleUniformDisproportionate is the acceptance chi-square:
// cluster-wide Sample must be uniform over the union of member memories
// even when the members hold wildly different |Γ| — 384/96/32 here, so an
// unweighted merge would be visibly (and catastrophically) biased toward
// the small members' ids. df = 511; the 99.99th percentile of chi-square
// with 511 degrees of freedom is ≈ 639, so 650 keeps false failures out.
func TestClusterSampleUniformDisproportionate(t *testing.T) {
	ds, _ := testClusterDaemons(t, 3, func(o *options) { o.c = 120 })

	// Build the population by owner quota: ample capacity everywhere, the
	// disproportion entirely in how many ids each member owns.
	quota := map[int]int{0: 384, 1: 96, 2: 32}
	var population []uint64
	for id := uint64(1); len(population) < 512; id++ {
		owner := ds[0].cluster.OwnerOf(id)
		if quota[owner] > 0 {
			quota[owner]--
			population = append(population, id)
		}
	}
	byOwner := ownedBy(ds, population)
	if len(byOwner[0]) != 384 || len(byOwner[1]) != 96 || len(byOwner[2]) != 32 {
		t.Fatalf("quota fill broke: %d/%d/%d", len(byOwner[0]), len(byOwner[1]), len(byOwner[2]))
	}

	if err := ds[0].ingestRouted(population, "stream"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the skewed population to settle at its owners", func() bool {
		total := 0
		for _, d := range ds {
			total += len(memorySet(t, d))
		}
		return total == len(population)
	})

	// Draw through the fan-out at every member in turn: a sample must be
	// uniform no matter which member answers it.
	hist := metrics.NewHistogram()
	const rounds = 24
	for r := 0; r < rounds; r++ {
		draws := ds[r%3].sampleN(512)
		if len(draws) != 512 {
			t.Fatalf("round %d: fan-out returned %d draws, want 512", r, len(draws))
		}
		for _, id := range draws {
			hist.Add(id)
		}
	}
	chi, err := hist.ChiSquareUniform(len(population))
	if err != nil {
		t.Fatal(err)
	}
	if chi > 650 {
		t.Fatalf("cluster-wide sample not uniform over disproportionate members: chi2 = %v (df = 511)", chi)
	}
}

// TestClusterLiveMigration is the acceptance migration scenario: a hot id's
// slot is handed from member 0 to member 1 through POST /migrate while the
// fleet runs. The frequency estimate must survive the move, the Γ ids must
// change hands, the placement epoch must propagate to the third member, and
// new ingest for the moved range must route to its new owner.
func TestClusterLiveMigration(t *testing.T) {
	ds, addrs := testClusterDaemons(t, 3, func(o *options) { o.c = 120 })
	ts := httptest.NewServer(ds[0].handler())
	defer ts.Close()

	// Warm a mixed-ownership population through member 0.
	var population []uint64
	for id := uint64(1); id <= 200; id++ {
		population = append(population, id)
	}
	if err := ds[0].ingestRouted(population, "stream"); err != nil {
		t.Fatal(err)
	}
	// A hot id owned by member 0, hammered so its sketch count towers over
	// the rest — the estimate the migration must not lose.
	var hot uint64
	for id := uint64(1000); ; id++ {
		if ds[0].cluster.OwnerOf(id) == 0 {
			hot = id
			break
		}
	}
	hotBatch := make([]uint64, 100)
	for i := range hotBatch {
		hotBatch[i] = hot
	}
	for r := 0; r < 5; r++ {
		if err := ds[0].ingestRouted(hotBatch, "stream"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "the population and hot id to settle", func() bool {
		for _, d := range ds {
			if err := d.pool.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		return ds[0].pool.Estimate(hot) >= 500
	})
	pre := ds[0].pool.Estimate(hot)
	slot := ds[0].cluster.SlotOf(hot)
	if ds[0].cluster.SlotOwner(slot) != 0 {
		t.Fatalf("slot %d not owned by member 0", slot)
	}

	// The live hand-off: one slot, member 0 -> member 1.
	body, _ := json.Marshal(map[string]any{"from_slot": slot, "to_slot": slot, "target": addrs[1]})
	resp, err := http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Target   string `json:"target"`
		FromSlot int    `json:"from_slot"`
		ToSlot   int    `json:"to_slot"`
		MovedIDs int    `json:"moved_ids"`
		Epoch    uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /migrate = %d (%+v)", resp.StatusCode, result)
	}
	if result.MovedIDs < 1 || result.Epoch != 1 || result.Target != addrs[1] {
		t.Fatalf("migration result %+v, want >= 1 moved id at epoch 1", result)
	}

	// No lost Γ state: the hot id now lives on member 1 with its frequency
	// evidence intact (the merged sketch never undercounts), and member 0
	// dropped its copy.
	if got := ds[1].pool.Estimate(hot); got < pre {
		t.Fatalf("hot id estimate %d on the target, want >= %d (pre-migration)", got, pre)
	}
	inMem := func(d *daemon, id uint64) bool {
		for _, m := range memorySet(t, d) {
			if m == id {
				return true
			}
		}
		return false
	}
	if !inMem(ds[1], hot) {
		t.Fatal("hot id missing from the target's Γ after migration")
	}
	if inMem(ds[0], hot) {
		t.Fatal("hot id still in the source's Γ after migration")
	}

	// The epoch bump reaches the uninvolved member via the placement
	// broadcast, flipping its routing for the moved slot.
	waitFor(t, "the placement broadcast to reach member 2", func() bool {
		return ds[2].cluster.Epoch() == 1 && ds[2].cluster.SlotOwner(slot) == 1
	})
	for i, d := range ds {
		if d.cluster.SlotOwner(slot) != 1 {
			t.Fatalf("member %d still routes slot %d to owner %d", i, slot, d.cluster.SlotOwner(slot))
		}
	}

	// New ingest for the moved range — entering at the OLD owner — lands on
	// the new one.
	var fresh uint64
	for id := hot + 1; ; id++ {
		if ds[0].cluster.SlotOf(id) == slot {
			fresh = id
			break
		}
	}
	if err := ds[0].ingestRouted([]uint64{fresh}, "stream"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-migration ingest to land on the new owner", func() bool {
		return inMem(ds[1], fresh)
	})
	if inMem(ds[0], fresh) {
		t.Fatal("post-migration ingest stuck on the old owner")
	}

	// Uniformity survives the topology change: cluster-wide draws after the
	// hand-off stay chi-square-uniform over the (now re-homed) union — the
	// moved ids are neither over-weighted on their new member nor shadowed
	// by the transfer. The union is the 200-id warmup + hot + fresh = 202
	// cells; the 99.99th percentile of chi-square with df = 201 is ≈ 285.
	union := append(append([]uint64(nil), population...), hot, fresh)
	hist := metrics.NewHistogram()
	for r := 0; r < 24; r++ {
		draws := ds[r%3].sampleN(512)
		if len(draws) != 512 {
			t.Fatalf("post-migration round %d: fan-out returned %d draws, want 512", r, len(draws))
		}
		for _, id := range draws {
			hist.Add(id)
		}
	}
	chi, err := hist.ChiSquareUniform(len(union))
	if err != nil {
		t.Fatal(err)
	}
	if chi > 300 {
		t.Fatalf("cluster-wide sample not uniform after migration: chi2 = %v (df = %d)", chi, len(union)-1)
	}
}

// TestMigrateRequiresCluster: the admin surface refuses /migrate on a
// standalone daemon instead of pretending.
func TestMigrateRequiresCluster(t *testing.T) {
	d := testDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	body := []byte(`{"from_slot": 0, "to_slot": 1, "target": "127.0.0.1:1"}`)
	resp, err := http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /migrate on a standalone daemon = %d, want 400", resp.StatusCode)
	}
}

// TestClusterStatsSurface: /stats on a clustered daemon carries the cluster
// block (membership, epoch, slots); standalone daemons serve null there.
func TestClusterStatsSurface(t *testing.T) {
	ds, addrs := testClusterDaemons(t, 3, nil)
	ts := httptest.NewServer(ds[0].handler())
	defer ts.Close()
	var stats struct {
		Cluster *struct {
			Self    string `json:"self"`
			Epoch   uint64 `json:"epoch"`
			Members []struct {
				Addr      string `json:"addr"`
				Self      bool   `json:"self"`
				Connected bool   `json:"connected"`
				Slots     int    `json:"slots"`
			} `json:"members"`
		} `json:"cluster"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Cluster == nil {
		t.Fatal("no cluster block in a clustered daemon's /stats")
	}
	if stats.Cluster.Self != addrs[0] || len(stats.Cluster.Members) != 3 {
		t.Fatalf("cluster stats %+v", stats.Cluster)
	}
	slots := 0
	for _, m := range stats.Cluster.Members {
		slots += m.Slots
	}
	if slots != 4096 {
		t.Fatalf("member slot counts sum to %d, want the full table", slots)
	}
}

// TestClusterRunFlagValidation pins run()'s -cluster contract: the flag
// demands -stream, an explicit -seed and -members, and -members without
// -cluster is called out rather than ignored.
func TestClusterRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"missing stream":  {"-cluster", "-members", "a:1,b:2", "-seed", "3"},
		"missing seed":    {"-cluster", "-stream", "127.0.0.1:0", "-members", "a:1,b:2"},
		"missing members": {"-cluster", "-stream", "127.0.0.1:0", "-seed", "3"},
		"members alone":   {"-members", "a:1,b:2"},
	}
	for name, args := range cases {
		var sb safeBuilder
		if err := run(context.Background(), append(args, "-http", "127.0.0.1:0"), &sb); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

// TestClusterClientFailover: DialCluster rides out a member death by
// rotating to the next address — pushes resume against the survivor without
// the caller re-dialling.
func TestClusterClientFailover(t *testing.T) {
	d0, ln0 := testStreamDaemon(t, defaultOptions())
	d1, ln1 := testStreamDaemon(t, defaultOptions())

	c, err := client.DialCluster([]string{ln0.Addr().String(), ln1.Addr().String()}, client.DialOptions{
		Reconnect:  true,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PushBatch([]nodesampling.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the first member to hold the pushed ids", func() bool {
		if err := d0.pool.Flush(); err != nil {
			t.Fatal(err)
		}
		return d0.pool.MemoryTotal() == 3
	})

	// Kill member 0's stream plane: the live connection dies and the
	// address stops accepting, so the client must rotate to member 1.
	d0.stream.Close()
	const marker = nodesampling.NodeID(777777)
	waitFor(t, "pushes to resume against the surviving member", func() bool {
		if err := c.PushBatch([]nodesampling.NodeID{marker}); err != nil {
			return false
		}
		if err := d1.pool.Flush(); err != nil {
			t.Fatal(err)
		}
		return d1.pool.Estimate(uint64(marker)) > 0
	})
	if c.Reconnects() == 0 {
		t.Fatal("client claims it never reconnected")
	}
}

// TestStreamSubscribeRateCap drives the token-bucket satellite end to end:
// a rate-capped subscription over the wire shows its cap and a growing
// capped count in /stats while σ′ runs much faster than the budget.
func TestStreamSubscribeRateCap(t *testing.T) {
	d, ln := testStreamDaemon(t, defaultOptions())
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const rate = 5
	out, err := c.SubscribeRate(256, 1, rate)
	if err != nil {
		t.Fatal(err)
	}
	// Drain so ring drops never mask the cap accounting.
	go func() {
		for range out {
		}
	}()
	ids := make([]nodesampling.NodeID, 600)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	if err := c.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Subscribers []struct {
			Offered uint64 `json:"offered"`
			Capped  uint64 `json:"capped"`
			Rate    uint32 `json:"rate"`
		} `json:"subscribers"`
	}
	waitFor(t, "the rate cap to surface in /stats", func() bool {
		getJSON(t, ts.URL+"/stats", &stats)
		return len(stats.Subscribers) == 1 && stats.Subscribers[0].Capped > 0
	})
	if got := stats.Subscribers[0].Rate; got != rate {
		t.Fatalf("stats report rate=%d, want %d", got, rate)
	}
	// The cap actually bit: far more σ′ was offered than a 5/s budget
	// delivers over a few seconds.
	if s := stats.Subscribers[0]; s.Offered-s.Capped > s.Offered/2 {
		t.Fatalf("cap admitted %d of %d offered — not a cap", s.Offered-s.Capped, s.Offered)
	}

	// Wire-form validation: SubscribeRate rejects a zero rate locally.
	if _, err := c.SubscribeRate(16, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// TestStreamResumeTokenLifecycle pins the decimation-continuity satellite
// at the server: a subscribed connection's phase is parked under its
// SubAck token on disconnect, redeemed (single-use) by a reconnect
// presenting the token, and an unknown token still yields a working fresh
// subscription. The InitialSeen arithmetic itself is pinned in the subhub
// unit tests; this is the wire plumbing around it.
func TestStreamResumeTokenLifecycle(t *testing.T) {
	d, ln := testStreamDaemon(t, defaultOptions())

	parked := func() int {
		d.stream.resumeMu.Lock()
		defer d.stream.resumeMu.Unlock()
		return len(d.stream.resumes)
	}
	// Subscribe with the extended wire form (a rate cap high enough to
	// never bite, or a presented resume token): only those forms prove the
	// client understands the SubAck, so only they are acknowledged.
	subscribe := func(token uint64) (net.Conn, uint64) {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := netgossip.WriteFrame(conn, netgossip.Frame{
			Type: netgossip.FrameSubscribe, N: 64, Every: 4, Rate: 1 << 20, Token: token,
		}); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := netgossip.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != netgossip.FrameSubAck || f.Token == 0 {
			t.Fatalf("frame %+v, want a SubAck with a nonzero token", f)
		}
		return conn, f.Token
	}

	conn1, token1 := subscribe(0)
	conn1.Close()
	waitFor(t, "the phase to park under the token", func() bool { return parked() == 1 })

	// Redeeming the token consumes the parked entry; the resumed
	// subscription streams like any other.
	conn2, token2 := subscribe(token1)
	if token2 == token1 {
		t.Fatal("SubAck reissued the presented token")
	}
	waitFor(t, "the parked phase to be redeemed", func() bool { return parked() == 0 })

	// σ′ flows on the resumed subscription.
	pusher, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	ids := make([]nodesampling.NodeID, 400)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	if err := pusher.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(10 * time.Second))
	waitFor(t, "stream data on the resumed subscription", func() bool {
		f, err := netgossip.ReadFrame(conn2)
		if err != nil {
			t.Fatal(err)
		}
		return f.Type == netgossip.FrameStreamData
	})
	conn2.Close()
	waitFor(t, "the second phase to park", func() bool { return parked() == 1 })

	// The consumed token is gone: presenting it again starts a fresh
	// window (no error, no redemption) and leaves the second entry parked.
	conn3, _ := subscribe(token1)
	defer conn3.Close()
	if got := parked(); got != 1 {
		t.Fatalf("stale token redeemed something: %d parked entries, want 1", got)
	}

	// Backward compatibility: the legacy 8-byte Subscribe form (decimation
	// only, no rate cap or token) is NOT acknowledged — clients of that
	// vintage treat an unexpected frame type as a fatal protocol error. The
	// first frame down such a connection is stream data, never a SubAck.
	legacy, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := netgossip.WriteFrame(legacy, netgossip.Frame{
		Type: netgossip.FrameSubscribe, N: 64, Every: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := pusher.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	_ = legacy.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := netgossip.ReadFrame(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != netgossip.FrameStreamData {
		t.Fatalf("legacy subscribe answered with frame type %d, want stream data (and no SubAck)", f.Type)
	}
}

// inClusterMem reports whether id is in d's Γ (after a flush).
func inClusterMem(t *testing.T, d *daemon, id uint64) bool {
	t.Helper()
	for _, m := range memorySet(t, d) {
		if m == id {
			return true
		}
	}
	return false
}

// TestClusterMigrationTransferWindow pins the hand-off's no-loss invariant
// under live ingest: an id entering the migrated slot range AFTER the
// export but BEFORE the ownership flip was never part of the transferred
// blob, so the source must keep it — transiently misplaced, still sampled
// — rather than dropping the whole range and erasing it from the
// cluster-wide Γ.
func TestClusterMigrationTransferWindow(t *testing.T) {
	ds, addrs := testClusterDaemons(t, 2, nil)
	ts := httptest.NewServer(ds[0].handler())
	defer ts.Close()

	// Two ids sharing one member-0-owned slot: early is ingested before
	// the migration, late arrives inside the transfer window.
	var early, late uint64
	for id := uint64(1); ; id++ {
		if ds[0].cluster.OwnerOf(id) == 0 {
			early = id
			break
		}
	}
	slot := ds[0].cluster.SlotOf(early)
	for id := early + 1; ; id++ {
		if ds[0].cluster.SlotOf(id) == slot {
			late = id
			break
		}
	}
	if err := ds[0].ingestRouted([]uint64{early}, "stream"); err != nil {
		t.Fatal(err)
	}
	if err := ds[0].pool.Flush(); err != nil {
		t.Fatal(err)
	}
	ds[0].migrateHook = func() {
		// Ingest continues while the blob is in flight; the routing table
		// still points the slot at the source.
		if err := ds[0].ingestRouted([]uint64{late}, "stream"); err != nil {
			t.Error(err)
		}
		if err := ds[0].pool.Flush(); err != nil {
			t.Error(err)
		}
	}
	body, _ := json.Marshal(map[string]any{"from_slot": slot, "to_slot": slot, "target": addrs[1]})
	resp, err := http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /migrate = %d, want 200", resp.StatusCode)
	}
	if !inClusterMem(t, ds[1], early) {
		t.Fatal("exported id missing from the target after migration")
	}
	if inClusterMem(t, ds[0], early) {
		t.Fatal("exported id still on the source after migration")
	}
	// The transfer-window id was never in the blob: it survives on the
	// source instead of vanishing with a whole-range drop.
	if !inClusterMem(t, ds[0], late) {
		t.Fatal("id ingested during the transfer window vanished from the cluster-wide Γ")
	}
	if inClusterMem(t, ds[1], late) {
		t.Fatal("untransferred transfer-window id appeared on the target")
	}
}

// TestClusterMigrationEpochConflict pins the uncoordinated-epoch defence:
// when a rival migration installs the epoch this source proposed while its
// blob is in flight, the ownership flip is rejected fleet-wide — so the
// handler must surface the conflict and keep the source's Γ copy (the
// target's duplicate is merely over-remembered, which is safe) instead of
// reporting success against a routing table that never flipped.
func TestClusterMigrationEpochConflict(t *testing.T) {
	ds, addrs := testClusterDaemons(t, 3, nil)
	ts := httptest.NewServer(ds[0].handler())
	defer ts.Close()

	var id uint64
	for i := uint64(1); ; i++ {
		if ds[0].cluster.OwnerOf(i) == 0 {
			id = i
			break
		}
	}
	slot := ds[0].cluster.SlotOf(id)
	if err := ds[0].ingestRouted([]uint64{id}, "stream"); err != nil {
		t.Fatal(err)
	}
	other := (slot + 1) % shard.PlacementSlots
	ds[0].migrateHook = func() {
		// A rival migration's broadcast lands mid-transfer, installing the
		// same epoch this migration proposed for a different range.
		if !ds[0].cluster.ApplyPlacement(ds[0].cluster.Epoch()+1, other, other, 2) {
			t.Error("rival placement update did not apply")
		}
	}
	body, _ := json.Marshal(map[string]any{"from_slot": slot, "to_slot": slot, "target": addrs[1]})
	resp, err := http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /migrate with a stolen epoch = %d, want 409", resp.StatusCode)
	}
	// Nothing was dropped: the id still lives on the source, which still
	// routes the slot to itself everywhere the flip never happened.
	if !inClusterMem(t, ds[0], id) {
		t.Fatal("source dropped its Γ copy although the ownership flip failed")
	}
	if ds[0].cluster.SlotOwner(slot) != 0 || ds[2].cluster.SlotOwner(slot) != 0 {
		t.Fatal("failed migration still flipped slot ownership")
	}

	// The import side's own guard: a proposal whose epoch is not newer than
	// the target's table is refused outright — acking it would let the
	// source drop ids behind a flip the fleet will never install.
	if _, err := ds[1].importMigration(cluster.Migration{
		Epoch:    ds[1].cluster.Epoch(),
		FromSlot: uint32(slot),
		ToSlot:   uint32(slot),
		Strategy: ds[1].pool.Strategy(),
	}); err == nil {
		t.Fatal("import side accepted a stale-epoch migration")
	}
}
