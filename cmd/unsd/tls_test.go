package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/client"
	"nodesampling/internal/shard"
)

// certKit is an on-disk PKI for the TLS tests: a CA, a server certificate
// for 127.0.0.1 and a client certificate signed by that CA — plus a rogue
// client credential signed by a different CA the daemon does not trust.
type certKit struct {
	caPath, serverCertPath, serverKeyPath string

	caPEM      []byte
	clientCert tls.Certificate
	rogueCert  tls.Certificate
}

func newCertKit(t *testing.T) *certKit {
	t.Helper()
	dir := t.TempDir()
	kit := &certKit{
		caPath:         filepath.Join(dir, "ca.pem"),
		serverCertPath: filepath.Join(dir, "server.pem"),
		serverKeyPath:  filepath.Join(dir, "server.key"),
	}
	caKey, caCert, caPEM := newTestCA(t, "unsd test CA")
	kit.caPEM = caPEM
	writeFile(t, kit.caPath, caPEM)

	serverCertPEM, serverKeyPEM := issueCert(t, caCert, caKey, x509.ExtKeyUsageServerAuth)
	writeFile(t, kit.serverCertPath, serverCertPEM)
	writeFile(t, kit.serverKeyPath, serverKeyPEM)

	clientCertPEM, clientKeyPEM := issueCert(t, caCert, caKey, x509.ExtKeyUsageClientAuth)
	cert, err := tls.X509KeyPair(clientCertPEM, clientKeyPEM)
	if err != nil {
		t.Fatal(err)
	}
	kit.clientCert = cert

	rogueKey, rogueCA, _ := newTestCA(t, "rogue CA")
	rogueCertPEM, rogueKeyPEM := issueCert(t, rogueCA, rogueKey, x509.ExtKeyUsageClientAuth)
	rogue, err := tls.X509KeyPair(rogueCertPEM, rogueKeyPEM)
	if err != nil {
		t.Fatal(err)
	}
	kit.rogueCert = rogue
	return kit
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
}

func newTestCA(t *testing.T, name string) (*ecdsa.PrivateKey, *x509.Certificate, []byte) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	return key, cert, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}

// issueCert mints a leaf for 127.0.0.1 signed by the given CA and returns
// certificate and key as PEM.
func issueCert(t *testing.T, ca *x509.Certificate, caKey *ecdsa.PrivateKey, usage x509.ExtKeyUsage) (certPEM, keyPEM []byte) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: "unsd test leaf"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{usage},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca, &key.PublicKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
}

// tlsOptions is defaultOptions plus the full TLS plane (mutual TLS on the
// stream listener).
func tlsOptions(t *testing.T, kit *certKit) options {
	o := defaultOptions()
	o.tlsCert, o.tlsKey, o.tlsClientCA = kit.serverCertPath, kit.serverKeyPath, kit.caPath
	return o
}

// clientTLS builds a client-side config trusting the kit's CA; withCert
// attaches the kit's (trusted) client certificate.
func (kit *certKit) clientTLS(t *testing.T, cert *tls.Certificate) *tls.Config {
	t.Helper()
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(kit.caPEM) {
		t.Fatal("bad CA PEM")
	}
	cfg := &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	if cert != nil {
		cfg.Certificates = []tls.Certificate{*cert}
	}
	return cfg
}

// TestTLSStreamMutualAuthEndToEnd is the happy path of the secured framed
// protocol: a client presenting a certificate chained to the daemon's CA
// handshakes, pushes, samples, pings and rides the σ′ stream — all over
// one mutually authenticated connection.
func TestTLSStreamMutualAuthEndToEnd(t *testing.T) {
	kit := newCertKit(t)
	d, ln := testStreamDaemon(t, tlsOptions(t, kit))
	_ = d

	c, err := client.DialWithOptions(ln.Addr().String(), client.DialOptions{
		TLS: kit.clientTLS(t, &kit.clientCert),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	out, err := c.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodesampling.NodeID, 512)
	for i := range ids {
		ids[i] = nodesampling.NodeID(i + 1)
	}
	if err := c.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "samples over mTLS", func() bool {
		s, err := c.Sample(4)
		return err == nil && len(s) == 4
	})
	select {
	case id := <-out:
		if id < 1 || id > 512 {
			t.Fatalf("σ′ draw %d outside the pushed population", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no σ′ stream data over mTLS")
	}
}

// TestTLSStreamRejectsUnauthenticatedPeers pins the rejection surface of
// the mutual-TLS listener: a client with no certificate, a client whose
// certificate chains to the wrong CA, and a plaintext client must all fail
// loudly (at dial or on the first exchange) — never hang, never reach the
// frame decoder.
func TestTLSStreamRejectsUnauthenticatedPeers(t *testing.T) {
	kit := newCertKit(t)
	d, ln := testStreamDaemon(t, tlsOptions(t, kit))
	addr := ln.Addr().String()

	mustFail := func(t *testing.T, tcfg *tls.Config) {
		t.Helper()
		c, err := client.DialWithOptions(addr, client.DialOptions{TLS: tcfg})
		if err != nil {
			return // rejected at the handshake: loud and immediate
		}
		defer c.Close()
		if err := c.Ping(); err == nil {
			t.Fatal("unauthenticated peer completed a Ping")
		}
	}
	t.Run("no client certificate", func(t *testing.T) {
		mustFail(t, kit.clientTLS(t, nil))
	})
	t.Run("wrong-CA client certificate", func(t *testing.T) {
		mustFail(t, kit.clientTLS(t, &kit.rogueCert))
	})
	t.Run("plaintext client", func(t *testing.T) {
		mustFail(t, nil)
	})

	// None of the rejected peers may have touched the pool.
	if st := d.pool.Stats(); st.Processed != 0 {
		t.Fatalf("rejected peers reached the pool: %d ids processed", st.Processed)
	}

	// And the listener still serves a proper peer afterwards.
	c, err := client.DialWithOptions(addr, client.DialOptions{TLS: kit.clientTLS(t, &kit.clientCert)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("trusted client after rejections: %v", err)
	}
}

// TestTLSClientAgainstPlaintextDaemon: the inverse mismatch must also fail
// at dial time — the TLS handshake cannot complete against a plaintext
// framed listener.
func TestTLSClientAgainstPlaintextDaemon(t *testing.T) {
	kit := newCertKit(t)
	_, ln := testStreamDaemon(t, defaultOptions()) // no TLS
	_, err := client.DialWithOptions(ln.Addr().String(), client.DialOptions{
		TLS: kit.clientTLS(t, &kit.clientCert),
	})
	if err == nil {
		t.Fatal("TLS handshake against a plaintext listener succeeded")
	}
}

// TestTLSReconnectAcrossDaemonRestart proves the resilience machinery
// composes with the secure transport: a reconnecting mTLS client keeps its
// stream channel across a daemon kill-and-restart, re-handshaking and
// re-subscribing on the fresh daemon.
func TestTLSReconnectAcrossDaemonRestart(t *testing.T) {
	kit := newCertKit(t)
	o := tlsOptions(t, kit)
	d1, ln1 := testStreamDaemon(t, o)
	addr := ln1.Addr().String()

	c, err := client.DialWithOptions(addr, client.DialOptions{
		TLS:        kit.clientTLS(t, &kit.clientCert),
		Reconnect:  true,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PushBatch([]nodesampling.NodeID{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-out:
	case <-time.After(10 * time.Second):
		t.Fatal("no stream data before the restart")
	}

	// Kill the daemon; bring a fresh one up on the same address with the
	// same credentials.
	d1.Close()
	d2, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Close)
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		if ln2, err = d2.listenStream(addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	_ = ln2

	// The client redials, re-handshakes and re-subscribes on its own;
	// pushing through it must eventually land on the new daemon and flow
	// back over the surviving channel.
	deadline := time.After(30 * time.Second)
	batch := []nodesampling.NodeID{11, 12, 13, 14, 15, 16, 17, 18}
	for {
		_ = c.PushBatch(batch) // transient failures expected mid-redial
		select {
		case id, ok := <-out:
			if !ok {
				t.Fatalf("stream channel closed across restart: %v", c.Err())
			}
			if id >= 11 && id <= 18 {
				if c.Reconnects() == 0 {
					t.Fatal("post-restart data without a recorded reconnect")
				}
				return
			}
			// Pre-restart draw still buffered: keep going.
		case <-deadline:
			t.Fatalf("no post-restart stream data (reconnects=%d, err=%v)", c.Reconnects(), c.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestTLSRunFlagsServeHTTPS boots the daemon through run() with the TLS
// flags and checks both faces of the HTTP listener: an https client
// trusting the CA is served, and the admin surface still wants its bearer
// token (transport security does not replace authentication).
func TestTLSRunFlagsServeHTTPS(t *testing.T) {
	kit := newCertKit(t)
	ctx, cancel := testContext(t)
	var sb safeBuilder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-http", "127.0.0.1:0", "-stream", "127.0.0.1:0",
			"-shards", "2", "-c", "5", "-k", "6", "-s", "3", "-seed", "13",
			"-tls-cert", kit.serverCertPath, "-tls-key", kit.serverKeyPath,
			"-tls-client-ca", kit.caPath,
			"-admin-token", "deep-secret",
		}, &sb)
	}()
	addr := waitForListener(t, &sb, "http listening on ")
	httpsURL := "https://" + addr

	hc := &http.Client{Transport: &http.Transport{TLSClientConfig: kit.clientTLS(t, nil)}}
	resp, err := hc.Get(httpsURL + "/stats")
	if err != nil {
		t.Fatalf("https /stats: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("https /stats status %d", resp.StatusCode)
	}
	// Plain http against the TLS listener must fail, not silently serve.
	if resp, err := http.Get("http://" + addr + "/stats"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("plaintext request served by the TLS listener")
		}
	}
	// Admin POST without the token: 401 even over authenticated transport.
	req, err := http.NewRequest(http.MethodPost, httpsURL+"/snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless admin POST over https: status %d, want 401", resp.StatusCode)
	}

	// The stream listener demands a client certificate (mutual TLS).
	streamAddr := waitForListener(t, &sb, "stream listening on ")
	if c, err := client.DialWithOptions(streamAddr, client.DialOptions{TLS: kit.clientTLS(t, nil)}); err == nil {
		if err := c.Ping(); err == nil {
			t.Fatal("certificate-less client served on the mTLS stream listener")
		}
		c.Close()
	}
	c, err := client.DialWithOptions(streamAddr, client.DialOptions{TLS: kit.clientTLS(t, &kit.clientCert)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("mTLS client against run() daemon: %v", err)
	}
	c.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestSecureEdgeAcceptance drives the whole security plane at once — the
// acceptance scenario of the hardened edge: a daemon with
// -tls-cert/-tls-key/-tls-client-ca/-admin-token/-snapshot-key-file
// rejects unauthenticated stream peers and tokenless admin POSTs
// (401/403), serves an mTLS client end-to-end (push → sample → subscribe →
// reconnect), and restarts from an AES-GCM-sealed snapshot with
// bit-identical estimates.
func TestSecureEdgeAcceptance(t *testing.T) {
	kit := newCertKit(t)
	dir := t.TempDir()
	o := tlsOptions(t, kit)
	o.adminToken = "edge-secret"
	o.snapshotPath = filepath.Join(dir, "pool.snap")
	o.snapshotKeyFile = writeKeyFile(t, dir, "snap.key", []byte(strings.Repeat("5a", 32)), 0o600)

	d1, ln1 := testStreamDaemon(t, o)
	addr := ln1.Addr().String()
	ts := httptest.NewServer(d1.handler())

	// The mTLS client: push a hot-id-heavy stream, sample, subscribe.
	c, err := client.DialWithOptions(addr, client.DialOptions{
		TLS:        kit.clientTLS(t, &kit.clientCert),
		Reconnect:  true,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	const hot = 999999
	ids := make([]nodesampling.NodeID, 1024)
	for i := range ids {
		if i%2 == 0 {
			ids[i] = hot
		} else {
			ids[i] = nodesampling.NodeID(i + 1)
		}
	}
	if err := c.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	// The push is asynchronous across the wire: wait until the daemon has
	// absorbed it before cutting the state we compare across the restart.
	waitFor(t, "the pushed batch to be ingested", func() bool {
		return d1.pool.Stats().Processed >= uint64(len(ids))
	})
	if err := d1.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	estBefore := d1.pool.Estimate(hot)
	if estBefore == 0 {
		t.Fatal("hot id estimate is zero")
	}
	waitFor(t, "samples over the secured stream", func() bool {
		s, err := c.Sample(8)
		return err == nil && len(s) == 8
	})
	select {
	case <-out:
	case <-time.After(10 * time.Second):
		t.Fatal("no σ′ over the secured stream")
	}

	// An unauthenticated stream peer is rejected without touching the pool.
	if bad, err := client.DialWithOptions(addr, client.DialOptions{TLS: kit.clientTLS(t, nil)}); err == nil {
		if err := bad.Ping(); err == nil {
			t.Fatal("certificate-less peer served")
		}
		bad.Close()
	}

	// Admin surface: 401 tokenless, 403 wrong, 200 with the token (the
	// snapshot it writes must be sealed).
	if resp := doJSON(t, http.MethodPost, ts.URL+"/snapshot", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless /snapshot: %d, want 401", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/snapshot", "not-it", ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-token /snapshot: %d, want 403", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/snapshot", "edge-secret", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("authorised /snapshot: %d, want 200", resp.StatusCode)
	}
	blob, err := os.ReadFile(o.snapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !shard.SnapshotSealed(blob) {
		t.Fatal("snapshot written by the admin endpoint is not sealed")
	}

	// Kill the daemon; restart from the sealed snapshot on the same
	// address. The client reconnects and the estimates are bit-identical.
	ts.Close()
	d1.Close()
	d2, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Close)
	if !d2.restored {
		t.Fatal("second daemon did not restore from the sealed snapshot")
	}
	if got := d2.pool.Estimate(hot); got != estBefore {
		t.Fatalf("hot id estimate %d after sealed restart, want %d", got, estBefore)
	}
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		if ln2, err = d2.listenStream(addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	_ = ln2
	deadline := time.After(30 * time.Second)
	fresh := []nodesampling.NodeID{2001, 2002, 2003, 2004}
	for {
		_ = c.PushBatch(fresh)
		select {
		case id, ok := <-out:
			if !ok {
				t.Fatalf("stream channel closed across the secure restart: %v", c.Err())
			}
			if id >= 2001 && id <= 2004 {
				if c.Reconnects() == 0 {
					t.Fatal("post-restart data without a recorded reconnect")
				}
				return
			}
		case <-deadline:
			t.Fatalf("no post-restart σ′ (reconnects=%d, err=%v)", c.Reconnects(), c.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestTLSFlagValidation: half-configured TLS must fail at boot, loudly.
func TestTLSFlagValidation(t *testing.T) {
	kit := newCertKit(t)
	var sb safeBuilder
	ctx, cancel := testContext(t)
	defer cancel()
	if err := run(ctx, []string{"-tls-cert", kit.serverCertPath}, &sb); err == nil {
		t.Error("-tls-cert without -tls-key should fail")
	}
	if err := run(ctx, []string{"-tls-client-ca", kit.caPath}, &sb); err == nil {
		t.Error("-tls-client-ca without a server certificate should fail")
	}
	if err := run(ctx, []string{"-tls-cert", kit.serverCertPath, "-tls-key", kit.caPath}, &sb); err == nil {
		t.Error("mismatched cert/key should fail")
	}
}
