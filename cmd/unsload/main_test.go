package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"nodesampling/internal/netgossip"
)

// sinkListener accepts framed connections, counts PushBatch ids, and
// answers the round-trip frames the latency sampler relies on: Ping with a
// token-echoing Pong and Sample with a minimal SampleResp.
func sinkListener(t *testing.T) (net.Listener, *atomic.Uint64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var ids atomic.Uint64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					f, err := netgossip.ReadFrame(conn)
					if err != nil {
						return
					}
					switch f.Type {
					case netgossip.FramePushBatch:
						ids.Add(uint64(len(f.IDs)))
					case netgossip.FramePing:
						if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
							return
						}
					case netgossip.FrameSample:
						if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: []uint64{1}}); err != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return ln, &ids
}

func metricsServer(t *testing.T) *httptest.Server {
	t.Helper()
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		fmt.Fprintf(w, "# HELP unsd_pool_processed_ids_total x\n# TYPE unsd_pool_processed_ids_total counter\nunsd_pool_processed_ids_total %d\n", n*1000)
		fmt.Fprintf(w, "# HELP unsd_pool_dropped_ids_total x\n# TYPE unsd_pool_dropped_ids_total counter\nunsd_pool_dropped_ids_total %d\n", n)
		fmt.Fprintf(w, "# HELP unsd_uniformity_input_kl x\n# TYPE unsd_uniformity_input_kl gauge\nunsd_uniformity_input_kl 0.25\n")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunTextReport(t *testing.T) {
	ln, ids := sinkListener(t)
	ms := metricsServer(t)
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-addr", ln.Addr().String(), "-metrics", ms.URL,
		"-count", "3000", "-population", "256", "-rate", "0",
		"-batch", "500", "-scrape-ms", "1", "-seed", "3",
		"-latency-sample", "2",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, phase := range []string{"uniform", "targeted-flood", "churn-storm", "slow-trickle", "recovery"} {
		if !strings.Contains(out, "phase "+phase) {
			t.Fatalf("report missing phase %q:\n%s", phase, out)
		}
	}
	if !strings.Contains(out, "drop fraction") {
		t.Fatalf("report missing daemon deltas:\n%s", out)
	}
	if !strings.Contains(out, "input KL max") {
		t.Fatalf("report missing uniformity trajectory:\n%s", out)
	}
	if !strings.Contains(out, "push-ack:") || !strings.Contains(out, "sample rpc:") {
		t.Fatalf("report missing client-observed latency lines:\n%s", out)
	}
	if got := ids.Load(); got != 5*3000 {
		t.Fatalf("sink saw %d ids, want %d", got, 5*3000)
	}
}

func TestRunJSONReport(t *testing.T) {
	ln, _ := sinkListener(t)
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-addr", ln.Addr().String(),
		"-count", "500", "-population", "128", "-rate", "0", "-json",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Name    string
		Offered int
	}
	if err := json.Unmarshal([]byte(sb.String()), &reports); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, sb.String())
	}
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	for _, rep := range reports {
		if rep.Offered != 500 {
			t.Fatalf("phase %s offered %d, want 500", rep.Name, rep.Offered)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Fatal("missing -addr accepted")
	}
	if err := run(context.Background(), []string{"-addr", "x", "-tls-cert", "only-cert"}, &sb); err == nil {
		t.Fatal("-tls-cert without -tls-key accepted")
	}
	if err := run(context.Background(), []string{"-addr", "x", "-tls-ca", "/does/not/exist"}, &sb); err == nil {
		t.Fatal("unreadable -tls-ca accepted")
	}
}

func TestClientTLSConfig(t *testing.T) {
	if cfg, err := clientTLSConfig("", "", ""); err != nil || cfg != nil {
		t.Fatalf("plaintext config = %v, %v", cfg, err)
	}
	if _, err := clientTLSConfig("", "cert", ""); err == nil {
		t.Fatal("cert without key accepted")
	}
	dir := t.TempDir()
	bad := dir + "/bad.pem"
	if err := os.WriteFile(bad, []byte("not a pem"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := clientTLSConfig(bad, "", ""); err == nil {
		t.Fatal("PEM-free CA file accepted")
	}
}
