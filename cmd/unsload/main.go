// Command unsload replays adversarial load scenarios against a live unsd
// daemon: phased id streams (uniform baseline, targeted flood, churn storm,
// slow-trickle bias, recovery) pushed over the framed stream protocol at a
// target rate while GET /metrics is scraped, ending in a per-phase report —
// achieved rate, the daemon's own processed/dropped deltas, the live
// uniformity gauge's trajectory, and client-observed latency percentiles
// (p50/p95/p99) for the push-ack and Sample RPC round trips, measured on
// one in -latency-sample batches. It turns the paper's evaluation into a
// drill an operator can run against a running fleet: push the attack, watch
// the gauge degrade, watch it recover.
//
// Usage:
//
//	unsload -addr 127.0.0.1:9101 -metrics http://127.0.0.1:9100/metrics \
//	        -rate 50000 -count 200000 -population 4096
//
// Against an unsd cluster, -addr takes a comma-separated member list (and
// -metrics a matching list, or one URL, or none). One generator per member
// pushes a distinct id stream — per-target seeds derive from -seed — with
// every phase started across the fleet together, the way a coordinated
// adversary would, and the per-phase reports merged into one fleet view:
// summed offered/processed/dropped, the interleaved uniformity trajectory
// across every member's gauge, worst-case latency percentiles.
//
// TLS mirrors the daemon's stream plane: -tls-ca verifies the server,
// -tls-cert/-tls-key present a client certificate when the daemon requires
// mutual TLS. -token is the admin bearer token, needed only against
// -admin-token-all daemons. -json emits the reports as one JSON document
// for scripting.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodesampling/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unsload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unsload", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr       = fs.String("addr", "", "daemon stream endpoint(s), comma-separated for a cluster; required")
		metricsURL = fs.String("metrics", "", "daemon /metrics URL(s): one per -addr target, a single shared URL, or empty to disable scraping")
		token      = fs.String("token", "", "admin bearer token for -metrics (only needed against -admin-token-all)")
		rate       = fs.Float64("rate", 50000, "target push rate in ids/second (0 = unpaced)")
		count      = fs.Int("count", 100000, "ids pushed per phase")
		population = fs.Int("population", 4096, "legitimate id population size")
		batch      = fs.Int("batch", 1024, "ids per frame")
		scrapeMS   = fs.Int("scrape-ms", 250, "milliseconds between /metrics scrapes")
		seed       = fs.Uint64("seed", 1, "random seed for the phase streams")
		tlsCA      = fs.String("tls-ca", "", "CA bundle (PEM) to verify the daemon's stream certificate; enables TLS")
		tlsCert    = fs.String("tls-cert", "", "client certificate (PEM) for mutual TLS; needs -tls-key")
		tlsKey     = fs.String("tls-key", "", "client key (PEM) for -tls-cert")
		latEvery   = fs.Int("latency-sample", 8, "measure push-ack and Sample RPC round trips on one in N batches (0 disables; sampled batches serialise on the round trip)")
		jsonOut    = fs.Bool("json", false, "emit the reports as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return errors.New("-addr is required")
	}
	addrs := splitList(*addr)
	metricsURLs := splitList(*metricsURL)
	switch {
	case len(metricsURLs) <= 1:
		// Zero (scraping off) or one (every target scrapes the same
		// endpoint — fine for a shared gateway) applies to all targets.
		for len(metricsURLs) < len(addrs) {
			u := ""
			if len(metricsURLs) > 0 {
				u = metricsURLs[0]
			}
			metricsURLs = append(metricsURLs, u)
		}
	case len(metricsURLs) != len(addrs):
		return fmt.Errorf("-metrics lists %d URLs for %d targets", len(metricsURLs), len(addrs))
	}
	tlsCfg, err := clientTLSConfig(*tlsCA, *tlsCert, *tlsKey)
	if err != nil {
		return err
	}
	var hc *http.Client
	if tlsCfg != nil {
		hc = &http.Client{
			Timeout:   5 * time.Second,
			Transport: &http.Transport{TLSClientConfig: tlsCfg.Clone()},
		}
	}

	gens := make([]*loadgen.Generator, 0, len(addrs))
	phaseLists := make([][]loadgen.Phase, 0, len(addrs))
	defer func() {
		for _, g := range gens {
			g.Close()
		}
	}()
	for i, target := range addrs {
		// Per-target seeds keep the member streams distinct — a fleet fed
		// identical ids would measure dedup, not routing.
		phases, err := loadgen.StandardPhases(*population, *count, *seed+uint64(i), *rate)
		if err != nil {
			return err
		}
		g, err := loadgen.New(loadgen.Config{
			Addr:           target,
			TLS:            tlsCfg,
			MetricsURL:     metricsURLs[i],
			Token:          *token,
			HTTPClient:     hc,
			Rate:           *rate,
			Batch:          *batch,
			ScrapeInterval: time.Duration(*scrapeMS) * time.Millisecond,
			LatencySample:  *latEvery,
		})
		if err != nil {
			return err
		}
		gens = append(gens, g)
		phaseLists = append(phaseLists, phases)
	}

	if !*jsonOut {
		fmt.Fprintf(w, "unsload: %d phases x %d ids against %s (rate %.0f ids/s",
			len(phaseLists[0]), *count, *addr, *rate)
		if len(addrs) > 1 {
			fmt.Fprintf(w, " per target, %d targets", len(addrs))
		}
		fmt.Fprintln(w, ")")
	}
	var (
		reports []loadgen.Report
		runErr  error
	)
	if len(gens) == 1 {
		reports, runErr = gens[0].Run(ctx, phaseLists[0])
	} else {
		reports, runErr = loadgen.RunMulti(ctx, gens, phaseLists)
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			printReport(w, rep)
		}
	}
	return runErr
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printReport renders one phase the way an operator reads it: what was
// pushed, what the daemon admitted, and what the uniformity gauge said.
func printReport(w io.Writer, rep loadgen.Report) {
	fmt.Fprintf(w, "phase %-14s %8d ids in %8s (%.0f ids/s)\n",
		rep.Name, rep.Offered, rep.Duration.Round(time.Millisecond), rep.AchievedRate)
	if rep.HaveDeltas {
		fmt.Fprintf(w, "  daemon: processed %+.0f, dropped %+.0f (drop fraction %.3f)\n",
			rep.Processed, rep.Dropped, rep.DropFraction)
	}
	if max, ok := rep.MaxInputKL(); ok {
		final, _ := rep.FinalInputKL()
		fmt.Fprintf(w, "  uniformity: input KL max %.3f, final %.3f (%d scrapes",
			max, final, rep.Scrapes)
		if rep.ScrapeErrors > 0 {
			fmt.Fprintf(w, ", %d failed", rep.ScrapeErrors)
		}
		fmt.Fprintln(w, ")")
	} else if rep.Scrapes > 0 {
		fmt.Fprintf(w, "  uniformity: gauge quiet (%d scrapes)\n", rep.Scrapes)
	}
	printLatency(w, "push-ack", rep.PushAck)
	printLatency(w, "sample rpc", rep.SampleRPC)
}

// printLatency renders one client-observed latency summary line.
func printLatency(w io.Writer, what string, s loadgen.LatencySummary) {
	if s.Count == 0 {
		return
	}
	fmt.Fprintf(w, "  %-10s p50 %s  p95 %s  p99 %s  max %s (%d samples)\n",
		what+":", s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond), s.Count)
}

// clientTLSConfig assembles the stream-plane TLS client config from flag
// values; all empty means plaintext.
func clientTLSConfig(caPath, certPath, keyPath string) (*tls.Config, error) {
	if caPath == "" && certPath == "" && keyPath == "" {
		return nil, nil
	}
	if (certPath == "") != (keyPath == "") {
		return nil, errors.New("-tls-cert and -tls-key must be set together")
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if caPath != "" {
		pem, err := os.ReadFile(caPath)
		if err != nil {
			return nil, err
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("no certificates in -tls-ca %s", caPath)
		}
		cfg.RootCAs = pool
	}
	if certPath != "" {
		cert, err := tls.LoadX509KeyPair(certPath, keyPath)
		if err != nil {
			return nil, err
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}
