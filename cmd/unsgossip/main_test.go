package main

import (
	"strconv"
	"strings"
	"testing"
)

func TestSmallOverlayRun(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-nodes", "40", "-malicious", "0.1", "-burst", "6",
		"-warmup", "60", "-rounds", "120", "-c", "10", "-k", "6", "-s", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"overlay: 40 nodes (4 malicious)",
		"sybil pressure",
		"steady-state KL gain",
		"sample coverage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The reported mean gain must parse and be a sane value.
	idx := strings.Index(out, "mean ")
	if idx < 0 {
		t.Fatalf("no mean gain in output:\n%s", out)
	}
	rest := out[idx+len("mean "):]
	end := strings.IndexByte(rest, ',')
	mean, err := strconv.ParseFloat(rest[:end], 64)
	if err != nil {
		t.Fatalf("unparsable mean %q", rest[:end])
	}
	if mean < -1 || mean > 1 {
		t.Fatalf("mean gain %v out of range", mean)
	}
}

func TestDefaultSybils(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-nodes", "30", "-warmup", "10", "-rounds", "20", "-c", "5", "-k", "4", "-s", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "15 sybil ids") {
		t.Errorf("default sybils not nodes/2:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nodes", "1"}, &sb); err == nil {
		t.Error("tiny overlay should fail")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}
