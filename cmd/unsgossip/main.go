// Command unsgossip simulates a push-gossip overlay in which every correct
// node runs the knowledge-free sampling service while a fraction of nodes
// floods the network with Sybil identifiers — the paper's deployment
// scenario. It reports the overlay-wide KL gain of the service in steady
// state, plus the observable attack pressure.
//
// Usage:
//
//	unsgossip -nodes 200 -malicious 0.1 -burst 12 -rounds 900
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"nodesampling/internal/core"
	"nodesampling/internal/gossip"
	"nodesampling/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unsgossip:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unsgossip", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 200, "overlay size (real nodes)")
		malicious = fs.Float64("malicious", 0.1, "fraction of malicious nodes")
		sybils    = fs.Int("sybils", 0, "distinct sybil ids (default nodes/2)")
		burst     = fs.Int("burst", 12, "sybil ids pushed per neighbour per round by malicious nodes")
		fanout    = fs.Int("fanout", 3, "gossip fanout")
		degree    = fs.Int("degree", 4, "overlay out-degree")
		warmup    = fs.Int("warmup", 600, "warm-up rounds before measuring")
		rounds    = fs.Int("rounds", 900, "measured rounds")
		c         = fs.Int("c", 25, "sampling memory size per node")
		k         = fs.Int("k", 8, "sketch columns per node")
		s         = fs.Int("s", 4, "sketch rows per node")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", runtime.NumCPU(), "parallel node workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sybils == 0 {
		*sybils = *nodes / 2
	}
	cfg := gossip.Config{
		Nodes:             *nodes,
		MaliciousFraction: *malicious,
		SybilIDs:          *sybils,
		Fanout:            *fanout,
		ForwardBuffer:     16,
		Burst:             *burst,
		Degree:            *degree,
		Seed:              *seed,
	}
	nw, err := gossip.NewNetwork(cfg, func(_ int, r *rng.Xoshiro) (core.Sampler, error) {
		return core.NewKnowledgeFree(*c, *k, *s, r)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "overlay: %d nodes (%d malicious), %d sybil ids, degree %d, fanout %d\n",
		*nodes, nw.NumMalicious(), *sybils, *degree, *fanout)
	fmt.Fprintf(w, "per-node sampler: c=%d, sketch %dx%d\n", *c, *k, *s)
	if err := nw.RunParallel(*warmup, *workers); err != nil {
		return err
	}
	nw.ResetStreamStats()
	if err := nw.RunParallel(*rounds, *workers); err != nil {
		return err
	}
	sum, err := nw.CorrectGains()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rounds: %d warm-up + %d measured\n", *warmup, *rounds)
	fmt.Fprintf(w, "sybil pressure (fraction of received ids that are sybil): %.3f\n", nw.SybilPressure())
	fmt.Fprintf(w, "steady-state KL gain across %d correct nodes: mean %.3f, min %.3f, max %.3f\n",
		sum.Nodes, sum.Mean, sum.Min, sum.Max)
	fmt.Fprintf(w, "sample coverage (distinct correct ids across sampling memories): %d/%d\n",
		nw.SampleCoverage(), *nodes-nw.NumMalicious())
	return nil
}
