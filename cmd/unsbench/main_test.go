package main

import (
	"strings"
	"testing"
)

func TestListPrintsAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"fig3", "fig12", "table1", "table2", "thm4", "transient", "gossip"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "table1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# table1") {
		t.Error("missing table header")
	}
	if !strings.Contains(out, "38") || !strings.Contains(out, "44") {
		t.Error("missing the (10,5,0.1) Table I values")
	}
	if !strings.Contains(out, "# note:") {
		t.Error("missing the note line")
	}
}

func TestRunMultipleQuick(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig3, fig4", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# fig3") || !strings.Contains(out, "# fig4") {
		t.Errorf("missing experiment blocks in output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no -run should fail")
	}
	if err := run([]string{"-run", "nope"}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRowsAreTabSeparatedWithHeaderArity(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "table2", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var header []string
	for _, line := range lines {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if header == nil {
			header = cells
			continue
		}
		if len(cells) != len(header) {
			t.Fatalf("row arity %d != header arity %d: %q", len(cells), len(header), line)
		}
	}
	if header == nil {
		t.Fatal("no header row found")
	}
}
