package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The -perf-compare mode turns two committed perf artifacts into a
// machine-readable regression verdict, so CI can gate a change on "no hot
// path got more than N% slower" instead of a human eyeballing BENCH_*.json
// diffs. Benchmarks are matched by name; ones present on only one side are
// reported but never fail the gate (a new benchmark has no baseline, a
// removed one no longer matters).

// perfDelta is one matched benchmark's before/after comparison. DeltaPct is
// positive when the new build is slower.
type perfDelta struct {
	Name       string  `json:"name"`
	Unit       string  `json:"unit"`
	OldNsPerOp float64 `json:"old_ns_per_op"`
	NewNsPerOp float64 `json:"new_ns_per_op"`
	DeltaPct   float64 `json:"delta_pct"`
	OldAllocs  int64   `json:"old_allocs_per_op"`
	NewAllocs  int64   `json:"new_allocs_per_op"`
}

// perfComparison is the -perf-compare JSON document.
type perfComparison struct {
	Schema       string      `json:"schema"`
	OldPath      string      `json:"old_path"`
	NewPath      string      `json:"new_path"`
	ThresholdPct float64     `json:"threshold_pct"`
	Benchmarks   []perfDelta `json:"benchmarks"`
	Added        []string    `json:"added,omitempty"`
	Removed      []string    `json:"removed,omitempty"`
	Worst        string      `json:"worst"` // matched benchmark with the largest DeltaPct
	WorstPct     float64     `json:"worst_pct"`
	Pass         bool        `json:"pass"`
}

func loadPerfReport(path string) (perfReport, error) {
	var r perfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "unsbench-perf/v1" {
		return r, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in artifact", path)
	}
	return r, nil
}

// runPerfCompare diffs the artifacts at oldPath and newPath, writes the
// comparison document to w, and returns an error — failing the process —
// when any matched benchmark regressed by more than threshold percent.
func runPerfCompare(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := loadPerfReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadPerfReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]perfBench, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	cmp := perfComparison{
		Schema:       "unsbench-perf-compare/v1",
		OldPath:      oldPath,
		NewPath:      newPath,
		ThresholdPct: threshold,
		Pass:         true,
	}
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			cmp.Added = append(cmp.Added, nb.Name)
			continue
		}
		d := perfDelta{
			Name:       nb.Name,
			Unit:       nb.Unit,
			OldNsPerOp: ob.NsPerOp,
			NewNsPerOp: nb.NsPerOp,
			DeltaPct:   (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100,
			OldAllocs:  ob.AllocsPerOp,
			NewAllocs:  nb.AllocsPerOp,
		}
		cmp.Benchmarks = append(cmp.Benchmarks, d)
		if cmp.Worst == "" || d.DeltaPct > cmp.WorstPct {
			cmp.Worst, cmp.WorstPct = d.Name, d.DeltaPct
		}
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			cmp.Removed = append(cmp.Removed, ob.Name)
		}
	}
	sort.Slice(cmp.Benchmarks, func(i, j int) bool { return cmp.Benchmarks[i].DeltaPct > cmp.Benchmarks[j].DeltaPct })
	if len(cmp.Benchmarks) == 0 {
		return fmt.Errorf("perf-compare: no common benchmarks between %s and %s", oldPath, newPath)
	}
	if cmp.WorstPct > threshold {
		cmp.Pass = false
	}
	for _, d := range cmp.Benchmarks {
		fmt.Fprintf(os.Stderr, "perf-compare: %-28s %10.1f -> %10.1f %s  %+6.1f%%\n",
			d.Name, d.OldNsPerOp, d.NewNsPerOp, d.Unit, d.DeltaPct)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cmp); err != nil {
		return err
	}
	if !cmp.Pass {
		return fmt.Errorf("perf-compare: %s regressed %.1f%% (threshold %.1f%%)", cmp.Worst, cmp.WorstPct, threshold)
	}
	return nil
}
