// Command unsbench regenerates the tables and figures of the paper's
// evaluation (Anceaume, Busnel, Sericola — DSN 2013).
//
// Usage:
//
//	unsbench -list
//	unsbench -run fig3
//	unsbench -run fig8,fig9 -trials 100
//	unsbench -run all -quick
//
// Each experiment prints a TSV block: a title line, a header row, data
// rows, and an optional note. Paper-vs-measured records live in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"nodesampling/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unsbench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment identifiers and exit")
		runIDs     = fs.String("run", "", "comma-separated experiment ids, or 'all'")
		trials     = fs.Int("trials", 10, "trials to average for simulation experiments (paper: 100)")
		seed       = fs.Uint64("seed", 1, "root random seed")
		quick      = fs.Bool("quick", false, "shrink streams and sweeps for a fast smoke run")
		workers    = fs.Int("workers", runtime.NumCPU(), "trial-level parallelism")
		perf       = fs.Bool("perf", false, "measure the service plane's hot paths and emit a JSON perf artifact")
		perfOut    = fs.String("perf-out", "-", "perf artifact path ('-' writes to stdout)")
		perfFilter = fs.String("perf-filter", "", "only run perf benchmarks whose name contains this substring")
		perfRuns   = fs.Int("perf-runs", 3, "runs per perf benchmark; the fastest is recorded (strips scheduler noise)")
		perfCmp    = fs.Bool("perf-compare", false, "compare two perf artifacts (args: old.json new.json) and fail on regressions above -perf-threshold")
		perfThresh = fs.Float64("perf-threshold", 5, "max tolerated slowdown percent for -perf-compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *perfCmp {
		if fs.NArg() != 2 {
			return fmt.Errorf("-perf-compare takes exactly two artifact paths, got %d args", fs.NArg())
		}
		return runPerfCompare(w, fs.Arg(0), fs.Arg(1), *perfThresh)
	}
	if *perf {
		return runPerf(w, *perfOut, *perfFilter, *perfRuns)
	}
	order, registry := experiments.Registry()
	if *list {
		for _, id := range order {
			fmt.Fprintln(w, id)
		}
		return nil
	}
	if *runIDs == "" {
		fs.Usage()
		return fmt.Errorf("nothing to run: pass -run <ids> or -list")
	}
	var ids []string
	if *runIDs == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := registry[id]; !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			ids = append(ids, id)
		}
	}
	cfg := experiments.Config{
		Trials:  *trials,
		Seed:    *seed,
		Workers: *workers,
		Quick:   *quick,
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := registry[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := writeTable(w, tbl, time.Since(start)); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func writeTable(w io.Writer, t experiments.Table, elapsed time.Duration) error {
	if _, err := fmt.Fprintf(w, "# %s [%s] (%.1fs)\n", t.ID, t.Title, elapsed.Seconds()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "# note: %s\n", t.Notes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
