package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPerfEmitsValidArtifact runs the cheapest suite entry end to end and
// pins the JSON document shape CI and the committed BENCH_<pr>.json rely
// on. The full suite is exercised when the artifact is regenerated, not
// per test run.
func TestPerfEmitsValidArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run([]string{"-perf", "-perf-filter", "ControllerTick", "-perf-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report perfReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if report.Schema != "unsbench-perf/v1" {
		t.Fatalf("schema %q", report.Schema)
	}
	if report.GoVersion == "" || report.Generated == "" || report.GOMAXPROCS < 1 {
		t.Fatalf("missing provenance: %+v", report)
	}
	if len(report.HistogramFamilies) < 4 {
		t.Fatalf("artifact must record the compiled-in latency histogram families, got %v",
			report.HistogramFamilies)
	}
	for _, name := range report.HistogramFamilies {
		if !strings.HasPrefix(name, "unsd_") || !strings.HasSuffix(name, "_seconds") {
			t.Fatalf("implausible histogram family %q in provenance", name)
		}
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "ControllerTick" || b.Unit != "ns/op" {
		t.Fatalf("benchmark entry %+v", b)
	}
	if b.NsPerOp <= 0 || b.Iterations <= 0 {
		t.Fatalf("implausible measurement %+v", b)
	}
}

func TestPerfFilterValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-perf", "-perf-filter", "no-such-benchmark"}, &sb); err == nil {
		t.Fatal("unmatched filter accepted")
	}
}

// TestPerfSuiteCoversTheTrackedPaths pins the suite composition: the
// artifact must track PushBatch across shard counts, the fan-out plane,
// and the autoscale controller tick.
func TestPerfSuiteCoversTheTrackedPaths(t *testing.T) {
	want := []string{
		"PoolPushBatch/shards=1", "PoolPushBatch/shards=4", "PoolPushBatch/shards=8",
		"PoolSubscribeFanout/subs=0", "PoolSubscribeFanout/subs=16",
		"ControllerTick",
	}
	names := make(map[string]bool, len(perfSuite))
	for _, b := range perfSuite {
		names[b.name] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("perf suite missing %s", n)
		}
	}
}
