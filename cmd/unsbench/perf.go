package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/internal/autoscale"
	"nodesampling/internal/cms"
	"nodesampling/internal/core"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
	"nodesampling/internal/telemetry"
)

// The -perf mode measures the service plane's hot paths with the standard
// benchmark machinery and emits one machine-readable JSON document, so the
// repository can commit a perf trajectory (BENCH_<pr>.json) instead of
// numbers pasted into prose. The benchmark bodies mirror the root package's
// bench_test.go so the two surfaces measure the same thing.

// perfBench is one measured hot path.
type perfBench struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"` // what one op is: "ns/id" or "ns/op"
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int     `json:"iterations"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfReport is the BENCH_<pr>.json document. HistogramFamilies records
// which latency histogram families were compiled into the measured build:
// the perf numbers are taken with the full observability plane in place, so
// the artifact carries its provenance.
type perfReport struct {
	Schema            string      `json:"schema"`
	GoVersion         string      `json:"go_version"`
	GOMAXPROCS        int         `json:"gomaxprocs"`
	Generated         string      `json:"generated"`
	Runs              int         `json:"runs_per_benchmark,omitempty"`
	HistogramFamilies []string    `json:"histogram_families"`
	Benchmarks        []perfBench `json:"benchmarks"`
}

// perfSuite names the hot paths the perf artifact tracks.
var perfSuite = []struct {
	name string
	unit string
	fn   func(*testing.B)
}{
	{"PoolPushBatch/shards=1", "ns/id", func(b *testing.B) { perfPoolPushBatch(b, 1) }},
	{"PoolPushBatch/shards=4", "ns/id", func(b *testing.B) { perfPoolPushBatch(b, 4) }},
	{"PoolPushBatch/shards=8", "ns/id", func(b *testing.B) { perfPoolPushBatch(b, 8) }},
	{"PoolSubscribeFanout/subs=0", "ns/id", func(b *testing.B) { perfPoolFanout(b, 0) }},
	{"PoolSubscribeFanout/subs=1", "ns/id", func(b *testing.B) { perfPoolFanout(b, 1) }},
	{"PoolSubscribeFanout/subs=4", "ns/id", func(b *testing.B) { perfPoolFanout(b, 4) }},
	{"PoolSubscribeFanout/subs=16", "ns/id", func(b *testing.B) { perfPoolFanout(b, 16) }},
	{"ControllerTick", "ns/op", perfControllerTick},
	{"SketchAddEstimate/fused", "ns/op", func(b *testing.B) { perfSketchAdd(b, false) }},
	{"SketchAddEstimate/reference", "ns/op", func(b *testing.B) { perfSketchAdd(b, true) }},
	{"Partition/pooled", "ns/id", func(b *testing.B) { perfPartition(b, true) }},
	{"Partition/alloc", "ns/id", func(b *testing.B) { perfPartition(b, false) }},
	{"ShardQueue/ring", "ns/op", func(b *testing.B) { perfQueue(b, true) }},
	{"ShardQueue/channel", "ns/op", func(b *testing.B) { perfQueue(b, false) }},
	{"BasaltProcess", "ns/id", perfBasaltProcess},
}

// perfSink defeats dead-code elimination of the shim benchmarks' results.
var perfSink uint64

// perfSketchAdd measures the fused Count-Min update (one premix + bulk
// column pass) against the retained per-row reference path it replaced.
func perfSketchAdd(b *testing.B, reference bool) {
	sk, err := cms.NewWithDimensions(1024, 5, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	var s uint64
	b.ResetTimer()
	if reference {
		for i := 0; i < b.N; i++ {
			s += sk.AddEstimateReference(uint64(i) & 4095)
		}
	} else {
		for i := 0; i < b.N; i++ {
			s += sk.AddEstimate(uint64(i) & 4095)
		}
	}
	perfSink += s
}

// perfPartition measures the PushBatch counting-sort partition pass — b.N
// ids in 2048-id batches across 8 shards — with the production pooled
// buffers or with fresh allocations per batch (the pre-pool behaviour).
func perfPartition(b *testing.B, pooled bool) {
	perfSink += shard.BenchPartition(b.N, 2048, 8, pooled)
}

// perfQueue measures one enqueue/dequeue round-trip on the shard ingest
// queue: the MPSC ring versus the buffered channel it replaced.
func perfQueue(b *testing.B, ring bool) {
	if ring {
		perfSink += uint64(shard.BenchQueueRing(b.N, 64))
		return
	}
	perfSink += uint64(shard.BenchQueueChannel(b.N, 64))
}

// runPerf measures every suite entry whose name contains filter ("" keeps
// all) and writes the JSON document to outPath ("-" or "" writes to w).
// Each benchmark is run `runs` times and the fastest run is recorded: the
// benchmarks that involve goroutine hand-off (queue round-trips, live
// subscribers) are scheduling-sensitive on a single-CPU runner, and the
// minimum over a few runs strips the scheduler noise a mean would keep —
// what the artifact should pin is the cost of the code, not of the day's
// preemption pattern. The rule is applied uniformly to every benchmark and
// the run count is recorded in the artifact.
func runPerf(w io.Writer, outPath, filter string, runs int) error {
	if runs < 1 {
		runs = 1
	}
	report := perfReport{
		Schema:            "unsbench-perf/v1",
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Generated:         time.Now().UTC().Format(time.RFC3339),
		Runs:              runs,
		HistogramFamilies: telemetry.LatencyFamilyNames(),
	}
	for _, bench := range perfSuite {
		if filter != "" && !strings.Contains(bench.name, filter) {
			continue
		}
		start := time.Now()
		res := testing.Benchmark(bench.fn)
		if res.N == 0 {
			return fmt.Errorf("perf: %s did not run", bench.name)
		}
		for r := 1; r < runs; r++ {
			again := testing.Benchmark(bench.fn)
			if again.N == 0 {
				return fmt.Errorf("perf: %s did not run", bench.name)
			}
			if float64(again.T.Nanoseconds())/float64(again.N) <
				float64(res.T.Nanoseconds())/float64(res.N) {
				res = again
			}
		}
		report.Benchmarks = append(report.Benchmarks, perfBench{
			Name:        bench.name,
			Unit:        bench.unit,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			Iterations:  res.N,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "perf: %-28s %10.1f %s (%d iterations, %.1fs)\n",
			bench.name, report.Benchmarks[len(report.Benchmarks)-1].NsPerOp,
			bench.unit, res.N, time.Since(start).Seconds())
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("perf: filter %q matched no benchmarks", filter)
	}
	out := w
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// perfBasaltProcess measures the BASALT strategy's per-id ingest: the
// seeded-ranking admission over 25 slots under a 1000-id stream.
func perfBasaltProcess(b *testing.B) {
	s, err := core.NewBasalt(25, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfSink += s.Process(uint64(i % 1000))
	}
}

// perfPoolPushBatch mirrors bench_test.go's benchPoolPushBatch: batch
// ingest of ids cycling over 1000, c=10, 10x5 sketch per shard, in
// 2048-id sub-batches. b.N counts ids, so ns/op is ns/id.
func perfPoolPushBatch(b *testing.B, shards int) {
	p, err := nodesampling.NewPool(10, shards,
		nodesampling.WithSeed(1), nodesampling.WithSketch(10, 5), nodesampling.WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	const batchSize = 2048
	batch := make([]nodesampling.NodeID, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = nodesampling.NodeID((i + j) % 1000)
		}
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

// perfPoolFanout mirrors benchPoolSubscribeFanout: ingest with subs live
// subscribers draining σ′.
func perfPoolFanout(b *testing.B, subs int) {
	p, err := nodesampling.NewPool(10, 4,
		nodesampling.WithSeed(1), nodesampling.WithSketch(10, 5), nodesampling.WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	for i := 0; i < subs; i++ {
		sub, err := p.Subscribe(4096)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for range sub.C() {
			}
		}()
	}
	const batchSize = 2048
	batch := make([]nodesampling.NodeID, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = nodesampling.NodeID((i + j) % 1000)
		}
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

// staticTarget serves fixed load signals without locks, isolating the
// controller's decision path (mirrors internal/autoscale's benchmark).
type staticTarget struct{ sig shard.LoadSignals }

func (s *staticTarget) LoadSignals() shard.LoadSignals { return s.sig }
func (s *staticTarget) Resize(int) error               { return nil }

// perfControllerTick measures one autoscale control evaluation on a held
// plane: signal condensation, EWMA update, decision.
func perfControllerTick(b *testing.B) {
	target := &staticTarget{sig: shard.LoadSignals{
		Shards: 8, QueueCap: 8 * 64, QueueLen: 96,
		Processed: 1 << 30, Dropped: 1 << 10,
	}}
	c, err := autoscale.New(target, autoscale.Config{
		Min: 1, Max: 64, Enabled: true,
		Alpha: 0.3, GrowThreshold: 0.6, ShrinkThreshold: 0.01,
		Interval: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		c.Tick(now)
	}
}
