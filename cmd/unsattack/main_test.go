package main

import (
	"strings"
	"testing"
)

func TestPlanOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "10", "-s", "5", "-eta", "0.1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "L_{k,s} = 38") {
		t.Errorf("missing targeted effort in output:\n%s", out)
	}
	if !strings.Contains(out, "E_k     = 44") {
		t.Errorf("missing flooding effort in output:\n%s", out)
	}
	if !strings.Contains(out, "400 bytes") {
		t.Errorf("missing sketch size in output:\n%s", out)
	}
	if strings.Contains(out, "empirical") {
		t.Error("verification printed without -verify")
	}
}

func TestVerifyRuns(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "8", "-s", "3", "-eta", "0.2", "-verify", "-trials", "300"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "empirical check (300 trials)") {
		t.Errorf("missing verification block:\n%s", out)
	}
	if !strings.Contains(out, "targeted success") || !strings.Contains(out, "flooding success") {
		t.Errorf("missing success lines:\n%s", out)
	}
}

func TestBadParameters(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "0"}, &sb); err == nil {
		t.Error("k=0 should fail")
	}
	if err := run([]string{"-eta", "2"}, &sb); err == nil {
		t.Error("eta=2 should fail")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}
