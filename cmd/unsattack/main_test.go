package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPlanOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "10", "-s", "5", "-eta", "0.1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "L_{k,s} = 38") {
		t.Errorf("missing targeted effort in output:\n%s", out)
	}
	if !strings.Contains(out, "E_k     = 44") {
		t.Errorf("missing flooding effort in output:\n%s", out)
	}
	if !strings.Contains(out, "400 bytes") {
		t.Errorf("missing sketch size in output:\n%s", out)
	}
	if strings.Contains(out, "empirical") {
		t.Error("verification printed without -verify")
	}
}

func TestVerifyRuns(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "8", "-s", "3", "-eta", "0.2", "-verify", "-trials", "300"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "empirical check (300 trials)") {
		t.Errorf("missing verification block:\n%s", out)
	}
	if !strings.Contains(out, "targeted success") || !strings.Contains(out, "flooding success") {
		t.Errorf("missing success lines:\n%s", out)
	}
}

func TestBadParameters(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-k", "0"}, &sb); err == nil {
		t.Error("k=0 should fail")
	}
	if err := run([]string{"-eta", "2"}, &sb); err == nil {
		t.Error("eta=2 should fail")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestStrategyTournamentText runs the small tournament end to end and
// checks the text table lists every registered strategy × attack cell.
func TestStrategyTournamentText(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-tournament", "-population", "64", "-capacity", "16",
		"-ids", "4096", "-window", "1024", "-k", "16", "-s", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"G_KL", "knowledge-free", "basalt",
		"targeted-flood", "ballot-stuffing", "churn-storm", "slow-trickle"} {
		if !strings.Contains(out, want) {
			t.Errorf("tournament table missing %q:\n%s", want, out)
		}
	}
}

// TestStrategyTournamentJSONAndFilter checks -json output and the
// -strategy filter, which must resolve through the shared registry.
func TestStrategyTournamentJSONAndFilter(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-tournament", "-json", "-strategy", "basalt",
		"-population", "64", "-capacity", "16", "-ids", "4096", "-window", "1024"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Cells []struct {
			Strategy string `json:"strategy"`
			Attack   string `json:"attack"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("tournament JSON does not parse: %v\n%s", err, sb.String())
	}
	if len(res.Cells) != 4 {
		t.Fatalf("filtered tournament has %d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Strategy != "basalt" {
			t.Fatalf("cell for strategy %q leaked past the -strategy filter", c.Strategy)
		}
	}
	if err := run([]string{"-tournament", "-strategy", "no-such"}, &sb); err == nil {
		t.Error("unknown -strategy should fail")
	} else if !strings.Contains(err.Error(), "no-such") {
		t.Errorf("error %v does not name the unknown strategy", err)
	}
}
