// Command unsattack computes the minimum adversarial effort against a
// knowledge-free sampler (Section V of the paper): how many distinct
// certified identifiers a colluding adversary must create to bias a single
// victim id (targeted attack, L_{k,s}) or every id (flooding attack, E_k)
// with a chosen success probability.
//
// Usage:
//
//	unsattack -k 50 -s 10 -eta 1e-4
//	unsattack -k 50 -s 10 -eta 0.1 -verify -trials 2000
//	unsattack -tournament
//	unsattack -tournament -json -strategy basalt -population 512
//
// With -verify, the theoretical thresholds are checked empirically against
// freshly drawn 2-universal hash families. With -tournament, every
// registered sampling strategy (or just -strategy) is run against the four
// adversarial input models — targeted flood, ballot stuffing, churn storm,
// slow trickle — and scored with the windowed KL divergence and G_KL gain,
// as a text table or JSON (-json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nodesampling/internal/adversary"
	"nodesampling/internal/core"
	"nodesampling/internal/rng"
	"nodesampling/internal/urn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unsattack:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unsattack", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 50, "sketch columns (urns per row)")
		s        = fs.Int("s", 10, "sketch rows (independent hash functions)")
		eta      = fs.Float64("eta", 1e-4, "attack failure probability (success > 1-eta)")
		verify   = fs.Bool("verify", false, "empirically verify the thresholds")
		trials   = fs.Int("trials", 2000, "trials for -verify")
		seed     = fs.Uint64("seed", 1, "seed for -verify and -tournament")
		tourn    = fs.Bool("tournament", false, "run every sampling strategy against the four attack models and print the score table")
		jsonOut  = fs.Bool("json", false, "emit the -tournament result as JSON instead of text")
		strategy = fs.String("strategy", "", "restrict -tournament to one strategy, one of: "+strings.Join(core.Strategies(), ", ")+" (empty runs all)")
		pop      = fs.Int("population", 0, "-tournament honest population size (0 uses the default)")
		ids      = fs.Int("ids", 0, "-tournament stream length per cell (0 uses the default)")
		window   = fs.Int("window", 0, "-tournament scoring window in ids (0 uses the default)")
		capacity = fs.Int("capacity", 0, "-tournament sampler memory size c (0 uses the default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tourn {
		return runTournament(w, *strategy, *pop, *ids, *window, *capacity, *k, *s, *seed, *jsonOut)
	}
	plan, err := adversary.NewPlan(*k, *s, *eta)
	if err != nil {
		return err
	}
	allRows, err := urn.FloodingEffortAllRows(*k, *s, *eta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sketch: k=%d columns x s=%d rows (%d bytes of counters)\n", plan.K, plan.S, plan.SketchBytes)
	fmt.Fprintf(w, "attack success probability target: > %v\n", 1-plan.Eta)
	fmt.Fprintf(w, "targeted attack (bias one victim id):   L_{k,s} = %d distinct ids\n", plan.TargetedIDs)
	fmt.Fprintf(w, "flooding attack (bias every id), paper: E_k     = %d distinct ids\n", plan.FloodingIDs)
	fmt.Fprintf(w, "flooding attack, exact all-rows bound:  E_{k,s} = %d distinct ids\n", allRows)
	fmt.Fprintf(w, "defender's lever: both efforts grow linearly with k and are independent of the system size.\n")
	if !*verify {
		return nil
	}
	r := rng.New(*seed)
	pT, err := adversary.EmpiricalTargetedSuccess(*k, *s, plan.TargetedIDs, *trials, r)
	if err != nil {
		return err
	}
	pF, err := adversary.EmpiricalFloodingSuccess(*k, *s, allRows, *trials, r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "empirical check (%d trials):\n", *trials)
	fmt.Fprintf(w, "  targeted success with %d ids: %.4f (want > %v)\n", plan.TargetedIDs, pT, 1-plan.Eta)
	fmt.Fprintf(w, "  flooding success with %d ids: %.4f (want > %v)\n", allRows, pF, 1-plan.Eta)
	return nil
}

// runTournament runs the strategy-vs-attack tournament and writes the
// table (or JSON). Every sampler is built through the strategy registry,
// so -strategy accepts exactly the names unsd does.
func runTournament(w io.Writer, strategy string, pop, ids, window, capacity, k, s int, seed uint64, jsonOut bool) error {
	cfg := adversary.TournamentConfig{
		Population: pop, Ids: ids, Window: window,
		Capacity: capacity, K: k, S: s, Seed: seed,
	}
	if strategy != "" {
		if _, err := core.NewFactory(strategy, core.StrategyParams{}); err != nil {
			return err
		}
		cfg.Strategies = []string{strategy}
	}
	res, err := adversary.RunTournament(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(w)
	}
	c := res.Config
	fmt.Fprintf(w, "tournament: population %d, memory c=%d, sketch %dx%d, %d ids in windows of %d, decay every %d\n",
		c.Population, c.Capacity, c.K, c.S, c.Ids, c.Window, c.DecayEvery)
	fmt.Fprintf(w, "G_KL = 1 - D(output||U)/D(input||U): 1 removes all attack bias, 0 none, negative amplifies it.\n\n")
	return res.WriteTable(w)
}
