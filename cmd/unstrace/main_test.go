package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSyntheticTraceRequiresKnownName(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-synth", "NotATrace"}, &sb); err == nil {
		t.Error("unknown trace name should fail")
	}
}

func TestFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no input should fail")
	}
	if err := run([]string{"-synth", "NASA", "-log", "x"}, &sb); err == nil {
		t.Error("both inputs should fail")
	}
	if err := run([]string{"-log", "x", "-key", "wat"}, &sb); err == nil {
		t.Error("bad key should fail")
	}
	if err := run([]string{"-log", "/does/not/exist"}, &sb); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRealLogAnalysis(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	var lines []string
	// 40 hosts, one of which floods; enough volume for the samplers.
	for i := 0; i < 4000; i++ {
		host := "evil.example.com"
		if i%2 == 0 {
			host = strings.ReplaceAll("hNN.example.com", "NN", string(rune('a'+i%40/2)))
		}
		lines = append(lines, host+` - - [01/Jul/1995:00:00:01 -0400] "GET /x HTTP/1.0" 200 100`)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-log", path, "-c", "8", "-k", "4", "-s", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "m=4000 ids") {
		t.Errorf("missing stream length:\n%s", out)
	}
	if !strings.Contains(out, "KL divergence to uniform") {
		t.Errorf("missing divergence block:\n%s", out)
	}
	if !strings.Contains(out, "omniscient") {
		t.Errorf("missing omniscient row:\n%s", out)
	}
}

func TestURLKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	var lines []string
	for i := 0; i < 1000; i++ {
		url := "/popular.html"
		if i%4 == 0 {
			url = "/rare" + string(rune('0'+(i/4)%10)) + ".html"
		}
		lines = append(lines, `h - - [t] "GET `+url+` HTTP/1.0" 200 1`)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-log", path, "-key", "url", "-c", "4", "-k", "3", "-s", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n=11 distinct") {
		t.Errorf("unexpected distinct count:\n%s", sb.String())
	}
}
