// Command unstrace analyzes a node-identifier trace — either a real HTTP
// log in Common Log Format (the paper evaluates NASA, ClarkNet and
// Saskatchewan logs from the Internet Traffic Archive) or a synthetic trace
// matching one of those published profiles — and measures how well the
// sampling strategies unbias it.
//
// Usage:
//
//	unstrace -synth NASA                     # Table II synthetic equivalent
//	unstrace -log access.log                 # real CLF log, key = remote host
//	unstrace -log access.log -key url        # key = request URL
//	unstrace -synth ClarkNet -c 900 -k 900   # custom sampler sizing
//
// Output: the trace's Table II statistics, its top ranks, and the KL
// divergence to uniform of the input versus the knowledge-free and
// omniscient outputs (the Figure 12 measurement).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("unstrace", flag.ContinueOnError)
	var (
		synth   = fs.String("synth", "", "synthesize a Table II trace: NASA, ClarkNet or Saskatchewan")
		logPath = fs.String("log", "", "path to a Common Log Format file")
		key     = fs.String("key", "host", "identity field for -log: host or url")
		c       = fs.Int("c", 0, "sampling memory size (default: 0.01 * distinct ids)")
		k       = fs.Int("k", 0, "sketch columns (default: 0.01 * distinct ids)")
		s       = fs.Int("s", 10, "sketch rows")
		seed    = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, name, err := loadTrace(*synth, *logPath, *key, *seed)
	if err != nil {
		return err
	}
	n := tr.Distinct()
	fmt.Fprintf(w, "trace %s: m=%d ids, n=%d distinct, max frequency %d\n",
		name, tr.Len(), n, tr.MaxFreq())
	rf := tr.RankFrequency()
	fmt.Fprintf(w, "top ranks: ")
	for i := 0; i < 5 && i < len(rf); i++ {
		fmt.Fprintf(w, "%d ", rf[i])
	}
	fmt.Fprintf(w, "... tail %d\n", rf[len(rf)-1])

	if *c == 0 {
		*c = max(2, n/100)
	}
	if *k == 0 {
		*k = max(2, n/100)
	}
	fmt.Fprintf(w, "samplers: c=%d, sketch %dx%d\n", *c, *k, *s)

	oracle, err := core.NewCountOracle(tr.Counts())
	if err != nil {
		return err
	}
	kf, err := core.NewKnowledgeFree(*c, *k, *s, rng.New(rng.Mix64(*seed+1)))
	if err != nil {
		return err
	}
	om, err := core.NewOmniscient(*c, oracle, rng.New(rng.Mix64(*seed+2)))
	if err != nil {
		return err
	}
	input := metrics.NewHistogram()
	outKf := metrics.NewHistogram()
	outOm := metrics.NewHistogram()
	for _, id := range tr.IDs() {
		input.Add(id)
		outKf.Add(kf.Process(id))
		outOm.Add(om.Process(id))
	}
	din, err := input.KLvsUniform(n)
	if err != nil {
		return err
	}
	dKf, err := outKf.KLvsUniform(n)
	if err != nil {
		return err
	}
	dOm, err := outOm.KLvsUniform(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "KL divergence to uniform (nats):\n")
	fmt.Fprintf(w, "  input stream:        %.4f\n", din)
	fmt.Fprintf(w, "  knowledge-free:      %.4f (gain %.3f)\n", dKf, gain(din, dKf))
	fmt.Fprintf(w, "  omniscient:          %.4f (gain %.3f)\n", dOm, gain(din, dOm))
	return nil
}

func gain(din, dout float64) float64 {
	if din <= 0 {
		return math.NaN()
	}
	return 1 - dout/din
}

func loadTrace(synth, logPath, key string, seed uint64) (*trace.Trace, string, error) {
	switch {
	case synth != "" && logPath != "":
		return nil, "", fmt.Errorf("pass either -synth or -log, not both")
	case synth != "":
		for _, spec := range trace.TableII() {
			if spec.Name == synth {
				tr, err := trace.Synthesize(spec, seed)
				if err != nil {
					return nil, "", err
				}
				return tr, spec.Name + " (synthetic)", nil
			}
		}
		return nil, "", fmt.Errorf("unknown trace %q (want NASA, ClarkNet or Saskatchewan)", synth)
	case logPath != "":
		field := trace.KeyRemoteHost
		switch key {
		case "host":
		case "url":
			field = trace.KeyRequestURL
		default:
			return nil, "", fmt.Errorf("unknown -key %q (want host or url)", key)
		}
		f, err := os.Open(logPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ids, skipped, err := trace.ParseCommonLog(f, field)
		if err != nil {
			return nil, "", err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "unstrace: skipped %d malformed lines\n", skipped)
		}
		tr, err := trace.FromIDs(ids)
		if err != nil {
			return nil, "", err
		}
		return tr, logPath, nil
	default:
		return nil, "", fmt.Errorf("pass -synth <name> or -log <file>")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
