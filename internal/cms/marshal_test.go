package cms

import (
	"encoding"
	"testing"

	"nodesampling/internal/hashing"
	"nodesampling/internal/rng"
)

var (
	_ encoding.BinaryMarshaler   = (*Sketch)(nil)
	_ encoding.BinaryUnmarshaler = (*Sketch)(nil)
)

func TestMarshalRoundTrip(t *testing.T) {
	sk := mustSketch(t, 20, 4, 50)
	r := rng.New(51)
	for i := 0; i < 20000; i++ {
		sk.Add(r.Uint64n(300))
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != sk.Rows() || back.Cols() != sk.Cols() || back.Total() != sk.Total() {
		t.Fatalf("shape/total mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			back.Rows(), back.Cols(), back.Total(), sk.Rows(), sk.Cols(), sk.Total())
	}
	if back.GlobalMin() != sk.GlobalMin() {
		t.Fatalf("GlobalMin %d vs %d", back.GlobalMin(), sk.GlobalMin())
	}
	// Identical estimates, including for never-seen ids (same hash family).
	for id := uint64(0); id < 600; id++ {
		if back.Estimate(id) != sk.Estimate(id) {
			t.Fatalf("estimate mismatch for id %d: %d vs %d", id, back.Estimate(id), sk.Estimate(id))
		}
	}
	// The restored sketch must keep evolving identically.
	sk.Add(42)
	back.Add(42)
	if back.Estimate(42) != sk.Estimate(42) {
		t.Fatal("post-restore evolution diverged")
	}
	if back.GlobalMin() != back.globalMinNaive() {
		t.Fatal("restored GlobalMin tracker inconsistent")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var sk Sketch
	cases := map[string][]byte{
		"empty":     nil,
		"short":     []byte("CMSK"),
		"bad magic": append([]byte("NOPE"), make([]byte, 60)...),
	}
	for name, data := range cases {
		if err := sk.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUnmarshalRejectsWrongVersionAndLength(t *testing.T) {
	good := mustSketch(t, 4, 2, 52)
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the version.
	bad := append([]byte(nil), data...)
	bad[7] = 99
	var sk Sketch
	if err := sk.UnmarshalBinary(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncate the counters.
	if err := sk.UnmarshalBinary(data[:len(data)-8]); err == nil {
		t.Error("truncated data accepted")
	}
	// Extend with junk.
	if err := sk.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("oversized data accepted")
	}
}

func TestUnmarshalRejectsBadHashParams(t *testing.T) {
	// First hash parameter a lives right after the header — 32 bytes in the
	// legacy v1 (modulo) layout, 36 in v2 (fastrange, +mode word); zero is
	// outside [1, p-1].
	for _, tc := range []struct {
		name   string
		mode   hashing.Mode
		header int
	}{
		{"v1 modulo", hashing.ModeModulo, 32},
		{"v2 fastrange", hashing.ModeFastrange, 36},
	} {
		good, err := NewWithDimensionsMode(4, 2, rng.New(53), tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		data, err := good.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), data...)
		for i := tc.header; i < tc.header+8; i++ {
			bad[i] = 0
		}
		var sk Sketch
		if err := sk.UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: a=0 hash parameter accepted", tc.name)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	sk := mustSketch(b, 250, 17, 1)
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		sk.Add(r.Uint64n(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
