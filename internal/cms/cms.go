// Package cms implements the Count-Min sketch of Cormode and Muthukrishnan,
// exactly as used by Algorithm 2 of the paper: an s × k matrix F̂ of counters
// with one 2-universal hash function per row. Each arriving id increments one
// counter per row; the frequency estimate f̂_j is the minimum of j's counters
// and never underestimates the true frequency f_j, while
// P{f̂_j > f_j + ε·m} ≤ δ for k = ⌈e/ε⌉ and s = ⌈log₂(1/δ)⌉.
//
// The knowledge-free sampler (Algorithm 3) additionally needs minσ, the
// minimum counter value over the whole matrix; Sketch maintains it
// incrementally so a sampler step stays O(s) instead of O(s·k).
package cms

import (
	"fmt"
	"math"

	"nodesampling/internal/hashing"
	"nodesampling/internal/rng"
)

// Sketch is a Count-Min sketch over uint64 identifiers. It is not safe for
// concurrent use; wrap it or confine it to one goroutine.
type Sketch struct {
	rows int // s in the paper
	cols int // k in the paper
	// counts is the s × k counter matrix flattened row-major into one
	// array: row r, column c lives at counts[r*cols+c]. One flat slice
	// keeps the whole matrix in a single allocation, makes a row access
	// plain index arithmetic instead of a slice-header load, and turns the
	// full-matrix passes (rescanMin, Halve, Merge) into single linear
	// scans the compiler bounds-checks once.
	counts  []uint64
	hashes  *hashing.Family
	total   uint64 // number of Add calls (stream length m)
	gMin    uint64 // cached min over all counters
	gMinCnt int    // how many counters currently equal gMin
	scratch []int  // per-row column cache for the one-pass CM-CU update
}

// New creates a sketch from the accuracy targets of Algorithm 2:
// k = ⌈e/ε⌉ columns and s = ⌈log₂(1/δ)⌉ rows.
func New(epsilon, delta float64, r *rng.Xoshiro) (*Sketch, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return nil, fmt.Errorf("cms: epsilon must be in (0,1), got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("cms: delta must be in (0,1), got %v", delta)
	}
	k := int(math.Ceil(math.E / epsilon))
	s := int(math.Ceil(math.Log2(1 / delta)))
	if s < 1 {
		s = 1
	}
	return NewWithDimensions(k, s, r)
}

// NewWithDimensions creates a sketch with an explicit k × s shape, matching
// the parameterisation used throughout the paper's evaluation section. New
// sketches hash under hashing.ModeFastrange; sketches deserialised from
// pre-mode blobs stay on the modulo map (see NewWithDimensionsMode and
// UnmarshalBinary).
func NewWithDimensions(k, s int, r *rng.Xoshiro) (*Sketch, error) {
	return NewWithDimensionsMode(k, s, r, hashing.ModeFastrange)
}

// NewWithDimensionsMode is NewWithDimensions with an explicit bucket map
// mode — primarily for tests and for interoperating with legacy
// modulo-mode sketch state.
func NewWithDimensionsMode(k, s int, r *rng.Xoshiro, mode hashing.Mode) (*Sketch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cms: column count k must be positive, got %d", k)
	}
	if s <= 0 {
		return nil, fmt.Errorf("cms: row count s must be positive, got %d", s)
	}
	fam, err := hashing.NewFamilyMode(s, k, r, mode)
	if err != nil {
		return nil, fmt.Errorf("cms: %w", err)
	}
	return &Sketch{
		rows:    s,
		cols:    k,
		counts:  make([]uint64, s*k),
		hashes:  fam,
		gMin:    0,
		gMinCnt: s * k,
		scratch: make([]int, s),
	}, nil
}

// Rows returns s, the number of rows (hash functions).
func (sk *Sketch) Rows() int { return sk.rows }

// Cols returns k, the number of counters per row.
func (sk *Sketch) Cols() int { return sk.cols }

// Total returns the number of ids added so far (the stream length m).
func (sk *Sketch) Total() uint64 { return sk.total }

// Mode returns the bucket map mode of the sketch's hash family.
func (sk *Sketch) Mode() hashing.Mode { return sk.hashes.Mode() }

// Add records one occurrence of id, incrementing one counter per row
// (Algorithm 2, lines 6–7).
func (sk *Sketch) Add(id uint64) { sk.AddEstimate(id) }

// AddEstimate records one occurrence of id and returns its updated estimate
// f̂_id from the same hash pass: with plain Count-Min every one of id's
// counters gains exactly one, so the post-add estimate is the minimum of
// the incremented counters. Equivalent to Add followed by Estimate, minus
// the second set of row hashes — the saving that makes batch ingestion
// (KnowledgeFree.ProcessBatch) cheaper per id than the single-id path.
// The row hashes come from one fused Columns pass (a single key premix
// for all rows, no per-row division under fastrange); the per-row Hash
// path survives as AddEstimateReference, pinned bit-identical by tests.
func (sk *Sketch) AddEstimate(id uint64) uint64 {
	sk.total++
	sk.hashes.Columns(id, sk.scratch)
	est := ^uint64(0)
	gMin := sk.gMin
	counts := sk.counts
	base := 0
	for row := 0; row < sk.rows; row++ {
		idx := base + sk.scratch[row]
		v := counts[idx] + 1
		counts[idx] = v
		if v-1 == gMin {
			sk.gMinCnt--
		}
		if v < est {
			est = v
		}
		base += sk.cols
	}
	if sk.gMinCnt == 0 {
		sk.rescanMin()
	}
	return est
}

// AddEstimateReference is AddEstimate over the per-row reference hash path
// (Family.Hash instead of the fused Columns). It exists so property tests
// and the perf suite can pin the fused path against it — the two must agree
// bit-for-bit on every counter and estimate.
func (sk *Sketch) AddEstimateReference(id uint64) uint64 {
	sk.total++
	est := ^uint64(0)
	for row := 0; row < sk.rows; row++ {
		idx := row*sk.cols + sk.hashes.Hash(row, id)
		v := sk.counts[idx] + 1
		sk.counts[idx] = v
		if v-1 == sk.gMin {
			sk.gMinCnt--
		}
		if v < est {
			est = v
		}
	}
	if sk.gMinCnt == 0 {
		sk.rescanMin()
	}
	return est
}

// AddConservative records one occurrence of id with the conservative-update
// (CM-CU) rule of Estan & Varghese: only counters that would otherwise fall
// below the new estimate est+1 are raised, i.e. each of id's counters
// becomes max(counter, est+1) where est is id's estimate before the update.
// The estimate remains an upper bound on the true frequency while the
// collision over-count shrinks dramatically on skewed streams, which
// sharpens the knowledge-free strategy's discrimination when k is small
// relative to the population (see the ablation-cu experiment).
func (sk *Sketch) AddConservative(id uint64) { sk.AddConservativeEstimate(id) }

// AddConservativeEstimate is AddConservative returning the updated estimate
// f̂_id: the CM-CU rule lifts every counter of id to at least est+1, so the
// post-update estimate is exactly est+1. One hash pass computes the columns
// for both the estimate and the update.
func (sk *Sketch) AddConservativeEstimate(id uint64) uint64 {
	sk.total++
	sk.hashes.Columns(id, sk.scratch)
	est := ^uint64(0)
	for row := 0; row < sk.rows; row++ {
		if v := sk.counts[row*sk.cols+sk.scratch[row]]; v < est {
			est = v
		}
	}
	target := est + 1
	for row := 0; row < sk.rows; row++ {
		idx := row*sk.cols + sk.scratch[row]
		v := sk.counts[idx]
		if v >= target {
			continue
		}
		sk.counts[idx] = target
		if v == sk.gMin {
			sk.gMinCnt--
		}
	}
	if sk.gMinCnt == 0 {
		sk.rescanMin()
	}
	return target
}

// rescanMin recomputes the global minimum after all counters at the previous
// minimum have been incremented. Counters only ever grow, so the new minimum
// is at least the old one; a full scan is the simplest correct recovery and
// it amortises: between rescans every one of the s·k counters at the minimum
// must receive an increment.
func (sk *Sketch) rescanMin() {
	minV := ^uint64(0)
	cnt := 0
	for _, v := range sk.counts {
		switch {
		case v < minV:
			minV, cnt = v, 1
		case v == minV:
			cnt++
		}
	}
	sk.gMin, sk.gMinCnt = minV, cnt
}

// Estimate returns f̂_id, the estimated number of occurrences of id: the
// minimum of its counters across rows (Algorithm 2, line 8). The estimate
// never underestimates the true count.
func (sk *Sketch) Estimate(id uint64) uint64 {
	sk.hashes.Columns(id, sk.scratch)
	est := ^uint64(0)
	for row := 0; row < sk.rows; row++ {
		if v := sk.counts[row*sk.cols+sk.scratch[row]]; v < est {
			est = v
		}
	}
	return est
}

// GlobalMin returns minσ, the minimum counter value over the entire matrix,
// as used for the insertion probability of Algorithm 3 (line 6).
func (sk *Sketch) GlobalMin() uint64 { return sk.gMin }

// globalMinNaive is the O(s·k) reference implementation of GlobalMin, used
// by tests to validate the incremental tracker.
func (sk *Sketch) globalMinNaive() uint64 {
	minV := ^uint64(0)
	for _, v := range sk.counts {
		if v < minV {
			minV = v
		}
	}
	return minV
}

// Halve divides every counter by two (rounding down) and rescans the global
// minimum. Halving the sketch periodically exponentially decays the weight
// of old stream elements, letting the knowledge-free sampler track a slowly
// changing population — the paper assumes churn ceases at T0; this is the
// natural relaxation for streams where it merely slows down. Estimates stay
// within a factor-2 window of the decayed frequencies and never drop below
// half of a just-observed burst.
func (sk *Sketch) Halve() {
	for i := range sk.counts {
		sk.counts[i] >>= 1
	}
	sk.total >>= 1
	sk.rescanMin()
}

// Reset zeroes all counters while keeping the hash functions, so the sketch
// can be reused across experiment trials without re-deriving the family.
func (sk *Sketch) Reset() {
	for i := range sk.counts {
		sk.counts[i] = 0
	}
	sk.total = 0
	sk.gMin = 0
	sk.gMinCnt = sk.rows * sk.cols
}

// SharesFamily reports whether both sketches use the same dimensions, the
// same hash-function parameters and the same bucket map mode, i.e. whether
// identical ids hit identical counters in both. Only such sketches can be
// merged meaningfully: summing counters accumulated under different hash
// families (or the same parameters under different bucket maps) yields a
// matrix whose minima estimate nothing.
func (sk *Sketch) SharesFamily(other *Sketch) bool {
	if other == nil || sk.rows != other.rows || sk.cols != other.cols {
		return false
	}
	if sk.hashes.Mode() != other.hashes.Mode() {
		return false
	}
	a, b := sk.hashes.Params(), other.hashes.Params()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge adds the counters of other into sk. Both sketches must share the
// same dimensions and the same hash family (SharesFamily); when every id was
// counted by exactly one of the merged sketches, the result is bit-identical
// to a single sketch that saw the union of their streams — the property the
// sharded pool's resize hand-off relies on.
func (sk *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("cms: merge with nil sketch")
	}
	if sk.rows != other.rows || sk.cols != other.cols {
		return fmt.Errorf("cms: dimension mismatch: %dx%d vs %dx%d",
			sk.rows, sk.cols, other.rows, other.cols)
	}
	if !sk.SharesFamily(other) {
		return fmt.Errorf("cms: merge across distinct hash families")
	}
	for i := range sk.counts {
		sk.counts[i] += other.counts[i]
	}
	sk.total += other.total
	sk.rescanMin()
	return nil
}

// Clone returns a deep copy of the sketch sharing the same hash family, so
// that the copy estimates identically and is mergeable with the original.
func (sk *Sketch) Clone() *Sketch {
	counts := make([]uint64, len(sk.counts))
	copy(counts, sk.counts)
	return &Sketch{
		rows:    sk.rows,
		cols:    sk.cols,
		counts:  counts,
		hashes:  sk.hashes,
		total:   sk.total,
		gMin:    sk.gMin,
		gMinCnt: sk.gMinCnt,
		scratch: make([]int, sk.rows),
	}
}

// CloneEmpty returns a zero-counter sketch sharing sk's hash family, so the
// clone estimates over its own stream yet remains mergeable with sk and with
// every other clone — the construction behind the pool's per-shard sketches.
func (sk *Sketch) CloneEmpty() *Sketch {
	return &Sketch{
		rows:    sk.rows,
		cols:    sk.cols,
		counts:  make([]uint64, sk.rows*sk.cols),
		hashes:  sk.hashes,
		gMin:    0,
		gMinCnt: sk.rows * sk.cols,
		scratch: make([]int, sk.rows),
	}
}

// CounterBytes returns the memory footprint of the counter matrix in bytes,
// which is what the paper means by the "very small memory" of the sampler.
func (sk *Sketch) CounterBytes() int { return sk.rows * sk.cols * 8 }
