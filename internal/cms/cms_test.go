package cms

import (
	"encoding/binary"

	"math"
	"nodesampling/internal/hashing"
	"testing"
	"testing/quick"

	"nodesampling/internal/rng"
)

func mustSketch(t testing.TB, k, s int, seed uint64) *Sketch {
	t.Helper()
	sk, err := NewWithDimensions(k, s, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestNewFromAccuracyTargets(t *testing.T) {
	cases := []struct {
		epsilon, delta float64
		wantK, wantS   int
	}{
		{0.3, 0.01, 10, 7}, // k = ceil(e/0.3) = 10, s = ceil(log2 100) = 7
		{0.05, 0.001, 55, 10},
		{0.01, 1e-12, 272, 40},
	}
	for _, c := range cases {
		sk, err := New(c.epsilon, c.delta, rng.New(1))
		if err != nil {
			t.Fatalf("New(%v, %v): %v", c.epsilon, c.delta, err)
		}
		if sk.Cols() != c.wantK || sk.Rows() != c.wantS {
			t.Errorf("New(%v, %v) shape = (k=%d, s=%d), want (k=%d, s=%d)",
				c.epsilon, c.delta, sk.Cols(), sk.Rows(), c.wantK, c.wantS)
		}
	}
}

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	bad := []struct{ eps, delta float64 }{
		{0, 0.1}, {1, 0.1}, {-0.2, 0.1}, {0.1, 0}, {0.1, 1}, {0.1, -3},
	}
	for _, c := range bad {
		if _, err := New(c.eps, c.delta, r); err == nil {
			t.Errorf("New(%v, %v) should fail", c.eps, c.delta)
		}
	}
	if _, err := NewWithDimensions(0, 5, r); err == nil {
		t.Error("NewWithDimensions(0, 5) should fail")
	}
	if _, err := NewWithDimensions(5, 0, r); err == nil {
		t.Error("NewWithDimensions(5, 0) should fail")
	}
}

// TestNeverUnderestimates is the fundamental Count-Min guarantee: the
// estimate is always at least the true count.
func TestNeverUnderestimates(t *testing.T) {
	sk := mustSketch(t, 20, 4, 7)
	r := rng.New(8)
	truth := make(map[uint64]uint64)
	for i := 0; i < 50000; i++ {
		id := r.Uint64n(500)
		truth[id]++
		sk.Add(id)
	}
	for id, f := range truth {
		if est := sk.Estimate(id); est < f {
			t.Fatalf("Estimate(%d) = %d underestimates true count %d", id, est, f)
		}
	}
}

// TestErrorBound checks the (ε, δ) guarantee statistically: the fraction of
// ids whose estimate exceeds f + ε·m should be at most about δ.
func TestErrorBound(t *testing.T) {
	const epsilon, delta = 0.1, 0.05
	sk, err := New(epsilon, delta, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	const n, m = 1000, 100000
	truth := make(map[uint64]uint64, n)
	for i := 0; i < m; i++ {
		id := r.Uint64n(n)
		truth[id]++
		sk.Add(id)
	}
	bound := uint64(epsilon * float64(m))
	bad := 0
	for id, f := range truth {
		if sk.Estimate(id) > f+bound {
			bad++
		}
	}
	frac := float64(bad) / float64(len(truth))
	if frac > 3*delta {
		t.Fatalf("%v of ids exceed the epsilon bound, want <= about %v", frac, delta)
	}
}

func TestExactWhenSparse(t *testing.T) {
	// With far fewer distinct ids than columns and several rows, collisions
	// in every row simultaneously are very unlikely, so estimates should be
	// exact for most ids.
	sk := mustSketch(t, 1024, 6, 11)
	truth := map[uint64]uint64{1: 3, 2: 7, 42: 1, 999: 12}
	for id, f := range truth {
		for i := uint64(0); i < f; i++ {
			sk.Add(id)
		}
	}
	for id, f := range truth {
		if est := sk.Estimate(id); est != f {
			t.Errorf("Estimate(%d) = %d, want exact %d", id, est, f)
		}
	}
	if sk.Total() != 23 {
		t.Errorf("Total() = %d, want 23", sk.Total())
	}
}

// TestGlobalMinMatchesNaive is the property test for the incremental minσ
// tracker: after any sequence of adds it must equal a full scan.
func TestGlobalMinMatchesNaive(t *testing.T) {
	r := rng.New(12)
	f := func(seed uint64, nOps uint16) bool {
		sk, err := NewWithDimensions(1+int(seed%13), 1+int(seed%5), rng.New(seed))
		if err != nil {
			return false
		}
		local := rng.New(seed ^ 0xabcdef)
		ops := int(nOps%2000) + 1
		for i := 0; i < ops; i++ {
			sk.Add(local.Uint64n(64))
			if sk.GlobalMin() != sk.globalMinNaive() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng.NewRand(r.Uint64())}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMinStartsAtZeroUntilMatrixFull(t *testing.T) {
	sk := mustSketch(t, 8, 2, 13)
	if sk.GlobalMin() != 0 {
		t.Fatalf("fresh sketch GlobalMin = %d, want 0", sk.GlobalMin())
	}
	// One add touches at most s counters, the rest stay zero.
	sk.Add(5)
	if sk.GlobalMin() != 0 {
		t.Fatalf("GlobalMin after one add = %d, want 0", sk.GlobalMin())
	}
}

func TestGlobalMinGrowsOnUniformStream(t *testing.T) {
	sk := mustSketch(t, 8, 3, 14)
	r := rng.New(15)
	for i := 0; i < 20000; i++ {
		sk.Add(r.Uint64n(1000))
	}
	if sk.GlobalMin() == 0 {
		t.Fatal("GlobalMin still zero after a long uniform stream over many ids")
	}
	if sk.GlobalMin() != sk.globalMinNaive() {
		t.Fatalf("GlobalMin %d != naive %d", sk.GlobalMin(), sk.globalMinNaive())
	}
}

// TestConservativeNeverUnderestimates: the CM-CU rule must preserve the
// upper-bound guarantee.
func TestConservativeNeverUnderestimates(t *testing.T) {
	sk := mustSketch(t, 20, 4, 30)
	r := rng.New(31)
	truth := make(map[uint64]uint64)
	for i := 0; i < 50000; i++ {
		id := r.Uint64n(500)
		truth[id]++
		sk.AddConservative(id)
	}
	for id, f := range truth {
		if est := sk.Estimate(id); est < f {
			t.Fatalf("CU Estimate(%d) = %d underestimates true count %d", id, est, f)
		}
	}
}

// TestConservativeTighterThanPlain: on the same stream and the same hash
// family, conservative-update estimates are never above plain Count-Min
// estimates, and are strictly tighter somewhere on a skewed stream.
func TestConservativeTighterThanPlain(t *testing.T) {
	plain := mustSketch(t, 10, 4, 32)
	cu := plain.Clone()
	cu.Reset()
	r := rng.New(33)
	ids := make([]uint64, 80000)
	for i := range ids {
		// Skewed: id 0 half the time, the rest uniform over 500.
		if r.Bernoulli(0.5) {
			ids[i] = 0
		} else {
			ids[i] = 1 + r.Uint64n(500)
		}
	}
	for _, id := range ids {
		plain.Add(id)
		cu.AddConservative(id)
	}
	strictly := false
	for id := uint64(0); id <= 500; id++ {
		p, c := plain.Estimate(id), cu.Estimate(id)
		if c > p {
			t.Fatalf("CU estimate %d above plain %d for id %d", c, p, id)
		}
		if c < p {
			strictly = true
		}
	}
	if !strictly {
		t.Fatal("CU never tighter than plain on a skewed stream")
	}
	if cu.GlobalMin() > plain.GlobalMin() {
		t.Fatalf("CU global min %d above plain %d", cu.GlobalMin(), plain.GlobalMin())
	}
}

// TestConservativeGlobalMinTracking: the incremental minσ tracker must stay
// correct under the jumpy CU cell updates.
func TestConservativeGlobalMinTracking(t *testing.T) {
	sk := mustSketch(t, 8, 3, 34)
	r := rng.New(35)
	for i := 0; i < 30000; i++ {
		sk.AddConservative(r.Uint64n(200))
		if i%97 == 0 && sk.GlobalMin() != sk.globalMinNaive() {
			t.Fatalf("step %d: GlobalMin %d != naive %d", i, sk.GlobalMin(), sk.globalMinNaive())
		}
	}
	if sk.GlobalMin() != sk.globalMinNaive() {
		t.Fatalf("final GlobalMin %d != naive %d", sk.GlobalMin(), sk.globalMinNaive())
	}
}

func TestHalve(t *testing.T) {
	sk := mustSketch(t, 16, 3, 40)
	for i := 0; i < 1000; i++ {
		sk.Add(7)
	}
	before := sk.Estimate(7)
	sk.Halve()
	after := sk.Estimate(7)
	if after != before/2 {
		t.Fatalf("estimate after halve = %d, want %d", after, before/2)
	}
	if sk.Total() != 500 {
		t.Fatalf("total after halve = %d, want 500", sk.Total())
	}
	if sk.GlobalMin() != sk.globalMinNaive() {
		t.Fatalf("GlobalMin inconsistent after halve: %d vs %d", sk.GlobalMin(), sk.globalMinNaive())
	}
	// Halving all the way down reaches zero and stays consistent.
	for i := 0; i < 20; i++ {
		sk.Halve()
	}
	if sk.Estimate(7) != 0 || sk.GlobalMin() != 0 {
		t.Fatalf("estimate %d / min %d after decaying to zero", sk.Estimate(7), sk.GlobalMin())
	}
}

func TestHalveDecaysOldHeavyHitters(t *testing.T) {
	sk := mustSketch(t, 32, 4, 41)
	// Old heavy hitter, then halvings interleaved with a new arrival.
	for i := 0; i < 10000; i++ {
		sk.Add(1)
	}
	for epoch := 0; epoch < 10; epoch++ {
		sk.Halve()
		for i := 0; i < 100; i++ {
			sk.Add(2)
		}
	}
	if old, fresh := sk.Estimate(1), sk.Estimate(2); old >= fresh {
		t.Fatalf("old id estimate %d not decayed below fresh id %d", old, fresh)
	}
}

func TestReset(t *testing.T) {
	sk := mustSketch(t, 16, 3, 16)
	for i := uint64(0); i < 1000; i++ {
		sk.Add(i)
	}
	sk.Reset()
	if sk.Total() != 0 {
		t.Errorf("Total after reset = %d", sk.Total())
	}
	if sk.GlobalMin() != 0 {
		t.Errorf("GlobalMin after reset = %d", sk.GlobalMin())
	}
	if est := sk.Estimate(3); est != 0 {
		t.Errorf("Estimate(3) after reset = %d", est)
	}
	// The sketch must remain consistent after reuse.
	sk.Add(3)
	if est := sk.Estimate(3); est != 1 {
		t.Errorf("Estimate(3) after reset+add = %d, want 1", est)
	}
}

func TestCloneSharesFamilyAndMerges(t *testing.T) {
	sk := mustSketch(t, 32, 4, 17)
	r := rng.New(18)
	for i := 0; i < 5000; i++ {
		sk.Add(r.Uint64n(100))
	}
	cp := sk.Clone()
	if cp.Estimate(42) != sk.Estimate(42) {
		t.Fatal("clone does not estimate identically")
	}
	// Diverge the copy, then merge back: totals and estimates add up.
	for i := 0; i < 1000; i++ {
		cp.Add(7)
	}
	before := sk.Estimate(7)
	if err := sk.Merge(cp); err != nil {
		t.Fatal(err)
	}
	if got := sk.Estimate(7); got < before+1000 {
		t.Fatalf("post-merge Estimate(7) = %d, want at least %d", got, before+1000)
	}
	if sk.GlobalMin() != sk.globalMinNaive() {
		t.Fatalf("GlobalMin inconsistent after merge: %d vs %d", sk.GlobalMin(), sk.globalMinNaive())
	}
}

func TestMergeValidation(t *testing.T) {
	a := mustSketch(t, 8, 2, 19)
	b := mustSketch(t, 16, 2, 19)
	if err := a.Merge(b); err == nil {
		t.Error("merge with mismatched dimensions should fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("merge with nil should fail")
	}
}

func TestEstimateMonotoneInAdds(t *testing.T) {
	sk := mustSketch(t, 16, 4, 20)
	prev := uint64(0)
	for i := 0; i < 500; i++ {
		sk.Add(99)
		est := sk.Estimate(99)
		if est < prev {
			t.Fatalf("estimate decreased from %d to %d", prev, est)
		}
		prev = est
	}
	if prev < 500 {
		t.Fatalf("estimate %d below true count 500", prev)
	}
}

func TestCounterBytes(t *testing.T) {
	sk := mustSketch(t, 50, 10, 21)
	if got := sk.CounterBytes(); got != 50*10*8 {
		t.Fatalf("CounterBytes = %d, want %d", got, 50*10*8)
	}
}

// TestHeavyHitterAccuracy mirrors the paper's use: under a skewed stream the
// sketch must rank a heavy hitter far above light ids.
func TestHeavyHitterAccuracy(t *testing.T) {
	sk := mustSketch(t, 50, 5, 22)
	r := rng.New(23)
	for i := 0; i < 50000; i++ {
		sk.Add(1) // heavy
		sk.Add(r.Uint64n(1000) + 10)
	}
	heavy := float64(sk.Estimate(1))
	light := float64(sk.Estimate(500))
	if heavy < 10*light {
		t.Fatalf("heavy hitter estimate %v not well separated from light id %v", heavy, light)
	}
	if math.Abs(heavy-50000)/50000 > 0.5 {
		t.Fatalf("heavy hitter estimate %v too far from true 50000", heavy)
	}
}

func BenchmarkAdd(b *testing.B) {
	sk := mustSketch(b, 50, 10, 1)
	r := rng.New(2)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = r.Uint64n(10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(ids[i&4095])
	}
}

func BenchmarkEstimate(b *testing.B) {
	sk := mustSketch(b, 50, 10, 1)
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		sk.Add(r.Uint64n(10000))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += sk.Estimate(uint64(i & 8191))
	}
	_ = sink
}

func BenchmarkAddAndEstimate(b *testing.B) {
	// The exact per-element cost profile of the knowledge-free sampler's
	// sketch interaction: one Add, one Estimate, one GlobalMin per id.
	sk := mustSketch(b, 50, 10, 1)
	r := rng.New(2)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = r.Uint64n(10000)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		id := ids[i&4095]
		sk.Add(id)
		sink += sk.Estimate(id) + sk.GlobalMin()
	}
	_ = sink
}

// TestFusedMatchesReference pins the fused AddEstimate (bulk Columns, one
// premix per id) against the retained per-row reference path: identical
// estimates and identical global-min tracking over an interleaved stream,
// under both bucket maps.
func TestFusedMatchesReference(t *testing.T) {
	for _, mode := range []hashing.Mode{hashing.ModeModulo, hashing.ModeFastrange} {
		fused, err := NewWithDimensionsMode(64, 4, rng.New(71), mode)
		if err != nil {
			t.Fatal(err)
		}
		ref := fused.Clone()
		r := rng.New(72)
		for i := 0; i < 30000; i++ {
			id := r.Uint64n(500)
			ef := fused.AddEstimate(id)
			er := ref.AddEstimateReference(id)
			if ef != er {
				t.Fatalf("mode %v step %d id %d: fused estimate %d != reference %d", mode, i, id, ef, er)
			}
			if fused.GlobalMin() != ref.GlobalMin() {
				t.Fatalf("mode %v step %d: global min diverged %d vs %d",
					mode, i, fused.GlobalMin(), ref.GlobalMin())
			}
		}
		for id := uint64(0); id < 600; id++ {
			if fused.Estimate(id) != ref.Estimate(id) {
				t.Fatalf("mode %v: final estimate mismatch for id %d", mode, id)
			}
		}
	}
}

// TestLegacyModuloBlobRestores: a modulo-mode sketch must serialise as the
// legacy version-1 layout (so pre-mode blobs and readers interoperate) and
// restore under the modulo map with bit-identical behaviour.
func TestLegacyModuloBlobRestores(t *testing.T) {
	sk, err := NewWithDimensionsMode(32, 3, rng.New(81), hashing.ModeModulo)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(82)
	for i := 0; i < 10000; i++ {
		sk.Add(r.Uint64n(200))
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != 1 {
		t.Fatalf("modulo sketch serialised as version %d, want legacy version 1", v)
	}
	if want := headerLenV1 + sk.rows*16 + sk.rows*sk.cols*8; len(data) != want {
		t.Fatalf("modulo blob length %d, want v1 layout length %d", len(data), want)
	}
	var back Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Mode() != hashing.ModeModulo {
		t.Fatalf("restored mode %v, want modulo", back.Mode())
	}
	for id := uint64(0); id < 300; id++ {
		if back.Estimate(id) != sk.Estimate(id) {
			t.Fatalf("estimate mismatch for id %d after legacy restore", id)
		}
	}
}

// TestFastrangeBlobRoundTripsMode: a fastrange sketch round-trips through
// the version-2 layout keeping its mode and exact estimates.
func TestFastrangeBlobRoundTripsMode(t *testing.T) {
	sk, err := NewWithDimensionsMode(32, 3, rng.New(83), hashing.ModeFastrange)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(84)
	for i := 0; i < 10000; i++ {
		sk.Add(r.Uint64n(200))
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != 2 {
		t.Fatalf("fastrange sketch serialised as version %d, want 2", v)
	}
	var back Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Mode() != hashing.ModeFastrange {
		t.Fatalf("restored mode %v, want fastrange", back.Mode())
	}
	for id := uint64(0); id < 300; id++ {
		if back.Estimate(id) != sk.Estimate(id) {
			t.Fatalf("estimate mismatch for id %d after v2 restore", id)
		}
	}
	sk.Add(9)
	back.Add(9)
	if back.Estimate(9) != sk.Estimate(9) {
		t.Fatal("post-restore evolution diverged")
	}
}

// TestMergeAcrossModesRejected: identical (a, b) parameters under different
// bucket maps are different hash functions; SharesFamily and Merge must say
// so. The two constructions draw from identically-seeded generators, so the
// parameters really do coincide — only the mode differs.
func TestMergeAcrossModesRejected(t *testing.T) {
	a, err := NewWithDimensionsMode(64, 4, rng.New(91), hashing.ModeModulo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithDimensionsMode(64, 4, rng.New(91), hashing.ModeFastrange)
	if err != nil {
		t.Fatal(err)
	}
	if a.SharesFamily(b) {
		t.Fatal("SharesFamily ignored the bucket map mode")
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge across bucket map modes accepted")
	}
}

func BenchmarkSketchAddEstimate(b *testing.B) {
	for _, tc := range []struct {
		name string
		add  func(*Sketch, uint64) uint64
	}{
		{"fused", (*Sketch).AddEstimate},
		{"reference", (*Sketch).AddEstimateReference},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sk := mustSketch(b, 1024, 5, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.add(sk, uint64(i)&1023)
			}
		})
	}
}
