package cms

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nodesampling/internal/hashing"
)

// Binary layout (all fields big-endian uint64 unless noted):
//
//	magic "CMSK" | version (uint32) | rows | cols | total
//	rows × (a, b) hash parameters
//	rows × cols counters
const (
	marshalMagic   = "CMSK"
	marshalVersion = 1
)

// MarshalBinary serialises the sketch — counters and hash-family
// parameters — so a sampler's frequency state survives restarts. It
// implements encoding.BinaryMarshaler.
func (sk *Sketch) MarshalBinary() ([]byte, error) {
	size := 4 + 4 + 8*3 + sk.rows*16 + sk.rows*sk.cols*8
	buf := make([]byte, 0, size)
	buf = append(buf, marshalMagic...)
	buf = binary.BigEndian.AppendUint32(buf, marshalVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(sk.rows))
	buf = binary.BigEndian.AppendUint64(buf, uint64(sk.cols))
	buf = binary.BigEndian.AppendUint64(buf, sk.total)
	for _, p := range sk.hashes.Params() {
		buf = binary.BigEndian.AppendUint64(buf, p[0])
		buf = binary.BigEndian.AppendUint64(buf, p[1])
	}
	for _, row := range sk.counts {
		for _, v := range row {
			buf = binary.BigEndian.AppendUint64(buf, v)
		}
	}
	return buf, nil
}

// UnmarshalBinary reconstructs a sketch serialised by MarshalBinary,
// including its hash family, counters and global-minimum tracking. It
// implements encoding.BinaryUnmarshaler; the receiver's previous state is
// discarded.
func (sk *Sketch) UnmarshalBinary(data []byte) error {
	const header = 4 + 4 + 8*3
	if len(data) < header {
		return errors.New("cms: truncated sketch data")
	}
	if string(data[:4]) != marshalMagic {
		return errors.New("cms: bad magic, not a serialised sketch")
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != marshalVersion {
		return fmt.Errorf("cms: unsupported version %d", v)
	}
	rows := binary.BigEndian.Uint64(data[8:16])
	cols := binary.BigEndian.Uint64(data[16:24])
	total := binary.BigEndian.Uint64(data[24:32])
	if rows == 0 || cols == 0 || rows > 1<<20 || cols > 1<<30 {
		return fmt.Errorf("cms: implausible dimensions %dx%d", rows, cols)
	}
	want := header + int(rows)*16 + int(rows*cols)*8
	if len(data) != want {
		return fmt.Errorf("cms: data length %d, want %d for a %dx%d sketch", len(data), want, rows, cols)
	}
	off := header
	params := make([][2]uint64, rows)
	for i := range params {
		params[i][0] = binary.BigEndian.Uint64(data[off:])
		params[i][1] = binary.BigEndian.Uint64(data[off+8:])
		off += 16
	}
	fam, err := hashing.NewFamilyFromParams(params, int(cols))
	if err != nil {
		return fmt.Errorf("cms: reconstruct hash family: %w", err)
	}
	counts := make([][]uint64, rows)
	backing := make([]uint64, rows*cols)
	for i := range counts {
		counts[i], backing = backing[:cols:cols], backing[cols:]
		for j := range counts[i] {
			counts[i][j] = binary.BigEndian.Uint64(data[off:])
			off += 8
		}
	}
	sk.rows = int(rows)
	sk.cols = int(cols)
	sk.total = total
	sk.hashes = fam
	sk.counts = counts
	sk.scratch = make([]int, int(rows))
	sk.rescanMin()
	return nil
}
