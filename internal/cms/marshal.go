package cms

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nodesampling/internal/hashing"
)

// Binary layout (all fields big-endian uint64 unless noted):
//
//	version 1 (legacy, bucket map implied modulo):
//	  magic "CMSK" | version (uint32) | rows | cols | total
//	  rows × (a, b) hash parameters
//	  rows × cols counters
//
//	version 2 (adds the bucket map mode, see hashing.Mode):
//	  magic "CMSK" | version (uint32) | mode (uint32) | rows | cols | total
//	  rows × (a, b) hash parameters
//	  rows × cols counters
//
// A modulo-mode sketch still serialises as version 1, byte-identical to
// blobs written before modes existed, so pre-mode readers and writers stay
// interoperable for the entire legacy state they can represent; only
// fastrange sketches need (and get) the version 2 header. Either way the
// blob pins the bucket map: a restored sketch estimates bit-identically.
const (
	marshalMagic      = "CMSK"
	marshalVersion    = 1
	marshalVersionV2  = 2
	headerLenV1       = 4 + 4 + 8*3
	headerLenV2       = 4 + 4 + 4 + 8*3
	marshalModeModulo = uint32(hashing.ModeModulo)
)

// MarshalBinary serialises the sketch — counters, hash-family parameters
// and bucket map mode — so a sampler's frequency state survives restarts.
// It implements encoding.BinaryMarshaler.
func (sk *Sketch) MarshalBinary() ([]byte, error) {
	mode := sk.hashes.Mode()
	size := headerLenV2 + sk.rows*16 + sk.rows*sk.cols*8
	buf := make([]byte, 0, size)
	buf = append(buf, marshalMagic...)
	if mode == hashing.ModeModulo {
		buf = binary.BigEndian.AppendUint32(buf, marshalVersion)
	} else {
		buf = binary.BigEndian.AppendUint32(buf, marshalVersionV2)
		buf = binary.BigEndian.AppendUint32(buf, uint32(mode))
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(sk.rows))
	buf = binary.BigEndian.AppendUint64(buf, uint64(sk.cols))
	buf = binary.BigEndian.AppendUint64(buf, sk.total)
	for _, p := range sk.hashes.Params() {
		buf = binary.BigEndian.AppendUint64(buf, p[0])
		buf = binary.BigEndian.AppendUint64(buf, p[1])
	}
	for _, v := range sk.counts {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return buf, nil
}

// UnmarshalBinary reconstructs a sketch serialised by MarshalBinary,
// including its hash family (with the recorded bucket map mode — legacy
// version 1 blobs restore under the modulo map), counters and
// global-minimum tracking. It implements encoding.BinaryUnmarshaler; the
// receiver's previous state is discarded.
func (sk *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < headerLenV1 {
		return errors.New("cms: truncated sketch data")
	}
	if string(data[:4]) != marshalMagic {
		return errors.New("cms: bad magic, not a serialised sketch")
	}
	header := headerLenV1
	mode := hashing.ModeModulo
	off := 8
	switch v := binary.BigEndian.Uint32(data[4:8]); v {
	case marshalVersion:
		// Legacy blob: bucket map implied modulo.
	case marshalVersionV2:
		header = headerLenV2
		if len(data) < header {
			return errors.New("cms: truncated sketch data")
		}
		m := binary.BigEndian.Uint32(data[8:12])
		if m == marshalModeModulo || m > uint32(hashing.ModeFastrange) {
			// Modulo sketches serialise as version 1; a v2 blob claiming
			// modulo (or an unknown mode) is not something this code ever
			// wrote.
			return fmt.Errorf("cms: invalid bucket map mode %d in version 2 sketch", m)
		}
		mode = hashing.Mode(m)
		off = 12
	default:
		return fmt.Errorf("cms: unsupported version %d", v)
	}
	rows := binary.BigEndian.Uint64(data[off:])
	cols := binary.BigEndian.Uint64(data[off+8:])
	total := binary.BigEndian.Uint64(data[off+16:])
	if rows == 0 || cols == 0 || rows > 1<<20 || cols > 1<<30 {
		return fmt.Errorf("cms: implausible dimensions %dx%d", rows, cols)
	}
	want := header + int(rows)*16 + int(rows*cols)*8
	if len(data) != want {
		return fmt.Errorf("cms: data length %d, want %d for a %dx%d sketch", len(data), want, rows, cols)
	}
	off = header
	params := make([][2]uint64, rows)
	for i := range params {
		params[i][0] = binary.BigEndian.Uint64(data[off:])
		params[i][1] = binary.BigEndian.Uint64(data[off+8:])
		off += 16
	}
	fam, err := hashing.NewFamilyFromParamsMode(params, int(cols), mode)
	if err != nil {
		return fmt.Errorf("cms: reconstruct hash family: %w", err)
	}
	counts := make([]uint64, rows*cols)
	for i := range counts {
		counts[i] = binary.BigEndian.Uint64(data[off:])
		off += 8
	}
	sk.rows = int(rows)
	sk.cols = int(cols)
	sk.total = total
	sk.hashes = fam
	sk.counts = counts
	sk.scratch = make([]int, int(rows))
	sk.rescanMin()
	return nil
}
