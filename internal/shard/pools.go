package shard

import (
	"sync"
	"sync/atomic"
)

// The ingest hot path recycles every buffer it needs through sync.Pools, so
// a steady-state PushBatch performs zero heap allocations: the partitioned
// id payload, the partition scratch (shard tags and counting-sort cursors)
// and the σ′ draw buffers all come from and return to these pools. The
// payload is the delicate one — its sub-slices are aliased by up to one
// in-flight ring item per shard — so it carries a reference count and only
// re-enters the pool once every shard has consumed (or dropped) its share.

// payload is one PushBatch's partitioned id storage. refs is the number of
// outstanding sub-batches aliasing buf; it is set once, before any
// sub-batch is sent (a fast shard could otherwise process and release its
// share — hitting zero — while later sends are still being enqueued).
type payload struct {
	buf  []uint64
	refs atomic.Int32
}

var payloadPool = sync.Pool{New: func() any { return new(payload) }}

// getPayload returns a payload with buf sized to exactly n ids.
func getPayload(n int) *payload {
	pl := payloadPool.Get().(*payload)
	if cap(pl.buf) < n {
		pl.buf = make([]uint64, n)
	}
	pl.buf = pl.buf[:n]
	return pl
}

// release drops one reference; the last one returns the payload to the
// pool. Called by the shard worker after its sub-batch is fully processed,
// and by the drop path when a full queue discards one.
func (pl *payload) release() {
	if pl.refs.Add(-1) == 0 {
		payloadPool.Put(pl)
	}
}

// partScratch is PushBatch's partition workspace: one shard tag per id and
// the counting-sort cursor/start table. Unlike the payload it is never
// aliased by ring items, so it goes back to the pool as soon as the sends
// are enqueued.
type partScratch struct {
	shards []uint8
	counts []int
}

var scratchPool = sync.Pool{New: func() any { return new(partScratch) }}

// grow sizes the scratch for nids ids across n shards and returns the two
// working slices, with the cursor table zeroed (the counting sort relies on
// starting from zero, a property fresh allocations used to provide for
// free).
func (sc *partScratch) grow(nids, n int) ([]uint8, []int) {
	if cap(sc.shards) < nids {
		sc.shards = make([]uint8, nids)
	}
	sc.shards = sc.shards[:nids]
	if cap(sc.counts) < 2*n {
		sc.counts = make([]int, 2*n)
	}
	sc.counts = sc.counts[:2*n]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	return sc.shards, sc.counts
}

// drawPool recycles σ′ draw buffers between shard workers and the emitter:
// the worker fills one via ProcessBatchEmit, the emitter publishes it
// through the hub (which copies into subscriber buffers) and returns it
// here. Buffers keep whatever capacity they grew to.
var drawPool = sync.Pool{New: func() any {
	b := make([]uint64, 0, 2048)
	return &b
}}
