// Package shard implements the horizontally scaled ingestion layer of the
// node sampling service: a pool of independent sampler shards — each one an
// instance of a registered sampling strategy (core.PoolSampler) owning its
// own frequency state, sampling memory Γ and worker goroutine. The input
// stream is partitioned by an immutable,
// epoch-versioned shard map — salted rendezvous hashing over a slot table —
// so shards never contend with each other, every id keeps routing to one
// stable shard between resizes, and growing or shrinking the shard set
// moves only the minimal set of ids. Batch ingestion amortises the channel
// hand-off and per-shard lock over many identifiers.
//
// Sampling draws a shard weighted by its current |Γ| and then a uniform
// element of that shard's Γ — a uniform draw over the union of the
// memories, preserving the paper's Uniformity property at the population
// level while multiplying ingest throughput by the shard count. Freshness
// is inherited per shard, since every id keeps hashing to the same shard
// between resizes and that shard is the paper's single-stream sampler.
//
// The pool is elastic and durable. Resize re-partitions the live pool to a
// new shard count behind a flush barrier: Γ entries move to their new
// owners and frequency state follows by merging (every shard's sampler is
// an empty clone of one template, so all shards share one hash/seed family
// and their state merges meaningfully), keeping frequency estimates of
// hot ids within estimator error across the hand-off. Snapshot serialises
// the whole plane — shard map, strategy name, per-shard sampler state, Γ
// and the decay epoch — into one versioned blob that Restore turns back
// into a live pool, so a restarted daemon does not forget attacker
// frequencies.
//
// The pool also carries the paper's output surface: while at least one
// subscription is live (Subscribe), workers draw one σ′ element per
// ingested id and hand the draws — via a non-blocking pool-level output
// channel — to a subscription hub (internal/subhub) that fans them out
// under a drop-oldest policy, so a slow subscriber sheds stream elements
// instead of slowing ingestion. With Config.DecayEvery set, all shards
// apply their strategy's decay step on one global decay epoch derived from
// the pool-wide ingest count, keeping per-shard frequency estimates
// comparable.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling/internal/cms"
	"nodesampling/internal/core"
	"nodesampling/internal/rng"
	"nodesampling/internal/spans"
	"nodesampling/internal/subhub"
)

// ErrPoolClosed is returned by Push, PushBatch, Flush and Resize after
// Close.
var ErrPoolClosed = errors.New("shard: pool closed")

// MaxShards bounds a pool's shard count; the shard map stores shard
// indices as bytes, and a pool gains nothing from more shards than any
// realistic core count.
const MaxShards = 256

// slotBits sizes the shard map's slot table: ids hash to one of 2^slotBits
// slots, and rendezvous hashing assigns each slot to a shard. Routing stays
// O(1) per id regardless of the shard count, while a resize recomputes only
// the 4096-entry table instead of rehashing ids.
const (
	slotBits = 12
	numSlots = 1 << slotBits
)

// Config parameterises a Pool.
type Config struct {
	// Shards is the number of independent sampler shards, at most MaxShards.
	// Ignored by Restore, where the snapshot governs.
	Shards int
	// Buffer is each shard's ingest queue capacity, in batches (not ids).
	// The queue is a power-of-two ring, so the effective capacity is Buffer
	// rounded up to the next power of two, minimum 2 (the ring protocol's
	// smallest size).
	Buffer int
	// Block selects the backpressure policy: when true a push into a full
	// shard queue blocks the producer; when false the batch is dropped and
	// counted (the right policy for a daemon absorbing hostile floods).
	Block bool
	// Seed drives the pool's private randomness; shard samplers receive
	// independent generators split from it.
	Seed uint64
	// Capacity is c, each shard's sampling memory size. Ignored by Restore,
	// where the snapshot governs.
	Capacity int
	// Sampler is the strategy factory the pool builds its shard samplers
	// with, resolved from the core registry (core.NewFactory). One template
	// sampler is built per pool and every shard receives an empty clone of
	// it, so all shards share one hash/seed family and their state stays
	// mergeable — the property the Resize hand-off and the snapshot format
	// rely on. Optional for Restore when the blob should govern the
	// strategy; required by New unless NewSketch is set.
	Sampler core.SamplerFactory
	// NewSketch is the pre-strategy way to configure the pool: a sketch
	// constructor hook implying the default knowledge-free strategy. Used
	// only when Sampler is unset. Optional for Restore (the snapshot
	// carries the sampler state); when provided there, it only validates
	// that the configured shape matches the snapshot.
	NewSketch func(r *rng.Xoshiro) (*cms.Sketch, error)
	// CoreOptions are applied to every shard sampler built via NewSketch
	// or a blob-governed Restore (eviction policy, conservative update).
	// Not persisted by Snapshot: Restore callers must pass the same
	// options again. Configs using Sampler carry options inside the
	// factory's bound StrategyParams instead.
	CoreOptions []core.Option
	// EmitBuffer is the capacity of the pool-level output channel, in draw
	// batches (default 4 per shard). It bounds how far σ′ generation may run
	// ahead of the subscription hub; overflow drops whole draw batches
	// (counted) rather than stalling shard workers.
	EmitBuffer int
	// DecayEvery, when positive, halves every shard's sketch each time the
	// pool as a whole has processed that many further ids — a global decay
	// clock. Per-shard halving on each shard's own count would let a
	// momentarily skewed partition decay shards at different rates, making
	// their frequency estimates incomparable; the shared epoch (derived
	// from the pool-wide processed count) keeps them aligned. Each shard
	// applies pending halvings at its next batch or flush barrier, i.e.
	// before its estimates are next consulted; a Flush not racing
	// concurrent pushes leaves every shard at the same epoch.
	DecayEvery uint64
	// OnEmitLag, when set, observes the lag in seconds between a shard
	// worker emitting a σ′ draw batch and the emitter starting its fan-out
	// — the daemon feeds it a latency histogram. The hook runs on the
	// emitter goroutine, once per draw batch; it must not block. When nil
	// (every non-daemon pool), the emit path does not even read the clock.
	OnEmitLag func(seconds float64)
}

// validateCommon checks the fields shared by the New and Restore paths.
func (c Config) validateCommon() error {
	if c.Buffer < 0 {
		return fmt.Errorf("shard: negative buffer %d", c.Buffer)
	}
	if c.EmitBuffer < 0 {
		return fmt.Errorf("shard: negative emit buffer %d", c.EmitBuffer)
	}
	return nil
}

func (c Config) validate() error {
	if err := c.validateCommon(); err != nil {
		return err
	}
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("shard: shard count must be in [1, %d], got %d", MaxShards, c.Shards)
	}
	if c.Capacity < 1 {
		return fmt.Errorf("shard: memory capacity must be at least 1, got %d", c.Capacity)
	}
	if _, ok := c.samplerFactory(); !ok {
		return errors.New("shard: no sampler strategy configured (set Sampler or NewSketch)")
	}
	return nil
}

// samplerFactory resolves the configured strategy factory: an explicit
// Sampler field wins, a NewSketch hook adapts to the default strategy, and
// ok=false means the config names no strategy at all — New rejects that,
// while Restore lets the snapshot govern.
func (c Config) samplerFactory() (core.SamplerFactory, bool) {
	if c.Sampler.New != nil {
		return c.Sampler, true
	}
	if c.NewSketch != nil {
		return core.LegacySketchFactory(c.NewSketch, c.CoreOptions...), true
	}
	return core.SamplerFactory{}, false
}

// The partition's shard map is a Placement (placement.go) with one
// rendezvous key per in-process shard worker: ids hash (salted) to a slot,
// the slot's owner is the shard whose key scores highest for it. The same
// type, with one key per member daemon, is the cluster routing table.

// ShardOf returns the shard index id is routed to under the current shard
// map. The id is salted with a per-pool secret before mixing: a stationary
// public hash would let an adversary mint Sybil ids that all land on one
// chosen shard and keep its queue full (targeted suppression of that
// shard's honest sub-population); with the salt drawn from the pool's
// private randomness the partition is unpredictable to outsiders while
// every id still maps to one stable shard between resizes, preserving the
// per-shard Freshness argument.
func (p *Pool) ShardOf(id uint64) int {
	return p.smap.Load().Owner(rng.Mix64(id ^ p.salt))
}

// worker is one shard: a ring queue, a control channel, a sampler and the
// goroutine that connects them. Its mutex only serialises the worker loop
// against same-shard Sample/Memory readers — never against other shards.
//
// The data plane and the control plane are split: id batches travel through
// the MPSC ring (see ring.go), while flush barriers arrive as ack channels
// on ctrl and shutdown is close(ctrl). The worker polls ctrl opportunistically
// on every loop iteration, so a barrier is serviced promptly even while a
// flood keeps the ring permanently non-empty — under the old single-channel
// scheme a barrier had to wait its turn behind every queued batch.
type worker struct {
	q    *ring
	ctrl chan chan<- struct{}
	done chan struct{}
	idx  int // position in the pool's worker slice, for span attributes

	// Consumer parking. The worker publishes its intent to sleep in
	// `sleeping`, re-checks the ring, then blocks on notify; a producer that
	// observes sleeping after publishing an item drops a token into notify
	// (capacity 1, non-blocking). Sequential consistency of the Go atomics
	// makes the classic flag/recheck handshake lossless: either the
	// producer's store to the slot sequence precedes the worker's re-check
	// (the worker finds the item), or the worker's sleeping store precedes
	// the producer's load (the producer sends the token).
	notify   chan struct{}
	sleeping atomic.Uint32

	// Producer blocking (Config.Block). A producer that finds the ring full
	// registers in waiters under smu and waits on scond; the consumer
	// broadcasts after freeing a slot whenever waiters is non-zero. The
	// register-then-retry order on the producer side mirrors the
	// free-then-check order on the consumer side, closing the lost-wakeup
	// window the same way the parking handshake does.
	smu     sync.Mutex
	scond   *sync.Cond
	waiters atomic.Int32

	mu      sync.Mutex
	sampler core.PoolSampler

	processed atomic.Uint64
	dropped   atomic.Uint64
	halvings  atomic.Uint64
	// memSize mirrors the sampler's |Γ| after each batch so the weighted
	// shard draw in Sample can read sizes without taking every shard's
	// lock. It lags behind by whatever is still queued (up to Buffer
	// batches plus the one in flight), and not at all once the memories
	// are full (the steady state).
	memSize atomic.Int64
}

// newWorker wraps a sampler in a fresh (not yet running) worker. The ring
// capacity is buffer rounded up to a power of two, minimum 1.
func newWorker(sampler core.PoolSampler, buffer int) *worker {
	w := &worker{
		q:       newRing(buffer),
		ctrl:    make(chan chan<- struct{}),
		done:    make(chan struct{}),
		notify:  make(chan struct{}, 1),
		sampler: sampler,
	}
	w.scond = sync.NewCond(&w.smu)
	w.memSize.Store(int64(sampler.MemorySize()))
	return w
}

// recycle moves a stopped worker's sampler and counters into a fresh
// worker, ready to be restarted after a resize.
func (w *worker) recycle(buffer int) *worker {
	nw := newWorker(w.sampler, buffer)
	nw.processed.Store(w.processed.Load())
	nw.dropped.Store(w.dropped.Load())
	nw.halvings.Store(w.halvings.Load())
	return nw
}

// wake rouses a parked consumer. Called by producers after publishing an
// item; the token channel has capacity 1, so a redundant wake is free and a
// needed one never blocks.
func (w *worker) wake() {
	if w.sleeping.Load() != 0 {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}

// push enqueues under the blocking policy, waiting on the worker's condition
// variable while the ring is full. Only called with the pool read lock held,
// so the worker cannot be shut down underneath a blocked producer.
func (w *worker) push(it ringItem) {
	if w.q.tryPush(it) {
		w.wake()
		return
	}
	w.smu.Lock()
	w.waiters.Add(1)
	for !w.q.tryPush(it) {
		w.scond.Wait()
	}
	w.waiters.Add(-1)
	w.smu.Unlock()
	w.wake()
}

// pop drains one item and, if producers are blocked on a full ring, lets
// them know a slot just freed.
func (w *worker) pop() (ringItem, bool) {
	it, ok := w.q.tryPop()
	if ok && w.waiters.Load() > 0 {
		w.smu.Lock()
		w.scond.Broadcast()
		w.smu.Unlock()
	}
	return it, ok
}

func (w *worker) run(p *Pool) {
	defer close(w.done)
	for {
		// Control has priority over data: a pending barrier or shutdown is
		// taken before the next batch, never starved behind a full ring.
		select {
		case ack, ok := <-w.ctrl:
			if !ok {
				w.drainAll(p)
				return
			}
			w.barrier(p, ack)
			continue
		default:
		}
		if it, ok := w.pop(); ok {
			w.process(p, it)
			continue
		}
		// Ring empty: park. Publish the intent, re-check the ring (an item
		// published between the check above and here would otherwise sleep
		// until the next push), then block on either a producer's token or
		// a control message.
		w.sleeping.Store(1)
		if it, ok := w.pop(); ok {
			w.sleeping.Store(0)
			w.process(p, it)
			continue
		}
		select {
		case <-w.notify:
			w.sleeping.Store(0)
		case ack, ok := <-w.ctrl:
			w.sleeping.Store(0)
			if !ok {
				w.drainAll(p)
				return
			}
			w.barrier(p, ack)
		}
	}
}

// process runs one id batch through the shard's sampler and releases its
// payload reference.
func (w *worker) process(p *Pool, it ringItem) {
	n := len(it.ids)
	sc := it.tc.Start("shard")
	// Gate σ′ generation on a single atomic load: with no live
	// subscriber the batch path is exactly the draw-free fast path.
	emit := p.hub.Active()
	var dp *[]uint64
	draws := 0
	w.mu.Lock()
	if emit {
		dp = drawPool.Get().(*[]uint64)
		*dp = w.sampler.ProcessBatchEmit(it.ids, (*dp)[:0])
		draws = len(*dp)
	} else {
		w.sampler.ProcessBatch(it.ids)
	}
	if p.cfg.DecayEvery > 0 {
		// The decay clock counts at processing time: exactly the ids
		// that reached a sampler, perfectly ordered with this shard's
		// own sketch updates (dropped batches never tick the clock).
		total := p.decayTotal.Add(uint64(n))
		w.halveTo(total / p.cfg.DecayEvery)
	}
	w.memSize.Store(int64(w.sampler.MemorySize()))
	w.mu.Unlock()
	w.processed.Add(uint64(n))
	if it.pl != nil {
		it.pl.release()
	}
	if dp != nil {
		if draws > 0 {
			p.emit(dp, sc)
		} else {
			drawPool.Put(dp)
		}
	}
	sc.End(spans.Int("shard", w.idx), spans.Int("ids", n), spans.Int("draws", draws))
}

// barrier services one flush barrier: drain every batch enqueued before the
// barrier was received, catch the sketch up to the global decay epoch, and
// ack. The enqueue-cursor snapshot bounds the drain — batches pushed after
// the barrier arrived may stay queued, exactly the pre-ring FIFO semantics.
func (w *worker) barrier(p *Pool, ack chan<- struct{}) {
	w.drainTo(p, w.q.enq.Load())
	if p.cfg.DecayEvery > 0 {
		// A barrier catches the shard up to the current global epoch
		// even if it saw no recent traffic. Flush runs two barrier
		// rounds: after the first, every pre-flush id has been
		// processed (and counted) somewhere, so the second observes
		// the final total on every shard.
		w.mu.Lock()
		w.halveTo(p.decayTotal.Load() / p.cfg.DecayEvery)
		w.mu.Unlock()
	}
	close(ack)
}

// drainTo processes batches until the dequeue cursor reaches target. A
// claimed-but-unpublished slot (a producer between its CAS and its sequence
// store) makes tryPop fail transiently; yield and retry, the publish is a
// few instructions away.
func (w *worker) drainTo(p *Pool, target uint64) {
	for w.q.deq.Load() < target {
		if it, ok := w.pop(); ok {
			w.process(p, it)
			continue
		}
		runtime.Gosched()
	}
}

// drainAll empties the ring completely — shutdown path, producers already
// excluded by the pool write lock.
func (w *worker) drainAll(p *Pool) {
	for {
		if it, ok := w.pop(); ok {
			w.process(p, it)
			continue
		}
		if w.q.enq.Load() == w.q.deq.Load() {
			return
		}
		runtime.Gosched()
	}
}

// halveTo applies the strategy's decay step until the shard has applied
// `target` decay epochs (a sketch halving for the knowledge-free strategy,
// a slot-seed refresh for basalt). The caller holds w.mu.
func (w *worker) halveTo(target uint64) {
	for w.halvings.Load() < target {
		w.sampler.Decay()
		w.halvings.Add(1)
	}
}

// Pool is a sharded sampling pool. All methods are safe for concurrent use.
type Pool struct {
	cfg      Config
	salt     uint64 // private partition key, see ShardOf
	strategy string // registry name of the strategy the shards run

	// smap is the current shard map epoch. It is swapped under mu (write),
	// but stored atomically so ShardOf and NumShards stay safe without a
	// lock; within a mu critical section (read or write) it is consistent
	// with workers.
	smap atomic.Pointer[Placement]

	// The streaming output plane: workers append per-id output draws onto
	// out (non-blocking; overflow counted in emitDropped), and the emitter
	// goroutine publishes them through the subscription hub.
	hub         *subhub.Hub
	out         chan emitBatch
	emitDropped atomic.Uint64
	emitDone    chan struct{}

	// decayTotal is the pool-wide processed count driving the global decay
	// clock (Config.DecayEvery).
	decayTotal atomic.Uint64

	// Retired shards' counters, folded into Stats totals so a shrink does
	// not make the pool forget work it did.
	retiredProcessed atomic.Uint64
	retiredDropped   atomic.Uint64

	// mu guards workers and closed. Producers and readers hold it for
	// reading; Resize and Close hold it for writing, so a reader always
	// observes a complete worker set consistent with the shard map.
	mu      sync.RWMutex
	workers []*worker
	closed  bool

	rmu sync.Mutex
	r   *rng.Xoshiro
}

// New creates a pool and starts its shard workers.
func New(cfg Config) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	factory, _ := cfg.samplerFactory() // validate() guarantees ok
	root := rng.New(cfg.Seed)
	template, err := factory.New(cfg.Capacity, root.Split())
	if err != nil {
		return nil, fmt.Errorf("shard: sampler template: %w", err)
	}
	p := newPoolShell(cfg, root)
	p.strategy = factory.Name
	keys := make([]uint64, cfg.Shards)
	p.workers = make([]*worker, cfg.Shards)
	for i := range p.workers {
		keys[i] = root.Uint64()
		sampler, err := template.CloneEmpty(root.Split())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		p.workers[i] = newWorker(sampler, cfg.Buffer)
	}
	p.smap.Store(NewPlacement(0, keys))
	p.start()
	return p, nil
}

// newPoolShell builds the pool chassis shared by New and Restore: the hub,
// the output channel and the private randomness. Workers and the shard map
// are installed by the caller before start.
func newPoolShell(cfg Config, root *rng.Xoshiro) *Pool {
	emitBuffer := cfg.EmitBuffer
	if emitBuffer == 0 {
		emitBuffer = 4 * cfg.Shards
		if emitBuffer == 0 {
			emitBuffer = 4
		}
	}
	return &Pool{
		cfg:      cfg,
		salt:     root.Uint64(),
		hub:      subhub.New(),
		out:      make(chan emitBatch, emitBuffer),
		emitDone: make(chan struct{}),
		r:        root,
	}
}

// start launches the shard workers and the emitter. Called once, with no
// concurrent access possible yet.
func (p *Pool) start() {
	for i, w := range p.workers {
		w.idx = i
		go w.run(p)
	}
	go p.emitLoop()
}

// emitBatch is one shard worker's σ′ draw batch in flight to the emitter:
// a pooled draw buffer (the emitter returns it to drawPool after the hub
// fan-out, which copies into subscriber buffers), the hand-off timestamp
// (zero unless something downstream will read it — the lag histogram hook
// or a sampled trace) and the open "emit" span covering the queue wait.
type emitBatch struct {
	dp *[]uint64
	at int64 // time.Now().UnixNano() at worker hand-off; 0 = unstamped
	tc spans.Context
}

// emitLoop publishes draw batches from the pool output channel through the
// hub, then closes the hub (cancelling the remaining subscriptions) once
// the channel is closed by Close. Per batch it observes the worker→hub lag
// (Config.OnEmitLag) and, on sampled traces, closes the "emit" span (queue
// wait) and records a "delivery" child span around the hub fan-out.
func (p *Pool) emitLoop() {
	defer close(p.emitDone)
	for eb := range p.out {
		if eb.at != 0 && p.cfg.OnEmitLag != nil {
			p.cfg.OnEmitLag(float64(time.Now().UnixNano()-eb.at) / 1e9)
		}
		dc := eb.tc.Start("delivery")
		eb.tc.End()
		draws := *eb.dp
		p.hub.Publish(draws)
		dc.End(spans.Int("ids", len(draws)))
		drawPool.Put(eb.dp)
	}
	p.hub.Close()
}

// emit hands one shard's draw batch to the emitter without ever blocking a
// worker: when the output channel is full the batch is dropped and counted.
// σ′ is a sampling stream, so a lost batch costs nothing a later draw does
// not replace. sc is the worker's open "shard" span; a sampled batch opens
// an "emit" child covering the queue wait to the emitter.
func (p *Pool) emit(dp *[]uint64, sc spans.Context) {
	eb := emitBatch{dp: dp}
	if p.cfg.OnEmitLag != nil || sc.Sampled() {
		eb.at = time.Now().UnixNano()
	}
	if sc.Sampled() {
		eb.tc = sc.Start("emit")
	}
	select {
	case p.out <- eb:
	default:
		p.emitDropped.Add(uint64(len(*dp)))
		drawPool.Put(dp)
		eb.tc.End(spans.Str("outcome", "dropped"))
	}
}

// Subscribe registers a subscriber to the pool's output stream σ′ with a
// buffer of the given capacity, in ids. The pool only generates output
// draws while at least one subscription is live, so an idle pool pays
// nothing for the streaming plane. Release with Unsubscribe (or Cancel on
// the subscription); a slow subscriber loses the oldest buffered elements
// rather than slowing ingestion.
func (p *Pool) Subscribe(capacity int) (*subhub.Subscription, error) {
	return p.SubscribeEvery(capacity, 1)
}

// SubscribeEvery is Subscribe with per-subscription decimation: only every
// every-th σ′ draw offered to this subscription is delivered, so a modest
// consumer can ride a fast pool without paying for draws it would discard.
func (p *Pool) SubscribeEvery(capacity, every int) (*subhub.Subscription, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	return p.hub.SubscribeEvery(capacity, every)
}

// SubscribeWith is Subscribe with the full option surface — decimation,
// delivery rate cap and decimation-phase seeding (subhub.SubOptions).
func (p *Pool) SubscribeWith(o subhub.SubOptions) (*subhub.Subscription, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	return p.hub.SubscribeWith(o)
}

// Unsubscribe cancels a subscription obtained from Subscribe. Nil-safe and
// idempotent.
func (p *Pool) Unsubscribe(s *subhub.Subscription) { p.hub.Unsubscribe(s) }

// NumSubscribers returns the number of live output-stream subscriptions.
func (p *Pool) NumSubscribers() int { return p.hub.NumSubscribers() }

// Topology returns the shard map epoch and the shard count from a single
// atomic load of the shard map, so the pair is always mutually consistent:
// a caller can never observe epoch N paired with the shard count of epoch
// N+1 while a concurrent Resize swaps the map. Epoch and NumShards are
// conveniences over it; code that needs both must go through Topology.
func (p *Pool) Topology() (epoch uint64, shards int) {
	m := p.smap.Load()
	return m.epoch, len(m.keys)
}

// NumShards returns the pool's current shard count.
func (p *Pool) NumShards() int {
	_, shards := p.Topology()
	return shards
}

// Epoch returns the shard map epoch: 0 at construction, incremented by
// every completed Resize. Restore resumes from the snapshotted epoch.
func (p *Pool) Epoch() uint64 {
	epoch, _ := p.Topology()
	return epoch
}

// LoadSignals is a cheap snapshot of the pool's ingest pressure — the input
// of a load-driven autoscaler. Queue figures are instantaneous; the
// counters are cumulative and monotone even across Resize (retired shards
// fold into the totals), so a controller diffs successive snapshots to get
// per-tick rates.
type LoadSignals struct {
	Epoch       uint64 // shard map epoch, consistent with Shards
	Shards      int    // current shard count
	QueueLen    int    // batches waiting across all shard queues
	QueueCap    int    // total ring capacity (Config.Buffer rounded up to a power of two, min 2, × Shards)
	MaxQueueLen int    // deepest single shard queue, in batches
	Processed   uint64 // cumulative ids processed (incl. retired shards)
	Dropped     uint64 // cumulative ids dropped at full queues (incl. retired)
	EmitDropped uint64 // cumulative σ′ draws lost before the hub
}

// LoadSignals returns the pool's current load signals. It takes only the
// pool read lock (no per-shard locks), so a controller ticking every few
// hundred milliseconds costs the ingest path nothing measurable.
func (p *Pool) LoadSignals() LoadSignals {
	p.mu.RLock()
	defer p.mu.RUnlock()
	epoch, _ := p.Topology()
	s := LoadSignals{
		Epoch:       epoch,
		Shards:      len(p.workers),
		Processed:   p.retiredProcessed.Load(),
		Dropped:     p.retiredDropped.Load(),
		EmitDropped: p.emitDropped.Load(),
	}
	for _, w := range p.workers {
		s.QueueCap += w.q.Cap()
		q := w.q.Len()
		s.QueueLen += q
		if q > s.MaxQueueLen {
			s.MaxQueueLen = q
		}
		s.Processed += w.processed.Load()
		s.Dropped += w.dropped.Load()
	}
	return s
}

// Push feeds a single id. PushBatch is the efficient path; Push exists for
// drop-in compatibility with single-id producers.
func (p *Pool) Push(id uint64) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.send(p.smap.Load().Owner(rng.Mix64(id^p.salt)), []uint64{id}, nil, spans.Context{})
	return nil
}

// PushBatch partitions ids across the shards and enqueues one sub-batch per
// shard touched. The slice is copied, so the caller may reuse it
// immediately. Under the drop policy, sub-batches that find their shard
// queue full are discarded whole and counted in that shard's drop counter.
func (p *Pool) PushBatch(ids []uint64) error {
	return pushBatchOf(p, ids, spans.Context{})
}

// PushBatchTraced is PushBatch carrying an open ingest span context: every
// per-shard sub-batch records a "shard" child span (and its σ′ draws an
// "emit"/"delivery" chain) under tc's trace. The zero Context makes it
// exactly PushBatch.
func (p *Pool) PushBatchTraced(ids []uint64, tc spans.Context) error {
	return pushBatchOf(p, ids, tc)
}

// PushBatchOf is PushBatch over any uint64-kind id slice (e.g. the root
// package's NodeID), partitioning and converting in the same single copy so
// typed callers do not pay a conversion pass first. The partition runs
// under the pool's read lock so it always agrees with the worker set even
// when a Resize lands between two batches.
func PushBatchOf[T ~uint64](p *Pool, ids []T) error {
	return pushBatchOf(p, ids, spans.Context{})
}

func pushBatchOf[T ~uint64](p *Pool, ids []T, tc spans.Context) error {
	if len(ids) == 0 {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	m := p.smap.Load()
	n := len(p.workers)
	pl := getPayload(len(ids))
	if n == 1 {
		for i, id := range ids {
			pl.buf[i] = uint64(id)
		}
		pl.refs.Store(1)
		p.send(0, pl.buf, pl, tc)
		return nil
	}
	// Counting sort into one pooled backing array: contiguous per-shard
	// sub-batches with no allocation in the steady state, instead of n
	// growing append chains. The shard of each id is hashed once and
	// remembered, so the placement pass re-reads a byte instead of
	// re-mixing.
	sc := scratchPool.Get().(*partScratch)
	shards, counts := sc.grow(len(ids), n) // counts: [0,n) cursors, [n,2n) starts
	for i, id := range ids {
		s := m.Owner(rng.Mix64(uint64(id) ^ p.salt))
		shards[i] = uint8(s)
		counts[s]++
	}
	sum, nonEmpty := 0, 0
	for i := 0; i < n; i++ {
		c := counts[i]
		if c > 0 {
			nonEmpty++
		}
		counts[i], counts[n+i] = sum, sum
		sum += c
	}
	backing := pl.buf
	for i, id := range ids {
		s := shards[i]
		backing[counts[s]] = uint64(id)
		counts[s]++
	}
	// The refcount must cover every sub-batch before the first send: a fast
	// shard could process and release its share — driving refs to zero and
	// recycling the payload — while later sends still alias it.
	pl.refs.Store(int32(nonEmpty))
	for i := 0; i < n; i++ {
		if b := backing[counts[n+i]:counts[i]:counts[i]]; len(b) > 0 {
			p.send(i, b, pl, tc)
		}
	}
	scratchPool.Put(sc)
	return nil
}

// send enqueues one sub-batch on shard i; the caller holds mu for reading.
// pl is the refcounted payload batch aliases (nil when the batch owns its
// backing array); the drop path must release it like a worker would.
func (p *Pool) send(i int, batch []uint64, pl *payload, tc spans.Context) {
	w := p.workers[i]
	it := ringItem{ids: batch, pl: pl, tc: tc}
	if p.cfg.Block {
		w.push(it)
		return
	}
	if w.q.tryPush(it) {
		w.wake()
		return
	}
	w.dropped.Add(uint64(len(batch)))
	if pl != nil {
		pl.release()
	}
}

// barrierLocked posts a flush barrier to every worker's control channel and
// waits for all acks. The caller holds mu (read or write); workers poll
// their control channel every loop iteration, so the posts are taken
// promptly even while the rings are full.
func barrierLocked(workers []*worker) {
	acks := make([]chan struct{}, len(workers))
	for i, w := range workers {
		ch := make(chan struct{})
		acks[i] = ch
		w.ctrl <- ch
	}
	for _, ch := range acks {
		<-ch
	}
}

// Flush blocks until every id enqueued before the call has been processed.
// The barrier always enqueues (even under the drop policy), so Flush never
// loses its place in a full queue. With DecayEvery set, a Flush not racing
// concurrent pushes additionally leaves every shard at the same decay
// epoch: the first barrier round guarantees all prior ids are processed
// and counted, the second lets every shard catch up to that final total.
func (p *Pool) Flush() error {
	rounds := 1
	if p.cfg.DecayEvery > 0 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		p.mu.RLock()
		if p.closed {
			p.mu.RUnlock()
			return ErrPoolClosed
		}
		barrierLocked(p.workers)
		p.mu.RUnlock()
	}
	return nil
}

// Sample draws a shard weighted by its current |Γ|, then a uniform element
// of that shard's Γ — a uniform draw over the union of the memories. With
// all memories equally full this equals a uniform shard draw, and when they
// are not (warm-up, or a population small enough that shards fill to
// unequal sub-population sizes) the weighting removes the bias a uniform
// shard draw would bake in. Shard sizes are read from per-worker atomics,
// so only the chosen shard's lock is taken.
func (p *Pool) Sample() (uint64, bool) {
	out := p.sample(1)
	if len(out) == 0 {
		return 0, false
	}
	return out[0], true
}

// SampleN draws n independent samples. Fewer are returned while the pool is
// entirely empty.
func (p *Pool) SampleN(n int) []uint64 { return p.sample(n) }

// sample draws up to n weighted-shard samples against one snapshot of the
// shard sizes, with all shard indices drawn under a single lock
// acquisition so concurrent readers do not serialize per draw.
func (p *Pool) sample(n int) []uint64 {
	if n < 1 {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	nw := len(p.workers)
	sizes := make([]int64, nw)
	var total int64
	for i, w := range p.workers {
		s := w.memSize.Load()
		sizes[i] = s
		total += s
	}
	if total == 0 {
		return nil
	}
	picks := make([]int, nw)
	p.rmu.Lock()
	for j := 0; j < n; j++ {
		x := int64(p.r.Uint64n(uint64(total)))
		for i, s := range sizes {
			if x < s {
				picks[i]++
				break
			}
			x -= s
		}
	}
	p.rmu.Unlock()
	// Draw each shard's quota under one lock acquisition, so a large n
	// costs at most one lock round-trip per shard rather than per sample.
	// The grouping does not change the distribution: the draws are
	// independent and the output order is not part of the contract.
	out := make([]uint64, 0, n)
	misses := 0
	for i, c := range picks {
		if c == 0 {
			continue
		}
		w := p.workers[i]
		w.mu.Lock()
		for j := 0; j < c; j++ {
			id, ok := w.sampler.Sample()
			if !ok {
				// Only possible in the instant before the shard's first
				// batch lands (memories never shrink after the snapshot).
				misses += c - j
				break
			}
			out = append(out, id)
		}
		w.mu.Unlock()
	}
	// Serve any draws that hit a still-empty shard from the others rather
	// than starve the caller.
	for m := 0; m < misses; m++ {
		for i := 0; i < nw; i++ {
			w := p.workers[i]
			w.mu.Lock()
			id, ok := w.sampler.Sample()
			w.mu.Unlock()
			if ok {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Memory returns the concatenation of every shard's Γ snapshot.
func (p *Pool) Memory() []uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []uint64
	for _, w := range p.workers {
		w.mu.Lock()
		out = append(out, w.sampler.Memory()...)
		w.mu.Unlock()
	}
	return out
}

// Estimate returns the owning shard's frequency estimate f̂ for id — for
// the knowledge-free strategy an upper bound on how often the pool has seen
// it (within sketch error, and subject to decay), for other strategies
// whatever frequency knowledge they keep. Resize hand-offs and snapshot
// restores preserve these estimates; the tests pin that.
func (p *Pool) Estimate(id uint64) uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	w := p.workers[p.smap.Load().Owner(rng.Mix64(id^p.salt))]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sampler.Estimate(id)
}

// Strategy returns the registry name of the sampling strategy the pool's
// shards run ("knowledge-free", "basalt", ...).
func (p *Pool) Strategy() string { return p.strategy }

// Resize re-partitions the live pool to the given shard count. A flush
// barrier quiesces the workers (producers briefly block on the pool lock —
// the only ingestion stall), then Γ entries are re-partitioned to their new
// owners under the next shard-map epoch and sketch state follows by
// merging:
//
//   - Growing: surviving shards keep their sketches (their remaining ids'
//     estimates are untouched); every new shard receives a merge of all
//     previous sketches, which — shards sharing one hash family, every id
//     counted by exactly one shard — equals the single global sketch over
//     the whole stream, so a stolen id's estimate survives within standard
//     Count-Min error.
//   - Shrinking: retired shards' sketches are merged into every survivor,
//     the same global-sketch argument applied to the ids they inherit;
//     retired counters fold into the pool totals.
//
// A shard whose re-partitioned Γ exceeds its capacity sheds uniformly
// chosen ids (possible only when shrinking reduces total memory). Resizing
// to the current count is a no-op. Concurrent Sample/Stats/Memory calls
// block for the duration; queued batches are fully processed first, and no
// pushed id is ever lost to a resize.
func (p *Pool) Resize(shards int) error {
	if shards < 1 || shards > MaxShards {
		return fmt.Errorf("shard: shard count must be in [1, %d], got %d", MaxShards, shards)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	old := p.workers
	if shards == len(old) {
		return nil
	}
	// Quiesce: with producers excluded by the write lock, one barrier round
	// drains every queue (two under decay, aligning all shards on the final
	// global epoch), after which the workers are stopped and their samplers
	// are exclusively ours.
	rounds := 1
	if p.cfg.DecayEvery > 0 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		barrierLocked(old)
	}
	for _, w := range old {
		close(w.ctrl)
	}
	for _, w := range old {
		<-w.done
	}

	p.rmu.Lock()
	resizeRng := p.r.Split()
	p.rmu.Unlock()
	oldMap := p.smap.Load()
	grow := shards > len(old)
	keys := append([]uint64(nil), oldMap.keys...)
	if grow {
		for len(keys) < shards {
			keys = append(keys, resizeRng.Uint64())
		}
	} else {
		keys = keys[:shards]
	}
	newMap := NewPlacement(oldMap.epoch+1, keys)

	// Γ re-partition: every remembered id moves to its owner under the new
	// map (rendezvous monotonicity means ids only move onto new shards on a
	// grow, and only off retired shards on a shrink).
	parts := make([][]uint64, shards)
	for _, w := range old {
		for _, id := range w.sampler.Memory() {
			s := newMap.Owner(rng.Mix64(id ^ p.salt))
			parts[s] = append(parts[s], id)
		}
	}

	workers := make([]*worker, shards)
	if grow {
		for i := range workers {
			if i < len(old) {
				workers[i] = old[i].recycle(p.cfg.Buffer)
				continue
			}
			// Every new shard receives an empty clone of a survivor with
			// all previous shards' frequency state merged in — shards
			// sharing one family, every id counted by exactly one shard,
			// the merge equals the single global estimator over the whole
			// stream.
			sampler, err := old[0].sampler.CloneEmpty(resizeRng.Split())
			if err == nil {
				for _, w := range old {
					if err = sampler.MergeState(w.sampler); err != nil {
						break
					}
				}
			}
			if err != nil {
				p.restartWorkers(recycleAll(old, p.cfg.Buffer))
				return fmt.Errorf("shard: resize state hand-off: %w", err)
			}
			w := newWorker(sampler, p.cfg.Buffer)
			w.halvings.Store(old[0].halvings.Load())
			workers[i] = w
		}
	} else {
		for i := 0; i < shards; i++ {
			workers[i] = old[i].recycle(p.cfg.Buffer)
		}
		// Fold every retired shard's frequency state into each survivor —
		// the same global-estimator argument applied to the ids the
		// survivors inherit; retired counters fold into the pool totals.
		retired := old[shards:]
		for i := 0; i < shards; i++ {
			for _, w := range retired {
				if err := workers[i].sampler.MergeState(w.sampler); err != nil {
					p.restartWorkers(recycleAll(old, p.cfg.Buffer))
					return fmt.Errorf("shard: resize state hand-off: %w", err)
				}
			}
		}
		for _, w := range retired {
			p.retiredProcessed.Add(w.processed.Load())
			p.retiredDropped.Add(w.dropped.Load())
		}
	}
	for i, w := range workers {
		ids := parts[i]
		if len(ids) > p.cfg.Capacity {
			// Shed overflow uniformly: a partial Fisher-Yates keeps each id
			// with equal probability, so the survivor set is a uniform
			// subset and the stationary uniformity argument is undisturbed.
			for j := 0; j < p.cfg.Capacity; j++ {
				k := j + resizeRng.Intn(len(ids)-j)
				ids[j], ids[k] = ids[k], ids[j]
			}
			ids = ids[:p.cfg.Capacity]
		}
		if err := w.sampler.RestoreMemory(ids); err != nil {
			p.restartWorkers(recycleAll(old, p.cfg.Buffer))
			return fmt.Errorf("shard: resize memory hand-off: %w", err)
		}
		w.memSize.Store(int64(w.sampler.MemorySize()))
	}
	p.workers = workers
	p.smap.Store(newMap)
	for i, w := range workers {
		w.idx = i
		go w.run(p)
	}
	return nil
}

// recycleAll recycles a stopped worker set wholesale (failure-recovery
// path: relaunch the previous plane untouched).
func recycleAll(old []*worker, buffer int) []*worker {
	out := make([]*worker, len(old))
	for i, w := range old {
		out[i] = w.recycle(buffer)
	}
	return out
}

// restartWorkers installs and launches ws as the pool's worker set. The
// caller holds mu for writing. Only reachable on resize failure paths that
// cannot occur with pools built by New/Restore (shared sketch families),
// but kept so even an invariant breach leaves a functioning pool.
func (p *Pool) restartWorkers(ws []*worker) {
	p.workers = ws
	for i, w := range ws {
		w.idx = i
		go w.run(p)
	}
}

// ShardStats is one shard's activity snapshot.
type ShardStats struct {
	Processed  uint64 // ids processed by the shard's sampler
	Dropped    uint64 // ids discarded because the shard queue was full
	Halvings   uint64 // decay steps applied to the shard's sampler
	QueueDepth int    // batches currently waiting in the shard queue
	MemorySize int    // current |Γ| of the shard's sampler
}

// Stats is a whole-pool activity snapshot.
type Stats struct {
	Shards      []ShardStats
	Epoch       uint64 // shard map epoch (increments per Resize)
	Processed   uint64 // sum over shards, including shards retired by Resize
	Dropped     uint64 // sum over shards, including shards retired by Resize
	EmitDropped uint64 // σ′ draws lost because the emitter lagged the shards
	Subscribers []subhub.SubStats
}

// Stats returns a snapshot of per-shard and aggregate counters. Epoch and
// the Shards slice come from one critical section (map swaps happen under
// the write lock), so they describe the same shard-map epoch.
func (p *Pool) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	epoch, _ := p.Topology()
	st := Stats{
		Shards:      make([]ShardStats, len(p.workers)),
		Epoch:       epoch,
		Processed:   p.retiredProcessed.Load(),
		Dropped:     p.retiredDropped.Load(),
		EmitDropped: p.emitDropped.Load(),
		Subscribers: p.hub.Stats(),
	}
	for i, w := range p.workers {
		s := ShardStats{
			Processed:  w.processed.Load(),
			Dropped:    w.dropped.Load(),
			Halvings:   w.halvings.Load(),
			QueueDepth: w.q.Len(),
			MemorySize: int(w.memSize.Load()),
		}
		st.Shards[i] = s
		st.Processed += s.Processed
		st.Dropped += s.Dropped
	}
	return st
}

// Close stops the pool: shard queues are closed, workers drain what was
// already enqueued and exit, then the output plane shuts down (remaining
// draws are published and every subscription's channel is closed).
// Idempotent; concurrent pushes either complete or return ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.ctrl)
	}
	workers := p.workers
	p.mu.Unlock()
	for _, w := range workers {
		<-w.done
	}
	// All workers have exited, so nothing can send on the output channel
	// anymore; closing it lets the emitter drain and close the hub.
	close(p.out)
	<-p.emitDone
	return nil
}
