// Package shard implements the horizontally scaled ingestion layer of the
// node sampling service: a pool of independent knowledge-free sampler
// shards, each owning its own Count-Min sketch, sampling memory Γ and
// worker goroutine. The input stream is partitioned by a salted stationary
// hash of the id, so shards never contend with each other; batch ingestion
// amortises the channel hand-off and per-shard lock over many identifiers.
//
// Sampling draws a shard weighted by its current |Γ| and then a uniform
// element of that shard's Γ — a uniform draw over the union of the
// memories, preserving the paper's Uniformity property at the population
// level while multiplying ingest throughput by the shard count. Freshness
// is inherited per shard, since every id keeps hashing to the same shard
// and that shard is the paper's single-stream sampler.
//
// The pool also carries the paper's output surface: while at least one
// subscription is live (Subscribe), workers draw one σ′ element per
// ingested id and hand the draws — via a non-blocking pool-level output
// channel — to a subscription hub (internal/subhub) that fans them out
// under a drop-oldest policy, so a slow subscriber sheds stream elements
// instead of slowing ingestion. With Config.DecayEvery set, all shards
// halve their sketches on one global decay epoch derived from the
// pool-wide ingest count, keeping per-shard frequency estimates
// comparable.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nodesampling/internal/core"
	"nodesampling/internal/rng"
	"nodesampling/internal/subhub"
)

// ErrPoolClosed is returned by Push, PushBatch and Flush after Close.
var ErrPoolClosed = errors.New("shard: pool closed")

// MaxShards bounds a pool's shard count; the partitioner stores shard
// indices as bytes, and a pool gains nothing from more shards than any
// realistic core count.
const MaxShards = 256

// Config parameterises a Pool.
type Config struct {
	// Shards is the number of independent sampler shards, at most MaxShards.
	Shards int
	// Buffer is each shard's ingest queue capacity, in batches (not ids).
	// Zero means unbuffered hand-off.
	Buffer int
	// Block selects the backpressure policy: when true a push into a full
	// shard queue blocks the producer; when false the batch is dropped and
	// counted (the right policy for a daemon absorbing hostile floods).
	Block bool
	// Seed drives the pool's private randomness; shard samplers receive
	// independent generators split from it.
	Seed uint64
	// NewSampler constructs one shard's sampler from its private generator.
	NewSampler func(r *rng.Xoshiro) (*core.KnowledgeFree, error)
	// EmitBuffer is the capacity of the pool-level output channel, in draw
	// batches (default 4 per shard). It bounds how far σ′ generation may run
	// ahead of the subscription hub; overflow drops whole draw batches
	// (counted) rather than stalling shard workers.
	EmitBuffer int
	// DecayEvery, when positive, halves every shard's sketch each time the
	// pool as a whole has processed that many further ids — a global decay
	// clock. Per-shard halving on each shard's own count would let a
	// momentarily skewed partition decay shards at different rates, making
	// their frequency estimates incomparable; the shared epoch (derived
	// from the pool-wide processed count) keeps them aligned. Each shard
	// applies pending halvings at its next batch or flush barrier, i.e.
	// before its estimates are next consulted; a Flush not racing
	// concurrent pushes leaves all shards at the same epoch.
	DecayEvery uint64
}

func (c Config) validate() error {
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("shard: shard count must be in [1, %d], got %d", MaxShards, c.Shards)
	}
	if c.Buffer < 0 {
		return fmt.Errorf("shard: negative buffer %d", c.Buffer)
	}
	if c.EmitBuffer < 0 {
		return fmt.Errorf("shard: negative emit buffer %d", c.EmitBuffer)
	}
	if c.NewSampler == nil {
		return errors.New("shard: nil sampler constructor")
	}
	return nil
}

// ShardOf returns the shard index id is routed to. The id is salted with a
// per-pool secret before mixing: a stationary public hash would let an
// adversary mint Sybil ids that all land on one chosen shard and keep its
// queue full (targeted suppression of that shard's honest sub-population);
// with the salt drawn from the pool's private randomness the partition is
// unpredictable to outsiders while every id still maps to one stable shard
// for the pool's lifetime, preserving the per-shard Freshness argument.
func (p *Pool) ShardOf(id uint64) int {
	return int(rng.Mix64(id^p.salt) % uint64(len(p.workers)))
}

// item is one unit of work on a shard queue. A nil-ids item with an ack is
// a flush barrier: the worker signals it once everything enqueued before it
// has been processed.
type item struct {
	ids []uint64
	ack chan<- struct{}
}

// worker is one shard: a queue, a sampler and the goroutine that connects
// them. Its mutex only serialises the worker loop against same-shard
// Sample/Memory readers — never against other shards.
type worker struct {
	in   chan item
	done chan struct{}

	mu      sync.Mutex
	sampler *core.KnowledgeFree

	processed atomic.Uint64
	dropped   atomic.Uint64
	halvings  atomic.Uint64
	// memSize mirrors the sampler's |Γ| after each batch so the weighted
	// shard draw in Sample can read sizes without taking every shard's
	// lock. It lags behind by whatever is still queued (up to Buffer
	// batches plus the one in flight), and not at all once the memories
	// are full (the steady state).
	memSize atomic.Int64
}

func (w *worker) run(p *Pool) {
	defer close(w.done)
	for it := range w.in {
		if len(it.ids) > 0 {
			// Gate σ′ generation on a single atomic load: with no live
			// subscriber the batch path is exactly the draw-free fast path.
			emit := p.hub.Active()
			var draws []uint64
			w.mu.Lock()
			if emit {
				draws = w.sampler.ProcessBatchEmit(it.ids, make([]uint64, 0, len(it.ids)))
			} else {
				w.sampler.ProcessBatch(it.ids)
			}
			if p.cfg.DecayEvery > 0 {
				// The decay clock counts at processing time: exactly the ids
				// that reached a sampler, perfectly ordered with this shard's
				// own sketch updates (dropped batches never tick the clock).
				total := p.decayTotal.Add(uint64(len(it.ids)))
				w.halveTo(total / p.cfg.DecayEvery)
			}
			w.memSize.Store(int64(w.sampler.MemorySize()))
			w.mu.Unlock()
			w.processed.Add(uint64(len(it.ids)))
			if len(draws) > 0 {
				p.emit(draws)
			}
		}
		if it.ack != nil {
			if p.cfg.DecayEvery > 0 {
				// A barrier catches the shard up to the current global epoch
				// even if it saw no recent traffic. Flush runs two barrier
				// rounds: after the first, every pre-flush id has been
				// processed (and counted) somewhere, so the second observes
				// the final total on every shard.
				w.mu.Lock()
				w.halveTo(p.decayTotal.Load() / p.cfg.DecayEvery)
				w.mu.Unlock()
			}
			close(it.ack)
		}
	}
}

// halveTo halves the shard's sketch until it has applied `target` decay
// epochs. The caller holds w.mu.
func (w *worker) halveTo(target uint64) {
	for w.halvings.Load() < target {
		w.sampler.Sketch().Halve()
		w.halvings.Add(1)
	}
}

// Pool is a sharded sampling pool. All methods are safe for concurrent use.
type Pool struct {
	cfg     Config
	workers []*worker
	salt    uint64 // private partition key, see ShardOf

	// The streaming output plane: workers append per-id output draws onto
	// out (non-blocking; overflow counted in emitDropped), and the emitter
	// goroutine publishes them through the subscription hub.
	hub         *subhub.Hub
	out         chan []uint64
	emitDropped atomic.Uint64
	emitDone    chan struct{}

	// decayTotal is the pool-wide processed count driving the global decay
	// clock (Config.DecayEvery).
	decayTotal atomic.Uint64

	// mu guards closed and makes channel sends safe against Close closing
	// the shard queues: producers hold it for reading, Close for writing.
	mu     sync.RWMutex
	closed bool

	rmu sync.Mutex
	r   *rng.Xoshiro
}

// New creates a pool and starts its shard workers.
func New(cfg Config) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	emitBuffer := cfg.EmitBuffer
	if emitBuffer == 0 {
		emitBuffer = 4 * cfg.Shards
	}
	p := &Pool{
		cfg:      cfg,
		workers:  make([]*worker, cfg.Shards),
		salt:     root.Uint64(),
		hub:      subhub.New(),
		out:      make(chan []uint64, emitBuffer),
		emitDone: make(chan struct{}),
		r:        root,
	}
	for i := range p.workers {
		sampler, err := cfg.NewSampler(root.Split())
		if err != nil {
			// Unwind the workers already started so a failed construction
			// leaks no goroutines.
			for _, w := range p.workers[:i] {
				close(w.in)
				<-w.done
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		w := &worker{
			in:      make(chan item, cfg.Buffer),
			done:    make(chan struct{}),
			sampler: sampler,
		}
		p.workers[i] = w
		go w.run(p)
	}
	go p.emitLoop()
	return p, nil
}

// emitLoop publishes draw batches from the pool output channel through the
// hub, then closes the hub (cancelling the remaining subscriptions) once
// the channel is closed by Close.
func (p *Pool) emitLoop() {
	defer close(p.emitDone)
	for draws := range p.out {
		p.hub.Publish(draws)
	}
	p.hub.Close()
}

// emit hands one shard's draw batch to the emitter without ever blocking a
// worker: when the output channel is full the batch is dropped and counted.
// σ′ is a sampling stream, so a lost batch costs nothing a later draw does
// not replace.
func (p *Pool) emit(draws []uint64) {
	select {
	case p.out <- draws:
	default:
		p.emitDropped.Add(uint64(len(draws)))
	}
}

// Subscribe registers a subscriber to the pool's output stream σ′ with a
// buffer of the given capacity, in ids. The pool only generates output
// draws while at least one subscription is live, so an idle pool pays
// nothing for the streaming plane. Release with Unsubscribe (or Cancel on
// the subscription); a slow subscriber loses the oldest buffered elements
// rather than slowing ingestion.
func (p *Pool) Subscribe(capacity int) (*subhub.Subscription, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	return p.hub.Subscribe(capacity)
}

// Unsubscribe cancels a subscription obtained from Subscribe. Nil-safe and
// idempotent.
func (p *Pool) Unsubscribe(s *subhub.Subscription) { p.hub.Unsubscribe(s) }

// NumSubscribers returns the number of live output-stream subscriptions.
func (p *Pool) NumSubscribers() int { return p.hub.NumSubscribers() }

// NumShards returns the pool's shard count.
func (p *Pool) NumShards() int { return len(p.workers) }

// Push feeds a single id. PushBatch is the efficient path; Push exists for
// drop-in compatibility with single-id producers.
func (p *Pool) Push(id uint64) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.send(p.ShardOf(id), []uint64{id})
	return nil
}

// PushBatch partitions ids across the shards and enqueues one sub-batch per
// shard touched. The slice is copied, so the caller may reuse it
// immediately. Under the drop policy, sub-batches that find their shard
// queue full are discarded whole and counted in that shard's drop counter.
func (p *Pool) PushBatch(ids []uint64) error {
	return PushBatchOf(p, ids)
}

// PushBatchOf is PushBatch over any uint64-kind id slice (e.g. the root
// package's NodeID), partitioning and converting in the same single copy so
// typed callers do not pay a conversion pass first.
func PushBatchOf[T ~uint64](p *Pool, ids []T) error {
	if len(ids) == 0 {
		return nil
	}
	n := len(p.workers)
	var buckets [][]uint64
	if n == 1 {
		b := make([]uint64, len(ids))
		for i, id := range ids {
			b[i] = uint64(id)
		}
		buckets = [][]uint64{b}
	} else {
		// Counting sort into one backing array: a single allocation for the
		// payload and contiguous per-shard sub-batches, instead of n growing
		// append chains. The shard of each id is hashed once and remembered,
		// so the placement pass re-reads a byte instead of re-mixing.
		shards := make([]uint8, len(ids))
		counts := make([]int, 2*n) // [0,n) cursors, [n,2n) starts
		for i, id := range ids {
			s := p.ShardOf(uint64(id))
			shards[i] = uint8(s)
			counts[s]++
		}
		sum := 0
		for i := 0; i < n; i++ {
			c := counts[i]
			counts[i], counts[n+i] = sum, sum
			sum += c
		}
		backing := make([]uint64, len(ids))
		for i, id := range ids {
			s := shards[i]
			backing[counts[s]] = uint64(id)
			counts[s]++
		}
		buckets = make([][]uint64, n)
		for i := 0; i < n; i++ {
			buckets[i] = backing[counts[n+i]:counts[i]:counts[i]]
		}
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	for i, b := range buckets {
		if len(b) > 0 {
			p.send(i, b)
		}
	}
	return nil
}

// send enqueues one sub-batch on shard i; the caller holds mu for reading.
func (p *Pool) send(i int, batch []uint64) {
	w := p.workers[i]
	if p.cfg.Block {
		w.in <- item{ids: batch}
		return
	}
	select {
	case w.in <- item{ids: batch}:
	default:
		w.dropped.Add(uint64(len(batch)))
	}
}

// Flush blocks until every id enqueued before the call has been processed.
// The barrier always enqueues (even under the drop policy), so Flush never
// loses its place in a full queue. With DecayEvery set, a Flush not racing
// concurrent pushes additionally leaves every shard at the same decay
// epoch: the first barrier round guarantees all prior ids are processed
// and counted, the second lets every shard catch up to that final total.
func (p *Pool) Flush() error {
	rounds := 1
	if p.cfg.DecayEvery > 0 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		p.mu.RLock()
		if p.closed {
			p.mu.RUnlock()
			return ErrPoolClosed
		}
		acks := make([]chan struct{}, len(p.workers))
		for i, w := range p.workers {
			ch := make(chan struct{})
			acks[i] = ch
			w.in <- item{ack: ch}
		}
		p.mu.RUnlock()
		for _, ch := range acks {
			<-ch
		}
	}
	return nil
}

// Sample draws a shard weighted by its current |Γ|, then a uniform element
// of that shard's Γ — a uniform draw over the union of the memories. With
// all memories equally full this equals a uniform shard draw, and when they
// are not (warm-up, or a population small enough that shards fill to
// unequal sub-population sizes) the weighting removes the bias a uniform
// shard draw would bake in. Shard sizes are read from per-worker atomics,
// so only the chosen shard's lock is taken.
func (p *Pool) Sample() (uint64, bool) {
	out := p.sample(1)
	if len(out) == 0 {
		return 0, false
	}
	return out[0], true
}

// SampleN draws n independent samples. Fewer are returned while the pool is
// entirely empty.
func (p *Pool) SampleN(n int) []uint64 { return p.sample(n) }

// sample draws up to n weighted-shard samples against one snapshot of the
// shard sizes, with all shard indices drawn under a single lock
// acquisition so concurrent readers do not serialize per draw.
func (p *Pool) sample(n int) []uint64 {
	if n < 1 {
		return nil
	}
	nw := len(p.workers)
	sizes := make([]int64, nw)
	var total int64
	for i, w := range p.workers {
		s := w.memSize.Load()
		sizes[i] = s
		total += s
	}
	if total == 0 {
		return nil
	}
	picks := make([]int, nw)
	p.rmu.Lock()
	for j := 0; j < n; j++ {
		x := int64(p.r.Uint64n(uint64(total)))
		for i, s := range sizes {
			if x < s {
				picks[i]++
				break
			}
			x -= s
		}
	}
	p.rmu.Unlock()
	// Draw each shard's quota under one lock acquisition, so a large n
	// costs at most one lock round-trip per shard rather than per sample.
	// The grouping does not change the distribution: the draws are
	// independent and the output order is not part of the contract.
	out := make([]uint64, 0, n)
	misses := 0
	for i, c := range picks {
		if c == 0 {
			continue
		}
		w := p.workers[i]
		w.mu.Lock()
		for j := 0; j < c; j++ {
			id, ok := w.sampler.Sample()
			if !ok {
				// Only possible in the instant before the shard's first
				// batch lands (memories never shrink after the snapshot).
				misses += c - j
				break
			}
			out = append(out, id)
		}
		w.mu.Unlock()
	}
	// Serve any draws that hit a still-empty shard from the others rather
	// than starve the caller.
	for m := 0; m < misses; m++ {
		for i := 0; i < nw; i++ {
			w := p.workers[i]
			w.mu.Lock()
			id, ok := w.sampler.Sample()
			w.mu.Unlock()
			if ok {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Memory returns the concatenation of every shard's Γ snapshot.
func (p *Pool) Memory() []uint64 {
	var out []uint64
	for _, w := range p.workers {
		w.mu.Lock()
		out = append(out, w.sampler.Memory()...)
		w.mu.Unlock()
	}
	return out
}

// ShardStats is one shard's activity snapshot.
type ShardStats struct {
	Processed  uint64 // ids processed by the shard's sampler
	Dropped    uint64 // ids discarded because the shard queue was full
	Halvings   uint64 // decay halvings applied to the shard's sketch
	QueueDepth int    // batches currently waiting in the shard queue
	MemorySize int    // current |Γ| of the shard's sampler
}

// Stats is a whole-pool activity snapshot.
type Stats struct {
	Shards      []ShardStats
	Processed   uint64 // sum over shards
	Dropped     uint64 // sum over shards
	EmitDropped uint64 // σ′ draws lost because the emitter lagged the shards
	Subscribers []subhub.SubStats
}

// Stats returns a snapshot of per-shard and aggregate counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Shards:      make([]ShardStats, len(p.workers)),
		EmitDropped: p.emitDropped.Load(),
		Subscribers: p.hub.Stats(),
	}
	for i, w := range p.workers {
		s := ShardStats{
			Processed:  w.processed.Load(),
			Dropped:    w.dropped.Load(),
			Halvings:   w.halvings.Load(),
			QueueDepth: len(w.in),
			MemorySize: int(w.memSize.Load()),
		}
		st.Shards[i] = s
		st.Processed += s.Processed
		st.Dropped += s.Dropped
	}
	return st
}

// Close stops the pool: shard queues are closed, workers drain what was
// already enqueued and exit, then the output plane shuts down (remaining
// draws are published and every subscription's channel is closed).
// Idempotent; concurrent pushes either complete or return ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.in)
	}
	p.mu.Unlock()
	for _, w := range p.workers {
		<-w.done
	}
	// All workers have exited, so nothing can send on the output channel
	// anymore; closing it lets the emitter drain and close the hub.
	close(p.out)
	<-p.emitDone
	return nil
}
