package shard

import (
	"testing"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// restoreFrom rebuilds a pool from p's snapshot with the given config.
func restoreFrom(t *testing.T, p *Pool, cfg Config) *Pool {
	t.Helper()
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Restore(cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	return q
}

// TestSnapshotRestoreRoundTrip is the round-trip property test: after a
// quiescent snapshot, the restored pool answers with identical Γ, identical
// frequency estimates for every id, the same shard map (epoch, count and
// routing) and the same aggregate counters — the daemon-restart guarantee
// at pool level, across several random workloads.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := uint64(trial)*997 + 13
		src := rng.New(seed)
		shards := 1 + int(src.Uint64n(7))
		population := 50 + int(src.Uint64n(400))
		cfg := Config{
			Shards: shards, Buffer: 8, Block: true, Seed: seed,
			Capacity: 30, NewSketch: sketchMaker(64, 4),
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]uint64, 256)
		rounds := 4 + int(src.Uint64n(20))
		for r := 0; r < rounds; r++ {
			for i := range batch {
				batch[i] = src.Uint64n(uint64(population)) + 1
			}
			if err := p.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		// A resize before the snapshot makes the round trip cover a
		// non-zero epoch and retired counters too.
		if trial%2 == 1 {
			if err := p.Resize(shards + 2); err != nil {
				t.Fatal(err)
			}
		}
		q := restoreFrom(t, p, Config{
			Buffer: 8, Block: true, Seed: seed + 1,
			NewSketch: sketchMaker(64, 4),
		})
		if q.NumShards() != p.NumShards() || q.Epoch() != p.Epoch() {
			t.Fatalf("trial %d: restored shape %d/%d, want %d/%d",
				trial, q.NumShards(), q.Epoch(), p.NumShards(), p.Epoch())
		}
		if !sameIDSet(p.Memory(), q.Memory()) {
			t.Fatalf("trial %d: restored Γ differs", trial)
		}
		for id := uint64(0); id <= uint64(population)+10; id++ {
			if pe, qe := p.Estimate(id), q.Estimate(id); pe != qe {
				t.Fatalf("trial %d: id %d estimate %d restored as %d", trial, id, pe, qe)
			}
			if po, qo := p.ShardOf(id), q.ShardOf(id); po != qo {
				t.Fatalf("trial %d: id %d routed to %d, restored pool routes to %d", trial, id, po, qo)
			}
		}
		ps, qs := p.Stats(), q.Stats()
		if ps.Processed != qs.Processed || ps.Dropped != qs.Dropped {
			t.Fatalf("trial %d: counters (%d,%d) restored as (%d,%d)",
				trial, ps.Processed, ps.Dropped, qs.Processed, qs.Dropped)
		}
		for i := range ps.Shards {
			if ps.Shards[i].MemorySize != qs.Shards[i].MemorySize || ps.Shards[i].Halvings != qs.Shards[i].Halvings {
				t.Fatalf("trial %d shard %d: %+v restored as %+v", trial, i, ps.Shards[i], qs.Shards[i])
			}
		}
		// The restored pool is live: it ingests, samples and resizes.
		if err := q.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := q.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, ok := q.Sample(); !ok {
			t.Fatalf("trial %d: restored pool cannot sample", trial)
		}
		if err := q.Resize(q.NumShards() + 1); err != nil {
			t.Fatalf("trial %d: resize after restore: %v", trial, err)
		}
		_ = p.Close()
	}
}

// TestSnapshotRestoreWithDecay checks the decay clock survives: halvings
// and the global epoch resume where the snapshot left them.
func TestSnapshotRestoreWithDecay(t *testing.T) {
	cfg := Config{
		Shards: 4, Buffer: 8, Block: true, Seed: 21,
		Capacity: 10, NewSketch: sketchMaker(16, 4), DecayEvery: 500,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	src := rng.New(22)
	batch := make([]uint64, 250)
	for r := 0; r < 8; r++ { // 2000 ids = 4 epochs
		for i := range batch {
			batch[i] = src.Uint64n(1 << 40)
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	q := restoreFrom(t, p, Config{
		Buffer: 8, Block: true, Seed: 23,
		NewSketch: sketchMaker(16, 4), DecayEvery: 500,
	})
	st := q.Stats()
	for i, s := range st.Shards {
		if s.Halvings != 4 {
			t.Fatalf("restored shard %d at %d halvings, want 4", i, s.Halvings)
		}
	}
	// 500 more ids must tick exactly one more epoch (decayTotal restored,
	// not reset).
	for i := range batch {
		batch[i] = src.Uint64n(1 << 40)
	}
	if err := q.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, s := range q.Stats().Shards {
		if s.Halvings != 5 {
			t.Fatalf("shard %d at %d halvings after 500 more ids, want 5", i, s.Halvings)
		}
	}
}

// TestSnapshotRestoreUniformity: a restored pool must sample uniformly from
// its restored memories, without any new input.
func TestSnapshotRestoreUniformity(t *testing.T) {
	const popSize = 60
	p := newTestPool(t, 4, popSize, 10, 5, true, 16)
	pop := make([]uint64, popSize)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	src := rng.New(31)
	batch := make([]uint64, 512)
	for r := 0; r < 120; r++ {
		for i := range batch {
			batch[i] = pop[src.Intn(len(pop))]
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	q := restoreFrom(t, p, Config{Buffer: 16, Block: true, Seed: 77, NewSketch: sketchMaker(10, 5)})
	byID := metrics.NewHistogram()
	for i := 0; i < 120000; i++ {
		id, ok := q.Sample()
		if !ok {
			t.Fatal("restored pool cannot sample")
		}
		byID.Add(id)
	}
	// df = 59, 99.99th percentile ≈ 104.
	chi, err := byID.ChiSquareUniform(popSize)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 110 {
		t.Fatalf("restored pool not uniform: chi2 = %v", chi)
	}
}

// TestRestoreRejectsBadBlobs: truncations, corruption and configuration
// mismatches must fail loudly, never construct a half-alive pool.
func TestRestoreRejectsBadBlobs(t *testing.T) {
	p := newTestPool(t, 3, 10, 16, 4, true, 8)
	if err := p.PushBatch([]uint64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buffer: 8, Block: true, NewSketch: sketchMaker(16, 4)}
	if _, err := Restore(cfg, nil); err == nil {
		t.Error("nil blob should fail")
	}
	if _, err := Restore(cfg, blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := Restore(cfg, bad); err == nil {
		t.Error("bad magic should fail")
	}
	long := append(append([]byte(nil), blob...), 0xaa)
	if _, err := Restore(cfg, long); err == nil {
		t.Error("trailing bytes should fail")
	}
	// A configured sketch shape that contradicts the snapshot is a
	// deployment error, not something to silently paper over.
	mismatch := Config{Buffer: 8, Block: true, NewSketch: sketchMaker(99, 2)}
	if _, err := Restore(mismatch, blob); err == nil {
		t.Error("sketch shape mismatch should fail")
	}
	// Without a sketch hook the snapshot simply governs.
	q, err := Restore(Config{Buffer: 8, Block: true}, blob)
	if err != nil {
		t.Fatalf("hookless restore: %v", err)
	}
	_ = q.Close()
}
