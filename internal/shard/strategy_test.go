package shard

import (
	"encoding/binary"
	"strings"
	"testing"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// strategyConfig builds a pool config for a registered strategy by name.
func strategyConfig(t *testing.T, name string, shards, c int, seed uint64) Config {
	t.Helper()
	factory, err := core.NewFactory(name, core.StrategyParams{K: 16, S: 4})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Shards:   shards,
		Buffer:   16,
		Block:    true,
		Seed:     seed,
		Capacity: c,
		Sampler:  factory,
	}
}

// feedUniform pushes rounds of a uniform stream over pop into p.
func feedUniform(t *testing.T, p *Pool, pop []uint64, rounds int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	batch := make([]uint64, 128)
	for round := 0; round < rounds; round++ {
		for i := range batch {
			batch[i] = pop[src.Intn(len(pop))]
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// ensembleChi2 runs R independently seeded pools through build+feed, draws
// ONE sample from each, and returns the chi-square statistic of the sample
// histogram against uniform over pop. One sample per pool keeps the draws
// iid across the ensemble: any fixed pool's end-state may legitimately be
// non-uniform (basalt's slot residents are a deterministic function of its
// seeds), but over random seeds the marginal of a single sample is uniform
// for every correct strategy — the same exchangeability argument as the
// salted shard partition.
func ensembleChi2(t *testing.T, pop []uint64, runs int, build func(r int) *Pool) float64 {
	t.Helper()
	byID := metrics.NewHistogram()
	for r := 0; r < runs; r++ {
		p := build(r)
		id, ok := p.Sample()
		if !ok {
			_ = p.Close()
			t.Fatalf("run %d: sample not ok on a warm pool", r)
		}
		byID.Add(id)
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
	chi, err := byID.ChiSquareUniform(len(pop))
	if err != nil {
		t.Fatal(err)
	}
	return chi
}

// TestStrategyEnsembleUniformity checks every registered strategy emits
// uniform samples at the pool level. Population 16 with df = 15: the 99.99th
// percentile of chi2(15) is ~44.3, so 60 only trips on real bias.
func TestStrategyEnsembleUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble test")
	}
	pop := make([]uint64, 16)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	for _, name := range core.Strategies() {
		name := name
		t.Run(name, func(t *testing.T) {
			chi := ensembleChi2(t, pop, 256, func(r int) *Pool {
				p, err := New(strategyConfig(t, name, 2, len(pop), 0x5eed+uint64(r)))
				if err != nil {
					t.Fatal(err)
				}
				feedUniform(t, p, pop, 8, 0xfeed+uint64(r))
				return p
			})
			if chi > 60 {
				t.Fatalf("strategy %s ensemble not uniform: chi2 = %v", name, chi)
			}
		})
	}
}

// TestStrategyEnsembleUniformityAcrossResize repeats the ensemble check
// with a live 2→4 re-partition mid-ingest, for every strategy: the resize
// hand-off (CloneEmpty + MergeState) must not bias the samples.
func TestStrategyEnsembleUniformityAcrossResize(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble test")
	}
	pop := make([]uint64, 16)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	for _, name := range core.Strategies() {
		name := name
		t.Run(name, func(t *testing.T) {
			chi := ensembleChi2(t, pop, 192, func(r int) *Pool {
				p, err := New(strategyConfig(t, name, 2, len(pop), 0xabc+uint64(r)))
				if err != nil {
					t.Fatal(err)
				}
				feedUniform(t, p, pop, 4, 0xdef+uint64(r))
				if err := p.Resize(4); err != nil {
					t.Fatal(err)
				}
				feedUniform(t, p, pop, 4, 0x123+uint64(r))
				return p
			})
			if chi > 60 {
				t.Fatalf("strategy %s ensemble not uniform across resize: chi2 = %v", name, chi)
			}
		})
	}
}

// TestStrategyEnsembleUniformityPostRestore repeats the ensemble check
// through a snapshot/restore cycle, with the restore config naming no
// strategy at all — the blob governs.
func TestStrategyEnsembleUniformityPostRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble test")
	}
	pop := make([]uint64, 16)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	for _, name := range core.Strategies() {
		name := name
		t.Run(name, func(t *testing.T) {
			chi := ensembleChi2(t, pop, 192, func(r int) *Pool {
				p, err := New(strategyConfig(t, name, 2, len(pop), 0x777+uint64(r)))
				if err != nil {
					t.Fatal(err)
				}
				feedUniform(t, p, pop, 8, 0x888+uint64(r))
				blob, err := p.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
				restored, err := Restore(Config{Buffer: 16, Block: true, Seed: 0x999 + uint64(r)}, blob)
				if err != nil {
					t.Fatal(err)
				}
				return restored
			})
			if chi > 60 {
				t.Fatalf("strategy %s ensemble not uniform after restore: chi2 = %v", name, chi)
			}
		})
	}
}

// TestStrategySnapshotMismatchNamesBoth checks the satellite contract: a
// snapshot restored under a different configured strategy refuses with an
// error naming BOTH strategies, in either direction.
func TestStrategySnapshotMismatchNamesBoth(t *testing.T) {
	pop := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	cases := []struct{ wrote, configured string }{
		{"basalt", "knowledge-free"},
		{"knowledge-free", "basalt"},
	}
	for _, tc := range cases {
		p, err := New(strategyConfig(t, tc.wrote, 2, 8, 42))
		if err != nil {
			t.Fatal(err)
		}
		feedUniform(t, p, pop, 4, 43)
		blob, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		_, err = Restore(strategyConfig(t, tc.configured, 2, 8, 42), blob)
		if err == nil {
			t.Fatalf("%s snapshot restored under %s config", tc.wrote, tc.configured)
		}
		if !strings.Contains(err.Error(), tc.wrote) || !strings.Contains(err.Error(), tc.configured) {
			t.Fatalf("mismatch error %q does not name both %q and %q", err, tc.wrote, tc.configured)
		}
	}
}

// v1Blob rewrites a version-2 snapshot as the pre-strategy version-1
// layout: same magic and body, version 1, no strategy field. This is
// exactly what a pre-refactor daemon wrote, because the knowledge-free
// MarshalState emits raw sketch bytes.
func v1Blob(t *testing.T, v2 []byte) []byte {
	t.Helper()
	if len(v2) < 12 || string(v2[:4]) != snapshotMagic {
		t.Fatal("not a v2 snapshot blob")
	}
	if v := binary.BigEndian.Uint32(v2[4:8]); v != 2 {
		t.Fatalf("snapshot version %d, want 2", v)
	}
	strategyLen := int(binary.BigEndian.Uint32(v2[8:12]))
	blob := make([]byte, 0, len(v2))
	blob = append(blob, snapshotMagic...)
	blob = binary.BigEndian.AppendUint32(blob, 1)
	blob = append(blob, v2[12+strategyLen:]...)
	return blob
}

// TestStrategyV1SnapshotCompat is the acceptance check for old blobs: a
// hand-built version-1 snapshot (no strategy tag) restores bit-identical
// estimates under the default strategy, and refuses under any other with
// an error naming both strategies.
func TestStrategyV1SnapshotCompat(t *testing.T) {
	const hot = uint64(7)
	pop := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	p, err := New(strategyConfig(t, core.DefaultStrategy, 2, 12, 77))
	if err != nil {
		t.Fatal(err)
	}
	feedUniform(t, p, pop, 16, 78)
	// A hot id so the sketch state is distinctive.
	hotBatch := make([]uint64, 64)
	for i := range hotBatch {
		hotBatch[i] = hot
	}
	if err := p.PushBatch(hotBatch); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]uint64, len(pop))
	for _, id := range pop {
		want[id] = p.Estimate(id)
	}
	v2, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	v1 := v1Blob(t, v2)

	// Under the default strategy (or no strategy at all) the v1 blob
	// restores with bit-identical estimates.
	restored, err := Restore(strategyConfig(t, core.DefaultStrategy, 2, 12, 77), v1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pop {
		if got := restored.Estimate(id); got != want[id] {
			t.Fatalf("v1-restored estimate of %d is %d, want %d", id, got, want[id])
		}
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}

	// Under basalt the pre-v2 blob refuses, naming the implied default and
	// the configured strategy.
	_, err = Restore(strategyConfig(t, "basalt", 2, 12, 77), v1)
	if err == nil {
		t.Fatal("v1 blob restored under basalt config")
	}
	if !strings.Contains(err.Error(), core.DefaultStrategy) || !strings.Contains(err.Error(), "basalt") {
		t.Fatalf("v1 mismatch error %q does not name both strategies", err)
	}
}
