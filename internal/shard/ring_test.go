package shard

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ want, cap int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {64, 64},
	} {
		if got := newRing(tc.want).Cap(); got != tc.cap {
			t.Errorf("newRing(%d).Cap() = %d, want %d", tc.want, got, tc.cap)
		}
	}
}

func TestRingFIFOAndFullEmpty(t *testing.T) {
	r := newRing(4)
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.tryPush(ringItem{ids: []uint64{uint64(i)}}) {
			t.Fatalf("push %d into non-full ring failed", i)
		}
	}
	if r.tryPush(ringItem{ids: []uint64{99}}) {
		t.Fatal("push into full ring succeeded")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		it, ok := r.tryPop()
		if !ok || it.ids[0] != uint64(i) {
			t.Fatalf("pop %d: got %v ok=%v, want FIFO order", i, it.ids, ok)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
	// Wrap around several laps: slots must recycle cleanly.
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 3; i++ {
			if !r.tryPush(ringItem{ids: []uint64{uint64(lap*3 + i)}}) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 3; i++ {
			it, ok := r.tryPop()
			if !ok || it.ids[0] != uint64(lap*3+i) {
				t.Fatalf("lap %d pop %d: got %v ok=%v", lap, i, it.ids, ok)
			}
		}
	}
}

// TestRingSingleSlotProtocolFloor pins the reason the capacity floor is 2:
// a capacity-2 ring with one queued item must refuse the producer that
// would otherwise lap onto the unconsumed slot.
func TestRingSingleSlotProtocolFloor(t *testing.T) {
	r := newRing(0) // rounds to 2
	if !r.tryPush(ringItem{ids: []uint64{1}}) || !r.tryPush(ringItem{ids: []uint64{2}}) {
		t.Fatal("pushes into empty minimal ring failed")
	}
	if r.tryPush(ringItem{ids: []uint64{3}}) {
		t.Fatal("full minimal ring accepted a third item")
	}
	it, ok := r.tryPop()
	if !ok || it.ids[0] != 1 {
		t.Fatalf("got %v ok=%v, want first item", it.ids, ok)
	}
}

// TestRingMPSC hammers the ring with many producers and one consumer and
// checks that every item arrives exactly once. Run under -race this is the
// memory-ordering proof for the claim/publish and drain/recycle pairs.
func TestRingMPSC(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := newRing(16)
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := uint64(pr)<<32 | uint64(i)
				for !r.tryPush(ringItem{ids: []uint64{id}}) {
					runtime.Gosched()
				}
			}
		}(pr)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	lastPerProducer := make(map[uint64]int64)
	for n := 0; n < producers*perProducer; {
		it, ok := r.tryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		id := it.ids[0]
		if seen[id] {
			t.Fatalf("item %#x delivered twice", id)
		}
		seen[id] = true
		// Per-producer FIFO: a single producer's items arrive in push order.
		pr, seq := id>>32, int64(id&0xffffffff)
		if last, ok := lastPerProducer[pr]; ok && seq <= last {
			t.Fatalf("producer %d: seq %d arrived after %d", pr, seq, last)
		}
		lastPerProducer[pr] = seq
		n++
	}
	wg.Wait()
	if _, ok := r.tryPop(); ok {
		t.Fatal("ring not empty after all items consumed")
	}
}

// TestPooledBuffersNoAliasing floods a blocking multi-shard pool from many
// goroutines with unique, recognisably-tagged ids while a sampler reads
// concurrently. If payload or draw-buffer recycling ever let two in-flight
// batches alias the same backing array, a worker would observe (and the
// memory would retain) ids that were never pushed — or the processed count
// would diverge. Run under -race this is the recycling suite's aliasing
// proof.
func TestPooledBuffersNoAliasing(t *testing.T) {
	p := newTestPool(t, 4, 64, 100, 2, true, 0)
	sub, err := p.Subscribe(256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unsubscribe(sub)
	const producers = 6
	const batches = 200
	const batchLen = 97 // odd size: sub-batches land unevenly across shards
	valid := func(id uint64) bool {
		pr, seq := id>>32, id&0xffffffff
		return pr < producers && seq < batches*batchLen
	}
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			ids := make([]uint64, batchLen)
			for b := 0; b < batches; b++ {
				for i := range ids {
					ids[i] = uint64(pr)<<32 | uint64(b*batchLen+i)
				}
				if err := p.PushBatch(ids); err != nil {
					t.Error(err)
					return
				}
			}
		}(pr)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ids := p.SampleN(16)
			for _, id := range ids {
				if !valid(id) {
					t.Errorf("sampled id %#x was never pushed (buffer aliasing?)", id)
					return
				}
			}
			select {
			case draw, ok := <-sub.C():
				if ok && !valid(draw) {
					t.Errorf("σ′ draw %#x was never pushed (draw buffer aliasing?)", draw)
					return
				}
			default:
			}
			if st := p.Stats(); st.Processed >= producers*batches*batchLen {
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done
	st := p.Stats()
	if want := uint64(producers * batches * batchLen); st.Processed != want {
		t.Fatalf("processed %d, want %d (blocking pool must not lose ids)", st.Processed, want)
	}
	for _, id := range p.Memory() {
		if !valid(id) {
			t.Fatalf("memory retains id %#x that was never pushed", id)
		}
	}
}
