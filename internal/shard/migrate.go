package shard

import (
	"fmt"

	"nodesampling/internal/core"
	"nodesampling/internal/rng"
)

// This file is the pool's state hand-off surface for cluster shard
// migration: exporting the Γ ids of a slot range together with the pool's
// merged frequency state, removing them after the target has acknowledged,
// and importing a remote pool's exported state on the receiving side. All
// operations work on a live pool (per-shard locks, ingest continues on
// other shards) and reach samplers only through the core.PoolSampler
// interface, so every registered strategy migrates the same way.

// MemoryTotal returns the pool-wide |Γ| — the sum of every shard's current
// memory size, from per-worker atomics. It is the weight a cluster-level
// Sample merge assigns this member, exactly as the pool's own Sample
// weights shards by their sizes.
func (p *Pool) MemoryTotal() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var total int64
	for _, w := range p.workers {
		total += w.memSize.Load()
	}
	return int(total)
}

// MemoryFiltered returns the Γ ids for which match returns true, across all
// shards. The slice is a copy.
func (p *Pool) MemoryFiltered(match func(id uint64) bool) []uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []uint64
	for _, w := range p.workers {
		w.mu.Lock()
		for _, id := range w.sampler.Memory() {
			if match(id) {
				out = append(out, id)
			}
		}
		w.mu.Unlock()
	}
	return out
}

// ExportState captures the hand-off material for a shard migration: the Γ
// ids for which match returns true, plus the pool's merged frequency state
// — an empty clone of shard 0's sampler with every shard's state merged in,
// marshalled. Shards share one hash family and every id is counted by
// exactly one shard, so the merge equals the single global estimator over
// the whole stream (the Resize hand-off argument); a migrated id's
// frequency estimate therefore survives on the importing side within
// estimator error. Call Flush first when the export must cover everything
// pushed before a point in time. The source pool is not modified — pair
// with DropMemory after the target acknowledges.
func (p *Pool) ExportState(match func(id uint64) bool) (ids []uint64, state []byte, err error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, nil, ErrPoolClosed
	}
	p.rmu.Lock()
	r := p.r.Split()
	p.rmu.Unlock()
	w0 := p.workers[0]
	w0.mu.Lock()
	merged, err := w0.sampler.CloneEmpty(r)
	if err == nil {
		err = merged.MergeState(w0.sampler)
	}
	w0.mu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("shard: export state: %w", err)
	}
	for _, w := range p.workers[1:] {
		w.mu.Lock()
		err = merged.MergeState(w.sampler)
		w.mu.Unlock()
		if err != nil {
			return nil, nil, fmt.Errorf("shard: export state: %w", err)
		}
	}
	for _, w := range p.workers {
		w.mu.Lock()
		for _, id := range w.sampler.Memory() {
			if match(id) {
				ids = append(ids, id)
			}
		}
		w.mu.Unlock()
	}
	if state, err = merged.MarshalState(); err != nil {
		return nil, nil, fmt.Errorf("shard: export state: %w", err)
	}
	return ids, state, nil
}

// DropMemory removes every Γ id for which match returns true and reports
// how many were removed. Frequency state is untouched: the sketch keeps
// what it learned (estimates are per-strategy knowledge, not membership),
// only the sampling memory gives the ids up — the source half of a
// migration, after the target has acknowledged the import.
func (p *Pool) DropMemory(match func(id uint64) bool) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return 0, ErrPoolClosed
	}
	removed := 0
	for i, w := range p.workers {
		w.mu.Lock()
		mem := w.sampler.Memory()
		kept := mem[:0]
		for _, id := range mem {
			if !match(id) {
				kept = append(kept, id)
			}
		}
		var err error
		if len(kept) != len(mem) {
			removed += len(mem) - len(kept)
			err = w.sampler.RestoreMemory(kept)
			w.memSize.Store(int64(w.sampler.MemorySize()))
		}
		w.mu.Unlock()
		if err != nil {
			return removed, fmt.Errorf("shard %d: drop memory: %w", i, err)
		}
	}
	return removed, nil
}

// ImportState is the receiving half of a migration: it folds a remote
// pool's exported frequency state into every local shard (the shrink-path
// argument — the survivors inherit the retired plane's ids, so each gets
// the global estimator merged in) and re-homes the exported Γ ids onto
// their owning local shards, shedding uniformly (partial Fisher-Yates)
// where a shard would exceed its capacity.
//
// The remote state must be state-mergeable with the local samplers: same
// strategy and same hash/seed family, which in practice means the two
// daemons were started with the same -seed and sampler flags. A mismatch
// returns an error naming the requirement and imports nothing.
func (p *Pool) ImportState(ids []uint64, state []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	factory, err := core.RestoreFactory(p.strategy, p.cfg.CoreOptions...)
	if err != nil {
		return fmt.Errorf("shard: import state: %w", err)
	}
	p.rmu.Lock()
	r := p.r.Split()
	p.rmu.Unlock()
	incoming, err := factory.Restore(p.cfg.Capacity, state, r)
	if err != nil {
		return fmt.Errorf("shard: import state: %w", err)
	}
	w0 := p.workers[0]
	w0.mu.Lock()
	shares := w0.sampler.SharesFamily(incoming)
	w0.mu.Unlock()
	if !shares {
		return fmt.Errorf("shard: imported %s state is not mergeable with this pool's %s samplers: different hash/seed family — cluster members must run the same -seed and sampler flags",
			incoming.StrategyName(), p.strategy)
	}
	// Merge the frequency state into every shard before touching memories:
	// if a merge fails nothing has moved.
	for i, w := range p.workers {
		w.mu.Lock()
		err = w.sampler.MergeState(incoming)
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: import state: %w", i, err)
		}
	}
	m := p.smap.Load()
	parts := make([][]uint64, len(p.workers))
	for _, id := range ids {
		s := m.Owner(rng.Mix64(id ^ p.salt))
		parts[s] = append(parts[s], id)
	}
	for i, w := range p.workers {
		if len(parts[i]) == 0 {
			continue
		}
		w.mu.Lock()
		mem := append(w.sampler.Memory(), parts[i]...)
		if len(mem) > p.cfg.Capacity {
			// Shed overflow uniformly so the survivor set is a uniform
			// subset — the Resize shed discipline.
			for j := 0; j < p.cfg.Capacity; j++ {
				k := j + r.Intn(len(mem)-j)
				mem[j], mem[k] = mem[k], mem[j]
			}
			mem = mem[:p.cfg.Capacity]
		}
		err = w.sampler.RestoreMemory(mem)
		if err == nil {
			w.memSize.Store(int64(w.sampler.MemorySize()))
		}
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: import memory: %w", i, err)
		}
	}
	return nil
}
