package shard

import "nodesampling/internal/rng"

// Placement is the ownership layer extracted from the pool: one immutable
// epoch of a salted rendezvous partition mapping hashed ids to owner
// indices through a fixed-size slot table. The pool uses it with one key
// per in-process shard worker (the historical shardMap); the cluster layer
// reuses the identical computation with one key per member daemon, so an
// id's route is decided by the same arithmetic at both levels — slot :=
// top slotBits of Mix64(id ^ salt), owner := the key scoring highest for
// that slot.
//
// Because keys keep their indices across resizes, a grown placement moves
// slots only onto the new owners and a shrunk one moves only the retired
// owners' slots — the minimal-disruption property of rendezvous hashing,
// at O(1) routing cost per id. The type is immutable after construction
// and safe for concurrent readers.
type Placement struct {
	epoch uint64
	keys  []uint64
	table []uint8
}

// PlacementSlots is the size of the slot table (2^slotBits). Every
// placement, local or cluster-level, partitions the hash space into this
// many slots; cluster shard migration moves ownership at slot granularity.
const PlacementSlots = numSlots

// NewPlacement derives the slot table for the given rendezvous keys. The
// computation is the routing contract: for each slot, the owner is the
// index i maximising Mix64(Mix64(slot) ^ keys[i]), ties to the lowest
// index (so the winner among a surviving prefix of keys never depends on
// the keys removed after it). Snapshots persist keys and epoch and rebuild
// the table through this function, so it must stay bit-identical across
// versions.
func NewPlacement(epoch uint64, keys []uint64) *Placement {
	m := &Placement{epoch: epoch, keys: keys, table: make([]uint8, numSlots)}
	for slot := 0; slot < numSlots; slot++ {
		h := rng.Mix64(uint64(slot))
		best, bestScore := 0, rng.Mix64(h^keys[0])
		for i := 1; i < len(keys); i++ {
			// Strict inequality: ties go to the lowest index, so the winner
			// among a surviving prefix of keys never depends on the keys
			// removed after it.
			if s := rng.Mix64(h ^ keys[i]); s > bestScore {
				best, bestScore = i, s
			}
		}
		m.table[slot] = uint8(best)
	}
	return m
}

// Epoch returns the placement's version; every topology change installs a
// successor with a strictly higher epoch.
func (m *Placement) Epoch() uint64 { return m.epoch }

// NumOwners returns how many rendezvous keys (owners) the placement ranks.
func (m *Placement) NumOwners() int { return len(m.keys) }

// PlacementSlot maps a salted id hash to its slot index — the top slotBits
// bits of the hash. The caller salts and mixes (rng.Mix64(id ^ salt)); the
// slot is a pure function of that hash, shared by every placement level.
func PlacementSlot(hashed uint64) int { return int(hashed >> (64 - slotBits)) }

// Owner maps a salted id hash to its owner index.
func (m *Placement) Owner(hashed uint64) int { return int(m.table[hashed>>(64-slotBits)]) }

// SlotOwner returns the owner index for one slot of the table.
func (m *Placement) SlotOwner(slot int) int { return int(m.table[slot]) }
