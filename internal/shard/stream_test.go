package shard

import (
	"sync"
	"testing"
	"time"

	"nodesampling/internal/rng"
)

// TestSubscribeReceivesOutputStream subscribes before pushing and checks
// that σ′ draws arrive and are drawn from the pushed population.
func TestSubscribeReceivesOutputStream(t *testing.T) {
	p := newTestPool(t, 4, 10, 16, 4, true, 16)
	sub, err := p.Subscribe(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	ids := make([]uint64, 512)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 256 {
		select {
		case id := <-sub.C():
			if id < 1 || id > 512 {
				t.Fatalf("draw %d outside the pushed population", id)
			}
			got++
		case <-deadline:
			t.Fatalf("received only %d draws", got)
		}
	}
	st := p.Stats()
	if len(st.Subscribers) != 1 {
		t.Fatalf("stats shows %d subscribers", len(st.Subscribers))
	}
	if st.Subscribers[0].Delivered == 0 {
		t.Fatalf("subscriber stats = %+v", st.Subscribers[0])
	}
	if p.NumSubscribers() != 1 {
		t.Fatalf("NumSubscribers = %d", p.NumSubscribers())
	}
}

// TestNoSubscriberNoEmission pins the fast path: without subscribers no
// draws are generated, so nothing is offered or dropped anywhere in the
// output plane.
func TestNoSubscriberNoEmission(t *testing.T) {
	p := newTestPool(t, 2, 10, 16, 4, true, 16)
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.EmitDropped != 0 || len(st.Subscribers) != 0 {
		t.Fatalf("output plane active without subscribers: %+v", st)
	}
	// A late subscriber only sees draws for ids pushed from now on.
	sub, err := p.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C():
	case <-time.After(5 * time.Second):
		t.Fatal("no draw after subscribing")
	}
}

// TestSubscribeAfterClose verifies the lifecycle error.
func TestSubscribeAfterClose(t *testing.T) {
	p := newTestPool(t, 2, 5, 8, 4, true, 4)
	sub, err := p.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Subscribe(8); err != ErrPoolClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrPoolClosed", err)
	}
	// The surviving subscription's channel must be closed by pool shutdown.
	select {
	case _, ok := <-sub.C():
		if ok {
			// Draining leftover draws is fine; the channel must close
			// eventually.
			for range sub.C() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel not closed by pool Close")
	}
	p.Unsubscribe(sub) // no-op after close
	p.Unsubscribe(nil)
}

// TestGlobalDecayClock pushes through a decaying pool and checks that every
// shard has applied the same number of halvings after a flush — the shared
// epoch, not per-shard counts.
func TestGlobalDecayClock(t *testing.T) {
	const decayEvery = 1000
	p, err := New(Config{
		Shards:     4,
		Buffer:     16,
		Block:      true,
		Seed:       99,
		DecayEvery: decayEvery,
		Capacity:   10,
		NewSketch:  sketchMaker(16, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	src := rng.New(5)
	batch := make([]uint64, 512)
	const total = 10 * decayEvery
	for pushed := 0; pushed < total; pushed += len(batch) {
		for i := range batch {
			batch[i] = src.Uint64n(1 << 40) // wide population: all shards see traffic
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	want := uint64(total / decayEvery)
	for i, s := range st.Shards {
		if s.Halvings != want {
			t.Fatalf("shard %d applied %d halvings, want %d (global clock): %+v",
				i, s.Halvings, want, st.Shards)
		}
	}
}

// TestGlobalDecayClockConcurrent races several producers into a decaying
// pool, joins them, and checks that a quiescent Flush still equalises the
// epochs (the two-round barrier observing the final processed total).
func TestGlobalDecayClockConcurrent(t *testing.T) {
	const decayEvery = 777
	p, err := New(Config{
		Shards:     4,
		Buffer:     8,
		Block:      true,
		Seed:       123,
		DecayEvery: decayEvery,
		Capacity:   10,
		NewSketch:  sketchMaker(16, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	var wg sync.WaitGroup
	const producers, rounds, batchLen = 4, 25, 313
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(g) + 50)
			batch := make([]uint64, batchLen)
			for r := 0; r < rounds; r++ {
				for i := range batch {
					batch[i] = src.Uint64n(1 << 40)
				}
				if err := p.PushBatch(batch); err != nil {
					t.Error(err)
					return
				}
				if r%5 == 0 {
					_ = p.Flush() // flushes racing pushes must not wedge
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	want := uint64(producers*rounds*batchLen) / decayEvery
	for i, s := range st.Shards {
		if s.Halvings != want {
			t.Fatalf("shard %d halvings = %d, want %d after quiescent flush: %+v",
				i, s.Halvings, want, st.Shards)
		}
	}
}

// TestDecayStillUnbiases sanity-checks that a decaying pool keeps admitting
// and sampling (the sketch does not collapse to zero everywhere).
func TestDecayStillUnbiases(t *testing.T) {
	p, err := New(Config{
		Shards:     2,
		Buffer:     8,
		Block:      true,
		Seed:       7,
		DecayEvery: 500,
		Capacity:   8,
		NewSketch:  sketchMaker(12, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	src := rng.New(11)
	batch := make([]uint64, 256)
	for round := 0; round < 20; round++ {
		for i := range batch {
			batch[i] = src.Uint64n(200)
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Sample(); !ok {
		t.Fatal("decaying pool cannot sample")
	}
	if len(p.Memory()) == 0 {
		t.Fatal("decaying pool has empty memory")
	}
}

// TestStalledSubscriberAccounting wedges a subscriber, floods the pool, and
// checks (a) ingestion completes — Flush returns with a blocking pool, so
// no emit path ever blocked a worker — and (b) the accounting identity:
// everything processed while subscribed was either offered to the
// subscriber or dropped by the emitter, and everything offered is delivered
// or dropped once cancelled.
func TestStalledSubscriberAccounting(t *testing.T) {
	p := newTestPool(t, 4, 10, 16, 4, true, 16)
	sub, err := p.Subscribe(32)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody reads sub.C(): the consumer is stalled from the start.
	batch := make([]uint64, 1024)
	const rounds = 100
	for r := 0; r < rounds; r++ {
		for i := range batch {
			batch[i] = uint64(r*len(batch) + i)
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the emitter drain the output channel.
	deadline := time.Now().Add(5 * time.Second)
	var st Stats
	for {
		st = p.Stats()
		if len(st.Subscribers) == 1 &&
			st.Subscribers[0].Offered+st.EmitDropped == st.Processed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("emission accounting never settled: processed %d, offered %v, emitDropped %d",
				st.Processed, st.Subscribers, st.EmitDropped)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Subscribers[0].Dropped == 0 {
		t.Fatal("stalled subscriber dropped nothing")
	}
	offered := st.Subscribers[0].Offered
	sub.Cancel()
	if got := sub.Delivered() + sub.Dropped(); got != offered {
		t.Fatalf("accounting leak after cancel: delivered %d + dropped %d != offered %d",
			sub.Delivered(), sub.Dropped(), offered)
	}
	if p.NumSubscribers() != 0 {
		t.Fatalf("NumSubscribers after cancel = %d", p.NumSubscribers())
	}
}
