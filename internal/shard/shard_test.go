package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nodesampling/internal/cms"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// sketchMaker returns a NewSketch hook for a k×s sketch.
func sketchMaker(k, s int) func(r *rng.Xoshiro) (*cms.Sketch, error) {
	return func(r *rng.Xoshiro) (*cms.Sketch, error) {
		return cms.NewWithDimensions(k, s, r)
	}
}

func testConfig(shards, c, k, s int, block bool, buffer int) Config {
	return Config{
		Shards:    shards,
		Buffer:    buffer,
		Block:     block,
		Seed:      uint64(shards)*1000 + 7,
		Capacity:  c,
		NewSketch: sketchMaker(k, s),
	}
}

func newTestPool(t *testing.T, shards, c, k, s int, block bool, buffer int) *Pool {
	t.Helper()
	p, err := New(testConfig(shards, c, k, s, block, buffer))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestConfigValidation(t *testing.T) {
	mk := sketchMaker(8, 4)
	bad := []Config{
		{Shards: 0, Capacity: 5, NewSketch: mk},
		{Shards: MaxShards + 1, Capacity: 5, NewSketch: mk},
		{Shards: 2, Buffer: -1, Capacity: 5, NewSketch: mk},
		{Shards: 2, Capacity: 0, NewSketch: mk},
		{Shards: 2, Capacity: 5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	// A failing sketch constructor must propagate without leaking workers
	// (run under -race / goroutine-leak checks).
	_, err := New(Config{Shards: 3, Capacity: 5, NewSketch: func(r *rng.Xoshiro) (*cms.Sketch, error) {
		return nil, errors.New("boom")
	}})
	if err == nil {
		t.Fatal("failing sketch constructor should propagate")
	}
}

func TestShardOfIsStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8} {
		p := newTestPool(t, n, 5, 8, 4, true, 4)
		for id := uint64(0); id < 1000; id++ {
			s := p.ShardOf(id)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d) = %d out of range for %d shards", id, s, n)
			}
			if s != p.ShardOf(id) {
				t.Fatalf("ShardOf not stable for id %d", id)
			}
		}
	}
}

// TestShardPartitionIsSalted pins the defence against targeted shard
// flooding: two pools with different seeds must not agree on the partition,
// so an adversary cannot precompute which ids share a shard.
func TestShardPartitionIsSalted(t *testing.T) {
	mk := func(seed uint64) *Pool {
		p, err := New(Config{
			Shards: 8, Buffer: 4, Block: true, Seed: seed,
			Capacity: 5, NewSketch: sketchMaker(8, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		return p
	}
	a, b := mk(1), mk(2)
	differ := 0
	for id := uint64(0); id < 1000; id++ {
		if a.ShardOf(id) != b.ShardOf(id) {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("partitions of differently seeded pools are identical: no salt")
	}
}

// balancedPopulation returns per ids per shard of p, so that the sample
// distribution is expected uniform both across ids and across shards and
// the chi-square tests below are sharp.
func balancedPopulation(p *Pool, shards, per int) []uint64 {
	pop := make([]uint64, 0, shards*per)
	fill := make([]int, shards)
	for id := uint64(1); len(pop) < shards*per; id++ {
		s := p.ShardOf(id)
		if fill[s] < per {
			fill[s]++
			pop = append(pop, id)
		}
	}
	return pop
}

// TestPoolUniformity is the uniformity smoke test of the acceptance
// criteria: ≥100k samples, chi-square both across shards and across ids,
// with the same style of tolerance as the existing sampling tests (a
// far-tail percentile of the chi-square law with the matching df).
func TestPoolUniformity(t *testing.T) {
	const (
		shards  = 8
		perSh   = 16 // population 128, each shard's c covers its slice
		samples = 120000
	)
	p := newTestPool(t, shards, perSh, 10, 5, true, 16)
	pop := balancedPopulation(p, shards, perSh)
	// Feed a uniform stream long enough for every shard's Γ to fill with
	// its whole sub-population (c = per-shard population size, so the
	// stationary state is Γ_i = pop_i exactly).
	src := rng.New(99)
	batch := make([]uint64, 512)
	for round := 0; round < 200; round++ {
		for i := range batch {
			batch[i] = pop[src.Intn(len(pop))]
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Memory()); got != shards*perSh {
		t.Fatalf("pool memory %d, want full %d", got, shards*perSh)
	}

	byID := metrics.NewHistogram()
	byShard := metrics.NewHistogram()
	for i := 0; i < samples; i++ {
		id, ok := p.Sample()
		if !ok {
			t.Fatal("sample not ok on a warm pool")
		}
		byID.Add(id)
		byShard.Add(uint64(p.ShardOf(id)))
	}
	// Across shards: df = 7, 99.99th percentile ≈ 29.9.
	chi, err := byShard.ChiSquareUniform(shards)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 35 {
		t.Fatalf("samples not uniform across shards: chi2 = %v", chi)
	}
	// Across ids: df = 127, 99.99th percentile ≈ 181.
	chi, err = byID.ChiSquareUniform(len(pop))
	if err != nil {
		t.Fatal(err)
	}
	if chi > 190 {
		t.Fatalf("samples not uniform across ids: chi2 = %v", chi)
	}
}

// TestPoolUniformityUnbalancedShards pins the Γ-size-weighted shard draw:
// when the hash splits a small population unevenly, samples must still be
// uniform over the ids (a uniform shard draw would over-sample every id in
// an under-filled shard).
func TestPoolUniformityUnbalancedShards(t *testing.T) {
	const (
		shards  = 4
		popSize = 60 // c covers any shard's share, so Γ_i = pop_i exactly
		samples = 120000
	)
	p := newTestPool(t, shards, popSize, 10, 5, true, 16)
	pop := make([]uint64, popSize)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	src := rng.New(41)
	batch := make([]uint64, 512)
	for round := 0; round < 120; round++ {
		for i := range batch {
			batch[i] = pop[src.Intn(len(pop))]
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// The random split of 60 ids over 4 shards is essentially never even;
	// skip the (astronomically unlikely) balanced draw rather than pass
	// vacuously.
	sizes := make(map[int]int)
	for _, id := range pop {
		sizes[p.ShardOf(id)]++
	}
	unbalanced := false
	for _, c := range sizes {
		if c != popSize/shards {
			unbalanced = true
		}
	}
	if !unbalanced {
		t.Skip("hash split this population evenly; nothing to test")
	}
	byID := metrics.NewHistogram()
	for i := 0; i < samples; i++ {
		id, ok := p.Sample()
		if !ok {
			t.Fatal("sample not ok on a warm pool")
		}
		byID.Add(id)
	}
	// df = 59, 99.99th percentile ≈ 104.
	chi, err := byID.ChiSquareUniform(popSize)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 110 {
		t.Fatalf("samples not uniform over an unbalanced partition: chi2 = %v (shard loads %v)", chi, sizes)
	}
}

// TestConcurrentPushAndSample exercises the pool from 8 producer and 4
// consumer goroutines; run under -race this is the acceptance criterion's
// data-race check.
func TestConcurrentPushAndSample(t *testing.T) {
	p := newTestPool(t, 4, 10, 10, 5, true, 8)
	const (
		producers = 8
		consumers = 4
		batches   = 50
	)
	var prodWG, consWG sync.WaitGroup
	for g := 0; g < producers; g++ {
		prodWG.Add(1)
		go func(g int) {
			defer prodWG.Done()
			src := rng.New(uint64(g) + 1)
			batch := make([]uint64, 128)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = src.Uint64n(2000)
				}
				if err := p.PushBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	for g := 0; g < consumers; g++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Sample()
				p.Memory()
				p.Stats()
			}
		}()
	}
	prodWG.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	consWG.Wait()
	st := p.Stats()
	if want := uint64(producers * batches * 128); st.Processed != want {
		t.Fatalf("processed %d, want %d (blocking pool must not lose ids)", st.Processed, want)
	}
	if st.Dropped != 0 {
		t.Fatalf("blocking pool dropped %d ids", st.Dropped)
	}
}

func TestDropPolicyCountsPerShard(t *testing.T) {
	// One shard, unbuffered queue, drop policy: once the worker is busy
	// digesting a large batch, follow-up pushes find the queue full.
	p := newTestPool(t, 1, 10, 200, 8, false, 0)
	big := make([]uint64, 4096)
	for i := range big {
		big[i] = uint64(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for a drop under the drop policy")
		}
		if err := p.PushBatch(big); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if len(st.Shards) != 1 || st.Shards[0].Dropped != st.Dropped {
		t.Fatalf("per-shard drop accounting inconsistent: %+v", st)
	}
	if st.Dropped%uint64(len(big)) != 0 {
		t.Fatalf("drops must be whole sub-batches, got %d", st.Dropped)
	}
}

func TestFlushObservesPriorPushes(t *testing.T) {
	p := newTestPool(t, 4, 10, 10, 5, true, 64)
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Processed != 1000 {
		t.Fatalf("processed %d after flush, want 1000", st.Processed)
	}
}

func TestEmptyAndSingleShard(t *testing.T) {
	p := newTestPool(t, 3, 5, 8, 4, true, 4)
	if _, ok := p.Sample(); ok {
		t.Fatal("sample ok on an empty pool")
	}
	if got := p.SampleN(5); len(got) != 0 {
		t.Fatalf("SampleN on empty pool = %v", got)
	}
	if err := p.PushBatch(nil); err != nil {
		t.Fatal("empty batch should be a no-op")
	}
	if err := p.Push(42); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if id, ok := p.Sample(); !ok || id != 42 {
		t.Fatalf("sample = (%d, %v), want the only id 42", id, ok)
	}
	if got := p.SampleN(3); len(got) != 3 {
		t.Fatalf("SampleN = %v, want 3 copies of the only id", got)
	}
}

func TestCloseLifecycle(t *testing.T) {
	p := newTestPool(t, 2, 5, 8, 4, true, 4)
	if err := p.Push(7); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := p.Push(8); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Push after close = %v, want ErrPoolClosed", err)
	}
	if err := p.PushBatch([]uint64{9}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("PushBatch after close = %v, want ErrPoolClosed", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Flush after close = %v, want ErrPoolClosed", err)
	}
	// Ids enqueued before Close were drained by the workers.
	if st := p.Stats(); st.Processed != 1 {
		t.Fatalf("processed %d, want the pre-close id", st.Processed)
	}
	// Sampling a closed pool still answers from the frozen memories.
	if id, ok := p.Sample(); !ok || id != 7 {
		t.Fatalf("sample after close = (%d, %v)", id, ok)
	}
}
