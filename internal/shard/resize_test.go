package shard

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

func TestResizeValidationAndNoop(t *testing.T) {
	p := newTestPool(t, 4, 10, 16, 4, true, 8)
	if err := p.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
	if err := p.Resize(MaxShards + 1); err == nil {
		t.Error("Resize beyond MaxShards should fail")
	}
	if err := p.Resize(4); err != nil {
		t.Fatalf("same-size resize: %v", err)
	}
	if got := p.Epoch(); got != 0 {
		t.Fatalf("no-op resize bumped the epoch to %d", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize(8); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Resize after close = %v, want ErrPoolClosed", err)
	}
}

// TestResizeGrowPreservesState pins the hand-off contract: across a grow,
// the pooled memory Γ is exactly preserved, processed counters survive, and
// every id's frequency estimate never decreases and stays within the error
// a single global sketch over the same stream would have.
func TestResizeGrowPreservesState(t *testing.T) {
	p := newTestPool(t, 2, 200, 512, 4, true, 16)
	src := rng.New(7)
	const population = 150
	counts := make(map[uint64]int)
	batch := make([]uint64, 512)
	hot := uint64(42)
	for round := 0; round < 20; round++ {
		for i := range batch {
			id := src.Uint64n(population) + 1
			if i%4 == 0 {
				id = hot // a heavy hitter whose estimate must survive
			}
			batch[i] = id
			counts[id]++
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	memBefore := p.Memory()
	estBefore := make(map[uint64]uint64)
	for id := uint64(1); id <= population; id++ {
		estBefore[id] = p.Estimate(id)
	}
	if err := p.Resize(7); err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 7 {
		t.Fatalf("NumShards = %d after grow", p.NumShards())
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d after one resize", p.Epoch())
	}
	st := p.Stats()
	if len(st.Shards) != 7 || st.Epoch != 1 {
		t.Fatalf("stats = %+v", st)
	}
	var want uint64 = 20 * 512
	if st.Processed != want {
		t.Fatalf("processed %d across resize, want %d", st.Processed, want)
	}
	// Γ is preserved exactly: same multiset (all entries distinct), just
	// differently partitioned.
	memAfter := p.Memory()
	if !sameIDSet(memBefore, memAfter) {
		t.Fatalf("memory changed across grow: %d ids before, %d after", len(memBefore), len(memAfter))
	}
	// Estimates survive the merge: never below the pre-resize estimate
	// (counters only add), never above true count + global-sketch collision
	// slack. With k=512 columns and 150 distinct ids, collisions are rare,
	// so the bound is tight: allow the true count plus a small surplus.
	for id := uint64(1); id <= population; id++ {
		after := p.Estimate(id)
		if after < estBefore[id] {
			t.Fatalf("id %d estimate dropped across resize: %d -> %d", id, estBefore[id], after)
		}
		truth := uint64(counts[id])
		if slack := after - truth; slack > truth/2+50 {
			t.Fatalf("id %d estimate %d far above true count %d after merge", id, after, truth)
		}
	}
	if got := p.Estimate(hot); got < uint64(counts[hot]) {
		t.Fatalf("hot id estimate %d below true count %d", got, counts[hot])
	}
}

// TestResizeShrinkPreservesState mirrors the grow test for the merge-into-
// survivors path.
func TestResizeShrinkPreservesState(t *testing.T) {
	p := newTestPool(t, 6, 200, 512, 4, true, 16)
	src := rng.New(9)
	const population = 120
	batch := make([]uint64, 512)
	for round := 0; round < 15; round++ {
		for i := range batch {
			batch[i] = src.Uint64n(population) + 1
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	memBefore := p.Memory()
	estBefore := make(map[uint64]uint64)
	for id := uint64(1); id <= population; id++ {
		estBefore[id] = p.Estimate(id)
	}
	if err := p.Resize(2); err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 2 {
		t.Fatalf("NumShards = %d after shrink", p.NumShards())
	}
	// Total capacity 2×200 still covers the population, so Γ must be
	// exactly preserved.
	if !sameIDSet(memBefore, p.Memory()) {
		t.Fatal("memory changed across shrink")
	}
	st := p.Stats()
	if want := uint64(15 * 512); st.Processed != want {
		t.Fatalf("processed %d across shrink (retired counters lost?), want %d", st.Processed, want)
	}
	for id := uint64(1); id <= population; id++ {
		if after := p.Estimate(id); after < estBefore[id] {
			t.Fatalf("id %d estimate dropped across shrink: %d -> %d", id, estBefore[id], after)
		}
	}
}

// TestResizeShedsOverflowUniformly shrinks a pool whose total Γ exceeds the
// surviving capacity: the result must keep every shard within capacity and
// retain a subset of the original memory.
func TestResizeShedsOverflowUniformly(t *testing.T) {
	p := newTestPool(t, 8, 20, 64, 4, true, 16)
	batch := make([]uint64, 0, 640)
	for id := uint64(1); id <= 640; id++ {
		batch = append(batch, id)
	}
	for round := 0; round < 5; round++ {
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	before := p.Memory()
	if err := p.Resize(1); err != nil {
		t.Fatal(err)
	}
	after := p.Memory()
	if len(after) != 20 {
		t.Fatalf("single shard holds %d ids, want its capacity 20", len(after))
	}
	beforeSet := make(map[uint64]bool, len(before))
	for _, id := range before {
		beforeSet[id] = true
	}
	for _, id := range after {
		if !beforeSet[id] {
			t.Fatalf("id %d appeared from nowhere during shrink", id)
		}
	}
}

// TestResizeUniformityLive is the acceptance criterion: a resize lands in
// the middle of live ingest, and afterwards Sample must still be uniform
// over the population (the Γ-size-weighted draw over the repartitioned,
// generally unbalanced shards), chi-square tested like
// TestPoolUniformityUnbalancedShards.
func TestResizeUniformityLive(t *testing.T) {
	const (
		popSize = 60
		samples = 120000
	)
	p := newTestPool(t, 3, popSize, 10, 5, true, 16)
	pop := make([]uint64, popSize)
	for i := range pop {
		pop[i] = uint64(i + 1)
	}
	src := rng.New(40)
	pushRounds := func(rounds int) {
		batch := make([]uint64, 512)
		for r := 0; r < rounds; r++ {
			for i := range batch {
				batch[i] = pop[src.Intn(len(pop))]
			}
			if err := p.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up until every shard's Γ holds its whole sub-population, then
	// resize twice (grow, shrink) while a background pusher keeps firing.
	pushRounds(60)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bg := rng.New(42)
		batch := make([]uint64, 512)
		for !stop.Load() {
			for i := range batch {
				batch[i] = pop[bg.Intn(len(pop))]
			}
			if err := p.PushBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if err := p.Resize(8); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize(5); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	// Cool down: re-cover any id a shrink overflow could in principle have
	// shed (total capacity always exceeds the population here, so this is
	// belt and braces), then quiesce.
	pushRounds(30)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 5 || p.Epoch() != 2 {
		t.Fatalf("shards=%d epoch=%d after two live resizes", p.NumShards(), p.Epoch())
	}
	// c = popSize, so after enough traffic every shard's Γ holds exactly
	// its sub-population and the weighted draw must be uniform over ids.
	if got := len(p.Memory()); got != popSize {
		t.Fatalf("pool memory %d, want the whole population %d", got, popSize)
	}
	byID := metrics.NewHistogram()
	for i := 0; i < samples; i++ {
		id, ok := p.Sample()
		if !ok {
			t.Fatal("sample not ok on a warm pool")
		}
		byID.Add(id)
	}
	// df = 59, 99.99th percentile ≈ 104.
	chi, err := byID.ChiSquareUniform(popSize)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 110 {
		t.Fatalf("samples not uniform after live resize: chi2 = %v", chi)
	}
}

// TestResizeRoutingMovesMinimally pins the rendezvous property: growing
// moves ids only onto the new shards, shrinking only off the retired ones.
func TestResizeRoutingMovesMinimally(t *testing.T) {
	p := newTestPool(t, 4, 5, 8, 4, true, 4)
	const ids = 4096
	before := make([]int, ids)
	for id := 0; id < ids; id++ {
		before[id] = p.ShardOf(uint64(id))
	}
	if err := p.Resize(6); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := 0; id < ids; id++ {
		s := p.ShardOf(uint64(id))
		if s != before[id] {
			if s < 4 {
				t.Fatalf("id %d moved between surviving shards %d -> %d on grow", id, before[id], s)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("grow moved nothing: new shards own no ids")
	}
	grown := make([]int, ids)
	for id := 0; id < ids; id++ {
		grown[id] = p.ShardOf(uint64(id))
	}
	if err := p.Resize(4); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ids; id++ {
		s := p.ShardOf(uint64(id))
		if grown[id] < 4 && s != grown[id] {
			t.Fatalf("id %d moved off surviving shard %d -> %d on shrink", id, grown[id], s)
		}
		// Shrinking back to the original key prefix must restore the
		// original routing exactly.
		if s != before[id] {
			t.Fatalf("id %d not back on its original shard after grow+shrink", id)
		}
	}
}

// TestResizeWithDecayAlignsEpochs checks that the resize barrier leaves
// every shard — survivors and newcomers — on the same global decay epoch.
func TestResizeWithDecayAlignsEpochs(t *testing.T) {
	p, err := New(Config{
		Shards: 3, Buffer: 8, Block: true, Seed: 5,
		Capacity: 10, NewSketch: sketchMaker(16, 4), DecayEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	src := rng.New(3)
	batch := make([]uint64, 250)
	for round := 0; round < 8; round++ { // 2000 ids = 4 epochs
		for i := range batch {
			batch[i] = src.Uint64n(1 << 40)
		}
		if err := p.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Resize(6); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	for i, s := range st.Shards {
		if s.Halvings != 4 {
			t.Fatalf("shard %d halvings = %d after resize, want 4: %+v", i, s.Halvings, st.Shards)
		}
	}
	if _, ok := p.Sample(); !ok {
		t.Fatal("decayed, resized pool cannot sample")
	}
}

// TestResizeRaces fires Resize against concurrent PushBatch, Sample, Stats,
// Flush, Subscribe and finally Close; the race detector plus the
// either-complete-or-ErrPoolClosed contract are the assertions.
func TestResizeRaces(t *testing.T) {
	for round := 0; round < 3; round++ {
		p, err := New(Config{
			Shards: 4, Buffer: 4, Block: false, Seed: uint64(round) + 77,
			Capacity: 10, NewSketch: sketchMaker(10, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(4)
			go func(g int) {
				defer wg.Done()
				<-start
				batch := make([]uint64, 64)
				for i := range batch {
					batch[i] = uint64(g*1000 + i)
				}
				for j := 0; j < 40; j++ {
					if err := p.PushBatch(batch); err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("PushBatch: %v", err)
						}
						return
					}
				}
			}(g)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 40; j++ {
					p.Sample()
					p.Stats()
					p.Estimate(uint64(j))
				}
			}()
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 10; j++ {
					if err := p.Flush(); err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("Flush: %v", err)
						}
						return
					}
				}
			}()
			go func(g int) {
				defer wg.Done()
				<-start
				for j := 0; j < 6; j++ {
					sub, err := p.Subscribe(16)
					if err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("Subscribe: %v", err)
						}
						return
					}
					select {
					case <-sub.C():
					default:
					}
					sub.Cancel()
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sizes := []int{7, 2, 5, 1, 8}
			for _, n := range sizes {
				if err := p.Resize(n); err != nil {
					if !errors.Is(err, ErrPoolClosed) {
						t.Errorf("Resize: %v", err)
					}
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := p.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		_ = p.Close()
	}
}

// sameIDSet compares two id slices as sets (both are Γ snapshots, so
// entries are distinct).
func sameIDSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
