package shard

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nodesampling/internal/core"
	"nodesampling/internal/rng"
)

// Snapshot blob layout, version 2 (all integers big-endian):
//
//	magic "UNSS" | version (uint32)
//	strategyLen (uint32) | strategy name (UTF-8)
//	salt | epoch | decayTotal | retiredProcessed | retiredDropped (uint64 each)
//	capacity (uint32) | shards (uint32)
//	shards × shard records:
//	    key | halvings | processed | dropped   (uint64 each)
//	    gammaLen (uint32) | gammaLen × id (uint64)
//	    stateLen (uint32) | sampler state (core.PoolSampler.MarshalState)
//
// Version 1 blobs (written before the strategy layer) lack the strategy
// field and are read as the default knowledge-free strategy; their shard
// records carry raw cms.Sketch bytes, which is exactly what the
// knowledge-free MarshalState emits, so v1 bodies parse unchanged.
//
// The blob is self-contained: it carries the strategy name, the shard map
// (keys + epoch), the private partition salt, every shard's Γ and
// serialised sampler state, and the global decay clock, so Restore rebuilds
// the exact partition — every id keeps routing to the shard whose sampler
// counted it, and frequency estimates resume bit-identical. The salt is a
// secret (it hides the partition from adversaries), so treat snapshot files
// like key material.
const (
	snapshotMagic   = "UNSS"
	snapshotVersion = 2
	// maxStrategyLen bounds the strategy-name field so a corrupt blob
	// cannot demand an absurd allocation.
	maxStrategyLen = 64
)

// Snapshot serialises the pool — strategy name, shard map, per-shard
// sampler state and Γ, decay epoch and aggregate counters — into one
// versioned blob for Restore. Each shard is captured under its own lock, so
// a snapshot taken during live ingest is internally consistent per shard
// but may split a cross-shard batch; quiesce with Flush first when an exact
// cut matters. Snapshot works on a closed pool too (a daemon's final
// snapshot).
func (p *Pool) Snapshot() ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m := p.smap.Load()
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapshotMagic...)
	buf = binary.BigEndian.AppendUint32(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.strategy)))
	buf = append(buf, p.strategy...)
	buf = binary.BigEndian.AppendUint64(buf, p.salt)
	buf = binary.BigEndian.AppendUint64(buf, m.epoch)
	buf = binary.BigEndian.AppendUint64(buf, p.decayTotal.Load())
	buf = binary.BigEndian.AppendUint64(buf, p.retiredProcessed.Load())
	buf = binary.BigEndian.AppendUint64(buf, p.retiredDropped.Load())
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.cfg.Capacity))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.workers)))
	for i, w := range p.workers {
		w.mu.Lock()
		mem := w.sampler.Memory()
		state, err := w.sampler.MarshalState()
		// Counters are captured under the same lock as the state: halvings
		// in particular must describe exactly this sampler state, or a decay
		// epoch crossed between the two reads would be skipped after
		// Restore, leaving the shard's estimates ~2× its peers forever.
		halvings := w.halvings.Load()
		processed := w.processed.Load()
		dropped := w.dropped.Load()
		w.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("shard %d: marshal sampler state: %w", i, err)
		}
		buf = binary.BigEndian.AppendUint64(buf, m.keys[i])
		buf = binary.BigEndian.AppendUint64(buf, halvings)
		buf = binary.BigEndian.AppendUint64(buf, processed)
		buf = binary.BigEndian.AppendUint64(buf, dropped)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(mem)))
		for _, id := range mem {
			buf = binary.BigEndian.AppendUint64(buf, id)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
		buf = append(buf, state...)
	}
	return buf, nil
}

// snapshotReader is a bounds-checked cursor over a snapshot blob.
type snapshotReader struct {
	data []byte
	off  int
}

func (r *snapshotReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, errors.New("shard: truncated snapshot")
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *snapshotReader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, errors.New("shard: truncated snapshot")
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *snapshotReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, errors.New("shard: truncated snapshot")
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Restore rebuilds a live pool from a Snapshot blob. The snapshot governs
// the shard count, memory capacity, shard map and sampler state (cfg.Shards
// and cfg.Capacity are ignored); cfg supplies everything a snapshot does
// not persist — queueing, backpressure, decay period, core options and
// fresh randomness.
//
// The strategy recorded in the blob must match the configured one: a blob
// written under strategy A refuses to restore into a pool configured for
// strategy B (and a pre-v2 blob, which implies the default knowledge-free
// strategy, refuses any other), naming both strategies. When the config
// names no strategy at all (no Sampler factory, no NewSketch hook), the
// snapshot governs the strategy too. When a factory or sketch hook is
// configured it also validates that the configured state shape matches the
// snapshot, so a daemon restarted with different flags fails loudly instead
// of serving surprising estimates.
func Restore(cfg Config, data []byte) (*Pool, error) {
	if err := cfg.validateCommon(); err != nil {
		return nil, err
	}
	r := &snapshotReader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		if SnapshotSealed(data) {
			// The caller was handed an encrypted envelope (seal.go) and must
			// open it first; silently parsing ciphertext would be worse than
			// any error message.
			return nil, errors.New("shard: snapshot is sealed (UNSE envelope); open it with the snapshot key first")
		}
		return nil, errors.New("shard: bad magic, not a pool snapshot")
	}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	strategy := core.DefaultStrategy
	switch version {
	case 1:
		// Pre-strategy blob: implies the default strategy, no tag to read.
	case 2:
		strategyLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if strategyLen == 0 || strategyLen > maxStrategyLen {
			return nil, fmt.Errorf("shard: snapshot strategy name length %d outside [1, %d]", strategyLen, maxStrategyLen)
		}
		name, err := r.bytes(int(strategyLen))
		if err != nil {
			return nil, err
		}
		strategy = string(name)
	default:
		return nil, fmt.Errorf("shard: unsupported snapshot version %d", version)
	}
	factory, configured := cfg.samplerFactory()
	if configured && factory.Name != strategy {
		if version == 1 {
			return nil, fmt.Errorf("shard: pre-v2 snapshot carries no strategy tag and implies %q, but the pool is configured for strategy %q",
				strategy, factory.Name)
		}
		return nil, fmt.Errorf("shard: snapshot was written by strategy %q, but the pool is configured for strategy %q",
			strategy, factory.Name)
	}
	if !configured {
		// The snapshot governs the strategy; only per-sampler options carry
		// over from the config.
		if factory, err = core.RestoreFactory(strategy, cfg.CoreOptions...); err != nil {
			return nil, fmt.Errorf("shard: snapshot strategy: %w", err)
		}
	}
	var hdr [5]uint64
	for i := range hdr {
		if hdr[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	salt, epoch, decayTotal, retProcessed, retDropped := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]
	capacity32, err := r.u32()
	if err != nil {
		return nil, err
	}
	shards32, err := r.u32()
	if err != nil {
		return nil, err
	}
	capacity := int(capacity32)
	shards := int(shards32)
	// Sanity bounds before any capacity- or length-derived allocation: a
	// corrupt (or hostile) blob must fail with a clean error, not an OOM —
	// the same discipline as the wire decoders.
	const maxSnapshotCapacity = 1 << 20
	if capacity < 1 || capacity > maxSnapshotCapacity {
		return nil, fmt.Errorf("shard: snapshot memory capacity %d outside [1, %d]", capacity, maxSnapshotCapacity)
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shard: snapshot shard count %d outside [1, %d]", shards, MaxShards)
	}

	root := rng.New(cfg.Seed)
	var template core.PoolSampler
	if configured {
		if template, err = factory.New(capacity, root.Split()); err != nil {
			return nil, fmt.Errorf("shard: sampler template: %w", err)
		}
	}

	keys := make([]uint64, shards)
	workers := make([]*worker, shards)
	var family core.PoolSampler
	for i := 0; i < shards; i++ {
		if keys[i], err = r.u64(); err != nil {
			return nil, err
		}
		var counters [3]uint64
		for j := range counters {
			if counters[j], err = r.u64(); err != nil {
				return nil, err
			}
		}
		gammaLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(gammaLen) > capacity {
			return nil, fmt.Errorf("shard %d: snapshot Γ of %d exceeds capacity %d", i, gammaLen, capacity)
		}
		if 8*int(gammaLen) > len(r.data)-r.off {
			return nil, errors.New("shard: truncated snapshot")
		}
		mem := make([]uint64, gammaLen)
		for j := range mem {
			if mem[j], err = r.u64(); err != nil {
				return nil, err
			}
		}
		stateLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		state, err := r.bytes(int(stateLen))
		if err != nil {
			return nil, err
		}
		sampler, err := factory.Restore(capacity, state, root.Split())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if family == nil {
			family = sampler
			if template != nil && template.StateDesc() != sampler.StateDesc() {
				return nil, fmt.Errorf("shard: configured sampler state %q does not match snapshot %q",
					template.StateDesc(), sampler.StateDesc())
			}
		} else if !family.SharesFamily(sampler) {
			// Mixed families would make every later Resize merge garbage.
			return nil, fmt.Errorf("shard %d: snapshot sampler family differs from shard 0", i)
		}
		// A strategy's Restore hook may rebuild its memory straight from
		// the marshalled state (basalt's slot residents live there); the
		// snapshot's Γ record fills the memory only when it did not.
		if sampler.MemorySize() == 0 {
			if err := sampler.RestoreMemory(mem); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		w := newWorker(sampler, cfg.Buffer)
		w.halvings.Store(counters[0])
		w.processed.Store(counters[1])
		w.dropped.Store(counters[2])
		workers[i] = w
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("shard: %d trailing bytes after snapshot", len(data)-r.off)
	}

	cfg.Shards = shards // sizes the default emit buffer
	cfg.Capacity = capacity
	p := newPoolShell(cfg, root)
	p.strategy = factory.Name
	p.salt = salt
	p.workers = workers
	p.smap.Store(NewPlacement(epoch, keys))
	p.decayTotal.Store(decayTotal)
	p.retiredProcessed.Store(retProcessed)
	p.retiredDropped.Store(retDropped)
	p.start()
	return p, nil
}
