package shard

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// Sealed snapshot envelope, version 1 (all integers big-endian):
//
//	magic "UNSE" | version (uint32) | nonce (12 bytes) | AES-256-GCM ciphertext+tag
//
// The envelope wraps a complete plaintext snapshot blob (magic "UNSS"):
// the ciphertext is the whole v1 blob, the GCM tag authenticates it, and
// the 8-byte header rides along as additional authenticated data so a
// tampered magic or version fails the open, not the inner parser. The
// plaintext blob embeds the pool's secret partition salt — the reason the
// envelope exists — so a snapshot at rest on shared storage reveals
// nothing and cannot be modified undetected. A fresh random nonce per seal
// keeps repeated snapshots of the same pool state unlinkable.
const (
	sealMagic   = "UNSE"
	sealVersion = 1
	// SnapshotKeyLen is the sealing key length: AES-256.
	SnapshotKeyLen = 32
	sealNonceLen   = 12
	sealHeaderLen  = 8 // magic + version
)

// SnapshotSealed reports whether data carries the encrypted snapshot
// envelope (as opposed to a plaintext "UNSS" blob or garbage).
func SnapshotSealed(data []byte) bool {
	return len(data) >= len(sealMagic) && string(data[:len(sealMagic)]) == sealMagic
}

// SealSnapshot encrypts a plaintext snapshot blob under a 32-byte key into
// the versioned "UNSE" envelope. The blob must be a plaintext snapshot
// (sealing an already-sealed blob is refused — it is always a caller bug
// and would make the restore path ambiguous).
func SealSnapshot(blob, key []byte) ([]byte, error) {
	if len(key) != SnapshotKeyLen {
		return nil, fmt.Errorf("shard: snapshot key is %d bytes, need %d (AES-256)", len(key), SnapshotKeyLen)
	}
	if SnapshotSealed(blob) {
		return nil, errors.New("shard: refusing to seal an already-sealed snapshot")
	}
	aead, err := newSnapshotAEAD(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, sealHeaderLen+sealNonceLen+len(blob)+aead.Overhead())
	out = append(out, sealMagic...)
	out = binary.BigEndian.AppendUint32(out, sealVersion)
	nonce := make([]byte, sealNonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("shard: sealing nonce: %w", err)
	}
	out = append(out, nonce...)
	return aead.Seal(out, nonce, blob, out[:sealHeaderLen]), nil
}

// OpenSealedSnapshot decrypts an "UNSE" envelope back into the plaintext
// snapshot blob. A wrong key, a truncated envelope or any modified byte
// (header included) fails authentication with a clear error — never a
// silently corrupt restore.
func OpenSealedSnapshot(data, key []byte) ([]byte, error) {
	if len(key) != SnapshotKeyLen {
		return nil, fmt.Errorf("shard: snapshot key is %d bytes, need %d (AES-256)", len(key), SnapshotKeyLen)
	}
	if !SnapshotSealed(data) {
		return nil, errors.New("shard: not a sealed snapshot (no UNSE envelope)")
	}
	if len(data) < sealHeaderLen+sealNonceLen {
		return nil, errors.New("shard: truncated sealed snapshot")
	}
	if v := binary.BigEndian.Uint32(data[len(sealMagic):]); v != sealVersion {
		return nil, fmt.Errorf("shard: unsupported sealed snapshot version %d", v)
	}
	aead, err := newSnapshotAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := data[sealHeaderLen : sealHeaderLen+sealNonceLen]
	blob, err := aead.Open(nil, nonce, data[sealHeaderLen+sealNonceLen:], data[:sealHeaderLen])
	if err != nil {
		return nil, errors.New("shard: sealed snapshot failed authentication (wrong key or corrupted blob)")
	}
	return blob, nil
}

func newSnapshotAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("shard: snapshot cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("shard: snapshot cipher: %w", err)
	}
	return aead, nil
}
