package shard

import (
	"testing"

	"nodesampling/internal/rng"
)

// placementKeys derives a deterministic key set the way both placement
// levels do in production: mixed from small integers.
func placementKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Mix64(uint64(i) + 0x9e3779b97f4a7c15)
	}
	return keys
}

// placementChecksum folds the owner table into one FNV-1a word. Any change
// to the rendezvous arithmetic shows up here.
func placementChecksum(m *Placement) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for slot := 0; slot < PlacementSlots; slot++ {
		h ^= uint64(m.SlotOwner(slot))
		h *= prime
	}
	return h
}

// TestPlacementGolden pins the routing contract: snapshots persist only the
// keys and epoch and rebuild the owner table through NewPlacement, and the
// cluster layer reuses the same arithmetic for member-level routing, so the
// table for a fixed key set must stay bit-identical across versions. If
// this test fails, existing snapshots and mixed-version fleets would route
// ids to the wrong owners — the fix is to revert the arithmetic, not to
// update the constants.
func TestPlacementGolden(t *testing.T) {
	golden := map[int]uint64{
		1:  0xb93a0c83ce3b6325,
		3:  0x5fa3a947810cc59e,
		4:  0xbca555d6d1e50693,
		16: 0x54d3aac8e19521fa,
	}
	for n, want := range golden {
		if got := placementChecksum(NewPlacement(0, placementKeys(n))); got != want {
			t.Errorf("placement table checksum for %d keys = %#x, want %#x", n, got, want)
		}
	}
}

// TestPlacementOwnerMatchesSlot pins the two routing entry points to each
// other: Owner(hash) must agree with SlotOwner(PlacementSlot(hash)) for
// arbitrary hashes, since ingest routes through the former and migration
// ranges through the latter.
func TestPlacementOwnerMatchesSlot(t *testing.T) {
	m := NewPlacement(2, placementKeys(5))
	if m.Epoch() != 2 {
		t.Fatalf("Epoch = %d, want 2", m.Epoch())
	}
	if m.NumOwners() != 5 {
		t.Fatalf("NumOwners = %d, want 5", m.NumOwners())
	}
	h := uint64(0x243f6a8885a308d3)
	for i := 0; i < 10000; i++ {
		h = rng.Mix64(h + uint64(i))
		slot := PlacementSlot(h)
		if slot < 0 || slot >= PlacementSlots {
			t.Fatalf("PlacementSlot(%#x) = %d outside the table", h, slot)
		}
		if m.Owner(h) != m.SlotOwner(slot) {
			t.Fatalf("Owner(%#x) = %d, SlotOwner(%d) = %d", h, m.Owner(h), slot, m.SlotOwner(slot))
		}
	}
}

// TestPlacementMinimalDisruption pins the property migration relies on:
// growing the key set moves slots only onto the new owner, and shrinking
// back restores the original table exactly (ties go to the lowest index, so
// a surviving prefix never re-ranks).
func TestPlacementMinimalDisruption(t *testing.T) {
	small := NewPlacement(0, placementKeys(3))
	big := NewPlacement(1, placementKeys(4))
	moved := 0
	for slot := 0; slot < PlacementSlots; slot++ {
		was, is := small.SlotOwner(slot), big.SlotOwner(slot)
		if was != is {
			if is != 3 {
				t.Fatalf("slot %d moved %d -> %d, not onto the new owner", slot, was, is)
			}
			moved++
		}
	}
	// Rendezvous spreads roughly 1/4 of the slots to a 4th owner; anything
	// near 0 or near all means the scoring is broken.
	if moved < PlacementSlots/8 || moved > PlacementSlots/2 {
		t.Fatalf("%d of %d slots moved to the new owner, want about a quarter", moved, PlacementSlots)
	}
	again := NewPlacement(2, placementKeys(3))
	for slot := 0; slot < PlacementSlots; slot++ {
		if again.SlotOwner(slot) != small.SlotOwner(slot) {
			t.Fatalf("slot %d differs after shrinking back", slot)
		}
	}
}
