package shard

import (
	"bytes"
	"testing"
)

func sealTestKey(b byte) []byte {
	key := make([]byte, SnapshotKeyLen)
	for i := range key {
		key[i] = b
	}
	return key
}

// TestSealOpenRoundTrip: a live pool's snapshot survives seal → open →
// Restore with bit-identical state.
func TestSealOpenRoundTrip(t *testing.T) {
	p := newTestPool(t, 4, 10, 12, 5, true, 16)
	ids := make([]uint64, 512)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	key := sealTestKey(0xA7)
	sealed, err := SealSnapshot(blob, key)
	if err != nil {
		t.Fatal(err)
	}
	if !SnapshotSealed(sealed) {
		t.Fatal("sealed blob not detected as sealed")
	}
	if SnapshotSealed(blob) {
		t.Fatal("plaintext blob misdetected as sealed")
	}
	if bytes.Contains(sealed, blob[:16]) {
		t.Fatal("sealed blob leaks plaintext snapshot prefix")
	}
	opened, err := OpenSealedSnapshot(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, blob) {
		t.Fatal("open(seal(blob)) differs from blob")
	}
	p2, err := Restore(p.cfg, opened)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, id := range ids[:32] {
		if a, b := p.Estimate(id), p2.Estimate(id); a != b {
			t.Fatalf("estimate of %d diverged across seal round-trip: %d vs %d", id, a, b)
		}
	}
}

// TestSealRejections: wrong key, tampering (header and body), truncation,
// bad key length, double seal, and Restore fed raw ciphertext all fail
// loudly.
func TestSealRejections(t *testing.T) {
	p := newTestPool(t, 2, 5, 8, 4, true, 16)
	if err := p.PushBatch([]uint64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	key := sealTestKey(1)
	sealed, err := SealSnapshot(blob, key)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSealedSnapshot(sealed, sealTestKey(2)); err == nil {
		t.Fatal("wrong key must fail authentication")
	}
	for _, i := range []int{4, sealHeaderLen + 2, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := OpenSealedSnapshot(tampered, key); err == nil {
			t.Fatalf("flipped byte %d must fail authentication", i)
		}
	}
	if _, err := OpenSealedSnapshot(sealed[:sealHeaderLen+4], key); err == nil {
		t.Fatal("truncated envelope must fail")
	}
	if _, err := OpenSealedSnapshot(blob, key); err == nil {
		t.Fatal("plaintext blob is not a sealed snapshot")
	}
	if _, err := OpenSealedSnapshot(sealed, key[:16]); err == nil {
		t.Fatal("short key must be rejected")
	}
	if _, err := SealSnapshot(blob, key[:31]); err == nil {
		t.Fatal("short key must be rejected on seal too")
	}
	if _, err := SealSnapshot(sealed, key); err == nil {
		t.Fatal("double seal must be refused")
	}
	if _, err := Restore(p.cfg, sealed); err == nil {
		t.Fatal("Restore must reject a sealed blob instead of parsing ciphertext")
	}
}

// TestSealFreshNonces: two seals of the same blob must differ (random
// nonce), or snapshots of an unchanged pool would be linkable at rest.
func TestSealFreshNonces(t *testing.T) {
	p := newTestPool(t, 1, 5, 8, 4, true, 16)
	if err := p.PushBatch([]uint64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	blob, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	key := sealTestKey(7)
	a, err := SealSnapshot(blob, key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SealSnapshot(blob, key)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same blob are identical; nonce is not fresh")
	}
}
