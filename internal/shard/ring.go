package shard

import (
	"sync/atomic"

	"nodesampling/internal/spans"
)

// ring is a bounded multi-producer single-consumer queue of ring items —
// the shard ingest queue. It replaces the buffered channel the workers used
// to drain: a channel hand-off costs a mutex acquisition plus a scheduler
// visit on every send, while the ring's uncontended enqueue is one
// compare-and-swap and two plain atomics, with producers contending only on
// the enqueue cursor (never with the consumer) and the consumer touching
// nothing shared but the slot it drains. Block/drop semantics, flush
// barriers and shutdown live in the worker around it (see worker.run); the
// ring itself is lock-free and never blocks.
//
// The design is the classic bounded MPMC sequence ring restricted to one
// consumer: each slot carries a sequence number that encodes, relative to
// the cursors, whether the slot is free for the enqueuer of position pos
// (seq == pos), occupied for the dequeuer of position pos (seq == pos+1),
// or still owned by a lapped-around peer (anything else). Producers claim a
// position by CAS on enq, write the item, then publish it by bumping the
// slot's sequence; the consumer reads published slots in order and recycles
// them a full lap ahead. The single-consumer restriction lets the dequeue
// side use plain stores on deq, ordered only by the slot-sequence
// publication.
type ring struct {
	mask uint64
	slot []ringSlot

	// enq is the next position to claim for enqueue (shared by producers);
	// deq is the next position to drain (consumer-private, but read by
	// producers for fullness and by load-signal snapshots for depth).
	enq atomic.Uint64
	deq atomic.Uint64
}

// ringItem is one unit of work in a shard queue: a sub-batch of ids, the
// wire batch's ingest span context, and the refcounted payload the ids
// alias (nil when the batch owns its slice outright, e.g. single-id Push).
type ringItem struct {
	ids []uint64
	tc  spans.Context
	pl  *payload
}

type ringSlot struct {
	seq atomic.Uint64
	it  ringItem
}

// newRing builds a ring with capacity ≥ max(2, want), rounded up to a power
// of two so position-to-slot mapping is a mask instead of a division. Two is
// the protocol's floor: with a single slot, the producer of position 1 reads
// the published sequence (1) of the still-queued item from position 0 as
// "free for position 1" and would overwrite it.
func newRing(want int) *ring {
	capacity := 2
	for capacity < want {
		capacity <<= 1
	}
	r := &ring{mask: uint64(capacity - 1), slot: make([]ringSlot, capacity)}
	for i := range r.slot {
		r.slot[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot count (the rounded capacity).
func (r *ring) Cap() int { return len(r.slot) }

// Len approximates the number of items currently queued (claimed positions
// not yet drained). Exact only at quiescence; load signals want a gauge,
// not an invariant.
func (r *ring) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(r.slot)) {
		return len(r.slot)
	}
	return int(n)
}

// tryPush enqueues it, returning false when the ring is full. Safe for any
// number of concurrent producers. On success the item is visible to the
// consumer before tryPush returns (the slot-sequence store publishes it).
func (r *ring) tryPush(it ringItem) bool {
	for {
		pos := r.enq.Load()
		s := &r.slot[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// Slot free for this position: claim it. A failed CAS means
			// another producer took pos; reload and retry.
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.it = it
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The consumer has not recycled this slot yet: a full lap of
			// items is in flight ahead of us.
			return false
		default:
			// seq > pos: a racing producer already claimed past pos; the
			// reloaded enq cursor will reflect it.
		}
	}
}

// tryPop dequeues the oldest item, returning false when none is published.
// Single consumer only. The drained slot is recycled a full lap ahead so
// producers can reuse it.
func (r *ring) tryPop() (ringItem, bool) {
	pos := r.deq.Load()
	s := &r.slot[pos&r.mask]
	if s.seq.Load() != pos+1 {
		// Empty — or the producer that claimed pos has not published yet
		// (the claim/publish window); either way nothing to take.
		return ringItem{}, false
	}
	it := s.it
	s.it = ringItem{} // release the slices to the GC / payload pool
	s.seq.Store(pos + uint64(len(r.slot)))
	r.deq.Store(pos + 1)
	return it, true
}
