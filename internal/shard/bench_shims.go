package shard

import "nodesampling/internal/rng"

// Benchmark shims: tight loops over the hot-path building blocks, exported
// so cmd/unsbench can wrap them in testing.Benchmark without this package
// importing testing. Each returns a value derived from the work so the
// compiler cannot elide the loops.

// BenchPartition runs n ids through the PushBatch partition pass (counting
// sort into contiguous per-shard sub-batches), batchSize ids at a time
// across `shards` shards. With pooled=true it uses the production
// scratch/payload pools; with pooled=false it allocates fresh slices per
// batch, reproducing the pre-pool behaviour for comparison.
func BenchPartition(n, batchSize, shards int, pooled bool) uint64 {
	r := rng.New(42)
	keys := make([]uint64, shards)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	m := NewPlacement(0, keys)
	salt := r.Uint64()
	ids := make([]uint64, batchSize)
	for i := range ids {
		ids[i] = r.Uint64n(100000)
	}
	var sum uint64
	for done := 0; done < n; done += batchSize {
		var shardTags []uint8
		var counts []int
		var backing []uint64
		var sc *partScratch
		var pl *payload
		if pooled {
			sc = scratchPool.Get().(*partScratch)
			shardTags, counts = sc.grow(len(ids), shards)
			pl = getPayload(len(ids))
			backing = pl.buf
		} else {
			shardTags = make([]uint8, len(ids))
			counts = make([]int, 2*shards)
			backing = make([]uint64, len(ids))
		}
		for i, id := range ids {
			s := m.Owner(rng.Mix64(id ^ salt))
			shardTags[i] = uint8(s)
			counts[s]++
		}
		off := 0
		for i := 0; i < shards; i++ {
			c := counts[i]
			counts[i], counts[shards+i] = off, off
			off += c
		}
		for i, id := range ids {
			s := shardTags[i]
			backing[counts[s]] = id
			counts[s]++
		}
		sum += backing[0] + uint64(counts[shards-1])
		if pooled {
			scratchPool.Put(sc)
			pl.refs.Store(1)
			pl.release()
		}
	}
	return sum
}

// BenchQueueRing measures the uncontended enqueue/dequeue pair on the MPSC
// ring: n push/pop round-trips through a ring of the given capacity.
func BenchQueueRing(n, capacity int) int {
	q := newRing(capacity)
	it := ringItem{ids: []uint64{1}}
	count := 0
	for i := 0; i < n; i++ {
		if q.tryPush(it) {
			if _, ok := q.tryPop(); ok {
				count++
			}
		}
	}
	return count
}

// BenchQueueChannel is BenchQueueRing against a buffered channel of the same
// capacity — the queue the ring replaced, kept as the benchmark baseline.
func BenchQueueChannel(n, capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	ch := make(chan ringItem, capacity)
	it := ringItem{ids: []uint64{1}}
	count := 0
	for i := 0; i < n; i++ {
		select {
		case ch <- it:
			select {
			case <-ch:
				count++
			default:
			}
		default:
		}
	}
	return count
}
