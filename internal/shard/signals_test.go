package shard

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTopologyCoherentDuringResize pins the satellite fix: (epoch, shard
// count) must come from one shard-map load. The pool alternates between 2
// and 3 shards, so the invariant "even epoch ⇔ 2 shards" holds for every
// map that ever exists; readers pairing Epoch() and NumShards() across two
// loads could observe a mixed pair, Topology cannot.
func TestTopologyCoherentDuringResize(t *testing.T) {
	p := newTestPool(t, 2, 8, 8, 4, true, 4)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				epoch, shards := p.Topology()
				want := 2 + int(epoch%2)
				if shards != want {
					t.Errorf("epoch %d paired with %d shards, want %d", epoch, shards, want)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := p.Resize(2 + (i+1)%2); err != nil {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if epoch, shards := p.Topology(); epoch != 50 || shards != 2 {
		t.Fatalf("final topology (%d, %d), want (50, 2)", epoch, shards)
	}
}

// TestLoadSignals checks the autoscaler's input surface: counters agree
// with Stats, queue capacity reflects the configuration, and the drop
// counter moves when the non-blocking pool is overloaded.
func TestLoadSignals(t *testing.T) {
	p := newTestPool(t, 4, 16, 8, 4, true, 8)
	batch := make([]uint64, 256)
	for i := range batch {
		batch[i] = uint64(i + 1)
	}
	if err := p.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	sig := p.LoadSignals()
	if sig.Shards != 4 || sig.Epoch != 0 {
		t.Fatalf("topology in signals: %+v", sig)
	}
	if sig.QueueCap != 4*8 {
		t.Fatalf("QueueCap %d, want 32", sig.QueueCap)
	}
	if sig.QueueLen != 0 || sig.MaxQueueLen != 0 {
		t.Fatalf("flushed pool reports queued batches: %+v", sig)
	}
	if sig.Processed != 256 || sig.Dropped != 0 {
		t.Fatalf("counters %+v, want 256 processed, 0 dropped", sig)
	}
	st := p.Stats()
	if sig.Processed != st.Processed || sig.Dropped != st.Dropped {
		t.Fatalf("signals disagree with Stats: %+v vs %+v", sig, st)
	}

	// Signals stay monotone across a resize (retired counters fold in).
	if err := p.Resize(2); err != nil {
		t.Fatal(err)
	}
	after := p.LoadSignals()
	if after.Processed != 256 || after.Shards != 2 || after.Epoch != 1 {
		t.Fatalf("signals after shrink: %+v", after)
	}

	// A drop-policy pool under a burst larger than its queues must report
	// drops through the same surface.
	q, err := New(testConfig(1, 4, 8, 4, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	for i := 0; i < 64; i++ {
		if err := q.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	dsig := q.LoadSignals()
	if dsig.Dropped == 0 {
		t.Fatal("burst against a 1-batch queue dropped nothing")
	}
	if dsig.Dropped+dsig.Processed != 64*256 {
		t.Fatalf("dropped %d + processed %d ≠ offered %d", dsig.Dropped, dsig.Processed, 64*256)
	}
}
