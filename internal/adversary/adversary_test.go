package adversary

import (
	"math"
	"testing"

	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
	"nodesampling/internal/urn"
)

func TestNewPlanMatchesTableI(t *testing.T) {
	p, err := NewPlan(10, 5, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	if p.TargetedIDs != 38 || p.FloodingIDs != 44 {
		t.Fatalf("plan (k=10, s=5, eta=0.1) = L %d, E %d; want 38, 44", p.TargetedIDs, p.FloodingIDs)
	}
	if p.SketchBytes != 10*5*8 {
		t.Errorf("SketchBytes = %d", p.SketchBytes)
	}
	if math.Abs(p.EffortsRatio-44.0/38.0) > 1e-12 {
		t.Errorf("EffortsRatio = %v", p.EffortsRatio)
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 5, 0.1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewPlan(10, 5, 0); err == nil {
		t.Error("eta=0 should fail")
	}
}

func TestPeakAttackComposite(t *testing.T) {
	base := stream.UniformPMF(100)
	pmf, err := Peak(base, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Target carries 0.5 + 0.5/100; everyone else 0.5/100.
	if math.Abs(pmf[7]-0.505) > 1e-12 {
		t.Errorf("target mass = %v, want 0.505", pmf[7])
	}
	if math.Abs(pmf[3]-0.005) > 1e-12 {
		t.Errorf("bystander mass = %v, want 0.005", pmf[3])
	}
	sum := 0.0
	for _, v := range pmf {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pmf sums to %v", sum)
	}
}

func TestPeakValidation(t *testing.T) {
	base := stream.UniformPMF(10)
	if _, err := Peak(base, 10, 0.5); err == nil {
		t.Error("target outside population should fail")
	}
	if _, err := Peak(base, 1, 0); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, err := Peak(base, 1, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
}

func TestOverRepresent(t *testing.T) {
	base := stream.UniformPMF(10)
	ids := []uint64{1, 2}
	pmf, err := OverRepresent(base, ids, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Malicious ids: 0.6/10 + 0.4/2 = 0.26 each; others 0.06.
	for _, id := range ids {
		if math.Abs(pmf[id]-0.26) > 1e-12 {
			t.Errorf("malicious id %d mass = %v, want 0.26", id, pmf[id])
		}
	}
	if math.Abs(pmf[5]-0.06) > 1e-12 {
		t.Errorf("correct id mass = %v, want 0.06", pmf[5])
	}
}

func TestOverRepresentValidation(t *testing.T) {
	base := stream.UniformPMF(10)
	if _, err := OverRepresent(base, nil, 0.4); err == nil {
		t.Error("no ids should fail")
	}
	if _, err := OverRepresent(base, []uint64{11}, 0.4); err == nil {
		t.Error("out-of-range id should fail")
	}
	if _, err := OverRepresent(base, []uint64{1}, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
}

func TestFirstIDs(t *testing.T) {
	ids := FirstIDs(3)
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("FirstIDs(3) = %v", ids)
	}
	if got := FirstIDs(0); len(got) != 0 {
		t.Fatalf("FirstIDs(0) = %v", got)
	}
}

// TestEmpiricalTargetedMatchesTheory closes the loop of Section V-A: the
// measured probability that D decoys pollute every row of the victim must
// match the closed form (1 − (1−1/k)^D)^s.
func TestEmpiricalTargetedMatchesTheory(t *testing.T) {
	const k, s, trials = 10, 5, 4000
	r := rng.New(51)
	for _, decoys := range []int{5, 20, 37, 60} {
		got, err := EmpiricalTargetedSuccess(k, s, decoys, trials, r)
		if err != nil {
			t.Fatal(err)
		}
		perRow := 1 - math.Pow(1-1.0/k, float64(decoys))
		want := math.Pow(perRow, s)
		tol := 4*math.Sqrt(want*(1-want)/trials) + 0.01
		if math.Abs(got-want) > tol {
			t.Errorf("decoys=%d: empirical %v vs theory %v (tol %v)", decoys, got, want, tol)
		}
	}
}

// TestTargetedEffortIsSufficient: injecting L_{k,s} distinct ids achieves
// the promised success probability (the attack side of Table I).
func TestTargetedEffortIsSufficient(t *testing.T) {
	const k, s = 10, 5
	const eta = 0.1
	L, err := urn.TargetedEffort(k, s, eta)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(52)
	got, err := EmpiricalTargetedSuccess(k, s, L, 4000, r)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1-eta-0.03 {
		t.Fatalf("success with L=%d decoys = %v, want > %v", L, got, 1-eta)
	}
	// Far below the threshold the attack must clearly fail.
	weak, err := EmpiricalTargetedSuccess(k, s, L/4, 4000, r)
	if err != nil {
		t.Fatal(err)
	}
	if weak > 0.5 {
		t.Fatalf("success with L/4 decoys = %v, expected well below the threshold", weak)
	}
}

// TestEmpiricalFloodingMatchesTheory: measured all-rows coverage versus
// (P{N_D = k})^s from the occupancy DP.
func TestEmpiricalFloodingMatchesTheory(t *testing.T) {
	const k, s, trials = 10, 3, 3000
	r := rng.New(53)
	for _, decoys := range []int{20, 44, 70} {
		got, err := EmpiricalFloodingSuccess(k, s, decoys, trials, r)
		if err != nil {
			t.Fatal(err)
		}
		occ, err := urn.NewOccupancy(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < decoys; i++ {
			occ.Step()
		}
		want := math.Pow(occ.AllOccupied(), s)
		tol := 4*math.Sqrt(want*(1-want)/trials) + 0.015
		if math.Abs(got-want) > tol {
			t.Errorf("decoys=%d: empirical %v vs theory %v (tol %v)", decoys, got, want, tol)
		}
	}
}

// TestFloodingAllRowsAtLeastSingleRow: the exact all-rows effort dominates
// the paper's single-row E_k, quantifying the approximation in its
// Section V-B.
func TestFloodingAllRowsAtLeastSingleRow(t *testing.T) {
	for _, k := range []int{10, 50} {
		for _, eta := range []float64{1e-1, 1e-3} {
			single, err := urn.FloodingEffort(k, eta)
			if err != nil {
				t.Fatal(err)
			}
			all, err := urn.FloodingEffortAllRows(k, 10, eta)
			if err != nil {
				t.Fatal(err)
			}
			if all < single {
				t.Errorf("k=%d eta=%v: all-rows %d below single-row %d", k, eta, all, single)
			}
			if all > single*2 {
				t.Errorf("k=%d eta=%v: all-rows %d unreasonably above single-row %d", k, eta, all, single)
			}
		}
	}
	// s = 1 must degenerate to the paper's definition.
	single, err := urn.FloodingEffort(25, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	all, err := urn.FloodingEffortAllRows(25, 1, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if single != all {
		t.Errorf("s=1 all-rows %d != E_k %d", all, single)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	r := rng.New(54)
	if _, err := EmpiricalTargetedSuccess(0, 1, 1, 1, r); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := EmpiricalTargetedSuccess(5, 0, 1, 1, r); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := EmpiricalTargetedSuccess(5, 1, 0, 1, r); err == nil {
		t.Error("decoys=0 should fail")
	}
	if _, err := EmpiricalTargetedSuccess(5, 1, 1, 0, r); err == nil {
		t.Error("trials=0 should fail")
	}
	if _, err := EmpiricalFloodingSuccess(5, 1, 1, 1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func BenchmarkEmpiricalTargetedSuccess(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := EmpiricalTargetedSuccess(10, 5, 38, 100, r); err != nil {
			b.Fatal(err)
		}
	}
}
