package adversary

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"nodesampling/internal/core"
)

// TestTournamentTableComplete checks the tournament emits one finite cell
// per registered strategy × attack, with every window scored.
func TestTournamentTableComplete(t *testing.T) {
	cfg := TournamentConfig{Population: 64, Capacity: 16, Ids: 8192, Window: 1024, Seed: 7}
	res, err := RunTournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strategies := core.Strategies()
	attacks := AttackNames()
	if len(attacks) != 4 {
		t.Fatalf("tournament has %d attacks, want 4", len(attacks))
	}
	if want := len(strategies) * len(attacks); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d (strategies %v × attacks %v)", len(res.Cells), want, strategies, attacks)
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		seen[c.Strategy+"/"+c.Attack] = true
		if c.Windows != 8192/1024-1 {
			t.Fatalf("cell %s/%s scored %d windows, want %d", c.Strategy, c.Attack, c.Windows, 8192/1024-1)
		}
		for _, v := range []float64{c.InputKL, c.OutputKL, c.Gain} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("cell %s/%s has a non-finite score: %+v", c.Strategy, c.Attack, c)
			}
		}
		if c.InputKL <= 0 {
			t.Fatalf("cell %s/%s input KL %v: the attack did not bias the stream", c.Strategy, c.Attack, c.InputKL)
		}
	}
	for _, s := range strategies {
		for _, a := range attacks {
			if !seen[s+"/"+a] {
				t.Fatalf("missing cell %s/%s", s, a)
			}
		}
	}
}

// TestTournamentKnowledgeFreeFloodResistance reproduces the paper's
// headline claim at the reference operating point: the knowledge-free
// sampler strips most of a flood's divergence (Figure 7-style), and helps
// against every bulk attack.
func TestTournamentKnowledgeFreeFloodResistance(t *testing.T) {
	res, err := RunTournament(TournamentConfig{Strategies: []string{core.DefaultStrategy}})
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]Cell{}
	for _, c := range res.Cells {
		cells[c.Attack] = c
	}
	for _, attack := range []string{"targeted-flood", "ballot-stuffing"} {
		c := cells[attack]
		if c.Gain < 0.5 {
			t.Errorf("%s: gain %v, want ≥ 0.5", attack, c.Gain)
		}
		if c.OutputKL >= c.InputKL/2 {
			t.Errorf("%s: output KL %v not well below input %v", attack, c.OutputKL, c.InputKL)
		}
	}
	if c := cells["churn-storm"]; c.Gain <= 0 || c.OutputKL >= c.InputKL {
		t.Errorf("churn-storm: gain %v (output %v vs input %v), want positive", c.Gain, c.OutputKL, c.InputKL)
	}
}

// TestTournamentValidation covers the config contract.
func TestTournamentValidation(t *testing.T) {
	if _, err := RunTournament(TournamentConfig{Ids: 100, Window: 100}); err == nil {
		t.Fatal("single-window tournament should fail")
	}
	if _, err := RunTournament(TournamentConfig{Strategies: []string{"no-such"}}); err == nil {
		t.Fatal("unknown strategy should fail")
	} else if !strings.Contains(err.Error(), "no-such") {
		t.Fatalf("error %v does not name the unknown strategy", err)
	}
}

// TestTournamentWriters checks both output formats carry the table.
func TestTournamentWriters(t *testing.T) {
	cfg := TournamentConfig{Population: 64, Capacity: 16, Ids: 4096, Window: 1024, Seed: 3,
		Strategies: []string{core.DefaultStrategy}}
	res, err := RunTournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := res.WriteTable(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"STRATEGY", "G_KL", core.DefaultStrategy, "targeted-flood", "slow-trickle"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back TournamentResult
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(res.Cells) {
		t.Fatalf("JSON round-trip lost cells: %d vs %d", len(back.Cells), len(res.Cells))
	}
}
