// Package adversary models the strong adversary of Section III-B: an entity
// that fully controls ℓ malicious node identifiers and biases the input
// stream of correct nodes by injecting them at arbitrary rates.
//
// The package provides three things:
//
//   - Stream builders that superimpose the paper's representative attacks
//     (peak, targeted, flooding) onto a legitimate workload, returning the
//     exact composite distribution so both strategies can be evaluated on it.
//   - A Planner wrapping the Section V analysis: how many distinct ids the
//     adversary must create (L_{k,s} for a targeted attack, E_k for a
//     flooding attack) for a desired success probability.
//   - Empirical verifiers that measure the actual success probability of an
//     attack against freshly drawn 2-universal hash families, closing the
//     loop between the urn analysis and the implementation.
package adversary

import (
	"fmt"

	"nodesampling/internal/hashing"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
	"nodesampling/internal/urn"
)

// Plan reports the minimum adversarial effort against a k-column, s-row
// Count-Min sketch (Table I of the paper).
type Plan struct {
	K, S         int
	Eta          float64
	TargetedIDs  int // L_{k,s}: distinct ids to bias one victim
	FloodingIDs  int // E_k: distinct ids to bias every id
	SketchBytes  int // memory the defender spends for this sketch shape
	EffortsRatio float64
}

// NewPlan computes the effort table entry for the given sketch shape and
// failure probability eta (the attack succeeds with probability > 1 − eta).
func NewPlan(k, s int, eta float64) (Plan, error) {
	l, err := urn.TargetedEffort(k, s, eta)
	if err != nil {
		return Plan{}, fmt.Errorf("adversary: targeted effort: %w", err)
	}
	e, err := urn.FloodingEffort(k, eta)
	if err != nil {
		return Plan{}, fmt.Errorf("adversary: flooding effort: %w", err)
	}
	return Plan{
		K: k, S: s, Eta: eta,
		TargetedIDs:  l,
		FloodingIDs:  e,
		SketchBytes:  k * s * 8,
		EffortsRatio: float64(e) / float64(l),
	}, nil
}

// Peak returns the composite pmf of a peak attack over a population of n
// ids: the adversary makes one id (target) carry `fraction` of the whole
// stream while the legitimate base distribution carries the rest. With
// fraction = 0.5 over a uniform base of weight 50 per id this reproduces
// Figure 7a's 50 000-vs-50 stream.
func Peak(basePMF []float64, target uint64, fraction float64) ([]float64, error) {
	n := len(basePMF)
	if int(target) >= n {
		return nil, fmt.Errorf("adversary: target %d outside population [0,%d)", target, n)
	}
	if !(fraction > 0 && fraction < 1) {
		return nil, fmt.Errorf("adversary: fraction must be in (0,1), got %v", fraction)
	}
	point := make([]float64, n)
	point[target] = 1
	return stream.MixPMF([]float64{1 - fraction, fraction}, basePMF, point)
}

// OverRepresent returns the composite pmf in which the given malicious ids
// collectively carry `fraction` of the stream (uniformly among themselves)
// on top of the base distribution. It models both the targeted attack
// (ids = the L_{k,s} decoys) and the flooding attack (ids = the E_k decoys)
// of Section V, as well as Figure 11's sweep over the number of malicious
// identifiers.
func OverRepresent(basePMF []float64, ids []uint64, fraction float64) ([]float64, error) {
	n := len(basePMF)
	if len(ids) == 0 {
		return nil, fmt.Errorf("adversary: no malicious ids")
	}
	if !(fraction > 0 && fraction < 1) {
		return nil, fmt.Errorf("adversary: fraction must be in (0,1), got %v", fraction)
	}
	inject := make([]float64, n)
	for _, id := range ids {
		if int(id) >= n {
			return nil, fmt.Errorf("adversary: malicious id %d outside population [0,%d)", id, n)
		}
		inject[id] += 1
	}
	return stream.MixPMF([]float64{1 - fraction, fraction}, basePMF, inject)
}

// FirstIDs returns the ids {0, …, count−1}, a convenient malicious-id block
// for experiments (the analysis is invariant under relabelling).
func FirstIDs(count int) []uint64 {
	ids := make([]uint64, count)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

// EmpiricalTargetedSuccess estimates, over `trials` freshly drawn hash
// families, the probability that `decoys` distinct malicious ids collide
// with a victim id in every one of the s rows of a k-column sketch — the
// event whose probability the L_{k,s} analysis lower-bounds. The victim and
// decoy ids are drawn disjointly at random each trial.
func EmpiricalTargetedSuccess(k, s, decoys, trials int, r *rng.Xoshiro) (float64, error) {
	if err := validateEmpirical(k, s, decoys, trials, r); err != nil {
		return 0, err
	}
	success := 0
	for t := 0; t < trials; t++ {
		fam, err := hashing.NewFamily(s, k, r)
		if err != nil {
			return 0, err
		}
		victim := r.Uint64()
		hit := 0
		for row := 0; row < s; row++ {
			target := fam.Hash(row, victim)
			for d := 0; d < decoys; d++ {
				// Decoy ids are fixed per trial across rows: derive them
				// deterministically from the trial nonce so each row sees
				// the same id set, as in the real attack.
				id := rng.Mix64(victim ^ uint64(d+1))
				if fam.Hash(row, id) == target {
					hit++
					break
				}
			}
		}
		if hit == s {
			success++
		}
	}
	return float64(success) / float64(trials), nil
}

// EmpiricalFloodingSuccess estimates the probability that `decoys` distinct
// ids cover all k columns in every row — the flooding event bounded by E_k.
func EmpiricalFloodingSuccess(k, s, decoys, trials int, r *rng.Xoshiro) (float64, error) {
	if err := validateEmpirical(k, s, decoys, trials, r); err != nil {
		return 0, err
	}
	success := 0
	covered := make([]bool, k)
	for t := 0; t < trials; t++ {
		fam, err := hashing.NewFamily(s, k, r)
		if err != nil {
			return 0, err
		}
		nonce := r.Uint64()
		all := true
		for row := 0; row < s && all; row++ {
			for i := range covered {
				covered[i] = false
			}
			cnt := 0
			for d := 0; d < decoys && cnt < k; d++ {
				id := rng.Mix64(nonce ^ uint64(d+1))
				if col := fam.Hash(row, id); !covered[col] {
					covered[col] = true
					cnt++
				}
			}
			if cnt < k {
				all = false
			}
		}
		if all {
			success++
		}
	}
	return float64(success) / float64(trials), nil
}

func validateEmpirical(k, s, decoys, trials int, r *rng.Xoshiro) error {
	if k < 1 || s < 1 {
		return fmt.Errorf("adversary: sketch shape (k=%d, s=%d) invalid", k, s)
	}
	if decoys < 1 {
		return fmt.Errorf("adversary: decoy count must be positive, got %d", decoys)
	}
	if trials < 1 {
		return fmt.Errorf("adversary: trial count must be positive, got %d", trials)
	}
	if r == nil {
		return fmt.Errorf("adversary: nil random source")
	}
	return nil
}
