package adversary

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

// TournamentConfig parameterises a strategy-vs-attack tournament. The zero
// value is usable: SetDefaults fills every unset field with the reference
// operating point (population 256, memory 32, 16×4 sketch, ten windows of
// 4096 ids, decay every 512).
type TournamentConfig struct {
	Population int      // honest population size n (ids 0 … n−1)
	Capacity   int      // sampler memory size c
	K, S       int      // sketch shape, for sketch-backed strategies
	Ids        int      // stream length fed to each cell
	Window     int      // scoring window, in ids
	DecayEvery uint64   // periodic decay (0 disables)
	Seed       uint64   // root seed; every cell derives its own
	Strategies []string // nil means every registered strategy
}

// SetDefaults fills unset fields with the reference operating point.
func (c *TournamentConfig) SetDefaults() {
	if c.Population == 0 {
		c.Population = 256
	}
	if c.Capacity == 0 {
		c.Capacity = 32
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.S == 0 {
		c.S = 4
	}
	if c.Ids == 0 {
		c.Ids = 40960
	}
	if c.Window == 0 {
		c.Window = 4096
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Strategies == nil {
		c.Strategies = core.Strategies()
	}
}

func (c TournamentConfig) validate() error {
	if c.Population < 16 {
		return fmt.Errorf("adversary: tournament population %d too small (need ≥ 16)", c.Population)
	}
	if c.Capacity < 1 {
		return fmt.Errorf("adversary: tournament capacity %d invalid", c.Capacity)
	}
	if c.Window < 1 || c.Ids < 2*c.Window {
		return fmt.Errorf("adversary: tournament needs at least two windows (ids=%d window=%d)", c.Ids, c.Window)
	}
	if len(c.Strategies) == 0 {
		return fmt.Errorf("adversary: tournament with no strategies")
	}
	return nil
}

// Cell is one strategy × attack outcome: the mean windowed KL divergence of
// the input and output streams against uniform over the attack's id
// support, and the paper's G_KL robustness gain (1 = the sampler removed
// all of the attack's bias, 0 = none, negative = it amplified it). The
// first window is a warm-up and is not scored.
type Cell struct {
	Strategy string  `json:"strategy"`
	Attack   string  `json:"attack"`
	InputKL  float64 `json:"input_kl"`
	OutputKL float64 `json:"output_kl"`
	Gain     float64 `json:"gain"`
	Windows  int     `json:"windows"`
}

// TournamentResult is the full strategy × attack table.
type TournamentResult struct {
	Config  TournamentConfig `json:"config"`
	Attacks []string         `json:"attacks"`
	Cells   []Cell           `json:"cells"`
}

// idSource is the minimal stream interface the tournament consumes.
type idSource interface{ Next() uint64 }

// tournamentAttack names one adversarial input model and how to build it.
type tournamentAttack struct {
	name string
	// support is the number of distinct ids the attack may ever emit (the
	// KL reference measure is uniform over it).
	support func(c TournamentConfig) int
	source  func(c TournamentConfig, r *rng.Xoshiro) (idSource, error)
}

// churnBlock sizes a churn-storm sybil generation: population/16 fresh ids
// per window.
func churnBlock(c TournamentConfig) int { return max(1, c.Population/16) }

func churnWindows(c TournamentConfig) int { return (c.Ids + c.Window - 1) / c.Window }

// churnStorm emits a uniform honest stream in which half the ids are
// sybils from a block that is replaced every window — the adversary churns
// through fresh certified identifiers faster than any frequency estimate
// can converge on them.
type churnStorm struct {
	honest  *stream.Categorical
	r       *rng.Xoshiro
	n       int // honest population; sybils start at n
	block   int // fresh-ids-per-window
	window  int
	emitted int
}

func (s *churnStorm) Next() uint64 {
	gen := s.emitted / s.window
	s.emitted++
	if s.r.Bernoulli(0.5) {
		return uint64(s.n + gen*s.block + s.r.Intn(s.block))
	}
	return s.honest.Next()
}

// tournamentAttacks are the four representative input models: the paper's
// targeted flood (one victim id at half the stream), eclipse-style ballot
// stuffing (a small colluding block carries 80%), a churn storm of
// fresh-per-window sybils, and a slow trickle of mild persistent bias that
// a threshold detector would miss.
func tournamentAttacks() []tournamentAttack {
	honest := func(c TournamentConfig) int { return c.Population }
	categorical := func(pmf []float64, err error, r *rng.Xoshiro) (idSource, error) {
		if err != nil {
			return nil, err
		}
		return stream.NewCategorical(pmf, r)
	}
	return []tournamentAttack{
		{
			name:    "targeted-flood",
			support: honest,
			source: func(c TournamentConfig, r *rng.Xoshiro) (idSource, error) {
				pmf, err := Peak(stream.UniformPMF(c.Population), 0, 0.5)
				return categorical(pmf, err, r)
			},
		},
		{
			name:    "ballot-stuffing",
			support: honest,
			source: func(c TournamentConfig, r *rng.Xoshiro) (idSource, error) {
				pmf, err := OverRepresent(stream.UniformPMF(c.Population), FirstIDs(c.Population/16), 0.8)
				return categorical(pmf, err, r)
			},
		},
		{
			name: "churn-storm",
			support: func(c TournamentConfig) int {
				return c.Population + churnWindows(c)*churnBlock(c)
			},
			source: func(c TournamentConfig, r *rng.Xoshiro) (idSource, error) {
				honest, err := stream.NewCategorical(stream.UniformPMF(c.Population), r.Split())
				if err != nil {
					return nil, err
				}
				return &churnStorm{honest: honest, r: r, n: c.Population, block: churnBlock(c), window: c.Window}, nil
			},
		},
		{
			name:    "slow-trickle",
			support: honest,
			source: func(c TournamentConfig, r *rng.Xoshiro) (idSource, error) {
				pmf, err := OverRepresent(stream.UniformPMF(c.Population), FirstIDs(8), 0.15)
				return categorical(pmf, err, r)
			},
		},
	}
}

// AttackNames lists the tournament's attack models, in table order.
func AttackNames() []string {
	atks := tournamentAttacks()
	names := make([]string, len(atks))
	for i, a := range atks {
		names[i] = a.name
	}
	return names
}

// RunTournament pits every configured strategy against every attack model
// and scores each cell with the windowed KL divergence and G_KL gain of
// internal/metrics. Samplers are built exclusively through the strategy
// registry, so a newly registered backend joins the tournament with no
// code change here.
func RunTournament(cfg TournamentConfig) (*TournamentResult, error) {
	cfg.SetDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	strategies := append([]string(nil), cfg.Strategies...)
	sort.Strings(strategies)
	attacks := tournamentAttacks()
	res := &TournamentResult{Config: cfg, Attacks: AttackNames()}
	for _, name := range strategies {
		for ai, atk := range attacks {
			cell, err := runCell(cfg, name, atk, cfg.Seed+uint64(ai)*0x9e37)
			if err != nil {
				return nil, fmt.Errorf("adversary: %s vs %s: %w", name, atk.name, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runCell streams cfg.Ids attack ids through one sampler and scores every
// window after the warm-up one.
func runCell(cfg TournamentConfig, strategy string, atk tournamentAttack, seed uint64) (Cell, error) {
	var opts []core.Option
	if cfg.DecayEvery > 0 {
		opts = append(opts, core.WithPeriodicHalving(cfg.DecayEvery))
	}
	factory, err := core.NewFactory(strategy, core.StrategyParams{K: cfg.K, S: cfg.S, Options: opts})
	if err != nil {
		return Cell{}, err
	}
	r := rng.New(seed)
	sampler, err := factory.New(cfg.Capacity, r.Split())
	if err != nil {
		return Cell{}, err
	}
	src, err := atk.source(cfg, r.Split())
	if err != nil {
		return Cell{}, err
	}
	support := atk.support(cfg)
	in, out := metrics.NewHistogram(), metrics.NewHistogram()
	batch := make([]uint64, cfg.Window)
	emitted := make([]uint64, 0, cfg.Window)
	cell := Cell{Strategy: strategy, Attack: atk.name}
	var sumIn, sumOut, sumGain float64
	for processed := 0; processed+cfg.Window <= cfg.Ids; processed += cfg.Window {
		for i := range batch {
			batch[i] = src.Next()
		}
		emitted = sampler.ProcessBatchEmit(batch, emitted[:0])
		if processed == 0 {
			continue // warm-up: the memory starts empty
		}
		in.Reset()
		out.Reset()
		for _, id := range batch {
			in.Add(id)
		}
		for _, id := range emitted {
			out.Add(id)
		}
		gain, err := metrics.Gain(in, out, support)
		if err != nil {
			return Cell{}, fmt.Errorf("window at %d: %w", processed, err)
		}
		inKL, err := in.KLvsUniform(support)
		if err != nil {
			return Cell{}, err
		}
		outKL, err := out.KLvsUniform(support)
		if err != nil {
			return Cell{}, err
		}
		sumIn += inKL
		sumOut += outKL
		sumGain += gain
		cell.Windows++
	}
	if cell.Windows == 0 {
		return Cell{}, fmt.Errorf("no scored windows")
	}
	cell.InputKL = sumIn / float64(cell.Windows)
	cell.OutputKL = sumOut / float64(cell.Windows)
	cell.Gain = sumGain / float64(cell.Windows)
	return cell, nil
}

// WriteTable renders the per-strategy × per-attack table as aligned text.
func (r *TournamentResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %-16s %10s %10s %8s %8s\n",
		"STRATEGY", "ATTACK", "INPUT_KL", "OUTPUT_KL", "G_KL", "WINDOWS"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%-16s %-16s %10.4f %10.4f %8.4f %8d\n",
			c.Strategy, c.Attack, c.InputKL, c.OutputKL, c.Gain, c.Windows); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the result as indented JSON.
func (r *TournamentResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
