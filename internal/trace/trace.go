// Package trace provides the real-data substrate of the paper's evaluation
// (Table II, Figures 5 and 12). The original experiments replay three HTTP
// request logs from the Internet Traffic Archive (NASA Kennedy Space Center,
// ClarkNet, University of Saskatchewan), which are not redistributable here;
// the package therefore offers two interchangeable paths:
//
//   - Synthesize builds a synthetic trace whose stream length m, population
//     size n and maximum frequency match Table II exactly, with a Zipf-shaped
//     rank/frequency profile — the paper's own Figure 5 shows all three
//     traces are Zipfian, and the sampling service observes nothing about a
//     stream beyond its frequency profile, so this substitution preserves
//     the evaluated behaviour.
//   - ParseCommonLog ingests a real log in Common Log Format so the original
//     traces can be dropped in when available.
package trace

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"

	"nodesampling/internal/rng"
)

// Spec declares the published statistics of one trace (Table II).
type Spec struct {
	Name    string
	M       int    // stream length ("# ids")
	N       int    // population size ("# distinct ids")
	MaxFreq uint64 // occurrences of the most frequent id ("max. freq.")
}

// TableII returns the three trace specifications exactly as printed in the
// paper.
func TableII() []Spec {
	return []Spec{
		{Name: "NASA", M: 1_891_715, N: 81_983, MaxFreq: 17_572},
		{Name: "ClarkNet", M: 1_673_794, N: 94_787, MaxFreq: 7_239},
		{Name: "Saskatchewan", M: 2_408_625, N: 162_523, MaxFreq: 52_695},
	}
}

// Trace is a replayable stream of node identifiers with known statistics.
type Trace struct {
	ids  []uint64
	freq map[uint64]uint64
	max  uint64
}

// IDs returns the underlying stream. The slice is shared for efficiency
// (traces are large); callers must not modify it.
func (t *Trace) IDs() []uint64 { return t.ids }

// Len returns the stream length m.
func (t *Trace) Len() int { return len(t.ids) }

// Distinct returns the population size n.
func (t *Trace) Distinct() int { return len(t.freq) }

// MaxFreq returns the occurrence count of the most frequent id.
func (t *Trace) MaxFreq() uint64 { return t.max }

// Counts returns a copy of the id → occurrences table.
func (t *Trace) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(t.freq))
	for k, v := range t.freq {
		out[k] = v
	}
	return out
}

// RankFrequency returns the occurrence counts sorted in decreasing order —
// the log-log rank/frequency curve of Figure 5.
func (t *Trace) RankFrequency() []uint64 {
	out := make([]uint64, 0, len(t.freq))
	for _, v := range t.freq {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// newTrace finalises a trace from a raw id stream.
func newTrace(ids []uint64) *Trace {
	freq := make(map[uint64]uint64)
	var max uint64
	for _, id := range ids {
		freq[id]++
		if freq[id] > max {
			max = freq[id]
		}
	}
	return &Trace{ids: ids, freq: freq, max: max}
}

// CalibrateZipfAlpha finds the Zipf exponent α such that the top-ranked id
// of a Zipf(α) distribution over n ids carries the fraction
// maxFreq/m of the stream: 1/H_{n,α} = maxFreq/m, solved by bisection
// (the left side is strictly increasing in α).
func CalibrateZipfAlpha(spec Spec) (float64, error) {
	if spec.M < 1 || spec.N < 1 {
		return 0, fmt.Errorf("trace: spec %q has non-positive sizes", spec.Name)
	}
	if spec.MaxFreq < 1 || spec.MaxFreq > uint64(spec.M) {
		return 0, fmt.Errorf("trace: spec %q max frequency %d outside [1, %d]", spec.Name, spec.MaxFreq, spec.M)
	}
	if spec.N == 1 {
		if spec.MaxFreq != uint64(spec.M) {
			return 0, fmt.Errorf("trace: spec %q with one id needs max frequency %d, got %d",
				spec.Name, spec.M, spec.MaxFreq)
		}
		return 1, nil
	}
	target := float64(spec.MaxFreq) / float64(spec.M)
	if target <= 1/float64(spec.N) {
		return 0, fmt.Errorf("trace: spec %q flatter than uniform; no Zipf fit", spec.Name)
	}
	topShare := func(alpha float64) float64 {
		h := 0.0
		for i := 1; i <= spec.N; i++ {
			h += math.Pow(float64(i), -alpha)
		}
		return 1 / h
	}
	lo, hi := 0.0, 8.0
	if topShare(hi) < target {
		return 0, fmt.Errorf("trace: spec %q too peaked for a Zipf fit", spec.Name)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12; iter++ {
		mid := (lo + hi) / 2
		if topShare(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Synthesize builds a synthetic trace matching the spec: exactly spec.M
// elements over exactly spec.N distinct ids (0..N−1, id = rank), with the
// top id occurring exactly spec.MaxFreq times and the remaining frequencies
// following the calibrated Zipf profile. The element order is a uniform
// shuffle under the given seed (the sampling strategies are order-oblivious
// in distribution, but a fixed adversarial order is reproducible from the
// seed).
func Synthesize(spec Spec, seed uint64) (*Trace, error) {
	alpha, err := CalibrateZipfAlpha(spec)
	if err != nil {
		return nil, err
	}
	freqs, err := frequencyVector(spec, alpha)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, spec.M)
	for rank, f := range freqs {
		for i := uint64(0); i < f; i++ {
			ids = append(ids, uint64(rank))
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return newTrace(ids), nil
}

// frequencyVector builds the per-rank occurrence counts: Zipf-shaped,
// summing exactly to M, minimum 1 (so all N ids appear), maximum exactly
// MaxFreq at rank 0.
func frequencyVector(spec Spec, alpha float64) ([]uint64, error) {
	n := spec.N
	if uint64(spec.M) < uint64(n)+spec.MaxFreq-1 {
		return nil, fmt.Errorf("trace: spec %q cannot hold %d distinct ids and a peak of %d in %d elements",
			spec.Name, n, spec.MaxFreq, spec.M)
	}
	if n == 1 {
		if spec.MaxFreq != uint64(spec.M) {
			return nil, fmt.Errorf("trace: spec %q with one id needs max frequency %d, got %d",
				spec.Name, spec.M, spec.MaxFreq)
		}
		return []uint64{uint64(spec.M)}, nil
	}
	freqs := make([]uint64, n)
	freqs[0] = spec.MaxFreq
	total := spec.MaxFreq
	top := float64(spec.MaxFreq)
	for i := 1; i < n; i++ {
		f := uint64(math.Round(top * math.Pow(float64(i+1), -alpha)))
		if f < 1 {
			f = 1
		}
		if f > spec.MaxFreq {
			f = spec.MaxFreq
		}
		freqs[i] = f
		total += f
	}
	// Spread the rounding residue over mid ranks without disturbing the
	// peak (rank 0) or dropping any id below 1.
	switch {
	case total < uint64(spec.M):
		deficit := uint64(spec.M) - total
		progressed := false
		for i := 1; deficit > 0; i = i%(n-1) + 1 {
			if freqs[i] < spec.MaxFreq-1 { // keep rank 0 the unique maximum
				freqs[i]++
				deficit--
				progressed = true
			}
			if i == n-1 {
				if !progressed {
					return nil, fmt.Errorf("trace: spec %q cannot absorb rounding deficit", spec.Name)
				}
				progressed = false
			}
		}
	case total > uint64(spec.M):
		surplus := total - uint64(spec.M)
		progressed := false
		for i := 1; surplus > 0; i = i%(n-1) + 1 {
			if freqs[i] > 1 {
				freqs[i]--
				surplus--
				progressed = true
			}
			if i == n-1 {
				if !progressed {
					return nil, fmt.Errorf("trace: spec %q cannot absorb rounding surplus", spec.Name)
				}
				progressed = false
			}
		}
	}
	return freqs, nil
}

// KeyField selects which Common Log Format field identifies the "node".
type KeyField int

// The two natural identity choices for an HTTP log.
const (
	// KeyRemoteHost uses the first field (requesting host), matching the
	// paper's node-identifier semantics.
	KeyRemoteHost KeyField = iota + 1
	// KeyRequestURL uses the request target instead.
	KeyRequestURL
)

// ParseCommonLog reads a Common Log Format stream ("host ident user [time]
// \"request\" status size") and returns the node-id stream obtained by
// hashing the selected field with FNV-1a (64-bit). Blank and malformed
// lines are skipped; the count of skipped lines is returned for visibility.
func ParseCommonLog(r io.Reader, key KeyField) (ids []uint64, skipped int, err error) {
	if key != KeyRemoteHost && key != KeyRequestURL {
		return nil, 0, fmt.Errorf("trace: unknown key field %d", key)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			skipped++
			continue
		}
		var token string
		switch key {
		case KeyRemoteHost:
			sp := strings.IndexByte(line, ' ')
			if sp <= 0 {
				skipped++
				continue
			}
			token = line[:sp]
		case KeyRequestURL:
			// The request is the first quoted field: "GET /path HTTP/1.0".
			open := strings.IndexByte(line, '"')
			if open < 0 {
				skipped++
				continue
			}
			close := strings.IndexByte(line[open+1:], '"')
			if close < 0 {
				skipped++
				continue
			}
			req := line[open+1 : open+1+close]
			parts := strings.Fields(req)
			if len(parts) < 2 {
				skipped++
				continue
			}
			token = parts[1]
		}
		h := fnv.New64a()
		if _, err := io.WriteString(h, token); err != nil {
			return nil, skipped, fmt.Errorf("trace: hash field: %w", err)
		}
		ids = append(ids, h.Sum64())
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: scan log: %w", err)
	}
	if len(ids) == 0 {
		return nil, skipped, fmt.Errorf("trace: no parsable lines in log")
	}
	return ids, skipped, nil
}

// FromIDs wraps a raw id stream (for example the output of ParseCommonLog)
// as a Trace. The slice is retained; do not modify it afterwards.
func FromIDs(ids []uint64) (*Trace, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("trace: empty id stream")
	}
	return newTrace(ids), nil
}
