package trace

import (
	"math"
	"strings"
	"testing"
)

// smallSpec is a fast, fully checkable stand-in for the Table II traces.
func smallSpec() Spec {
	return Spec{Name: "small", M: 20000, N: 500, MaxFreq: 800}
}

func TestTableIISpecsMatchPaper(t *testing.T) {
	specs := TableII()
	if len(specs) != 3 {
		t.Fatalf("TableII returned %d specs", len(specs))
	}
	want := map[string][3]uint64{
		"NASA":         {1_891_715, 81_983, 17_572},
		"ClarkNet":     {1_673_794, 94_787, 7_239},
		"Saskatchewan": {2_408_625, 162_523, 52_695},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected trace %q", s.Name)
		}
		if uint64(s.M) != w[0] || uint64(s.N) != w[1] || s.MaxFreq != w[2] {
			t.Errorf("%s spec = (%d, %d, %d), want (%d, %d, %d)",
				s.Name, s.M, s.N, s.MaxFreq, w[0], w[1], w[2])
		}
	}
}

func TestCalibrateZipfAlpha(t *testing.T) {
	spec := smallSpec()
	alpha, err := CalibrateZipfAlpha(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the fixed point: 1/H_{n,alpha} = maxFreq/m.
	h := 0.0
	for i := 1; i <= spec.N; i++ {
		h += math.Pow(float64(i), -alpha)
	}
	got := 1 / h
	want := float64(spec.MaxFreq) / float64(spec.M)
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("calibrated top share %v, want %v (alpha=%v)", got, want, alpha)
	}
}

func TestCalibrateValidation(t *testing.T) {
	bad := []Spec{
		{Name: "zero m", M: 0, N: 10, MaxFreq: 1},
		{Name: "zero n", M: 10, N: 0, MaxFreq: 1},
		{Name: "max too big", M: 10, N: 5, MaxFreq: 11},
		{Name: "max zero", M: 10, N: 5, MaxFreq: 0},
		{Name: "flatter than uniform", M: 100, N: 100, MaxFreq: 1},
	}
	for _, s := range bad {
		if _, err := CalibrateZipfAlpha(s); err == nil {
			t.Errorf("%s: expected error", s.Name)
		}
	}
}

func TestCalibrateSingleID(t *testing.T) {
	if _, err := CalibrateZipfAlpha(Spec{Name: "one", M: 7, N: 1, MaxFreq: 7}); err != nil {
		t.Fatalf("single-id spec: %v", err)
	}
	if _, err := CalibrateZipfAlpha(Spec{Name: "one-bad", M: 7, N: 1, MaxFreq: 3}); err == nil {
		t.Error("inconsistent single-id spec should fail")
	}
}

// TestSynthesizeMatchesSpecExactly is the substitution contract: the
// synthetic trace reproduces all three Table II statistics exactly.
func TestSynthesizeMatchesSpecExactly(t *testing.T) {
	spec := smallSpec()
	tr, err := Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != spec.M {
		t.Errorf("stream length %d, want %d", tr.Len(), spec.M)
	}
	if tr.Distinct() != spec.N {
		t.Errorf("distinct ids %d, want %d", tr.Distinct(), spec.N)
	}
	if tr.MaxFreq() != spec.MaxFreq {
		t.Errorf("max frequency %d, want %d", tr.MaxFreq(), spec.MaxFreq)
	}
}

func TestSynthesizeZipfShape(t *testing.T) {
	spec := smallSpec()
	tr, err := Synthesize(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	rf := tr.RankFrequency()
	if len(rf) != spec.N {
		t.Fatalf("rank-frequency length %d", len(rf))
	}
	// Non-increasing, top equals MaxFreq, bottom at least 1.
	for i := 1; i < len(rf); i++ {
		if rf[i] > rf[i-1] {
			t.Fatalf("rank-frequency not sorted at %d", i)
		}
	}
	if rf[0] != spec.MaxFreq || rf[len(rf)-1] < 1 {
		t.Fatalf("rank-frequency ends = %d .. %d", rf[0], rf[len(rf)-1])
	}
	// Zipf linearity in log-log space: the ratio log(f_1/f_r)/log(r) should
	// be roughly constant (= alpha) at well-separated ranks.
	alpha, err := CalibrateZipfAlpha(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{10, 50, 200} {
		est := math.Log(float64(rf[0])/float64(rf[rank])) / math.Log(float64(rank+1))
		if math.Abs(est-alpha) > 0.25*alpha {
			t.Errorf("log-log slope at rank %d = %v, want about %v", rank, est, alpha)
		}
	}
}

func TestSynthesizeDeterministicPerSeed(t *testing.T) {
	spec := Spec{Name: "tiny", M: 2000, N: 50, MaxFreq: 100}
	a, err := Synthesize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IDs() {
		if a.IDs()[i] != b.IDs()[i] {
			t.Fatalf("same-seed traces diverge at %d", i)
		}
	}
	c, err := Synthesize(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.IDs() {
		if a.IDs()[i] == c.IDs()[i] {
			same++
		}
	}
	if same == len(a.IDs()) {
		t.Fatal("different seeds produced identical order")
	}
}

func TestSynthesizeInfeasibleSpec(t *testing.T) {
	// 10 elements cannot hold 8 distinct ids plus a peak of 5 (5+7 > 10).
	if _, err := Synthesize(Spec{Name: "bad", M: 10, N: 8, MaxFreq: 5}, 1); err == nil {
		t.Error("infeasible spec should fail")
	}
}

// TestSynthesizeNASA builds the real NASA-scale trace and verifies the
// Table II statistics exactly; this is the actual Figure 12 substrate.
func TestSynthesizeNASA(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale trace synthesis in -short mode")
	}
	spec := TableII()[0]
	tr, err := Synthesize(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != spec.M || tr.Distinct() != spec.N || tr.MaxFreq() != spec.MaxFreq {
		t.Fatalf("NASA synthetic = (%d, %d, %d), want (%d, %d, %d)",
			tr.Len(), tr.Distinct(), tr.MaxFreq(), spec.M, spec.N, spec.MaxFreq)
	}
}

func TestFromIDs(t *testing.T) {
	tr, err := FromIDs([]uint64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.Distinct() != 2 || tr.MaxFreq() != 2 {
		t.Fatalf("stats = (%d, %d, %d)", tr.Len(), tr.Distinct(), tr.MaxFreq())
	}
	if _, err := FromIDs(nil); err == nil {
		t.Error("empty ids should fail")
	}
	counts := tr.Counts()
	counts[1] = 99
	if tr.Counts()[1] != 2 {
		t.Error("Counts exposed internal state")
	}
}

func TestParseCommonLogRemoteHost(t *testing.T) {
	log := strings.Join([]string{
		`alpha.example.com - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 6245`,
		`beta.example.com - - [01/Jul/1995:00:00:06 -0400] "GET /b.html HTTP/1.0" 200 3985`,
		`alpha.example.com - - [01/Jul/1995:00:00:09 -0400] "GET /c.html HTTP/1.0" 200 4085`,
		``,
		`malformed-line-without-space`,
	}, "\n")
	ids, skipped, err := ParseCommonLog(strings.NewReader(log), KeyRemoteHost)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("parsed %d ids, want 3", len(ids))
	}
	if skipped != 2 {
		t.Fatalf("skipped %d lines, want 2", skipped)
	}
	if ids[0] != ids[2] {
		t.Error("same host must hash to the same id")
	}
	if ids[0] == ids[1] {
		t.Error("different hosts must hash to different ids")
	}
}

func TestParseCommonLogRequestURL(t *testing.T) {
	log := strings.Join([]string{
		`h1 - - [t] "GET /same.html HTTP/1.0" 200 1`,
		`h2 - - [t] "GET /same.html HTTP/1.0" 200 1`,
		`h3 - - [t] "GET /other.html HTTP/1.0" 200 1`,
		`h4 - - [t] "BADREQUEST" 400 1`,
		`h5 no quotes at all`,
	}, "\n")
	ids, skipped, err := ParseCommonLog(strings.NewReader(log), KeyRequestURL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || skipped != 2 {
		t.Fatalf("parsed %d ids (skipped %d), want 3 (2)", len(ids), skipped)
	}
	if ids[0] != ids[1] {
		t.Error("same URL must hash to the same id")
	}
	if ids[0] == ids[2] {
		t.Error("different URLs must hash to different ids")
	}
}

func TestParseCommonLogErrors(t *testing.T) {
	if _, _, err := ParseCommonLog(strings.NewReader("x y z"), KeyField(0)); err == nil {
		t.Error("unknown key field should fail")
	}
	if _, _, err := ParseCommonLog(strings.NewReader(""), KeyRemoteHost); err == nil {
		t.Error("empty log should fail")
	}
	if _, _, err := ParseCommonLog(strings.NewReader("\n\n"), KeyRemoteHost); err == nil {
		t.Error("blank-only log should fail")
	}
}

func BenchmarkSynthesizeSmall(b *testing.B) {
	spec := smallSpec()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(spec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
