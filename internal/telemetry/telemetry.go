// Package telemetry is the operational observability plane of the node
// sampling service: a dependency-free Prometheus registry and text-format
// (version 0.0.4) exposition writer, collectors that adapt the counters the
// serving plane already keeps — shard pool ingest, per-subscriber stream
// accounting, autoscaler state — and a live uniformity gauge that turns the
// paper's evaluation metric (KL divergence to uniform and the G_KL gain,
// internal/metrics) into a scrapeable SLO signal.
//
// The package is deliberately pull-only: nothing here sits on the ingest
// hot path. Collectors read atomics and take the same short-lived locks the
// /stats endpoint already takes, and they do it at scrape time — a daemon
// nobody scrapes pays nothing. Metric families follow the Prometheus
// conventions (lowercase snake_case names, counters suffixed _total) and
// every family exported by the daemon carries the unsd_ prefix.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the HTTP Content-Type of the exposition format this
// package writes (Prometheus text format, version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Type is a metric family's type as exposed on the # TYPE line.
type Type string

// The two family types the plane uses. Counters are cumulative and must
// never decrease (the exposition test pins this across live resizes);
// gauges move freely.
const (
	Counter Type = "counter"
	Gauge   Type = "gauge"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exported value of a family, distinguished by its labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one metric family: a # HELP line, a # TYPE line and zero or
// more samples. A family with no samples still exposes its metadata, so a
// dashboard can discover a quantity before it first fires.
type Family struct {
	Name    string
	Help    string
	Type    Type
	Samples []Sample
}

// Collector produces a set of families at scrape time.
type Collector interface {
	Collect() []Family
}

// CollectorFunc adapts a plain function to the Collector interface.
type CollectorFunc func() []Family

// Collect implements Collector.
func (f CollectorFunc) Collect() []Family { return f() }

// Registry is a set of collectors gathered and written on each scrape. All
// methods are safe for concurrent use; collectors must be too (ours only
// read atomics and short-lived-lock snapshots).
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds collectors to the registry.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, cs...)
	r.mu.Unlock()
}

// Gather collects every registered collector's families, validates them
// (legal names, no duplicate families) and returns them sorted by name so
// consecutive scrapes are diffable.
func (r *Registry) Gather() ([]Family, error) {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var fams []Family
	seen := make(map[string]bool)
	for _, c := range collectors {
		for _, f := range c.Collect() {
			if err := validateFamily(f); err != nil {
				return nil, err
			}
			if seen[f.Name] {
				return nil, fmt.Errorf("telemetry: duplicate family %q", f.Name)
			}
			seen[f.Name] = true
			fams = append(fams, f)
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams, nil
}

// WriteTo gathers and writes the exposition in Prometheus text format
// version 0.0.4: for each family a # HELP line, a # TYPE line, then one
// line per sample.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	fams, err := r.Gather()
	if err != nil {
		return 0, err
	}
	var sb strings.Builder
	for _, f := range fams {
		sb.WriteString("# HELP ")
		sb.WriteString(f.Name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(f.Help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(f.Name)
		sb.WriteByte(' ')
		sb.WriteString(string(f.Type))
		sb.WriteByte('\n')
		for _, s := range f.Samples {
			sb.WriteString(f.Name)
			if len(s.Labels) > 0 {
				sb.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(l.Name)
					sb.WriteString(`="`)
					sb.WriteString(escapeLabelValue(l.Value))
					sb.WriteByte('"')
				}
				sb.WriteByte('}')
			}
			sb.WriteByte(' ')
			sb.WriteString(formatValue(s.Value))
			sb.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Handler returns an http.Handler serving the registry's exposition — the
// body of a /metrics endpoint. A gather failure (always a programming
// error: an invalid or duplicated family) answers 500 with the reason.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if _, err := r.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// validateFamily enforces the plane's naming convention, stricter than
// Prometheus requires: family names are lowercase snake_case (or colons for
// recording-rule style names) with no digits, label names are lowercase
// snake_case. Keeping the alphabet small keeps variability in labels, where
// it belongs, and lets the exposition test pin one regular expression.
func validateFamily(f Family) error {
	if !validMetricName(f.Name) {
		return fmt.Errorf("telemetry: invalid family name %q (want [a-z_:]+)", f.Name)
	}
	if f.Type != Counter && f.Type != Gauge {
		return fmt.Errorf("telemetry: family %s has invalid type %q", f.Name, f.Type)
	}
	if f.Help == "" {
		return fmt.Errorf("telemetry: family %s has no help text", f.Name)
	}
	for _, s := range f.Samples {
		for _, l := range s.Labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("telemetry: family %s has invalid label name %q", f.Name, l.Name)
			}
		}
		if f.Type == Counter && s.Value < 0 {
			return fmt.Errorf("telemetry: counter %s has negative value %v", f.Name, s.Value)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && c != '_' && c != ':' {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}

// escapeHelp escapes a HELP line per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable decimal, with the spec's spellings for the specials.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// gaugeSample and counter helpers keep collector bodies terse.

// G returns an unlabelled gauge family with one sample.
func G(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: Gauge, Samples: []Sample{{Value: v}}}
}

// C returns an unlabelled counter family with one sample.
func C(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: Counter, Samples: []Sample{{Value: v}}}
}

// B returns 1.0 for true and 0.0 for false — the conventional encoding of a
// boolean gauge.
func B(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
