// Package telemetry is the operational observability plane of the node
// sampling service: a dependency-free Prometheus registry and text-format
// (version 0.0.4) exposition writer, collectors that adapt the counters the
// serving plane already keeps — shard pool ingest, per-subscriber stream
// accounting, autoscaler state — and a live uniformity gauge that turns the
// paper's evaluation metric (KL divergence to uniform and the G_KL gain,
// internal/metrics) into a scrapeable SLO signal.
//
// The package is deliberately pull-only: nothing here sits on the ingest
// hot path. Collectors read atomics and take the same short-lived locks the
// /stats endpoint already takes, and they do it at scrape time — a daemon
// nobody scrapes pays nothing. Metric families follow the Prometheus
// conventions (lowercase snake_case names, counters suffixed _total) and
// every family exported by the daemon carries the unsd_ prefix.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the HTTP Content-Type of the exposition format this
// package writes (Prometheus text format, version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Type is a metric family's type as exposed on the # TYPE line.
type Type string

// The three family types the plane uses. Counters are cumulative and must
// never decrease (the exposition test pins this across live resizes);
// gauges move freely; histograms expose a fixed-bucket latency
// distribution as cumulative le-labelled series plus _sum and _count.
const (
	Counter   Type = "counter"
	Gauge     Type = "gauge"
	Histogram Type = "histogram"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exported value of a family, distinguished by its labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// HistogramSample is one exported histogram of a histogram-typed family:
// cumulative buckets over strictly increasing finite upper bounds (the
// +Inf bucket is implied by Count), the total observation count and the
// sum of observed values. Labels must not include "le" — the writer owns
// that label.
type HistogramSample struct {
	Labels  []Label
	Buckets []Bucket
	Count   uint64
	Sum     float64
}

// Family is one metric family: a # HELP line, a # TYPE line and zero or
// more samples. A family with no samples still exposes its metadata, so a
// dashboard can discover a quantity before it first fires. Counter and
// gauge families carry Samples; histogram families carry Histograms.
type Family struct {
	Name       string
	Help       string
	Type       Type
	Samples    []Sample
	Histograms []HistogramSample
}

// Collector produces a set of families at scrape time.
type Collector interface {
	Collect() []Family
}

// CollectorFunc adapts a plain function to the Collector interface.
type CollectorFunc func() []Family

// Collect implements Collector.
func (f CollectorFunc) Collect() []Family { return f() }

// Registry is a set of collectors gathered and written on each scrape. All
// methods are safe for concurrent use; collectors must be too (ours only
// read atomics and short-lived-lock snapshots).
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds collectors to the registry.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, cs...)
	r.mu.Unlock()
}

// Gather collects every registered collector's families, validates them
// (legal names, no duplicate families) and returns them sorted by name so
// consecutive scrapes are diffable.
func (r *Registry) Gather() ([]Family, error) {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var fams []Family
	seen := make(map[string]bool)
	for _, c := range collectors {
		for _, f := range c.Collect() {
			if err := validateFamily(f); err != nil {
				return nil, err
			}
			if seen[f.Name] {
				return nil, fmt.Errorf("telemetry: duplicate family %q", f.Name)
			}
			seen[f.Name] = true
			fams = append(fams, f)
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams, nil
}

// WriteTo gathers and writes the exposition in Prometheus text format
// version 0.0.4: for each family a # HELP line, a # TYPE line, then one
// line per sample.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	fams, err := r.Gather()
	if err != nil {
		return 0, err
	}
	var sb strings.Builder
	for _, f := range fams {
		sb.WriteString("# HELP ")
		sb.WriteString(f.Name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(f.Help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(f.Name)
		sb.WriteByte(' ')
		sb.WriteString(string(f.Type))
		sb.WriteByte('\n')
		for _, s := range f.Samples {
			writeSampleLine(&sb, f.Name, s.Labels, "", s.Value)
		}
		for _, h := range f.Histograms {
			for _, b := range h.Buckets {
				writeSampleLine(&sb, f.Name+"_bucket", h.Labels, formatValue(b.UpperBound), float64(b.Count))
			}
			writeSampleLine(&sb, f.Name+"_bucket", h.Labels, "+Inf", float64(h.Count))
			writeSampleLine(&sb, f.Name+"_sum", h.Labels, "", h.Sum)
			writeSampleLine(&sb, f.Name+"_count", h.Labels, "", float64(h.Count))
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// writeSampleLine renders one sample line: name, the label set (with the
// reserved le label appended when non-empty — histogram bucket lines) and
// the value.
func writeSampleLine(sb *strings.Builder, name string, labels []Label, le string, v float64) {
	sb.WriteString(name)
	if len(labels) > 0 || le != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(l.Value))
			sb.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`le="`)
			sb.WriteString(le)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry's exposition — the
// body of a /metrics endpoint. A gather failure (always a programming
// error: an invalid or duplicated family) answers 500 with the reason.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if _, err := r.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// validateFamily enforces the plane's naming convention, stricter than
// Prometheus requires: family names are lowercase snake_case (or colons for
// recording-rule style names) with no digits, label names are lowercase
// snake_case. Keeping the alphabet small keeps variability in labels, where
// it belongs, and lets the exposition test pin one regular expression.
func validateFamily(f Family) error {
	if !validMetricName(f.Name) {
		return fmt.Errorf("telemetry: invalid family name %q (want [a-z_:]+)", f.Name)
	}
	if f.Type != Counter && f.Type != Gauge && f.Type != Histogram {
		return fmt.Errorf("telemetry: family %s has invalid type %q", f.Name, f.Type)
	}
	if f.Help == "" {
		return fmt.Errorf("telemetry: family %s has no help text", f.Name)
	}
	if f.Type == Histogram && len(f.Samples) > 0 {
		return fmt.Errorf("telemetry: histogram family %s carries plain samples", f.Name)
	}
	if f.Type != Histogram && len(f.Histograms) > 0 {
		return fmt.Errorf("telemetry: %s family %s carries histogram samples", f.Type, f.Name)
	}
	for _, s := range f.Samples {
		for _, l := range s.Labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("telemetry: family %s has invalid label name %q", f.Name, l.Name)
			}
		}
		if f.Type == Counter && s.Value < 0 {
			return fmt.Errorf("telemetry: counter %s has negative value %v", f.Name, s.Value)
		}
	}
	for _, h := range f.Histograms {
		for _, l := range h.Labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("telemetry: family %s has invalid label name %q", f.Name, l.Name)
			}
			if l.Name == "le" {
				return fmt.Errorf("telemetry: histogram %s labels its own le", f.Name)
			}
		}
		prev := math.Inf(-1)
		var prevCount uint64
		for _, b := range h.Buckets {
			if math.IsNaN(b.UpperBound) || math.IsInf(b.UpperBound, 0) {
				return fmt.Errorf("telemetry: histogram %s has non-finite bucket bound %v", f.Name, b.UpperBound)
			}
			if b.UpperBound <= prev {
				return fmt.Errorf("telemetry: histogram %s bucket bounds not strictly increasing at %v", f.Name, b.UpperBound)
			}
			if b.Count < prevCount {
				return fmt.Errorf("telemetry: histogram %s cumulative bucket counts decrease at le=%v", f.Name, b.UpperBound)
			}
			prev, prevCount = b.UpperBound, b.Count
		}
		if h.Count < prevCount {
			return fmt.Errorf("telemetry: histogram %s count %d below last bucket %d", f.Name, h.Count, prevCount)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && c != '_' && c != ':' {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}

// escapeHelp escapes a HELP line per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable decimal, with the spec's spellings for the specials.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// gaugeSample and counter helpers keep collector bodies terse.

// G returns an unlabelled gauge family with one sample.
func G(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: Gauge, Samples: []Sample{{Value: v}}}
}

// C returns an unlabelled counter family with one sample.
func C(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: Counter, Samples: []Sample{{Value: v}}}
}

// B returns 1.0 for true and 0.0 for false — the conventional encoding of a
// boolean gauge.
func B(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
