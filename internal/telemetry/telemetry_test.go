package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			{
				Name: "unsd_test_total",
				Help: `a counter with \ and a
newline`,
				Type: Counter,
				Samples: []Sample{
					{Labels: []Label{{Name: "shard", Value: "0"}}, Value: 42},
					{Labels: []Label{{Name: "shard", Value: `we"ird\v`}}, Value: 1},
				},
			},
			G("unsd_test_gauge", "a gauge", 1.5),
		}
	}))
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got := sb.String()
	want := "# HELP unsd_test_gauge a gauge\n" +
		"# TYPE unsd_test_gauge gauge\n" +
		"unsd_test_gauge 1.5\n" +
		`# HELP unsd_test_total a counter with \\ and a\nnewline` + "\n" +
		"# TYPE unsd_test_total counter\n" +
		`unsd_test_total{shard="0"} 42` + "\n" +
		`unsd_test_total{shard="we\"ird\\v"} 1` + "\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGatherRejectsInvalidFamilies(t *testing.T) {
	cases := []struct {
		name string
		fam  Family
	}{
		{"digits in name", C("unsd_sha256_total", "h", 1)},
		{"uppercase", C("unsd_Total", "h", 1)},
		{"empty name", C("", "h", 1)},
		{"no help", Family{Name: "unsd_x", Type: Counter}},
		{"bad type", Family{Name: "unsd_x", Help: "h", Type: "summary"}},
		{"histogram with plain samples", Family{Name: "unsd_x", Help: "h", Type: Histogram,
			Samples: []Sample{{Value: 1}}}},
		{"gauge with histogram samples", Family{Name: "unsd_x", Help: "h", Type: Gauge,
			Histograms: []HistogramSample{{Count: 1}}}},
		{"histogram le label", Family{Name: "unsd_x", Help: "h", Type: Histogram,
			Histograms: []HistogramSample{{Labels: []Label{{Name: "le", Value: "1"}}}}}},
		{"histogram bounds not increasing", Family{Name: "unsd_x", Help: "h", Type: Histogram,
			Histograms: []HistogramSample{{Buckets: []Bucket{{UpperBound: 1, Count: 0}, {UpperBound: 1, Count: 1}}, Count: 1}}}},
		{"histogram buckets not cumulative", Family{Name: "unsd_x", Help: "h", Type: Histogram,
			Histograms: []HistogramSample{{Buckets: []Bucket{{UpperBound: 1, Count: 5}, {UpperBound: 2, Count: 3}}, Count: 5}}}},
		{"histogram count below last bucket", Family{Name: "unsd_x", Help: "h", Type: Histogram,
			Histograms: []HistogramSample{{Buckets: []Bucket{{UpperBound: 1, Count: 5}}, Count: 3}}}},
		{"bad label name", Family{Name: "unsd_x", Help: "h", Type: Gauge,
			Samples: []Sample{{Labels: []Label{{Name: "Shard", Value: "0"}}, Value: 1}}}},
		{"negative counter", C("unsd_x_total", "h", -1)},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Register(CollectorFunc(func() []Family { return []Family{tc.fam} }))
		if _, err := r.Gather(); err == nil {
			t.Errorf("%s: Gather accepted invalid family", tc.name)
		}
	}
}

func TestGatherRejectsDuplicateFamily(t *testing.T) {
	r := NewRegistry()
	r.Register(
		CollectorFunc(func() []Family { return []Family{G("unsd_dup", "h", 1)} }),
		CollectorFunc(func() []Family { return []Family{G("unsd_dup", "h", 2)} }),
	)
	if _, err := r.Gather(); err == nil {
		t.Fatal("Gather accepted duplicate family names")
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN: got %q", got)
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf: got %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf: got %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			{
				Name: "unsd_rt_total",
				Help: `round trip with \ and
breaks`,
				Type: Counter,
				Samples: []Sample{
					{Labels: []Label{{Name: "a", Value: `x"y\z`}, {Name: "b", Value: "plain"}}, Value: 7},
					{Value: 9.25},
				},
			},
			G("unsd_rt_gauge", "plain", -0.5),
		}
	}))
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	s, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := s.Family("unsd_rt_total")
	if f == nil {
		t.Fatal("family unsd_rt_total not parsed")
	}
	if f.Type != "counter" {
		t.Errorf("type: got %q", f.Type)
	}
	if want := "round trip with \\ and\nbreaks"; f.Help != want {
		t.Errorf("help: got %q want %q", f.Help, want)
	}
	if v, ok := s.Value("unsd_rt_total", "a", `x"y\z`, "b", "plain"); !ok || v != 7 {
		t.Errorf("labelled sample: got %v ok=%v", v, ok)
	}
	if v, ok := s.Value("unsd_rt_total"); !ok || v != 9.25 {
		t.Errorf("unlabelled sample: got %v ok=%v", v, ok)
	}
	if sum, ok := s.Sum("unsd_rt_total"); !ok || sum != 16.25 {
		t.Errorf("Sum: got %v ok=%v", sum, ok)
	}
	if v, ok := s.Value("unsd_rt_gauge"); !ok || v != -0.5 {
		t.Errorf("gauge: got %v ok=%v", v, ok)
	}
	if _, ok := s.Value("unsd_absent"); ok {
		t.Error("absent family reported present")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"unsd_x{a=\"unterminated\n",
		"unsd_x{a=unquoted} 1\n",
		"unsd_x notanumber\n",
		"no_space_or_brace\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}
