package telemetry

import (
	"errors"
	"sync"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// Probe is a bounded sliding-window histogram over a stream of ids: a ring
// buffer of the most recent window ids plus an incremental count map, with
// optional decimation so a high-rate stream costs one mutex acquisition per
// batch rather than unbounded state. It is the memory behind the live
// uniformity gauge: old draws age out, so the exported divergence tracks
// what the stream looks like now, not since boot — an attack that stops
// shows up as recovery, exactly what an alert needs.
//
// Offer is safe for concurrent use but is expected to be called off the
// per-id hot path (once per ingest batch, or at scrape time for output
// draws).
type Probe struct {
	mu     sync.Mutex
	ring   []uint64
	head   int
	size   int
	counts map[uint64]uint64
	every  uint64 // keep 1 of every `every` offered ids (>=1)
	seen   uint64 // offered ids since boot, pre-decimation
	kept   uint64 // ids admitted to the window since boot
}

// NewProbe returns a probe holding the last `window` admitted ids, keeping
// one of every `every` offered ids (every < 1 is treated as 1, i.e. no
// decimation). A zero window disables the probe: Offer becomes a no-op and
// the histogram stays empty.
func NewProbe(window, every int) *Probe {
	if every < 1 {
		every = 1
	}
	p := &Probe{every: uint64(every)}
	if window > 0 {
		p.ring = make([]uint64, window)
		p.counts = make(map[uint64]uint64, window)
	}
	return p
}

// Offer feeds a batch of ids into the window, applying decimation across
// batch boundaries. One lock acquisition per call.
func (p *Probe) Offer(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ring == nil {
		p.seen += uint64(len(ids))
		return
	}
	for _, id := range ids {
		p.seen++
		// The 1-in-every gate hashes the offer counter instead of striding
		// it: a plain `seen % every` would alias with periodic input (an id
		// cycle sharing a factor with `every` collapses the window onto a
		// subset of ids and fakes divergence). Mixing keeps the gate
		// deterministic and O(1) but aperiodic.
		if p.every > 1 && rng.Mix64(p.seen)%p.every != 0 {
			continue
		}
		p.kept++
		if p.size == len(p.ring) {
			old := p.ring[p.head]
			if c := p.counts[old]; c <= 1 {
				delete(p.counts, old)
			} else {
				p.counts[old] = c - 1
			}
		} else {
			p.size++
		}
		p.ring[p.head] = id
		p.head = (p.head + 1) % len(p.ring)
		p.counts[id]++
	}
}

// Snapshot returns the window contents as a metrics.Histogram plus the
// cumulative offered/kept counters.
func (p *Probe) Snapshot() (h *metrics.Histogram, seen, kept uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h = metrics.NewHistogram()
	for id, c := range p.counts {
		h.AddN(id, c)
	}
	return h, p.seen, p.kept
}

// Window returns the configured window size (0 when disabled).
func (p *Probe) Window() int {
	if p == nil {
		return 0
	}
	return len(p.ring)
}

// Uniformity is the live uniformity gauge: two probes, one over the input
// stream σ the daemon ingests and one over the output stream σ′ it emits,
// compared against the uniform distribution at scrape time. It exports the
// paper's evaluation — KL divergence to uniform per stream and the G_KL
// gain of Relation 6 (how much of the input's bias the sampler removed) —
// as gauges, so a targeted flood is visible as rising input divergence and
// a failing sampler as rising output divergence.
type Uniformity struct {
	In  *Probe
	Out *Probe
}

// NewUniformity returns a gauge whose two probes share a window size.
// Input decimation `inEvery` bounds the cost of high-rate ingest; the
// output probe is fed at scrape time so it never decimates.
func NewUniformity(window, inEvery int) *Uniformity {
	return &Uniformity{
		In:  NewProbe(window, inEvery),
		Out: NewProbe(window, 1),
	}
}

// Collect implements Collector. The support size n for the uniform
// reference is the number of distinct ids observed across both windows —
// the live estimate of the population the sampler is drawing from. The
// gain sample is omitted while the input window is itself uniform
// (metrics.ErrZeroDivergence: nothing to correct, gain undefined) and
// divergences are omitted while a window is empty.
func (u *Uniformity) Collect() []Family {
	hin, inSeen, inKept := u.In.Snapshot()
	hout, outSeen, outKept := u.Out.Snapshot()

	n := hin.Distinct()
	if d := hout.Distinct(); d > n {
		n = d
	}

	window := Family{
		Name: "unsd_uniformity_window_ids",
		Help: "Ids currently held in the uniformity gauge's sliding window, per stream.",
		Type: Gauge,
		Samples: []Sample{
			{Labels: []Label{{Name: "stream", Value: "input"}}, Value: float64(hin.Total())},
			{Labels: []Label{{Name: "stream", Value: "output"}}, Value: float64(hout.Total())},
		},
	}
	distinct := Family{
		Name: "unsd_uniformity_distinct_ids",
		Help: "Distinct ids in the uniformity gauge's sliding window, per stream.",
		Type: Gauge,
		Samples: []Sample{
			{Labels: []Label{{Name: "stream", Value: "input"}}, Value: float64(hin.Distinct())},
			{Labels: []Label{{Name: "stream", Value: "output"}}, Value: float64(hout.Distinct())},
		},
	}
	offered := Family{
		Name: "unsd_uniformity_offered_ids_total",
		Help: "Ids offered to the uniformity gauge since boot, per stream (pre-decimation).",
		Type: Counter,
		Samples: []Sample{
			{Labels: []Label{{Name: "stream", Value: "input"}}, Value: float64(inSeen)},
			{Labels: []Label{{Name: "stream", Value: "output"}}, Value: float64(outSeen)},
		},
	}
	kept := Family{
		Name: "unsd_uniformity_kept_ids_total",
		Help: "Ids admitted to the uniformity gauge's window since boot, per stream.",
		Type: Counter,
		Samples: []Sample{
			{Labels: []Label{{Name: "stream", Value: "input"}}, Value: float64(inKept)},
			{Labels: []Label{{Name: "stream", Value: "output"}}, Value: float64(outKept)},
		},
	}
	fams := []Family{window, distinct, offered, kept}

	inKL := Family{
		Name: "unsd_uniformity_input_kl",
		Help: "KL divergence of the input window from uniform; rises under a targeted flood.",
		Type: Gauge,
	}
	outKL := Family{
		Name: "unsd_uniformity_output_kl",
		Help: "KL divergence of the sigma-prime output window from uniform; the live SLO.",
		Type: Gauge,
	}
	gain := Family{
		Name: "unsd_uniformity_gain",
		Help: "G_KL sampler gain (paper Relation 6): fraction of input bias removed; absent while the input is uniform.",
		Type: Gauge,
	}
	if n > 0 {
		if v, err := hin.KLvsUniform(n); err == nil {
			inKL.Samples = []Sample{{Value: v}}
		}
		if v, err := hout.KLvsUniform(n); err == nil {
			outKL.Samples = []Sample{{Value: v}}
		}
		if hin.Total() > 0 && hout.Total() > 0 {
			if g, err := metrics.Gain(hin, hout, n); err == nil {
				gain.Samples = []Sample{{Value: g}}
			} else if !errors.Is(err, metrics.ErrZeroDivergence) {
				// Any other Gain error is a zero-total histogram, excluded above.
				gain.Samples = nil
			}
		}
	}
	return append(fams, inKL, outKL, gain)
}
