package telemetry

import (
	"strconv"

	"nodesampling/internal/autoscale"
	"nodesampling/internal/shard"
)

// PoolCollector exports the shard pool's ingest and fan-out accounting: the
// pool-wide LoadSignals (cumulative across retired shards, so every counter
// stays monotone across a live Resize), the per-shard breakdown labelled by
// shard index, and the per-subscriber σ′ delivery accounting labelled by
// subscription id. Everything is read at scrape time from the same
// snapshot surfaces /stats uses; the ingest hot path is untouched.
func PoolCollector(p *shard.Pool) Collector {
	return CollectorFunc(func() []Family {
		sig := p.LoadSignals()
		st := p.Stats()

		fams := []Family{
			C("unsd_pool_processed_ids_total",
				"Ids processed by the pool's samplers, including shards retired by Resize.",
				float64(sig.Processed)),
			C("unsd_pool_dropped_ids_total",
				"Ids dropped at full shard queues, including shards retired by Resize.",
				float64(sig.Dropped)),
			C("unsd_pool_emit_dropped_ids_total",
				"Sigma-prime draws lost because the emitter lagged the shards.",
				float64(sig.EmitDropped)),
			G("unsd_pool_queue_depth_batches",
				"Batches waiting across all shard queues.",
				float64(sig.QueueLen)),
			G("unsd_pool_queue_capacity_batches",
				"Total shard queue capacity in batches (shards x buffer).",
				float64(sig.QueueCap)),
			G("unsd_pool_queue_max_depth_batches",
				"Deepest single shard queue, in batches.",
				float64(sig.MaxQueueLen)),
			G("unsd_pool_shards",
				"Current shard count of the elastic plane.",
				float64(sig.Shards)),
			C("unsd_pool_map_epoch",
				"Shard map epoch; increments on every completed Resize.",
				float64(sig.Epoch)),
			G("unsd_pool_subscribers",
				"Live sigma-prime stream subscriptions.",
				float64(len(st.Subscribers))),
		}

		shardFams := []Family{
			{Name: "unsd_shard_processed_ids_total", Help: "Ids processed by this shard's sampler.", Type: Counter},
			{Name: "unsd_shard_dropped_ids_total", Help: "Ids dropped at this shard's full queue.", Type: Counter},
			{Name: "unsd_shard_halvings_total", Help: "Decay halvings applied to this shard's sketch.", Type: Counter},
			{Name: "unsd_shard_queue_depth_batches", Help: "Batches waiting in this shard's queue.", Type: Gauge},
			{Name: "unsd_shard_memory_ids", Help: "Current sampler memory size |Gamma| of this shard.", Type: Gauge},
		}
		for i, s := range st.Shards {
			lbl := []Label{{Name: "shard", Value: strconv.Itoa(i)}}
			vals := []float64{
				float64(s.Processed), float64(s.Dropped), float64(s.Halvings),
				float64(s.QueueDepth), float64(s.MemorySize),
			}
			for j := range shardFams {
				shardFams[j].Samples = append(shardFams[j].Samples, Sample{Labels: lbl, Value: vals[j]})
			}
		}
		fams = append(fams, shardFams...)

		subFams := []Family{
			{Name: "unsd_subscriber_offered_ids_total", Help: "Sigma-prime draws offered to this subscription.", Type: Counter},
			{Name: "unsd_subscriber_delivered_ids_total", Help: "Sigma-prime draws delivered to this subscription.", Type: Counter},
			{Name: "unsd_subscriber_dropped_ids_total", Help: "Sigma-prime draws dropped on this subscription's full buffer.", Type: Counter},
			{Name: "unsd_subscriber_filtered_ids_total", Help: "Sigma-prime draws skipped by this subscription's decimation.", Type: Counter},
			{Name: "unsd_subscriber_queue_depth_ids", Help: "Draws buffered for this subscription.", Type: Gauge},
			{Name: "unsd_subscriber_queue_capacity_ids", Help: "Buffer capacity of this subscription.", Type: Gauge},
		}
		for _, s := range st.Subscribers {
			lbl := []Label{{Name: "subscriber", Value: strconv.FormatUint(s.ID, 10)}}
			vals := []float64{
				float64(s.Offered), float64(s.Delivered), float64(s.Dropped),
				float64(s.Filtered), float64(s.Depth), float64(s.Capacity),
			}
			for j := range subFams {
				subFams[j].Samples = append(subFams[j].Samples, Sample{Labels: lbl, Value: vals[j]})
			}
		}
		return append(fams, subFams...)
	})
}

// AutoscaleCollector exports the controller's live state: the smoothed
// pressure the decisions run on, tick and resize counts, the configured
// band, and how much of the current cooldown remains. Nil-safe — a daemon
// running without an autoscaler simply exports nothing from it.
func AutoscaleCollector(c *autoscale.Controller) Collector {
	return CollectorFunc(func() []Family {
		if c == nil {
			return nil
		}
		st := c.State()
		return []Family{
			G("unsd_autoscale_enabled",
				"Whether the autoscaler is armed (1) or observing only (0).",
				B(st.Enabled)),
			G("unsd_autoscale_load_ewma",
				"Smoothed load pressure in [0,1] driving resize decisions.",
				st.EWMA),
			G("unsd_autoscale_last_pressure",
				"Raw load pressure measured on the most recent tick.",
				st.Last.Pressure),
			C("unsd_autoscale_ticks_total",
				"Control loop ticks since the controller started.",
				float64(st.Ticks)),
			C("unsd_autoscale_resizes_total",
				"Completed grow/shrink resizes issued by the controller.",
				float64(st.Resizes)),
			G("unsd_autoscale_cooldown_remaining_seconds",
				"Seconds left in the post-resize cooldown; zero when free to act.",
				st.CooldownRemaining.Seconds()),
			G("unsd_autoscale_min_shards",
				"Lower bound of the controller's shard range.",
				float64(st.Min)),
			G("unsd_autoscale_max_shards",
				"Upper bound of the controller's shard range.",
				float64(st.Max)),
		}
	})
}
