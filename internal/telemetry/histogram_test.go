package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramObserve pins the instrument's bucketing semantics: values
// land in the first bucket whose bound is >= the value (le is inclusive),
// overflow lands only in +Inf, and sum/count track exactly.
func TestHistogramObserve(t *testing.T) {
	h := NewHistogramMetric("unsd_test_seconds", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCum := []uint64{2, 3, 4} // le=0.01 takes 0.005 and the boundary 0.01
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v count %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.565) > 1e-9 {
		t.Errorf("sum %v, want 5.565", s.Sum)
	}
	if h.Count() != 5 {
		t.Errorf("Count() %d, want 5", h.Count())
	}
}

// TestHistogramExpositionFormat is the satellite's format-validity pin on
// the wire text: le buckets cumulative and monotone, the +Inf bucket
// equal to _count, and _sum consistent with the observations.
func TestHistogramExpositionFormat(t *testing.T) {
	h := NewHistogramMetric("unsd_test_duration_seconds", "Test latency.", DurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	h.Observe(1e6) // overflow: only +Inf takes it
	r := NewRegistry()
	r.Register(h)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE unsd_test_duration_seconds histogram") {
		t.Fatal("no histogram TYPE line")
	}
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parsing own exposition: %v", err)
	}
	ph := s.Histogram("unsd_test_duration_seconds")
	if ph == nil {
		t.Fatal("histogram family did not round-trip")
	}
	if len(ph.Buckets) != len(DurationBuckets)+1 {
		t.Fatalf("%d buckets parsed, want %d (+Inf included)", len(ph.Buckets), len(DurationBuckets)+1)
	}
	prevBound := math.Inf(-1)
	prevCount := -1.0
	for _, b := range ph.Buckets {
		if b.UpperBound <= prevBound {
			t.Fatalf("le bounds not increasing at %v", b.UpperBound)
		}
		if b.Count < prevCount {
			t.Fatalf("cumulative counts decrease at le=%v: %v < %v", b.UpperBound, b.Count, prevCount)
		}
		prevBound, prevCount = b.UpperBound, b.Count
	}
	last := ph.Buckets[len(ph.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Fatalf("last bucket bound %v, want +Inf", last.UpperBound)
	}
	if last.Count != ph.Count {
		t.Fatalf("+Inf bucket %v != _count %v", last.Count, ph.Count)
	}
	if ph.Count != 1001 {
		t.Fatalf("_count %v, want 1001", ph.Count)
	}
	wantSum := 1e6
	for i := 0; i < 1000; i++ {
		wantSum += float64(i) * 1e-5
	}
	if math.Abs(ph.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("_sum %v, want %v", ph.Sum, wantSum)
	}
}

// TestHistogramParseRoundTrip writes a labelled multi-histogram family by
// hand and checks Parse rebuilds each labelled histogram exactly.
func TestHistogramParseRoundTrip(t *testing.T) {
	fam := Family{
		Name: "unsd_rt_seconds", Help: "rt", Type: Histogram,
		Histograms: []HistogramSample{
			{Labels: []Label{{Name: "surface", Value: "http"}},
				Buckets: []Bucket{{0.1, 3}, {1, 7}}, Count: 9, Sum: 4.25},
			{Labels: []Label{{Name: "surface", Value: "stream"}},
				Buckets: []Bucket{{0.1, 1}, {1, 1}}, Count: 2, Sum: 3.5},
		},
	}
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family { return []Family{fam} }))
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Family("unsd_rt_seconds")
	if f == nil || f.Type != "histogram" || f.Help != "rt" {
		t.Fatalf("family metadata did not round-trip: %+v", f)
	}
	if len(f.Samples) != 0 {
		t.Fatalf("histogram series leaked into plain samples: %+v", f.Samples)
	}
	for _, want := range fam.Histograms {
		got := s.Histogram("unsd_rt_seconds", "surface", want.Labels[0].Value)
		if got == nil {
			t.Fatalf("histogram surface=%s missing", want.Labels[0].Value)
		}
		if got.Count != float64(want.Count) || got.Sum != want.Sum {
			t.Fatalf("surface=%s count/sum %v/%v, want %d/%v",
				want.Labels[0].Value, got.Count, got.Sum, want.Count, want.Sum)
		}
		if len(got.Buckets) != len(want.Buckets)+1 {
			t.Fatalf("surface=%s has %d buckets, want %d", want.Labels[0].Value, len(got.Buckets), len(want.Buckets)+1)
		}
		for i, wb := range want.Buckets {
			if got.Buckets[i].UpperBound != wb.UpperBound || got.Buckets[i].Count != float64(wb.Count) {
				t.Fatalf("surface=%s bucket %d = %+v, want %+v", want.Labels[0].Value, i, got.Buckets[i], wb)
			}
		}
	}
}

// TestHistogramConcurrentObserve: concurrent observers under -race, with
// the scrape invariant (+Inf == _count, monotone cumulative buckets)
// checked on a snapshot taken mid-flight and after.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogramMetric("unsd_conc_seconds", "h", DurationBuckets)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-7)
			}
		}(g)
	}
	check := func(s HistogramSample) {
		var prev uint64
		for _, b := range s.Buckets {
			if b.Count < prev {
				t.Errorf("mid-flight cumulative decrease at le=%v", b.UpperBound)
			}
			prev = b.Count
		}
		if s.Count < prev {
			t.Errorf("mid-flight count %d below last bucket %d", s.Count, prev)
		}
	}
	for i := 0; i < 100; i++ {
		check(h.snapshot())
	}
	wg.Wait()
	final := h.snapshot()
	check(final)
	if final.Count != goroutines*perG {
		t.Fatalf("final count %d, want %d", final.Count, goroutines*perG)
	}
}

// TestLatencyBundle: the bundle exports exactly the advertised families,
// every one histogram-typed, and LatencyFamilyNames matches.
func TestLatencyBundle(t *testing.T) {
	l := NewLatency()
	l.SnapshotWrite.Observe(0.02)
	l.Resize.Observe(0.001)
	l.Sample.Observe(5e-6)
	l.IngestBatch.Observe(2e-5)
	l.EmitLag.Observe(1e-4)
	r := NewRegistry()
	r.Register(l)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	names := LatencyFamilyNames()
	if len(names) != 5 {
		t.Fatalf("LatencyFamilyNames lists %d families, want 5", len(names))
	}
	for _, name := range names {
		f := s.Family(name)
		if f == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.Type != "histogram" {
			t.Errorf("family %s type %q, want histogram", name, f.Type)
		}
		h := s.Histogram(name)
		if h == nil || h.Count != 1 {
			t.Errorf("family %s count %+v, want one observation", name, h)
		}
	}
}
