package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DurationBuckets is the plane's standard latency ladder: a 1-2.5-5
// decade sweep from one microsecond to ten seconds. It covers everything
// the daemon times, from a per-wire-batch ingest (microseconds) to a
// sealed snapshot fsync or a resize hand-off under load (milliseconds to
// seconds), with the +Inf overflow catching pathology.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// HistogramMetric is a fixed-bucket histogram instrument. Observe is
// wait-free apart from the float-sum CAS loop: one atomic add on the
// owning bucket, so it is safe on any path the daemon times, including
// per-wire-batch ingest. It implements Collector, exporting itself as a
// single histogram-typed family.
type HistogramMetric struct {
	name, help string
	bounds     []float64       // finite upper bounds, strictly increasing
	buckets    []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits    atomic.Uint64   // float64 bits of the running sum
}

// NewHistogramMetric builds a histogram over the given finite upper
// bounds (a private sorted copy is kept; the +Inf bucket is implicit).
// It panics on an empty or duplicated bound list — instrument
// construction is programmer territory.
func NewHistogramMetric(name, help string, bounds []float64) *HistogramMetric {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram " + name + " has a non-finite bound")
		}
		if i > 0 && bs[i-1] == b {
			panic("telemetry: histogram " + name + " has duplicate bounds")
		}
	}
	return &HistogramMetric{
		name:    name,
		help:    help,
		bounds:  bs,
		buckets: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value.
func (h *HistogramMetric) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *HistogramMetric) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations so far.
func (h *HistogramMetric) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Name returns the family name the instrument exports under.
func (h *HistogramMetric) Name() string { return h.name }

// snapshot reads the per-bucket counts once and derives the cumulative
// view from that single pass, so the exported +Inf bucket always equals
// _count even while Observe races the scrape.
func (h *HistogramMetric) snapshot() HistogramSample {
	s := HistogramSample{Buckets: make([]Bucket, len(h.bounds))}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		s.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	s.Count = cum + h.buckets[len(h.bounds)].Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Collect implements Collector.
func (h *HistogramMetric) Collect() []Family {
	return []Family{{
		Name:       h.name,
		Help:       h.help,
		Type:       Histogram,
		Histograms: []HistogramSample{h.snapshot()},
	}}
}

// The daemon's latency plane: the five histogram families ISSUE 7 names,
// defined here (not in cmd/unsd) so tooling like cmd/unsbench can record
// which families a build exports without importing a main package.

// latencyFamilies pins name and help text for every daemon latency
// histogram in one place.
var latencyFamilies = []struct{ name, help string }{
	{"unsd_snapshot_write_duration_seconds", "Wall time of one durable snapshot write (marshal, seal, fsync, rename)."},
	{"unsd_resize_duration_seconds", "Wall time of one live shard-plane resize hand-off (quiesce, re-partition, sketch merge)."},
	{"unsd_sample_duration_seconds", "Server-side latency of one Sample/SampleN evaluation, any surface (HTTP, framed stream)."},
	{"unsd_ingest_batch_duration_seconds", "Server-side latency of ingesting one wire batch into the shard plane, any surface."},
	{"unsd_emit_delivery_lag_seconds", "Lag between a shard worker emitting a sigma-prime draw batch and its fan-out to subscriber rings."},
}

// Latency bundles the daemon's latency histograms. One instance is wired
// through the daemon (snapshot loop, resize gate, sample handlers, wire
// ingest, shard emit loop) and registered as a single Collector.
type Latency struct {
	SnapshotWrite *HistogramMetric
	Resize        *HistogramMetric
	Sample        *HistogramMetric
	IngestBatch   *HistogramMetric
	EmitLag       *HistogramMetric
}

// NewLatency returns the bundle with every instrument on the standard
// duration ladder.
func NewLatency() *Latency {
	l := &Latency{}
	for i, h := range []**HistogramMetric{
		&l.SnapshotWrite, &l.Resize, &l.Sample, &l.IngestBatch, &l.EmitLag,
	} {
		*h = NewHistogramMetric(latencyFamilies[i].name, latencyFamilies[i].help, DurationBuckets)
	}
	return l
}

// Collect implements Collector: the five families, in declaration order.
func (l *Latency) Collect() []Family {
	var fams []Family
	for _, h := range []*HistogramMetric{l.SnapshotWrite, l.Resize, l.Sample, l.IngestBatch, l.EmitLag} {
		fams = append(fams, h.Collect()...)
	}
	return fams
}

// LatencyFamilyNames lists the histogram families a daemon build exports,
// for perf-artifact provenance.
func LatencyFamilyNames() []string {
	names := make([]string, len(latencyFamilies))
	for i, f := range latencyFamilies {
		names[i] = f.name
	}
	return names
}
