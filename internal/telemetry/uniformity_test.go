package telemetry

import (
	"strings"
	"testing"
)

func collectGauge(t *testing.T, u *Uniformity, name string) (float64, bool) {
	t.Helper()
	for _, f := range u.Collect() {
		if f.Name != name {
			continue
		}
		if len(f.Samples) == 0 {
			return 0, false
		}
		if len(f.Samples) != 1 {
			t.Fatalf("%s: want at most 1 sample, got %d", name, len(f.Samples))
		}
		return f.Samples[0].Value, true
	}
	t.Fatalf("family %s not collected", name)
	return 0, false
}

func TestProbeSlidingWindow(t *testing.T) {
	p := NewProbe(4, 1)
	p.Offer([]uint64{1, 2, 3, 4})
	h, seen, kept := p.Snapshot()
	if seen != 4 || kept != 4 {
		t.Fatalf("seen=%d kept=%d, want 4/4", seen, kept)
	}
	if h.Total() != 4 || h.Distinct() != 4 {
		t.Fatalf("total=%d distinct=%d, want 4/4", h.Total(), h.Distinct())
	}
	// Two more ids evict the two oldest (1 and 2).
	p.Offer([]uint64{5, 5})
	h, _, _ = p.Snapshot()
	if h.Total() != 4 {
		t.Fatalf("total=%d after eviction, want 4", h.Total())
	}
	if h.Count(1) != 0 || h.Count(2) != 0 {
		t.Fatalf("oldest ids not evicted: count(1)=%d count(2)=%d", h.Count(1), h.Count(2))
	}
	if h.Count(5) != 2 || h.Count(3) != 1 || h.Count(4) != 1 {
		t.Fatalf("window contents wrong: 5=%d 3=%d 4=%d", h.Count(5), h.Count(3), h.Count(4))
	}
}

func TestProbeDecimation(t *testing.T) {
	const total = 4000
	p := NewProbe(total, 4)
	ids := make([]uint64, total)
	for i := range ids {
		ids[i] = uint64(i)
	}
	// Split across batches: decimation must carry over the boundary.
	p.Offer(ids[:7])
	p.Offer(ids[7:])
	_, seen, kept := p.Snapshot()
	if seen != total {
		t.Fatalf("seen=%d, want %d", seen, total)
	}
	// The hashed 1-in-4 gate admits ~total/4; the exact count is
	// deterministic but not a round quarter.
	if kept < total/5 || kept > total/3 {
		t.Fatalf("kept=%d, want roughly %d (1 of every 4)", kept, total/4)
	}
	// Aliasing guard: a periodic id cycle sharing a factor with the
	// decimation interval must still populate (nearly) all distinct ids.
	q := NewProbe(512, 8)
	cyc := make([]uint64, 512*8)
	for i := range cyc {
		cyc[i] = uint64(i % 64)
	}
	q.Offer(cyc)
	h, _, _ := q.Snapshot()
	if h.Distinct() < 60 {
		t.Fatalf("periodic input collapsed under decimation: %d distinct of 64", h.Distinct())
	}
}

func TestProbeDisabled(t *testing.T) {
	p := NewProbe(0, 1)
	p.Offer([]uint64{1, 2, 3})
	h, seen, kept := p.Snapshot()
	if h.Total() != 0 || kept != 0 {
		t.Fatalf("disabled probe admitted ids: total=%d kept=%d", h.Total(), kept)
	}
	if seen != 3 {
		t.Fatalf("disabled probe lost the offered count: seen=%d", seen)
	}
}

// TestUniformityFloodDegradesAndRecovers drives the gauge through the
// acceptance scenario in miniature: a uniform baseline, then a targeted
// flood concentrated on one id, then uniform traffic again. Input KL must
// rise under the flood and fall back once the window slides past it.
func TestUniformityFloodDegradesAndRecovers(t *testing.T) {
	const window = 512
	u := NewUniformity(window, 1)

	uniform := make([]uint64, window)
	for i := range uniform {
		uniform[i] = uint64(i % 64)
	}
	u.In.Offer(uniform)
	u.Out.Offer(uniform)

	baseline, ok := collectGauge(t, u, "unsd_uniformity_input_kl")
	if !ok {
		t.Fatal("no baseline input KL")
	}
	if baseline > 1e-9 {
		t.Fatalf("uniform baseline has KL %v, want ~0", baseline)
	}

	// Targeted flood: 80% of the window becomes a single id.
	flood := make([]uint64, window*8/10)
	for i := range flood {
		flood[i] = 7
	}
	u.In.Offer(flood)
	flooded, ok := collectGauge(t, u, "unsd_uniformity_input_kl")
	if !ok {
		t.Fatal("no flooded input KL")
	}
	if flooded <= baseline+0.5 {
		t.Fatalf("flood did not degrade the gauge: baseline %v, flooded %v", baseline, flooded)
	}

	// Gain must show the output (still uniform) beating the input.
	gain, ok := collectGauge(t, u, "unsd_uniformity_gain")
	if !ok {
		t.Fatal("no gain while input is biased")
	}
	if gain < 0.5 {
		t.Fatalf("gain %v under flood, want close to 1 (output stayed uniform)", gain)
	}

	// Recovery: a full window of uniform traffic slides the flood out.
	u.In.Offer(uniform)
	recovered, ok := collectGauge(t, u, "unsd_uniformity_input_kl")
	if !ok {
		t.Fatal("no recovered input KL")
	}
	if recovered > 1e-9 {
		t.Fatalf("gauge did not recover after flood: KL %v", recovered)
	}
}

func TestUniformityEmptyWindows(t *testing.T) {
	u := NewUniformity(64, 1)
	if _, ok := collectGauge(t, u, "unsd_uniformity_input_kl"); ok {
		t.Error("empty window exported an input KL sample")
	}
	if _, ok := collectGauge(t, u, "unsd_uniformity_gain"); ok {
		t.Error("empty window exported a gain sample")
	}
	// Metadata families must still be present and valid for the registry.
	r := NewRegistry()
	r.Register(u)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo over empty gauge: %v", err)
	}
}
