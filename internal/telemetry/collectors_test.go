package telemetry

import (
	"strings"
	"testing"
	"time"

	"nodesampling/internal/autoscale"
	"nodesampling/internal/cms"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
)

func newTestPool(t *testing.T, shards int) *shard.Pool {
	t.Helper()
	p, err := shard.New(shard.Config{
		Shards:   shards,
		Buffer:   16,
		Block:    true,
		Seed:     1,
		Capacity: 10,
		NewSketch: func(r *rng.Xoshiro) (*cms.Sketch, error) {
			return cms.NewWithDimensions(10, 5, r)
		},
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolCollectorReconcilesWithStats(t *testing.T) {
	p := newTestPool(t, 4)
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i % 50)
	}
	if err := p.PushBatch(ids); err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sub, err := p.Subscribe(256)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer p.Unsubscribe(sub)

	r := NewRegistry()
	r.Register(PoolCollector(p))
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	s, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	sig := p.LoadSignals()
	if v, ok := s.Value("unsd_pool_processed_ids_total"); !ok || v != float64(sig.Processed) {
		t.Errorf("processed: exported %v ok=%v, LoadSignals %d", v, ok, sig.Processed)
	}
	if v, ok := s.Value("unsd_pool_shards"); !ok || v != 4 {
		t.Errorf("shards: exported %v ok=%v, want 4", v, ok)
	}
	// Per-shard processed must sum to (at least) the pool total minus
	// retired shards; with no resize yet they are equal.
	if sum, ok := s.Sum("unsd_shard_processed_ids_total"); !ok || sum != float64(sig.Processed) {
		t.Errorf("per-shard processed sum %v ok=%v, want %d", sum, ok, sig.Processed)
	}
	if f := s.Family("unsd_shard_processed_ids_total"); f == nil || len(f.Samples) != 4 {
		t.Errorf("want 4 per-shard samples, got %+v", f)
	}
	if f := s.Family("unsd_subscriber_offered_ids_total"); f == nil || len(f.Samples) != 1 {
		t.Errorf("want 1 per-subscriber sample, got %+v", f)
	}
}

func TestPoolCollectorMonotoneAcrossResize(t *testing.T) {
	p := newTestPool(t, 2)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint64(i)
	}
	read := func() map[string]float64 {
		var sb strings.Builder
		r := NewRegistry()
		r.Register(PoolCollector(p))
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		s, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		out := make(map[string]float64)
		for _, name := range []string{
			"unsd_pool_processed_ids_total",
			"unsd_pool_dropped_ids_total",
			"unsd_pool_emit_dropped_ids_total",
			"unsd_pool_map_epoch",
		} {
			v, ok := s.Value(name)
			if !ok {
				t.Fatalf("family %s missing", name)
			}
			out[name] = v
		}
		return out
	}

	if err := p.PushBatch(ids); err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	before := read()
	for _, n := range []int{5, 3, 8} {
		if err := p.Resize(n); err != nil {
			t.Fatalf("Resize(%d): %v", n, err)
		}
		if err := p.PushBatch(ids); err != nil {
			t.Fatalf("PushBatch: %v", err)
		}
		if err := p.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		after := read()
		for name, prev := range before {
			if after[name] < prev {
				t.Errorf("resize to %d shards: %s went backwards (%v -> %v)", n, name, prev, after[name])
			}
		}
		before = after
	}
}

type staticTarget struct{ sig shard.LoadSignals }

func (s staticTarget) LoadSignals() shard.LoadSignals { return s.sig }
func (s staticTarget) Resize(int) error               { return nil }

func TestAutoscaleCollector(t *testing.T) {
	tgt := staticTarget{sig: shard.LoadSignals{
		Shards: 8, QueueCap: 512, QueueLen: 96, Processed: 1 << 20,
	}}
	c, err := autoscale.New(tgt, autoscale.Config{
		Min: 1, Max: 64, Enabled: true, Interval: time.Second,
	})
	if err != nil {
		t.Fatalf("autoscale.New: %v", err)
	}

	r := NewRegistry()
	r.Register(AutoscaleCollector(c))
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	s, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := s.Value("unsd_autoscale_enabled"); !ok || v != 1 {
		t.Errorf("enabled: got %v ok=%v", v, ok)
	}
	if v, ok := s.Value("unsd_autoscale_min_shards"); !ok || v != 1 {
		t.Errorf("min: got %v ok=%v", v, ok)
	}
	if v, ok := s.Value("unsd_autoscale_max_shards"); !ok || v != 64 {
		t.Errorf("max: got %v ok=%v", v, ok)
	}

	// Nil controller must collect nothing rather than panic.
	if fams := AutoscaleCollector(nil).Collect(); fams != nil {
		t.Errorf("nil controller collected %d families", len(fams))
	}
}
