package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedFamily is one metric family as read back from an exposition.
// Histogram-typed families fold their name_bucket / name_sum / name_count
// series back into Histograms, grouped by label set.
type ParsedFamily struct {
	Name       string
	Help       string
	Type       string
	Samples    []Sample
	Histograms []ParsedHistogram
}

// ParsedBucket is one cumulative bucket read back from an exposition,
// including the +Inf bucket.
type ParsedBucket struct {
	UpperBound float64
	Count      float64
}

// ParsedHistogram is one histogram of a parsed histogram family: the
// label set (without le), the cumulative buckets sorted by bound, and the
// _sum/_count series.
type ParsedHistogram struct {
	Labels  []Label
	Buckets []ParsedBucket
	Sum     float64
	Count   float64
}

// Scrape is a parsed exposition: the families in document order, indexed by
// name. It is what the unsload generator and the exposition tests work on.
type Scrape struct {
	Families []ParsedFamily
	byName   map[string]*ParsedFamily
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *ParsedFamily {
	return s.byName[name]
}

// Value returns the value of the sample of the named family whose labels
// exactly match the given name=value pairs (given as alternating name,
// value strings). ok is false when the family or the labelled sample is
// absent.
func (s *Scrape) Value(name string, labelPairs ...string) (v float64, ok bool) {
	if len(labelPairs)%2 != 0 {
		panic("telemetry: Value label pairs must alternate name, value")
	}
	f := s.byName[name]
	if f == nil {
		return 0, false
	}
	want := make(map[string]string, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		want[labelPairs[i]] = labelPairs[i+1]
	}
	for _, smp := range f.Samples {
		if len(smp.Labels) != len(want) {
			continue
		}
		match := true
		for _, l := range smp.Labels {
			if want[l.Name] != l.Value {
				match = false
				break
			}
		}
		if match {
			return smp.Value, true
		}
	}
	return 0, false
}

// Histogram returns the histogram of the named family whose labels
// exactly match the given name=value pairs, or nil when the family or the
// labelled histogram is absent.
func (s *Scrape) Histogram(name string, labelPairs ...string) *ParsedHistogram {
	if len(labelPairs)%2 != 0 {
		panic("telemetry: Histogram label pairs must alternate name, value")
	}
	f := s.byName[name]
	if f == nil {
		return nil
	}
	want := make(map[string]string, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		want[labelPairs[i]] = labelPairs[i+1]
	}
	for i := range f.Histograms {
		h := &f.Histograms[i]
		if len(h.Labels) != len(want) {
			continue
		}
		match := true
		for _, l := range h.Labels {
			if want[l.Name] != l.Value {
				match = false
				break
			}
		}
		if match {
			return h
		}
	}
	return nil
}

// Sum returns the sum over all samples of the named family (0 when the
// family is absent or empty) and whether the family was present.
func (s *Scrape) Sum(name string) (float64, bool) {
	f := s.byName[name]
	if f == nil {
		return 0, false
	}
	var sum float64
	for _, smp := range f.Samples {
		sum += smp.Value
	}
	return sum, true
}

// Parse reads a Prometheus text-format (v0.0.4) exposition as written by
// this package: # HELP and # TYPE comment lines followed by sample lines.
// Unknown comment lines are skipped; a sample line for a family with no
// preceding metadata still parses (its family just has empty Help/Type).
// Series of a family whose TYPE line declared histogram are folded back
// into that family's Histograms.
func Parse(r io.Reader) (*Scrape, error) {
	s := &Scrape{byName: make(map[string]*ParsedFamily)}
	family := func(name string) *ParsedFamily {
		if f := s.byName[name]; f != nil {
			return f
		}
		s.Families = append(s.Families, ParsedFamily{Name: name})
		f := &s.Families[len(s.Families)-1]
		// Appending may relocate the backing array; reindex every family.
		s.byName = make(map[string]*ParsedFamily, len(s.Families))
		for i := range s.Families {
			s.byName[s.Families[i].Name] = &s.Families[i]
		}
		return f
	}
	// Per histogram family, the index into Histograms for each label key.
	histIndex := make(map[string]map[string]int)
	histogram := func(base string, labels []Label) *ParsedHistogram {
		f := family(base)
		key := labelKey(labels)
		idx, ok := histIndex[base]
		if !ok {
			idx = make(map[string]int)
			histIndex[base] = idx
		}
		i, ok := idx[key]
		if !ok {
			i = len(f.Histograms)
			f.Histograms = append(f.Histograms, ParsedHistogram{Labels: labels})
			idx[key] = i
		}
		return &f.Histograms[i]
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				help := ""
				if len(fields) == 4 {
					help = unescapeHelp(fields[3])
				}
				family(fields[2]).Help = help
			case "TYPE":
				if len(fields) >= 4 {
					family(fields[2]).Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		if base, suffix, ok := histogramSeries(s, name); ok {
			switch suffix {
			case "_bucket":
				rest, le, found := splitLE(labels)
				if !found {
					return nil, fmt.Errorf("telemetry: line %d: histogram bucket %q has no le label", lineNo, name)
				}
				bound, err := parseValue(le)
				if err != nil {
					return nil, fmt.Errorf("telemetry: line %d: bad le %q on %q", lineNo, le, name)
				}
				h := histogram(base, rest)
				h.Buckets = append(h.Buckets, ParsedBucket{UpperBound: bound, Count: value})
			case "_sum":
				histogram(base, labels).Sum = value
			case "_count":
				histogram(base, labels).Count = value
			}
			continue
		}
		f := family(name)
		f.Samples = append(f.Samples, Sample{Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading exposition: %w", err)
	}
	for i := range s.Families {
		for j := range s.Families[i].Histograms {
			h := &s.Families[i].Histograms[j]
			sort.Slice(h.Buckets, func(a, b int) bool {
				return h.Buckets[a].UpperBound < h.Buckets[b].UpperBound
			})
		}
	}
	return s, nil
}

// histogramSeries reports whether a sample name is a series of a family
// whose TYPE line declared histogram, returning the base family name and
// the matched suffix.
func histogramSeries(s *Scrape, name string) (base, suffix string, ok bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		b, found := strings.CutSuffix(name, suf)
		if !found {
			continue
		}
		if f := s.byName[b]; f != nil && f.Type == string(Histogram) {
			return b, suf, true
		}
	}
	return "", "", false
}

// splitLE removes the le label from a label set, returning the remaining
// labels and the le value.
func splitLE(labels []Label) (rest []Label, le string, found bool) {
	for _, l := range labels {
		if l.Name == "le" {
			le, found = l.Value, true
			continue
		}
		rest = append(rest, l)
	}
	return rest, le, found
}

// labelKey serializes a label set into a canonical map key.
func labelKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(';')
	}
	return sb.String()
}

func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := findLabelEnd(rest)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// findLabelEnd returns the index of the closing brace of a label set that
// starts at index 0, honouring escapes inside quoted values.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var sb strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte('\\')
					sb.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if i == len(s) {
			return nil, fmt.Errorf("label %s value unterminated", name)
		}
		labels = append(labels, Label{Name: name, Value: sb.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case '\\':
				sb.WriteByte('\\')
			default:
				sb.WriteByte('\\')
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// SortedNames returns the parsed family names in lexical order — handy for
// stable test diagnostics.
func (s *Scrape) SortedNames() []string {
	names := make([]string, 0, len(s.Families))
	for i := range s.Families {
		names = append(names, s.Families[i].Name)
	}
	sort.Strings(names)
	return names
}
