// Package stream generates the node-identifier streams that feed the
// sampling service. Node identifiers are modelled as dense indices [0, n)
// into the system population N; every synthetic workload of the paper's
// evaluation (Zipf peaks, truncated Poisson, uniform background, mixtures of
// a legitimate stream with adversarial injections) is a categorical
// distribution over that population, sampled i.i.d.
//
// A Categorical carries its own probability mass function, which is exactly
// the knowledge the omniscient strategy of Algorithm 1 assumes (the true
// occurrence probabilities p_j and their minimum), so the same object serves
// both as the workload generator and as the omniscient oracle.
package stream

import (
	"fmt"
	"math"

	"nodesampling/internal/rng"
)

// Source produces an unbounded stream of node identifiers.
type Source interface {
	Next() uint64
}

// Categorical is an i.i.d. stream over ids [0, n) with a fixed probability
// mass function, sampled in O(1) per element with Vose's alias method.
type Categorical struct {
	pmf     []float64
	prob    []float64 // alias-method acceptance probabilities
	alias   []int32
	r       *rng.Xoshiro
	minProb float64 // smallest non-zero mass
}

var _ Source = (*Categorical)(nil)

// NewCategorical builds a stream from an unnormalised weight vector. The
// weights must be non-negative, finite, and not all zero. The vector is
// copied and normalised.
func NewCategorical(weights []float64, r *rng.Xoshiro) (*Categorical, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stream: empty weight vector")
	}
	if r == nil {
		return nil, fmt.Errorf("stream: nil random source")
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("stream: support too large: %d", n)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stream: weight %d is invalid: %v", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stream: all weights are zero")
	}
	pmf := make([]float64, n)
	minProb := math.Inf(1)
	for i, w := range weights {
		pmf[i] = w / total
		if pmf[i] > 0 && pmf[i] < minProb {
			minProb = pmf[i]
		}
	}

	// Vose's alias method: split the scaled masses into "small" and "large"
	// stacks and pair each small cell with a large donor.
	prob := make([]float64, n)
	alias := make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range pmf {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		prob[l] = 1
		alias[l] = l
	}
	for _, s := range small { // numerical leftovers
		prob[s] = 1
		alias[s] = s
	}
	return &Categorical{pmf: pmf, prob: prob, alias: alias, r: r, minProb: minProb}, nil
}

// Next draws one id according to the distribution.
func (c *Categorical) Next() uint64 {
	i := c.r.Intn(len(c.pmf))
	if c.r.Float64() < c.prob[i] {
		return uint64(i)
	}
	return uint64(c.alias[i])
}

// Support returns n, the population size of the stream.
func (c *Categorical) Support() int { return len(c.pmf) }

// Prob returns the occurrence probability p_j of id j, the quantity the
// omniscient strategy consults on every arrival. Ids outside [0, n) have
// probability zero.
func (c *Categorical) Prob(id uint64) float64 {
	if id >= uint64(len(c.pmf)) {
		return 0
	}
	return c.pmf[id]
}

// MinProb returns min_{i: p_i>0} p_i, the numerator of the omniscient
// insertion probability a_j = min_i(p_i)/p_j.
func (c *Categorical) MinProb() float64 { return c.minProb }

// PMF returns a copy of the normalised probability mass function.
func (c *Categorical) PMF() []float64 {
	out := make([]float64, len(c.pmf))
	copy(out, c.pmf)
	return out
}

// Collect draws m consecutive ids into a slice, the finite stream σ used by
// one experiment trial.
func Collect(s Source, m int) []uint64 {
	out := make([]uint64, m)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// UniformPMF returns the uniform weight vector over n ids.
func UniformPMF(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ZipfPMF returns weights w_i ∝ 1/(i+1)^alpha over n ids, the Zipfian
// workload of Figures 7a, 8, 9 and 10a (α = 4 there) and of the real traces
// in Figure 5.
func ZipfPMF(n int, alpha float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
	}
	return w
}

// TruncatedPoissonPMF returns weights w_i ∝ e^{−λ}·λ^i/i! restricted to
// i ∈ [0, n), the workload of Figures 6, 7b and 10b (λ = n/2 there): ids
// around λ are strongly over-represented, modelling a colluding group of
// about √λ malicious identifiers.
func TruncatedPoissonPMF(n int, lambda float64) []float64 {
	w := make([]float64, n)
	// Work in log space and rebase by the maximum to avoid underflow at
	// large λ: log w_i = i·ln λ − λ − lnΓ(i+1).
	logs := make([]float64, n)
	maxLog := math.Inf(-1)
	for i := range logs {
		lg, _ := math.Lgamma(float64(i + 1))
		logs[i] = float64(i)*math.Log(lambda) - lambda - lg
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
	}
	for i := range w {
		w[i] = math.Exp(logs[i] - maxLog)
	}
	return w
}

// PeakPMF returns the peak-attack workload of Figure 7a: one id (peak)
// receives weight peakWeight while every other id receives baseWeight. With
// peakWeight = 50 000 and baseWeight = 50 this reproduces the paper's
// "50 000 occurrences of a single id, 50 of every other" stream.
func PeakPMF(n, peak int, peakWeight, baseWeight float64) ([]float64, error) {
	if peak < 0 || peak >= n {
		return nil, fmt.Errorf("stream: peak id %d outside population [0,%d)", peak, n)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = baseWeight
	}
	w[peak] = peakWeight
	return w, nil
}

// MixPMF returns the convex combination Σ coeff_i · pmf_i of weight vectors
// over the same support; it is how adversarial injections are superimposed
// on a legitimate stream while keeping the exact composite distribution
// available to the omniscient oracle. Vectors are normalised before mixing.
func MixPMF(coeffs []float64, pmfs ...[]float64) ([]float64, error) {
	if len(coeffs) != len(pmfs) || len(pmfs) == 0 {
		return nil, fmt.Errorf("stream: %d coefficients for %d pmfs", len(coeffs), len(pmfs))
	}
	n := len(pmfs[0])
	for i, p := range pmfs {
		if len(p) != n {
			return nil, fmt.Errorf("stream: pmf %d has support %d, want %d", i, len(p), n)
		}
	}
	csum := 0.0
	for i, c := range coeffs {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("stream: coefficient %d is invalid: %v", i, c)
		}
		csum += c
	}
	if csum == 0 {
		return nil, fmt.Errorf("stream: all coefficients are zero")
	}
	out := make([]float64, n)
	for i, p := range pmfs {
		t := 0.0
		for _, v := range p {
			t += v
		}
		if t == 0 {
			return nil, fmt.Errorf("stream: pmf %d sums to zero", i)
		}
		scale := coeffs[i] / (csum * t)
		for j, v := range p {
			out[j] += scale * v
		}
	}
	return out, nil
}

// SliceSource replays a recorded stream (for example a parsed trace),
// cycling when exhausted. Use Len to bound reads when cycling is unwanted.
type SliceSource struct {
	ids []uint64
	pos int
}

var _ Source = (*SliceSource)(nil)

// NewSliceSource wraps ids; the slice is copied.
func NewSliceSource(ids []uint64) (*SliceSource, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("stream: empty id slice")
	}
	cp := make([]uint64, len(ids))
	copy(cp, ids)
	return &SliceSource{ids: cp}, nil
}

// Next returns the next recorded id, cycling at the end.
func (s *SliceSource) Next() uint64 {
	v := s.ids[s.pos]
	s.pos++
	if s.pos == len(s.ids) {
		s.pos = 0
	}
	return v
}

// Len returns the number of recorded ids.
func (s *SliceSource) Len() int { return len(s.ids) }

// Interleave alternates deterministically between sources in round-robin
// order, modelling a node whose input stream multiplexes several gossip
// channels.
type Interleave struct {
	sources []Source
	next    int
}

var _ Source = (*Interleave)(nil)

// NewInterleave round-robins over the given sources.
func NewInterleave(sources ...Source) (*Interleave, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("stream: no sources to interleave")
	}
	for i, s := range sources {
		if s == nil {
			return nil, fmt.Errorf("stream: source %d is nil", i)
		}
	}
	cp := make([]Source, len(sources))
	copy(cp, sources)
	return &Interleave{sources: cp}, nil
}

// Next returns the next id from the current source and advances the rotor.
func (in *Interleave) Next() uint64 {
	v := in.sources[in.next].Next()
	in.next++
	if in.next == len(in.sources) {
		in.next = 0
	}
	return v
}
