package stream

import (
	"math"
	"testing"
	"testing/quick"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

func mustCategorical(t testing.TB, w []float64, seed uint64) *Categorical {
	t.Helper()
	c, err := NewCategorical(w, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCategoricalValidation(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name string
		w    []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{math.Inf(1), 1}},
		{"all zero", []float64{0, 0, 0}},
	}
	for _, c := range cases {
		if _, err := NewCategorical(c.w, r); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewCategorical([]float64{1}, nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

func TestCategoricalNormalisesPMF(t *testing.T) {
	c := mustCategorical(t, []float64{2, 6}, 2)
	if p := c.Prob(0); math.Abs(p-0.25) > 1e-15 {
		t.Errorf("Prob(0) = %v, want 0.25", p)
	}
	if p := c.Prob(1); math.Abs(p-0.75) > 1e-15 {
		t.Errorf("Prob(1) = %v, want 0.75", p)
	}
	if p := c.Prob(7); p != 0 {
		t.Errorf("Prob out of support = %v, want 0", p)
	}
	if c.Support() != 2 {
		t.Errorf("Support = %d", c.Support())
	}
	if mp := c.MinProb(); math.Abs(mp-0.25) > 1e-15 {
		t.Errorf("MinProb = %v, want 0.25", mp)
	}
}

func TestMinProbSkipsZeros(t *testing.T) {
	c := mustCategorical(t, []float64{0, 1, 3}, 3)
	if mp := c.MinProb(); math.Abs(mp-0.25) > 1e-15 {
		t.Errorf("MinProb = %v, want 0.25 (zero-mass ids excluded)", mp)
	}
}

func TestPMFReturnsCopy(t *testing.T) {
	c := mustCategorical(t, []float64{1, 1}, 4)
	p := c.PMF()
	p[0] = 99
	if c.Prob(0) == 99 {
		t.Fatal("PMF exposed internal state")
	}
}

// TestAliasMatchesPMF draws heavily from skewed distributions and compares
// empirical frequencies to the pmf — the core correctness property of the
// alias construction.
func TestAliasMatchesPMF(t *testing.T) {
	cases := [][]float64{
		{1, 1, 1, 1},
		{10, 1, 1, 1, 1, 1},
		{0.5, 0, 0.25, 0.25},
		ZipfPMF(50, 2),
		TruncatedPoissonPMF(100, 50),
	}
	for ci, w := range cases {
		c := mustCategorical(t, w, uint64(100+ci))
		const draws = 400000
		counts := make([]float64, c.Support())
		for i := 0; i < draws; i++ {
			counts[c.Next()]++
		}
		for i := range counts {
			want := c.Prob(uint64(i))
			got := counts[i] / draws
			tol := 5*math.Sqrt(want*(1-want)/draws) + 2e-4
			if math.Abs(got-want) > tol {
				t.Errorf("case %d id %d: empirical %v vs pmf %v (tol %v)", ci, i, got, want, tol)
			}
		}
	}
}

// TestAliasNeverEmitsZeroMass: ids with zero probability must never appear.
func TestAliasNeverEmitsZeroMass(t *testing.T) {
	c := mustCategorical(t, []float64{0, 5, 0, 5, 0}, 7)
	for i := 0; i < 100000; i++ {
		id := c.Next()
		if id == 0 || id == 2 || id == 4 {
			t.Fatalf("drew zero-mass id %d", id)
		}
	}
}

func TestPMFSumsToOneProperty(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%64) + 1
		local := rng.New(seed)
		w := make([]float64, n)
		for i := range w {
			w[i] = local.Float64() * 10
		}
		w[local.Intn(n)] = 1 // guarantee one positive weight
		c, err := NewCategorical(w, rng.New(seed^1))
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range c.PMF() {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng.NewRand(55)}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPMFShape(t *testing.T) {
	w := ZipfPMF(10, 4)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("Zipf weights not strictly decreasing at %d", i)
		}
	}
	// alpha=4: w0/w1 = 2^4.
	if math.Abs(w[0]/w[1]-16) > 1e-9 {
		t.Fatalf("Zipf ratio w0/w1 = %v, want 16", w[0]/w[1])
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	w := ZipfPMF(5, 0)
	for _, v := range w {
		if v != 1 {
			t.Fatalf("alpha=0 weights = %v, want all 1", w)
		}
	}
}

func TestTruncatedPoissonPMFShape(t *testing.T) {
	const n, lambda = 1000, 500.0
	w := TruncatedPoissonPMF(n, lambda)
	// Mode at floor(lambda) (or lambda-1).
	best := 0
	for i, v := range w {
		if v > w[best] {
			best = i
		}
	}
	if best != 500 && best != 499 {
		t.Fatalf("Poisson mode at %d, want 499 or 500", best)
	}
	// Mass far from the mode must be negligible: the attack over-represents
	// only ~sqrt(lambda) ids around λ.
	if w[0] > 1e-100 || w[n-1] > 1e-30 {
		t.Fatalf("tails not negligible: w[0]=%v w[n-1]=%v", w[0], w[n-1])
	}
	// No NaN/Inf anywhere (log-space stability).
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("w[%d] = %v", i, v)
		}
	}
}

func TestTruncatedPoissonSmallLambda(t *testing.T) {
	w := TruncatedPoissonPMF(20, 2)
	// Compare with the untruncated ratios: w[i]/w[0] = λ^i/i!.
	for i, want := range []float64{1, 2, 2, 4.0 / 3} {
		if got := w[i] / w[0]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("w[%d]/w[0] = %v, want %v", i, got, want)
		}
	}
}

func TestPeakPMF(t *testing.T) {
	w, err := PeakPMF(1000, 42, 50000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if w[42] != 50000 {
		t.Fatalf("peak weight = %v", w[42])
	}
	if w[0] != 50 || w[999] != 50 {
		t.Fatalf("base weights wrong: %v, %v", w[0], w[999])
	}
	if _, err := PeakPMF(10, 10, 1, 1); err == nil {
		t.Error("peak outside population should fail")
	}
	if _, err := PeakPMF(10, -1, 1, 1); err == nil {
		t.Error("negative peak should fail")
	}
}

func TestMixPMF(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	m, err := MixPMF([]float64{3, 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-0.75) > 1e-12 || math.Abs(m[1]-0.25) > 1e-12 {
		t.Fatalf("mix = %v, want [0.75, 0.25]", m)
	}
}

func TestMixPMFNormalisesComponents(t *testing.T) {
	// Component scales must not matter, only the mixing coefficients.
	a := []float64{2, 0} // same distribution as {1, 0}
	b := []float64{0, 10}
	m, err := MixPMF([]float64{1, 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-0.5) > 1e-12 || math.Abs(m[1]-0.5) > 1e-12 {
		t.Fatalf("mix = %v, want [0.5, 0.5]", m)
	}
}

func TestMixPMFValidation(t *testing.T) {
	if _, err := MixPMF([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Error("coefficient count mismatch should fail")
	}
	if _, err := MixPMF(nil); err == nil {
		t.Error("no pmfs should fail")
	}
	if _, err := MixPMF([]float64{1, 1}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("support mismatch should fail")
	}
	if _, err := MixPMF([]float64{0, 0}, []float64{1}, []float64{1}); err == nil {
		t.Error("all-zero coefficients should fail")
	}
	if _, err := MixPMF([]float64{1}, []float64{0}); err == nil {
		t.Error("zero-sum pmf should fail")
	}
	if _, err := MixPMF([]float64{-1, 2}, []float64{1}, []float64{1}); err == nil {
		t.Error("negative coefficient should fail")
	}
}

func TestCollect(t *testing.T) {
	c := mustCategorical(t, []float64{1}, 9)
	ids := Collect(c, 5)
	if len(ids) != 5 {
		t.Fatalf("Collect length %d", len(ids))
	}
	for _, id := range ids {
		if id != 0 {
			t.Fatalf("single-support stream emitted %d", id)
		}
	}
}

func TestSliceSourceCycles(t *testing.T) {
	s, err := NewSliceSource([]uint64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s, 7)
	want := []uint64{4, 5, 6, 4, 5, 6, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle mismatch at %d: %v", i, got)
		}
	}
}

func TestSliceSourceCopiesInput(t *testing.T) {
	ids := []uint64{1, 2}
	s, err := NewSliceSource(ids)
	if err != nil {
		t.Fatal(err)
	}
	ids[0] = 99
	if got := s.Next(); got != 1 {
		t.Fatalf("slice source saw caller mutation: %d", got)
	}
}

func TestSliceSourceEmpty(t *testing.T) {
	if _, err := NewSliceSource(nil); err == nil {
		t.Error("empty slice should fail")
	}
}

func TestInterleave(t *testing.T) {
	a, err := NewSliceSource([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSliceSource([]uint64{2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInterleave(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(in, 4)
	want := []uint64{1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v", got)
		}
	}
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := NewInterleave(); err == nil {
		t.Error("no sources should fail")
	}
	if _, err := NewInterleave(nil); err == nil {
		t.Error("nil source should fail")
	}
}

// TestZipfStreamKLMatchesTheory: the empirical KL divergence of a generated
// Zipf stream against uniform should approach the analytic divergence of the
// pmf itself — the property Figure 8's x-axis sweep relies on.
func TestZipfStreamKLMatchesTheory(t *testing.T) {
	const n, m = 100, 200000
	pmf := ZipfPMF(n, 1.5)
	c := mustCategorical(t, pmf, 33)
	h := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		h.Add(c.Next())
	}
	got, err := h.KLvsUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	norm := c.PMF()
	for _, p := range norm {
		if p > 0 {
			want += p * math.Log(p*float64(n))
		}
	}
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("empirical KL %v vs analytic %v", got, want)
	}
}

func BenchmarkCategoricalNext(b *testing.B) {
	c, err := NewCategorical(ZipfPMF(1000, 4), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += c.Next()
	}
	_ = sink
}

func BenchmarkNewCategorical(b *testing.B) {
	w := ZipfPMF(10000, 2)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := NewCategorical(w, r); err != nil {
			b.Fatal(err)
		}
	}
}
