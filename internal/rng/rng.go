// Package rng provides the deterministic randomness substrate used by every
// simulation and sampler in this repository.
//
// Experiments must be reproducible across runs and across Go releases, so we
// do not rely on the (version-dependent) default math/rand source. Instead we
// implement two small, well-known generators:
//
//   - SplitMix64: used for seeding and for cheap stateless mixing.
//   - Xoshiro256**: the main generator, exposed as a rand.Source64 so it can
//     back a math/rand.Rand when the convenience API is wanted.
//
// The package has no global state; callers create generators explicitly and
// pass them down, which keeps concurrent simulations race-free and
// independently seeded.
package rng

import (
	"math/bits"
	"math/rand"
)

// SplitMix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is the recommended way to derive independent seeds
// for Xoshiro256** generators from a single root seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a stateless 64-bit mix of x. It is the finalizer of
// splitmix64 and is a good integer hash for seeding and sharding purposes.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro implements the xoshiro256** 1.0 generator by Blackman and Vigna.
// It satisfies rand.Source64. The zero value is not a valid generator; use
// New or Seed.
type Xoshiro struct {
	s [4]uint64
}

var _ rand.Source64 = (*Xoshiro)(nil)

// New returns a Xoshiro generator seeded from seed via splitmix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro {
	var x Xoshiro
	x.Seed(int64(seed))
	return &x
}

// NewRand returns a *rand.Rand backed by a freshly seeded Xoshiro generator.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(New(seed))
}

// Seed resets the generator state from seed. It implements rand.Source.
func (x *Xoshiro) Seed(seed int64) {
	state := uint64(seed)
	for i := range x.s {
		x.s[i] = SplitMix64(&state)
	}
	// An all-zero state would be absorbing; splitmix64 cannot produce four
	// consecutive zeros, but guard anyway for defence in depth.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64-bit value of the xoshiro256** sequence.
func (x *Xoshiro) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17

	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)

	return result
}

// Int63 implements rand.Source.
func (x *Xoshiro) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0, matching
// the contract of the math/rand *n functions.
func (x *Xoshiro) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped.
func (x *Xoshiro) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (x *Xoshiro) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := x.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap function,
// mirroring rand.Shuffle.
func (x *Xoshiro) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new generator seeded from the current one such that the
// two streams are statistically independent. It is the supported way to hand
// private generators to concurrent workers.
func (x *Xoshiro) Split() *Xoshiro {
	return New(x.Uint64())
}
