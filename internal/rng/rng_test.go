package rng

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSplitMix64Deterministic pins the splitmix64 stream by self-consistency:
// the same seed must always give the same sequence, and early outputs must be
// pairwise distinct.
func TestSplitMix64Deterministic(t *testing.T) {
	state := uint64(1234567)
	got := make([]uint64, 16)
	for i := range got {
		got[i] = SplitMix64(&state)
	}
	state2 := uint64(1234567)
	for i := range got {
		if v := SplitMix64(&state2); v != got[i] {
			t.Fatalf("splitmix64 not deterministic at step %d: %x vs %x", i, v, got[i])
		}
	}
	// Sanity: outputs must all differ (period is 2^64, collisions in the
	// first few draws would indicate a broken implementation).
	seen := map[uint64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("splitmix64 repeated value %x in first draws", v)
		}
		seen[v] = true
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %x vs %x", i, av, bv)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestXoshiroAsRandSource(t *testing.T) {
	r := rand.New(New(7))
	// Must not panic and must respect bounds.
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	x := New(99)
	bounds := []uint64{1, 2, 3, 7, 10, 1000, 1 << 32, 1<<63 + 12345}
	for _, n := range bounds {
		for i := 0; i < 200; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := New(5)
	for i := 0; i < 10000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v deviates from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	x := New(8)
	if x.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !x.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if x.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(-0.5) returned true")
	}
	if !x.Bernoulli(1.5) {
		t.Fatal("Bernoulli(1.5) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	x := New(12)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[x.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d appeared %d times, want about %v", i, c, want)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	x := New(13)
	vals := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	x.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: %v", vals)
	}
}

func TestSplitIndependence(t *testing.T) {
	x := New(21)
	y := x.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split generators produced %d identical values", same)
	}
}

func TestMix64Bijectivity(t *testing.T) {
	// Mix64 must be injective; spot-check with testing/quick that distinct
	// inputs give distinct outputs (a full proof is out of scope, but random
	// collisions would be astronomically unlikely for a bijection).
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	x := New(31)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[x.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("value %d appeared %d times, want about %v", i, c, want)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiroFloat64(b *testing.B) {
	x := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.Float64()
	}
	_ = sink
}
