// Package metrics provides the statistical distances used by the paper's
// evaluation (Section VI): the Kullback–Leibler divergence between a stream's
// empirical frequency distribution and the uniform one (Relation 6), the
// derived gain G_KL = 1 − D(σ′,U)/D(σ,U), plus entropy, total-variation and
// chi-square helpers used by tests.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrZeroDivergence is returned by Gain when the input stream is already
// uniform (zero divergence), making the gain undefined.
var ErrZeroDivergence = errors.New("metrics: input divergence is zero, gain undefined")

// Histogram counts occurrences of node identifiers. The zero value is not
// usable; construct with NewHistogram.
type Histogram struct {
	counts map[uint64]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]uint64)}
}

// Add records one occurrence of id.
func (h *Histogram) Add(id uint64) { h.AddN(id, 1) }

// AddN records n occurrences of id.
func (h *Histogram) AddN(id uint64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[id] += n
	h.total += n
}

// Count returns the number of recorded occurrences of id.
func (h *Histogram) Count(id uint64) uint64 { return h.counts[id] }

// Total returns the total number of recorded occurrences.
func (h *Histogram) Total() uint64 { return h.total }

// Distinct returns the number of distinct ids recorded.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Max returns the id with the highest count and that count. When empty it
// returns (0, 0). Ties break toward the smallest id so the result is
// deterministic.
func (h *Histogram) Max() (id uint64, count uint64) {
	first := true
	for k, v := range h.counts {
		if first || v > count || (v == count && k < id) {
			id, count, first = k, v, false
		}
	}
	return id, count
}

// Counts returns a copy of the underlying count map.
func (h *Histogram) Counts() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

// Reset forgets all recorded occurrences.
func (h *Histogram) Reset() {
	h.counts = make(map[uint64]uint64)
	h.total = 0
}

// Merge adds all counts of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for k, v := range other.counts {
		h.AddN(k, v)
	}
}

// Entropy returns the empirical Shannon entropy H(v) = −Σ v_i ln v_i of the
// histogram's frequency distribution, in nats. An empty histogram has
// entropy 0.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	total := float64(h.total)
	e := 0.0
	for _, c := range h.counts {
		p := float64(c) / total
		e -= p * math.Log(p)
	}
	return e
}

// KLvsUniform returns D_KL(v ‖ U) where v is the histogram's empirical
// distribution and U is uniform over a support of n ids (Relation 6 with
// w = U). Ids absent from the histogram contribute zero (0·log 0 = 0). It
// returns an error when n is not positive or the histogram is empty, or when
// the histogram contains more distinct ids than the claimed support.
func (h *Histogram) KLvsUniform(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("metrics: support size must be positive, got %d", n)
	}
	if h.total == 0 {
		return 0, errors.New("metrics: empty histogram")
	}
	if h.Distinct() > n {
		return 0, fmt.Errorf("metrics: histogram has %d distinct ids, more than support %d", h.Distinct(), n)
	}
	total := float64(h.total)
	logN := math.Log(float64(n))
	d := 0.0
	for _, c := range h.counts {
		p := float64(c) / total
		d += p * (math.Log(p) + logN)
	}
	// Numerical noise can push an exactly-uniform distribution a hair below
	// zero; KL is non-negative by Gibbs' inequality.
	if d < 0 {
		d = 0
	}
	return d, nil
}

// KL returns D_KL(v ‖ w) between the empirical distributions of two
// histograms over the same implicit support. If v puts mass on an id that w
// never saw, the divergence is +Inf (standard convention).
func KL(v, w *Histogram) (float64, error) {
	if v == nil || w == nil {
		return 0, errors.New("metrics: nil histogram")
	}
	if v.total == 0 || w.total == 0 {
		return 0, errors.New("metrics: empty histogram")
	}
	vt, wt := float64(v.total), float64(w.total)
	d := 0.0
	for id, c := range v.counts {
		p := float64(c) / vt
		wc := w.counts[id]
		if wc == 0 {
			return math.Inf(1), nil
		}
		q := float64(wc) / wt
		d += p * math.Log(p/q)
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// TVvsUniform returns the total-variation distance between the histogram's
// empirical distribution and the uniform distribution over n ids:
// (1/2)·Σ_i |v_i − 1/n|, including the ids the histogram never saw.
func (h *Histogram) TVvsUniform(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("metrics: support size must be positive, got %d", n)
	}
	if h.total == 0 {
		return 0, errors.New("metrics: empty histogram")
	}
	total := float64(h.total)
	u := 1 / float64(n)
	d := 0.0
	for _, c := range h.counts {
		d += math.Abs(float64(c)/total - u)
	}
	if missing := n - h.Distinct(); missing > 0 {
		d += float64(missing) * u
	}
	return d / 2, nil
}

// ChiSquareUniform returns the chi-square statistic of the histogram against
// the uniform distribution over n cells (including never-seen cells). Under
// uniformity it follows approximately a chi-square law with n−1 degrees of
// freedom.
func (h *Histogram) ChiSquareUniform(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("metrics: support size must be positive, got %d", n)
	}
	if h.total == 0 {
		return 0, errors.New("metrics: empty histogram")
	}
	expected := float64(h.total) / float64(n)
	chi := 0.0
	for _, c := range h.counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if missing := n - h.Distinct(); missing > 0 {
		chi += float64(missing) * expected
	}
	return chi, nil
}

// Gain returns G_KL = 1 − D(output‖U)/D(input‖U), the paper's headline
// robustness metric: the fraction of the input stream's divergence from
// uniform that the sampler removed. It returns ErrZeroDivergence when the
// input is already uniform.
func Gain(input, output *Histogram, n int) (float64, error) {
	din, err := input.KLvsUniform(n)
	if err != nil {
		return 0, fmt.Errorf("input divergence: %w", err)
	}
	dout, err := output.KLvsUniform(n)
	if err != nil {
		return 0, fmt.Errorf("output divergence: %w", err)
	}
	if din == 0 {
		return 0, ErrZeroDivergence
	}
	return 1 - dout/din, nil
}
