package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"nodesampling/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Distinct() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	h.Add(3)
	h.Add(3)
	h.AddN(7, 5)
	h.AddN(9, 0) // no-op
	if h.Count(3) != 2 || h.Count(7) != 5 || h.Count(9) != 0 {
		t.Fatalf("counts wrong: %v", h.Counts())
	}
	if h.Total() != 7 || h.Distinct() != 2 {
		t.Fatalf("total=%d distinct=%d", h.Total(), h.Distinct())
	}
	id, c := h.Max()
	if id != 7 || c != 5 {
		t.Fatalf("Max = (%d, %d), want (7, 5)", id, c)
	}
	h.Reset()
	if h.Total() != 0 || h.Distinct() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestMaxTieBreaksDeterministically(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 4)
	h.AddN(2, 4)
	h.AddN(5, 4)
	id, c := h.Max()
	if id != 2 || c != 4 {
		t.Fatalf("Max tie = (%d, %d), want smallest id (2, 4)", id, c)
	}
}

func TestMaxEmpty(t *testing.T) {
	id, c := NewHistogram().Max()
	if id != 0 || c != 0 {
		t.Fatalf("Max of empty = (%d, %d)", id, c)
	}
}

func TestCountsReturnsCopy(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	m := h.Counts()
	m[1] = 999
	if h.Count(1) != 1 {
		t.Fatal("Counts exposed internal state")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.AddN(1, 2)
	b.AddN(1, 3)
	b.AddN(2, 4)
	a.Merge(b)
	if a.Count(1) != 5 || a.Count(2) != 4 || a.Total() != 9 {
		t.Fatalf("merge wrong: %v", a.Counts())
	}
	a.Merge(nil) // must not panic
}

func TestKLvsUniformExactlyUniform(t *testing.T) {
	h := NewHistogram()
	const n = 100
	for i := uint64(0); i < n; i++ {
		h.AddN(i, 7)
	}
	d, err := h.KLvsUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KL of uniform = %v, want 0", d)
	}
}

func TestKLvsUniformPointMass(t *testing.T) {
	h := NewHistogram()
	h.AddN(5, 1000)
	d, err := h.KLvsUniform(100)
	if err != nil {
		t.Fatal(err)
	}
	// All mass on one of 100 ids: D = ln(100).
	if math.Abs(d-math.Log(100)) > 1e-12 {
		t.Fatalf("KL of point mass = %v, want ln(100) = %v", d, math.Log(100))
	}
}

func TestKLvsUniformKnownValue(t *testing.T) {
	// v = (0.75, 0.25) over n=2: D = 0.75 ln(1.5) + 0.25 ln(0.5).
	h := NewHistogram()
	h.AddN(0, 3)
	h.AddN(1, 1)
	want := 0.75*math.Log(1.5) + 0.25*math.Log(0.5)
	d, err := h.KLvsUniform(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("KL = %v, want %v", d, want)
	}
}

func TestKLvsUniformValidation(t *testing.T) {
	h := NewHistogram()
	if _, err := h.KLvsUniform(10); err == nil {
		t.Error("empty histogram should error")
	}
	h.Add(1)
	if _, err := h.KLvsUniform(0); err == nil {
		t.Error("n=0 should error")
	}
	h.Add(2)
	h.Add(3)
	if _, err := h.KLvsUniform(2); err == nil {
		t.Error("support smaller than distinct ids should error")
	}
}

// TestKLNonNegativity is Gibbs' inequality as a property test: KL vs uniform
// is never negative and is zero only for the uniform distribution.
func TestKLNonNegativity(t *testing.T) {
	r := rng.New(17)
	f := func(seed uint64) bool {
		local := rng.New(seed)
		h := NewHistogram()
		n := 2 + local.Intn(50)
		for i := 0; i < n; i++ {
			h.AddN(uint64(i), 1+uint64(local.Intn(20)))
		}
		d, err := h.KLvsUniform(n)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng.NewRand(r.Uint64())}); err != nil {
		t.Fatal(err)
	}
}

func TestKLBetweenHistograms(t *testing.T) {
	v, w := NewHistogram(), NewHistogram()
	v.AddN(1, 1)
	v.AddN(2, 1)
	w.AddN(1, 1)
	w.AddN(2, 3)
	// v = (1/2, 1/2), w = (1/4, 3/4):
	want := 0.5*math.Log(0.5/0.25) + 0.5*math.Log(0.5/0.75)
	d, err := KL(v, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("KL = %v, want %v", d, want)
	}
	// Identical histograms: zero.
	d2, err := KL(v, v)
	if err != nil || d2 != 0 {
		t.Fatalf("KL(v, v) = %v, %v", d2, err)
	}
}

func TestKLInfiniteOnMissingSupport(t *testing.T) {
	v, w := NewHistogram(), NewHistogram()
	v.Add(1)
	v.Add(2)
	w.Add(1)
	d, err := KL(v, w)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("KL with missing support = %v, want +Inf", d)
	}
}

func TestKLValidation(t *testing.T) {
	v := NewHistogram()
	v.Add(1)
	if _, err := KL(nil, v); err == nil {
		t.Error("nil v should error")
	}
	if _, err := KL(v, nil); err == nil {
		t.Error("nil w should error")
	}
	if _, err := KL(v, NewHistogram()); err == nil {
		t.Error("empty w should error")
	}
}

func TestTVvsUniform(t *testing.T) {
	h := NewHistogram()
	h.AddN(0, 10)
	// Point mass over n=4: TV = (1/2)(|1 − 1/4| + 3·(1/4)) = 0.75.
	d, err := h.TVvsUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.75) > 1e-12 {
		t.Fatalf("TV = %v, want 0.75", d)
	}
	// Uniform: 0.
	u := NewHistogram()
	for i := uint64(0); i < 4; i++ {
		u.AddN(i, 5)
	}
	d, err = u.TVvsUniform(4)
	if err != nil || d != 0 {
		t.Fatalf("TV of uniform = %v, %v", d, err)
	}
}

func TestChiSquareUniform(t *testing.T) {
	h := NewHistogram()
	for i := uint64(0); i < 10; i++ {
		h.AddN(i, 100)
	}
	chi, err := h.ChiSquareUniform(10)
	if err != nil || chi != 0 {
		t.Fatalf("chi2 of uniform = %v, %v", chi, err)
	}
	// Skew one cell: counts (200, 100×8, 0) over 10 cells, expected 100.
	h2 := NewHistogram()
	h2.AddN(0, 200)
	for i := uint64(1); i < 9; i++ {
		h2.AddN(i, 100)
	}
	chi, err = h2.ChiSquareUniform(10)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 + 0 + 100.0 // (200-100)^2/100 + missing cell 100
	if math.Abs(chi-want) > 1e-9 {
		t.Fatalf("chi2 = %v, want %v", chi, want)
	}
}

func TestEntropy(t *testing.T) {
	h := NewHistogram()
	if h.Entropy() != 0 {
		t.Fatal("empty entropy not zero")
	}
	h.AddN(1, 5)
	if h.Entropy() != 0 {
		t.Fatal("point-mass entropy not zero")
	}
	u := NewHistogram()
	const n = 64
	for i := uint64(0); i < n; i++ {
		u.AddN(i, 3)
	}
	if got, want := u.Entropy(), math.Log(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want ln(%d) = %v", got, n, want)
	}
}

func TestGain(t *testing.T) {
	input, output := NewHistogram(), NewHistogram()
	input.AddN(0, 97)
	for i := uint64(1); i < 4; i++ {
		input.AddN(i, 1)
	}
	for i := uint64(0); i < 4; i++ {
		output.AddN(i, 25)
	}
	g, err := Gain(input, output, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("gain for perfectly unbiased output = %v, want 1", g)
	}
	// Output identical to input: gain 0.
	g, err = Gain(input, input, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Fatalf("gain for unchanged stream = %v, want 0", g)
	}
}

func TestGainZeroDivergenceInput(t *testing.T) {
	u := NewHistogram()
	for i := uint64(0); i < 4; i++ {
		u.AddN(i, 10)
	}
	if _, err := Gain(u, u, 4); !errors.Is(err, ErrZeroDivergence) {
		t.Fatalf("want ErrZeroDivergence, got %v", err)
	}
}

func TestGainPropagatesErrors(t *testing.T) {
	bad := NewHistogram()
	good := NewHistogram()
	good.Add(1)
	if _, err := Gain(bad, good, 4); err == nil {
		t.Error("empty input histogram should error")
	}
	if _, err := Gain(good, bad, 4); err == nil {
		t.Error("empty output histogram should error")
	}
}

// TestGainOrdering: a mildly biased output must score a higher gain than a
// strongly biased one, which is the property every figure of Section VI
// relies on.
func TestGainOrdering(t *testing.T) {
	const n = 100
	input := NewHistogram()
	input.AddN(0, 10000)
	for i := uint64(1); i < n; i++ {
		input.AddN(i, 10)
	}
	mild, strong := NewHistogram(), NewHistogram()
	for i := uint64(0); i < n; i++ {
		mild.AddN(i, 100)
		strong.AddN(i, 10)
	}
	mild.AddN(0, 50)      // slight residual peak
	strong.AddN(0, 10000) // output still dominated by the peak
	gm, err := Gain(input, mild, n)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Gain(input, strong, n)
	if err != nil {
		t.Fatal(err)
	}
	if gm <= gs {
		t.Fatalf("gain ordering violated: mild %v <= strong %v", gm, gs)
	}
}

func BenchmarkKLvsUniform(b *testing.B) {
	r := rng.New(1)
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Add(r.Uint64n(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.KLvsUniform(1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	r := rng.New(1)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = r.Uint64n(10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(ids[i&4095])
	}
}
