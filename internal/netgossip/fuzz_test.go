package netgossip

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadBatch hammers the wire decoder with hostile frames. The decoder
// is the daemon's first line of defence: whatever the bytes, it must fail
// cleanly (no panic, no large allocation) or decode a frame that re-encodes
// to exactly the bytes it consumed.
func FuzzReadBatch(f *testing.F) {
	// A valid single-id frame.
	var valid bytes.Buffer
	if err := writeBatch(&valid, []uint64{42}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// A valid multi-id frame with trailing garbage.
	var multi bytes.Buffer
	if err := writeBatch(&multi, []uint64{0, 1, 1 << 63}); err != nil {
		f.Fatal(err)
	}
	f.Add(append(multi.Bytes(), 0xff, 0xfe))
	f.Add([]byte{})                                                       // clean EOF
	f.Add([]byte{0x00, protocolVersion, 0, 0, 0, 1})                      // bad magic
	f.Add([]byte{protocolMagic, 99, 0, 0, 0, 1})                          // bad version
	f.Add([]byte{protocolMagic, protocolVersion, 0, 0, 0, 0})             // zero count
	f.Add([]byte{protocolMagic, protocolVersion, 0xff, 0xff, 0xff, 0xff}) // oversized count
	f.Add(valid.Bytes()[:7])                                              // truncated payload

	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := readBatch(bytes.NewReader(data))
		if err != nil {
			if ids != nil {
				t.Fatalf("decoder returned ids %v alongside error %v", ids, err)
			}
			return
		}
		if len(ids) == 0 || len(ids) > MaxBatch {
			t.Fatalf("decoded batch size %d outside (0, %d]", len(ids), MaxBatch)
		}
		// A successful decode must have consumed a well-formed prefix:
		// re-encoding the ids reproduces it byte for byte.
		var re bytes.Buffer
		if err := writeBatch(&re, ids); err != nil {
			t.Fatalf("re-encoding decoded batch failed: %v", err)
		}
		consumed := 6 + 8*len(ids)
		if len(data) < consumed || !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("decode/encode mismatch for %x", data)
		}
		if got := binary.BigEndian.Uint32(data[2:6]); int(got) != len(ids) {
			t.Fatalf("decoded %d ids, header announced %d", len(ids), got)
		}
	})
}
