package netgossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The framed protocol (version 2) is the bidirectional successor of the
// one-way batch protocol: one persistent connection carries id batches
// upstream and the sampling service's output stream σ′ (plus sample
// request/responses and keepalives) downstream. Every frame is
//
//	magic (1) | version (1) | type (1) | payload length (uint32 BE) | payload
//
// with the payload length hard-bounded before any allocation, so a hostile
// peer can neither stall a correct node nor force a large allocation —
// exactly the discipline of the v1 batch decoder, extended to a frame
// vocabulary. The v2 magic differs from the v1 magic so that a client
// speaking the wrong protocol on a listener fails on the first byte with a
// clear error instead of a payload-shaped surprise.
const (
	frameMagic   = 0x55 // 'U'; v1's batch protocol uses 0x75 ('u')
	FrameVersion = 2
	// MaxFramePayload bounds a single frame's payload: enough for MaxBatch
	// 64-bit ids and nothing bigger.
	MaxFramePayload = 8 * MaxBatch
	frameHeaderLen  = 7
	// MaxErrorLen bounds an Error frame's message.
	MaxErrorLen = 512
)

// FrameType discriminates the frame vocabulary.
type FrameType uint8

// Frame types of protocol version 2.
const (
	// FramePushBatch carries a batch of input-stream ids upstream
	// (client → daemon). Payload: 1..MaxBatch ids, 8 bytes each.
	FramePushBatch FrameType = iota + 1
	// FrameSubscribe asks the daemon to start streaming σ′ to this
	// connection. Payload: requested buffer capacity (uint32 BE, ≥ 1; the
	// server clamps it to its own bound), optionally followed by a
	// decimation interval (uint32 BE, ≥ 1: deliver every k-th draw only).
	// The 4-byte form is the protocol's original encoding and means
	// "deliver everything"; both ends accept it, so decimation is a
	// compatible extension.
	FrameSubscribe
	// FrameSample requests uniform samples. Payload: count (uint32 BE, ≥ 1).
	FrameSample
	// FrameSampleResp answers FrameSample. Payload: 0..MaxBatch ids — zero
	// ids means the pool is still empty.
	FrameSampleResp
	// FrameStreamData carries a batch of σ′ output draws downstream.
	// Payload: 1..MaxBatch ids.
	FrameStreamData
	// FramePing and FramePong are keepalives. Payload: an 8-byte token the
	// pong echoes.
	FramePing
	FramePong
	// FrameError reports a terminal protocol or service error; the sender
	// closes the connection after it. Payload: 1..MaxErrorLen message bytes.
	FrameError
)

// Frame errors surfaced by the decoder; io errors pass through unwrapped so
// clean shutdown (io.EOF) stays detectable.
var (
	ErrFrameTooLarge = errors.New("netgossip: frame payload exceeds protocol limit")
	errLegacyMagic   = errors.New("netgossip: legacy batch-protocol magic on a framed connection")
)

// Frame is one decoded protocol frame. Which fields are meaningful depends
// on Type: IDs for PushBatch/SampleResp/StreamData, N for Subscribe/Sample,
// Every for Subscribe (0 and 1 both mean "deliver everything"), Token for
// Ping/Pong, Msg for Error.
type Frame struct {
	Type  FrameType
	IDs   []uint64
	N     uint32
	Every uint32
	Token uint64
	Msg   string
}

// AppendFrame validates f and appends its canonical encoding to buf.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	var payloadLen int
	switch f.Type {
	case FramePushBatch, FrameStreamData:
		if len(f.IDs) == 0 {
			return nil, fmt.Errorf("netgossip: empty id payload for frame type %d", f.Type)
		}
		fallthrough
	case FrameSampleResp:
		if len(f.IDs) > MaxBatch {
			return nil, ErrBatchTooLarge
		}
		payloadLen = 8 * len(f.IDs)
	case FrameSubscribe, FrameSample:
		if f.N < 1 {
			return nil, fmt.Errorf("netgossip: frame type %d requires N ≥ 1", f.Type)
		}
		payloadLen = 4
		if f.Type == FrameSubscribe && f.Every > 1 {
			// Decimation rides an extended payload; the plain 4-byte form
			// stays on the wire for every-draw subscriptions, so old peers
			// keep decoding it.
			payloadLen = 8
		}
	case FramePing, FramePong:
		payloadLen = 8
	case FrameError:
		if len(f.Msg) == 0 || len(f.Msg) > MaxErrorLen {
			return nil, fmt.Errorf("netgossip: error message length %d outside [1, %d]", len(f.Msg), MaxErrorLen)
		}
		payloadLen = len(f.Msg)
	default:
		return nil, fmt.Errorf("netgossip: unknown frame type %d", f.Type)
	}
	buf = append(buf, frameMagic, FrameVersion, byte(f.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	switch f.Type {
	case FramePushBatch, FrameStreamData, FrameSampleResp:
		for _, id := range f.IDs {
			buf = binary.BigEndian.AppendUint64(buf, id)
		}
	case FrameSubscribe, FrameSample:
		buf = binary.BigEndian.AppendUint32(buf, f.N)
		if f.Type == FrameSubscribe && f.Every > 1 {
			buf = binary.BigEndian.AppendUint32(buf, f.Every)
		}
	case FramePing, FramePong:
		buf = binary.BigEndian.AppendUint64(buf, f.Token)
	case FrameError:
		buf = append(buf, f.Msg...)
	}
	return buf, nil
}

// WriteFrame writes one frame. The encoding is assembled first so the frame
// reaches the wire in a single Write (interleaving-safe under a caller's
// write lock).
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, frameHeaderLen+8*len(f.IDs)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame. The header is checked before any
// payload allocation; a malformed stream yields an error with nothing
// consumed beyond the offending frame. io.EOF before the first header byte
// passes through for clean shutdown detection.
//
// Each call decodes into fresh buffers, so the returned Frame (including
// IDs) may be retained indefinitely. Long-lived read loops that consume a
// frame before reading the next should use a FrameReader instead, which
// amortises the buffers across calls.
func ReadFrame(r io.Reader) (Frame, error) {
	return (&FrameReader{r: r}).Read()
}

// FrameReader decodes frames from one stream, reusing its payload and id
// buffers across calls: a steady flood of PushBatch frames costs zero
// allocations per frame after the first. The price is aliasing — a returned
// Frame's IDs slice is valid only until the next Read. Callers that hand
// the ids to a sink which copies (the daemon ingest funnel, shard
// PushBatch) ride the reuse for free; callers that retain frames must use
// ReadFrame.
type FrameReader struct {
	r       io.Reader
	payload []byte
	ids     []uint64
}

// NewFrameReader returns a FrameReader decoding from r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Read reads and validates one frame, exactly like ReadFrame except that
// the returned Frame's IDs alias the reader's internal buffer and are
// overwritten by the next Read.
func (fr *FrameReader) Read() (Frame, error) {
	r := fr.r
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Frame{}, err
	}
	if h[0] != frameMagic {
		if h[0] == legacyMagic {
			return Frame{}, errLegacyMagic
		}
		return Frame{}, fmt.Errorf("netgossip: bad frame magic 0x%02x", h[0])
	}
	if h[1] != FrameVersion {
		return Frame{}, fmt.Errorf("netgossip: unsupported frame version %d", h[1])
	}
	t := FrameType(h[2])
	n := binary.BigEndian.Uint32(h[3:7])
	if n > MaxFramePayload {
		return Frame{}, ErrFrameTooLarge
	}
	switch t {
	case FramePushBatch, FrameStreamData:
		if n == 0 {
			return Frame{}, fmt.Errorf("netgossip: empty id payload for frame type %d", t)
		}
		fallthrough
	case FrameSampleResp:
		if n%8 != 0 {
			return Frame{}, fmt.Errorf("netgossip: id payload length %d not a multiple of 8", n)
		}
	case FrameSubscribe:
		if n != 4 && n != 8 {
			return Frame{}, fmt.Errorf("netgossip: subscribe payload length %d, want 4 or 8", n)
		}
	case FrameSample:
		if n != 4 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d payload length %d, want 4", t, n)
		}
	case FramePing, FramePong:
		if n != 8 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d payload length %d, want 8", t, n)
		}
	case FrameError:
		if n == 0 || n > MaxErrorLen {
			return Frame{}, fmt.Errorf("netgossip: error message length %d outside [1, %d]", n, MaxErrorLen)
		}
	default:
		return Frame{}, fmt.Errorf("netgossip: unknown frame type %d", t)
	}
	if uint32(cap(fr.payload)) < n {
		fr.payload = make([]byte, n)
	}
	payload := fr.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("netgossip: short frame payload: %w", err)
	}
	f := Frame{Type: t}
	switch t {
	case FramePushBatch, FrameStreamData, FrameSampleResp:
		if uint32(cap(fr.ids)) < n/8 {
			fr.ids = make([]uint64, n/8)
		}
		f.IDs = fr.ids[:n/8]
		for i := range f.IDs {
			f.IDs[i] = binary.BigEndian.Uint64(payload[8*i:])
		}
	case FrameSubscribe, FrameSample:
		f.N = binary.BigEndian.Uint32(payload)
		if f.N < 1 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d requires N ≥ 1", t)
		}
		f.Every = 1
		if len(payload) == 8 {
			f.Every = binary.BigEndian.Uint32(payload[4:])
			if f.Every < 2 {
				// The extended payload exists only to carry a real interval;
				// "deliver everything" has exactly one encoding (the 4-byte
				// form), so every frame re-encodes to the bytes it arrived as.
				return Frame{}, errors.New("netgossip: subscribe decimation interval must be ≥ 2 in the extended form")
			}
		}
	case FramePing, FramePong:
		f.Token = binary.BigEndian.Uint64(payload)
	case FrameError:
		f.Msg = string(payload)
	}
	return f, nil
}
