package netgossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The framed protocol (version 2) is the bidirectional successor of the
// one-way batch protocol: one persistent connection carries id batches
// upstream and the sampling service's output stream σ′ (plus sample
// request/responses and keepalives) downstream. Every frame is
//
//	magic (1) | version (1) | type (1) | payload length (uint32 BE) | payload
//
// with the payload length hard-bounded before any allocation, so a hostile
// peer can neither stall a correct node nor force a large allocation —
// exactly the discipline of the v1 batch decoder, extended to a frame
// vocabulary. The v2 magic differs from the v1 magic so that a client
// speaking the wrong protocol on a listener fails on the first byte with a
// clear error instead of a payload-shaped surprise.
const (
	frameMagic   = 0x55 // 'U'; v1's batch protocol uses 0x75 ('u')
	FrameVersion = 2
	// MaxFramePayload bounds a single frame's payload: enough for MaxBatch
	// 64-bit ids and nothing bigger. Frames that prefix an id batch with an
	// 8-byte header word (Forward, SampleLocalResp) are allowed exactly
	// those 8 bytes more; MigrateState frames carry a state blob under
	// their own, larger bound.
	MaxFramePayload = 8 * MaxBatch
	frameHeaderLen  = 7
	// MaxErrorLen bounds an Error frame's message.
	MaxErrorLen = 512
	// MaxMigratePayload bounds a MigrateState frame's blob: per-slot-range
	// sampler state plus the Γ ids moving with it. Deliberately far above
	// any realistic sketch-plus-memory size while still refusing absurd
	// allocations; a migration whose state exceeds it fails loudly on the
	// sending side.
	MaxMigratePayload = 1 << 24
)

// FrameType discriminates the frame vocabulary.
type FrameType uint8

// Frame types of protocol version 2.
const (
	// FramePushBatch carries a batch of input-stream ids upstream
	// (client → daemon). Payload: 1..MaxBatch ids, 8 bytes each.
	FramePushBatch FrameType = iota + 1
	// FrameSubscribe asks the daemon to start streaming σ′ to this
	// connection. Payload: requested buffer capacity (uint32 BE, ≥ 1; the
	// server clamps it to its own bound), optionally followed by a
	// decimation interval (uint32 BE, ≥ 1: deliver every k-th draw only),
	// a delivery rate cap (uint32 BE, ids/second, 0 = uncapped) and a
	// resume token (uint64 BE, from a previous FrameSubAck: the server
	// seeds the new subscription's decimation phase from where the old
	// connection left off). Four canonical lengths — 4, 8, 12 and 20 bytes
	// — each the shortest encoding of its request, so every distinct
	// request has exactly one wire form. The 4-byte form is the protocol's
	// original encoding and means "deliver everything"; both ends accept
	// it, so the extensions stay compatible.
	FrameSubscribe
	// FrameSample requests uniform samples. Payload: count (uint32 BE, ≥ 1).
	FrameSample
	// FrameSampleResp answers FrameSample. Payload: 0..MaxBatch ids — zero
	// ids means the pool is still empty.
	FrameSampleResp
	// FrameStreamData carries a batch of σ′ output draws downstream.
	// Payload: 1..MaxBatch ids.
	FrameStreamData
	// FramePing and FramePong are keepalives. Payload: an 8-byte token the
	// pong echoes.
	FramePing
	FramePong
	// FrameError reports a terminal protocol or service error; the sender
	// closes the connection after it. Payload: 1..MaxErrorLen message bytes.
	FrameError
	// FrameSubAck acknowledges a FrameSubscribe with the server-assigned
	// resume token (8-byte payload, echoed back by a reconnecting client in
	// the extended Subscribe form for decimation phase continuity). The
	// server sends it only in answer to the 12- and 20-byte Subscribe forms:
	// those prove the client speaks the extension, while clients on the
	// legacy 4/8-byte forms predate the ack and would treat it as a fatal
	// unexpected frame.
	FrameSubAck
	// FrameForward carries a batch of input-stream ids between cluster
	// members: the receiving member ingests them locally and never
	// re-forwards (loop prevention — the sender already routed them).
	// Payload: the sender's placement epoch (uint64 BE) followed by
	// 1..MaxBatch ids.
	FrameForward
	// FrameSampleLocal asks a cluster member for draws from its local pool
	// only — the member answers without fanning out, so the cluster-wide
	// sample path cannot recurse. Payload: count (uint32 BE, ≥ 1).
	FrameSampleLocal
	// FrameSampleLocalResp answers FrameSampleLocal. Payload: the member's
	// pool-wide |Γ| (uint64 BE — the weight the requester assigns this
	// member's draws) followed by 0..MaxBatch ids.
	FrameSampleLocalResp
	// FrameMigrateState transfers a slot range's sampler state between
	// cluster members as one versioned opaque blob (internal/cluster owns
	// the blob format). Payload: 1..MaxMigratePayload bytes.
	FrameMigrateState
	// FrameMigrateAck acknowledges a completed FrameMigrateState import.
	// Payload: the placement epoch (uint64 BE) the importing member
	// installed the new ownership under.
	FrameMigrateAck
	// FramePlacementUpdate announces a placement override to a cluster
	// member: slots [SlotFrom, SlotTo] now belong to member Owner as of
	// epoch Token. Payload: epoch (uint64 BE), from-slot, to-slot, owner
	// (uint32 BE each) — 20 bytes.
	FramePlacementUpdate
)

// Frame errors surfaced by the decoder; io errors pass through unwrapped so
// clean shutdown (io.EOF) stays detectable.
var (
	ErrFrameTooLarge = errors.New("netgossip: frame payload exceeds protocol limit")
	errLegacyMagic   = errors.New("netgossip: legacy batch-protocol magic on a framed connection")
)

// Frame is one decoded protocol frame. Which fields are meaningful depends
// on Type: IDs for PushBatch/SampleResp/StreamData/Forward/SampleLocalResp,
// N for Subscribe/Sample/SampleLocal, Every and Rate for Subscribe (0 and 1
// both mean "deliver everything"; Rate 0 means uncapped), Token for
// Ping/Pong (the keepalive token), Subscribe/SubAck (the resume token),
// Forward (the sender's placement epoch), SampleLocalResp (the member's
// |Γ|) and MigrateAck/PlacementUpdate (the placement epoch), SlotFrom/
// SlotTo/Owner for PlacementUpdate, Blob for MigrateState, Msg for Error.
type Frame struct {
	Type     FrameType
	IDs      []uint64
	N        uint32
	Every    uint32
	Rate     uint32
	SlotFrom uint32
	SlotTo   uint32
	Owner    uint32
	Token    uint64
	Blob     []byte
	Msg      string
}

// AppendFrame validates f and appends its canonical encoding to buf.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	var payloadLen int
	switch f.Type {
	case FramePushBatch, FrameStreamData:
		if len(f.IDs) == 0 {
			return nil, fmt.Errorf("netgossip: empty id payload for frame type %d", f.Type)
		}
		fallthrough
	case FrameSampleResp:
		if len(f.IDs) > MaxBatch {
			return nil, ErrBatchTooLarge
		}
		payloadLen = 8 * len(f.IDs)
	case FrameSubscribe, FrameSample, FrameSampleLocal:
		if f.N < 1 {
			return nil, fmt.Errorf("netgossip: frame type %d requires N ≥ 1", f.Type)
		}
		payloadLen = 4
		if f.Type == FrameSubscribe {
			// Each extension rides the shortest payload that can carry it;
			// the plain 4-byte form stays on the wire for every-draw
			// uncapped subscriptions, so old peers keep decoding it.
			switch {
			case f.Token != 0:
				payloadLen = 20
			case f.Rate > 0:
				payloadLen = 12
			case f.Every > 1:
				payloadLen = 8
			}
		}
	case FramePing, FramePong, FrameSubAck, FrameMigrateAck:
		payloadLen = 8
	case FrameForward:
		if len(f.IDs) == 0 {
			return nil, fmt.Errorf("netgossip: empty id payload for frame type %d", f.Type)
		}
		if len(f.IDs) > MaxBatch {
			return nil, ErrBatchTooLarge
		}
		payloadLen = 8 + 8*len(f.IDs)
	case FrameSampleLocalResp:
		if len(f.IDs) > MaxBatch {
			return nil, ErrBatchTooLarge
		}
		payloadLen = 8 + 8*len(f.IDs)
	case FrameMigrateState:
		if len(f.Blob) == 0 || len(f.Blob) > MaxMigratePayload {
			return nil, fmt.Errorf("netgossip: migrate state blob length %d outside [1, %d]", len(f.Blob), MaxMigratePayload)
		}
		payloadLen = len(f.Blob)
	case FramePlacementUpdate:
		if f.SlotFrom > f.SlotTo {
			return nil, fmt.Errorf("netgossip: placement update slot range [%d, %d] inverted", f.SlotFrom, f.SlotTo)
		}
		payloadLen = 20
	case FrameError:
		if len(f.Msg) == 0 || len(f.Msg) > MaxErrorLen {
			return nil, fmt.Errorf("netgossip: error message length %d outside [1, %d]", len(f.Msg), MaxErrorLen)
		}
		payloadLen = len(f.Msg)
	default:
		return nil, fmt.Errorf("netgossip: unknown frame type %d", f.Type)
	}
	buf = append(buf, frameMagic, FrameVersion, byte(f.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	switch f.Type {
	case FramePushBatch, FrameStreamData, FrameSampleResp:
		for _, id := range f.IDs {
			buf = binary.BigEndian.AppendUint64(buf, id)
		}
	case FrameSubscribe, FrameSample, FrameSampleLocal:
		buf = binary.BigEndian.AppendUint32(buf, f.N)
		if f.Type == FrameSubscribe && payloadLen > 4 {
			every := f.Every
			if every < 1 {
				every = 1
			}
			buf = binary.BigEndian.AppendUint32(buf, every)
			if payloadLen > 8 {
				buf = binary.BigEndian.AppendUint32(buf, f.Rate)
			}
			if payloadLen > 12 {
				buf = binary.BigEndian.AppendUint64(buf, f.Token)
			}
		}
	case FramePing, FramePong, FrameSubAck, FrameMigrateAck:
		buf = binary.BigEndian.AppendUint64(buf, f.Token)
	case FrameForward, FrameSampleLocalResp:
		buf = binary.BigEndian.AppendUint64(buf, f.Token)
		for _, id := range f.IDs {
			buf = binary.BigEndian.AppendUint64(buf, id)
		}
	case FrameMigrateState:
		buf = append(buf, f.Blob...)
	case FramePlacementUpdate:
		buf = binary.BigEndian.AppendUint64(buf, f.Token)
		buf = binary.BigEndian.AppendUint32(buf, f.SlotFrom)
		buf = binary.BigEndian.AppendUint32(buf, f.SlotTo)
		buf = binary.BigEndian.AppendUint32(buf, f.Owner)
	case FrameError:
		buf = append(buf, f.Msg...)
	}
	return buf, nil
}

// WriteFrame writes one frame. The encoding is assembled first so the frame
// reaches the wire in a single Write (interleaving-safe under a caller's
// write lock).
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, frameHeaderLen+8+8*len(f.IDs)+len(f.Blob)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame. The header is checked before any
// payload allocation; a malformed stream yields an error with nothing
// consumed beyond the offending frame. io.EOF before the first header byte
// passes through for clean shutdown detection.
//
// Each call decodes into fresh buffers, so the returned Frame (including
// IDs) may be retained indefinitely. Long-lived read loops that consume a
// frame before reading the next should use a FrameReader instead, which
// amortises the buffers across calls.
func ReadFrame(r io.Reader) (Frame, error) {
	return (&FrameReader{r: r}).Read()
}

// FrameReader decodes frames from one stream, reusing its payload and id
// buffers across calls: a steady flood of PushBatch frames costs zero
// allocations per frame after the first. The price is aliasing — a returned
// Frame's IDs slice is valid only until the next Read. Callers that hand
// the ids to a sink which copies (the daemon ingest funnel, shard
// PushBatch) ride the reuse for free; callers that retain frames must use
// ReadFrame.
type FrameReader struct {
	r       io.Reader
	payload []byte
	ids     []uint64
}

// NewFrameReader returns a FrameReader decoding from r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Read reads and validates one frame, exactly like ReadFrame except that
// the returned Frame's IDs alias the reader's internal buffer and are
// overwritten by the next Read.
func (fr *FrameReader) Read() (Frame, error) {
	r := fr.r
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Frame{}, err
	}
	if h[0] != frameMagic {
		if h[0] == legacyMagic {
			return Frame{}, errLegacyMagic
		}
		return Frame{}, fmt.Errorf("netgossip: bad frame magic 0x%02x", h[0])
	}
	if h[1] != FrameVersion {
		return Frame{}, fmt.Errorf("netgossip: unsupported frame version %d", h[1])
	}
	t := FrameType(h[2])
	n := binary.BigEndian.Uint32(h[3:7])
	// The generic payload bound is checked before the type is even
	// validated so no frame type can demand a large allocation; the two
	// headered-batch types get exactly their 8-byte prefix more, and
	// MigrateState its own documented bound.
	limit := uint32(MaxFramePayload)
	switch t {
	case FrameForward, FrameSampleLocalResp:
		limit = MaxFramePayload + 8
	case FrameMigrateState:
		limit = MaxMigratePayload
	}
	if n > limit {
		return Frame{}, ErrFrameTooLarge
	}
	switch t {
	case FramePushBatch, FrameStreamData:
		if n == 0 {
			return Frame{}, fmt.Errorf("netgossip: empty id payload for frame type %d", t)
		}
		fallthrough
	case FrameSampleResp:
		if n%8 != 0 {
			return Frame{}, fmt.Errorf("netgossip: id payload length %d not a multiple of 8", n)
		}
	case FrameSubscribe:
		if n != 4 && n != 8 && n != 12 && n != 20 {
			return Frame{}, fmt.Errorf("netgossip: subscribe payload length %d, want 4, 8, 12 or 20", n)
		}
	case FrameSample, FrameSampleLocal:
		if n != 4 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d payload length %d, want 4", t, n)
		}
	case FramePing, FramePong, FrameSubAck, FrameMigrateAck:
		if n != 8 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d payload length %d, want 8", t, n)
		}
	case FrameForward:
		if n < 16 || (n-8)%8 != 0 {
			return Frame{}, fmt.Errorf("netgossip: forward payload length %d, want 8 + a non-empty multiple of 8", n)
		}
	case FrameSampleLocalResp:
		if n < 8 || (n-8)%8 != 0 {
			return Frame{}, fmt.Errorf("netgossip: sample-local response payload length %d, want 8 + a multiple of 8", n)
		}
	case FrameMigrateState:
		if n == 0 {
			return Frame{}, errors.New("netgossip: empty migrate state blob")
		}
	case FramePlacementUpdate:
		if n != 20 {
			return Frame{}, fmt.Errorf("netgossip: placement update payload length %d, want 20", n)
		}
	case FrameError:
		if n == 0 || n > MaxErrorLen {
			return Frame{}, fmt.Errorf("netgossip: error message length %d outside [1, %d]", n, MaxErrorLen)
		}
	default:
		return Frame{}, fmt.Errorf("netgossip: unknown frame type %d", t)
	}
	if uint32(cap(fr.payload)) < n {
		fr.payload = make([]byte, n)
	}
	payload := fr.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("netgossip: short frame payload: %w", err)
	}
	f := Frame{Type: t}
	switch t {
	case FramePushBatch, FrameStreamData, FrameSampleResp:
		if uint32(cap(fr.ids)) < n/8 {
			fr.ids = make([]uint64, n/8)
		}
		f.IDs = fr.ids[:n/8]
		for i := range f.IDs {
			f.IDs[i] = binary.BigEndian.Uint64(payload[8*i:])
		}
	case FrameForward, FrameSampleLocalResp:
		f.Token = binary.BigEndian.Uint64(payload)
		nids := (n - 8) / 8
		if uint32(cap(fr.ids)) < nids {
			fr.ids = make([]uint64, nids)
		}
		f.IDs = fr.ids[:nids]
		for i := range f.IDs {
			f.IDs[i] = binary.BigEndian.Uint64(payload[8+8*i:])
		}
	case FrameSubscribe, FrameSample, FrameSampleLocal:
		f.N = binary.BigEndian.Uint32(payload)
		if f.N < 1 {
			return Frame{}, fmt.Errorf("netgossip: frame type %d requires N ≥ 1", t)
		}
		f.Every = 1
		if len(payload) >= 8 {
			f.Every = binary.BigEndian.Uint32(payload[4:])
			if len(payload) == 8 && f.Every < 2 {
				// Each extended payload exists only to carry information the
				// shorter forms cannot; every distinct request has exactly one
				// wire form, so every frame re-encodes to the bytes it
				// arrived as (the fuzz harness pins this).
				return Frame{}, errors.New("netgossip: subscribe decimation interval must be ≥ 2 in the extended form")
			}
			if f.Every < 1 {
				return Frame{}, errors.New("netgossip: subscribe decimation interval must be ≥ 1")
			}
		}
		if len(payload) >= 12 {
			f.Rate = binary.BigEndian.Uint32(payload[8:])
			if len(payload) == 12 && f.Rate < 1 {
				return Frame{}, errors.New("netgossip: subscribe rate cap must be ≥ 1 in the rate form")
			}
		}
		if len(payload) == 20 {
			f.Token = binary.BigEndian.Uint64(payload[12:])
			if f.Token == 0 {
				return Frame{}, errors.New("netgossip: subscribe resume token must be non-zero in the resume form")
			}
		}
	case FramePing, FramePong, FrameSubAck, FrameMigrateAck:
		f.Token = binary.BigEndian.Uint64(payload)
	case FrameMigrateState:
		// The blob aliases the reader's payload buffer, like IDs: valid
		// only until the next Read.
		f.Blob = payload
	case FramePlacementUpdate:
		f.Token = binary.BigEndian.Uint64(payload)
		f.SlotFrom = binary.BigEndian.Uint32(payload[8:])
		f.SlotTo = binary.BigEndian.Uint32(payload[12:])
		f.Owner = binary.BigEndian.Uint32(payload[16:])
		if f.SlotFrom > f.SlotTo {
			return Frame{}, fmt.Errorf("netgossip: placement update slot range [%d, %d] inverted", f.SlotFrom, f.SlotTo)
		}
	case FrameError:
		f.Msg = string(payload)
	}
	return f, nil
}
