// Package netgossip is the deployable form of the node sampling service: a
// peer that exchanges node identifiers with its neighbours over real
// connections (TCP or any net.Conn) and feeds everything it hears into the
// knowledge-free sampler. It is the concrete realisation of the paper's
// Figure 1 — "node identifiers periodically gossiped by nodes" arriving as
// the input stream σ_i of the local sampling component — including the part
// the paper leaves to the deployment: wire format, connection management,
// and the push-gossip loop.
//
// The wire protocol is the framed protocol of frame.go (version 2):
// length-prefixed, type-tagged frames with every bound checked before any
// allocation, so a malicious peer can neither stall nor bloat a correct
// node — it can only do what the adversary model already allows: inject
// many ids. Gossip peers exchange FramePushBatch frames on persistent
// connections; the one-way v1 batch protocol (magic 0x75) is retired, and
// a client still speaking it gets a FrameError naming the replacement
// before the connection drops.
package netgossip

import "errors"

// legacyMagic is the retired v1 batch protocol's magic byte ('u' for
// uniform). The framed decoder recognises it only to refuse it loudly:
// one byte is enough to tell a stale client from line noise.
const legacyMagic = 0x75

// MaxBatch is the largest number of ids a single message may carry.
// Bounding per-message work means a flood still has to arrive as many
// frames, which the reader paces one at a time.
const MaxBatch = 4096

// ErrBatchTooLarge is returned when a peer announces a batch above MaxBatch.
var ErrBatchTooLarge = errors.New("netgossip: batch exceeds protocol limit")
