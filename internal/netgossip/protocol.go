// Package netgossip is the deployable form of the node sampling service: a
// peer that exchanges node identifiers with its neighbours over real
// connections (TCP or any net.Conn) and feeds everything it hears into the
// knowledge-free sampler. It is the concrete realisation of the paper's
// Figure 1 — "node identifiers periodically gossiped by nodes" arriving as
// the input stream σ_i of the local sampling component — including the part
// the paper leaves to the deployment: wire format, connection management,
// and the push-gossip loop.
//
// The wire protocol is deliberately minimal: length-prefixed batches of
// 64-bit identifiers with a protocol magic and a hard batch-size bound (a
// malicious peer must not be able to stall or bloat a correct node; it can
// only do what the adversary model already allows — inject many ids).
package netgossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol limits. MaxBatch bounds per-message work; a flood still has to
// arrive as many messages, which the reader paces one at a time.
const (
	protocolMagic   = 0x75 // 'u' for uniform
	protocolVersion = 1
	// MaxBatch is the largest number of ids a single message may carry.
	MaxBatch = 4096
)

// ErrBatchTooLarge is returned when a peer announces a batch above MaxBatch.
var ErrBatchTooLarge = errors.New("netgossip: batch exceeds protocol limit")

// writeBatch frames and writes one batch of ids:
//
//	magic (1) | version (1) | count (uint32 BE) | count × id (uint64 BE)
func writeBatch(w io.Writer, ids []uint64) error {
	if len(ids) == 0 {
		return errors.New("netgossip: empty batch")
	}
	if len(ids) > MaxBatch {
		return ErrBatchTooLarge
	}
	buf := make([]byte, 0, 6+8*len(ids))
	buf = append(buf, protocolMagic, protocolVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint64(buf, id)
	}
	_, err := w.Write(buf)
	return err
}

// readBatch reads one framed batch. It validates the header before
// allocating, so a hostile peer cannot force a large allocation.
func readBatch(r io.Reader) ([]uint64, error) {
	var header [6]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	if header[0] != protocolMagic {
		return nil, fmt.Errorf("netgossip: bad magic 0x%02x", header[0])
	}
	if header[1] != protocolVersion {
		return nil, fmt.Errorf("netgossip: unsupported version %d", header[1])
	}
	count := binary.BigEndian.Uint32(header[2:6])
	if count == 0 {
		return nil, errors.New("netgossip: empty batch")
	}
	if count > MaxBatch {
		return nil, ErrBatchTooLarge
	}
	payload := make([]byte, 8*count)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("netgossip: short batch payload: %w", err)
	}
	ids := make([]uint64, count)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint64(payload[8*i:])
	}
	return ids, nil
}
