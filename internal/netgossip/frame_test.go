package netgossip

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("encode %+v: %v", f, err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("decode %+v: %v", f, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("decode left %d bytes unread", buf.Len())
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FramePushBatch, IDs: []uint64{1, 2, 1 << 63}},
		{Type: FrameStreamData, IDs: []uint64{42}},
		{Type: FrameSampleResp, IDs: nil}, // empty pool answer
		{Type: FrameSampleResp, IDs: []uint64{7, 8}},
		{Type: FrameSubscribe, N: 256},
		{Type: FrameSubscribe, N: 256, Every: 16},
		{Type: FrameSample, N: 10},
		{Type: FramePing, Token: 0xdeadbeef},
		{Type: FramePong, Token: 1},
		{Type: FrameError, Msg: "already subscribed"},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if got.Type != f.Type || got.N != f.N || got.Token != f.Token || got.Msg != f.Msg {
			t.Fatalf("round trip %+v -> %+v", f, got)
		}
		if len(got.IDs) != len(f.IDs) {
			t.Fatalf("round trip %+v -> %+v", f, got)
		}
		for i := range f.IDs {
			if got.IDs[i] != f.IDs[i] {
				t.Fatalf("round trip %+v -> %+v", f, got)
			}
		}
	}
}

// TestFrameSubscribeDecimation pins the compatible extension: the every-
// draw form keeps the original 4-byte payload, the decimated form rides 8
// bytes, and both decode to an explicit interval (0 → 1 on the legacy
// form; an explicit 0 in the extended form is rejected).
func TestFrameSubscribeDecimation(t *testing.T) {
	plain, err := AppendFrame(nil, Frame{Type: FrameSubscribe, N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != frameHeaderLen+4 {
		t.Fatalf("plain subscribe payload %d bytes, want 4", len(plain)-frameHeaderLen)
	}
	got := roundTrip(t, Frame{Type: FrameSubscribe, N: 64})
	if got.Every != 1 {
		t.Fatalf("legacy subscribe decoded Every=%d, want 1", got.Every)
	}
	ext, err := AppendFrame(nil, Frame{Type: FrameSubscribe, N: 64, Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != frameHeaderLen+8 {
		t.Fatalf("decimated subscribe payload %d bytes, want 8", len(ext)-frameHeaderLen)
	}
	got = roundTrip(t, Frame{Type: FrameSubscribe, N: 64, Every: 10})
	if got.N != 64 || got.Every != 10 {
		t.Fatalf("decimated subscribe decoded as N=%d Every=%d", got.N, got.Every)
	}
	// Every == 1 also stays on the 4-byte wire form.
	one, err := AppendFrame(nil, Frame{Type: FrameSubscribe, N: 64, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != frameHeaderLen+4 {
		t.Fatalf("every=1 subscribe payload %d bytes, want 4", len(one)-frameHeaderLen)
	}
	// Hand-crafted extended payloads with every=0 or every=1 must be
	// rejected: "deliver everything" has exactly one (4-byte) encoding, so
	// the decoder stays canonical.
	for _, every := range []byte{0, 1} {
		bad := append([]byte(nil), ext...)
		copy(bad[frameHeaderLen+4:], []byte{0, 0, 0, every})
		if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("non-canonical extended every=%d should be rejected", every)
		}
	}
}

func TestFrameEncodeRejects(t *testing.T) {
	cases := []Frame{
		{Type: FramePushBatch},                                   // empty batch
		{Type: FrameStreamData},                                  // empty stream data
		{Type: FramePushBatch, IDs: make([]uint64, MaxBatch+1)},  // oversized
		{Type: FrameSampleResp, IDs: make([]uint64, MaxBatch+1)}, // oversized
		{Type: FrameSubscribe, N: 0},
		{Type: FrameSample, N: 0},
		{Type: FrameError},                                          // empty message
		{Type: FrameError, Msg: strings.Repeat("x", MaxErrorLen+1)}, // huge message
		{Type: FrameType(99)},                                       // unknown type
	}
	for _, f := range cases {
		if err := WriteFrame(io.Discard, f); err == nil {
			t.Errorf("encoding %+v succeeded, want error", f)
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	mk := func(b ...byte) []byte { return b }
	cases := map[string][]byte{
		"legacy magic":        mk(legacyMagic, FrameVersion, byte(FramePing), 0, 0, 0, 8),
		"bad magic":           mk(0x00, FrameVersion, byte(FramePing), 0, 0, 0, 8),
		"bad version":         mk(frameMagic, 77, byte(FramePing), 0, 0, 0, 8),
		"unknown type":        mk(frameMagic, FrameVersion, 99, 0, 0, 0, 8),
		"oversized payload":   mk(frameMagic, FrameVersion, byte(FramePushBatch), 0xff, 0xff, 0xff, 0xff),
		"empty push":          mk(frameMagic, FrameVersion, byte(FramePushBatch), 0, 0, 0, 0),
		"ragged ids":          mk(frameMagic, FrameVersion, byte(FramePushBatch), 0, 0, 0, 9),
		"subscribe wrong len": mk(frameMagic, FrameVersion, byte(FrameSubscribe), 0, 0, 0, 8),
		"subscribe zero":      append(mk(frameMagic, FrameVersion, byte(FrameSubscribe), 0, 0, 0, 4), 0, 0, 0, 0),
		"ping wrong len":      mk(frameMagic, FrameVersion, byte(FramePing), 0, 0, 0, 4),
		"error empty":         mk(frameMagic, FrameVersion, byte(FrameError), 0, 0, 0, 0),
		"truncated payload":   append(mk(frameMagic, FrameVersion, byte(FramePing), 0, 0, 0, 8), 1, 2),
	}
	for name, data := range cases {
		if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// The legacy magic must be called out specifically so operators can tell
	// a misdirected v1 peer from random garbage.
	_, err := ReadFrame(bytes.NewReader(cases["legacy magic"]))
	if !errors.Is(err, errLegacyMagic) {
		t.Errorf("legacy magic error = %v", err)
	}
	// Clean EOF passes through for shutdown detection.
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

// TestFrameClusterRoundTrip covers the cluster vocabulary end to end:
// every member-to-member frame type and every extended Subscribe form must
// survive an encode/decode cycle with all fields intact.
func TestFrameClusterRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameSubAck, Token: 0xfeedface},
		{Type: FrameForward, Token: 3, IDs: []uint64{1, 1 << 63, 42}},
		{Type: FrameSampleLocal, N: 9},
		{Type: FrameSampleLocalResp, Token: 7},                      // |Γ| with an empty draw
		{Type: FrameSampleLocalResp, Token: 512, IDs: []uint64{11}}, // and with payload
		{Type: FrameMigrateState, Blob: []byte{0x55, 0x4e, 0x53, 0x4d, 1}},
		{Type: FrameMigrateAck, Token: 6},
		{Type: FramePlacementUpdate, Token: 4, SlotFrom: 10, SlotTo: 20, Owner: 2},
		{Type: FramePlacementUpdate, Token: 1, SlotFrom: 5, SlotTo: 5, Owner: 0}, // single slot
		{Type: FrameSubscribe, N: 64, Rate: 100},                                 // rate form, every defaulted
		{Type: FrameSubscribe, N: 64, Every: 3, Rate: 7},
		{Type: FrameSubscribe, N: 64, Every: 1, Token: 77}, // resume form
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		want := f
		switch want.Type {
		case FrameSubscribe, FrameSample, FrameSampleLocal:
			if want.Every < 1 {
				want.Every = 1 // decoder normalises "deliver everything"
			}
		}
		if got.Type != want.Type || got.N != want.N || got.Every != want.Every ||
			got.Rate != want.Rate || got.Token != want.Token ||
			got.SlotFrom != want.SlotFrom || got.SlotTo != want.SlotTo ||
			got.Owner != want.Owner || got.Msg != want.Msg {
			t.Fatalf("round trip %+v -> %+v", f, got)
		}
		if len(got.IDs) != len(f.IDs) || !bytes.Equal(got.Blob, f.Blob) {
			t.Fatalf("round trip %+v -> %+v", f, got)
		}
		for i := range f.IDs {
			if got.IDs[i] != f.IDs[i] {
				t.Fatalf("round trip %+v -> %+v", f, got)
			}
		}
	}
	// Each Subscribe extension rides its canonical payload length: a rate
	// cap forces the 12-byte form, a resume token the 20-byte form.
	for _, c := range []struct {
		f    Frame
		want int
	}{
		{Frame{Type: FrameSubscribe, N: 1, Rate: 5}, 12},
		{Frame{Type: FrameSubscribe, N: 1, Every: 4, Rate: 5}, 12},
		{Frame{Type: FrameSubscribe, N: 1, Token: 9}, 20},
		{Frame{Type: FrameSubscribe, N: 1, Every: 4, Rate: 5, Token: 9}, 20},
	} {
		buf, err := AppendFrame(nil, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(buf) - frameHeaderLen; got != c.want {
			t.Fatalf("%+v encoded a %d-byte payload, want %d", c.f, got, c.want)
		}
	}
}

// TestFrameClusterEncodeRejects pins the validation on the cluster frames'
// encode path: empty or oversized batches and blobs, inverted slot ranges.
func TestFrameClusterEncodeRejects(t *testing.T) {
	cases := []Frame{
		{Type: FrameForward, Token: 1},                                     // forwards always carry ids
		{Type: FrameForward, Token: 1, IDs: make([]uint64, MaxBatch+1)},    // oversized
		{Type: FrameSampleLocalResp, IDs: make([]uint64, MaxBatch+1)},      // oversized
		{Type: FrameSampleLocal, N: 0},                                     // sample size ≥ 1
		{Type: FrameMigrateState},                                          // empty blob
		{Type: FrameMigrateState, Blob: make([]byte, MaxMigratePayload+1)}, // oversized blob
		{Type: FramePlacementUpdate, Token: 1, SlotFrom: 6, SlotTo: 5},     // inverted range
	}
	for _, f := range cases {
		if err := WriteFrame(io.Discard, f); err == nil {
			t.Errorf("encoding %+v succeeded, want error", f)
		}
	}
}

// TestFrameClusterDecodeRejects throws malformed cluster-frame headers and
// payloads at the decoder: wrong fixed lengths, ragged id payloads, empty
// blobs, non-canonical subscribe extensions, inverted placement ranges.
func TestFrameClusterDecodeRejects(t *testing.T) {
	mk := func(b ...byte) []byte { return b }
	cases := map[string][]byte{
		"forward without ids": append(mk(frameMagic, FrameVersion, byte(FrameForward), 0, 0, 0, 8),
			0, 0, 0, 0, 0, 0, 0, 1),
		"forward ragged":         mk(frameMagic, FrameVersion, byte(FrameForward), 0, 0, 0, 17),
		"sample-local wrong len": mk(frameMagic, FrameVersion, byte(FrameSampleLocal), 0, 0, 0, 8),
		"sample-local-resp short": append(mk(frameMagic, FrameVersion, byte(FrameSampleLocalResp), 0, 0, 0, 4),
			0, 0, 0, 1),
		"suback wrong len":      mk(frameMagic, FrameVersion, byte(FrameSubAck), 0, 0, 0, 4),
		"migrate-ack wrong len": mk(frameMagic, FrameVersion, byte(FrameMigrateAck), 0, 0, 0, 12),
		"migrate empty blob":    mk(frameMagic, FrameVersion, byte(FrameMigrateState), 0, 0, 0, 0),
		"placement wrong len":   mk(frameMagic, FrameVersion, byte(FramePlacementUpdate), 0, 0, 0, 16),
		"placement inverted": append(mk(frameMagic, FrameVersion, byte(FramePlacementUpdate), 0, 0, 0, 20),
			0, 0, 0, 0, 0, 0, 0, 1, // epoch 1
			0, 0, 0, 9, // fromSlot 9
			0, 0, 0, 8, // toSlot 8
			0, 0, 0, 0), // owner 0
		"subscribe rate zero": append(mk(frameMagic, FrameVersion, byte(FrameSubscribe), 0, 0, 0, 12),
			0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0),
		"subscribe token zero": append(mk(frameMagic, FrameVersion, byte(FrameSubscribe), 0, 0, 0, 20),
			0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0),
		"subscribe odd len": mk(frameMagic, FrameVersion, byte(FrameSubscribe), 0, 0, 0, 16),
	}
	for name, data := range cases {
		if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// The oversized-blob bound is MigrateState's own, larger than the
	// generic frame cap: a header promising one byte over it must fail
	// before any allocation, while the generic cap stays in force for the
	// id-bearing types.
	over := MaxMigratePayload + 1
	hdr := mk(frameMagic, FrameVersion, byte(FrameMigrateState),
		byte(over>>24), byte(over>>16), byte(over>>8), byte(over))
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized migrate blob header error = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameStreamSequence decodes several frames back to back from one
// reader, the shape of a live connection.
func TestFrameStreamSequence(t *testing.T) {
	var buf bytes.Buffer
	seq := []Frame{
		{Type: FrameSubscribe, N: 8},
		{Type: FramePushBatch, IDs: []uint64{5, 6}},
		{Type: FrameStreamData, IDs: []uint64{5}},
		{Type: FramePing, Token: 3},
	}
	for _, f := range seq {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range seq {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Fatalf("frame %d type %d, want %d", i, got.Type, want.Type)
		}
	}
}

// FuzzReadFrame hammers the framed decoder with hostile bytes: it must fail
// cleanly or decode a frame whose canonical re-encoding reproduces exactly
// the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	seedFrames := []Frame{
		{Type: FramePushBatch, IDs: []uint64{1, 2, 3}},
		{Type: FrameSubscribe, N: 64},
		{Type: FrameSample, N: 5},
		{Type: FrameSampleResp, IDs: nil},
		{Type: FrameStreamData, IDs: []uint64{1 << 62}},
		{Type: FramePing, Token: 99},
		{Type: FramePong, Token: 99},
		{Type: FrameError, Msg: "boom"},
		{Type: FrameSubAck, Token: 7},
		{Type: FrameForward, Token: 2, IDs: []uint64{4, 5}},
		{Type: FrameSampleLocal, N: 3},
		{Type: FrameSampleLocalResp, Token: 64, IDs: []uint64{8}},
		{Type: FrameMigrateState, Blob: []byte{1, 2, 3}},
		{Type: FrameMigrateAck, Token: 11},
		{Type: FramePlacementUpdate, Token: 1, SlotFrom: 0, SlotTo: 63, Owner: 1},
		{Type: FrameSubscribe, N: 16, Rate: 50},
		{Type: FrameSubscribe, N: 16, Every: 2, Token: 5},
	}
	for _, fr := range seedFrames {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(append(buf, 0xff)) // trailing garbage
	}
	f.Add([]byte{})
	f.Add([]byte{legacyMagic, 1, 0, 0, 0, 1})               // legacy v1 header
	f.Add([]byte{frameMagic, FrameVersion, 99, 0, 0, 0, 0}) // unknown type
	f.Add([]byte{frameMagic, FrameVersion, byte(FramePushBatch), 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(fr.IDs) > MaxBatch {
			t.Fatalf("decoded %d ids above MaxBatch", len(fr.IDs))
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encoding decoded frame %+v failed: %v", fr, err)
		}
		if len(data) < len(re) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("decode/encode mismatch for %x: re-encoded %x", data, re)
		}
	})
}

// TestFrameReaderReusesBuffers pins the FrameReader contract: frames decode
// identically to ReadFrame, the IDs slice of one Read is overwritten by the
// next (callers must copy what they keep), and a steady sequence of
// same-size batches performs zero allocations per frame after the first.
func TestFrameReaderReusesBuffers(t *testing.T) {
	var buf bytes.Buffer
	first := []uint64{1, 2, 3}
	second := []uint64{7, 8, 9}
	for _, ids := range [][]uint64{first, second} {
		if err := WriteFrame(&buf, Frame{Type: FramePushBatch, IDs: ids}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	f1, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	held := f1.IDs // retained across Read, against the contract
	f2, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range second {
		if f2.IDs[i] != want {
			t.Fatalf("second frame id %d = %d, want %d", i, f2.IDs[i], want)
		}
	}
	if &held[0] != &f2.IDs[0] {
		t.Fatal("FrameReader did not reuse the id buffer across same-size reads")
	}
	if held[0] != second[0] {
		t.Fatal("retained slice not overwritten — reuse contract not exercised")
	}
}

// TestFrameReaderMatchesReadFrame decodes a mixed frame sequence through
// one FrameReader and per-frame ReadFrame calls and requires identical
// results (the reader grows its buffers across differently sized frames).
func TestFrameReaderMatchesReadFrame(t *testing.T) {
	seq := []Frame{
		{Type: FramePushBatch, IDs: []uint64{5, 6}},
		{Type: FramePushBatch, IDs: []uint64{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: FramePing, Token: 3},
		{Type: FrameStreamData, IDs: []uint64{9}},
		{Type: FrameSample, N: 4},
		{Type: FrameError, Msg: "nope"},
	}
	var a, b bytes.Buffer
	for _, f := range seq {
		if err := WriteFrame(&a, f); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&b, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&a)
	for i := range seq {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want, err := ReadFrame(&b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.N != want.N || got.Every != want.Every ||
			got.Token != want.Token || got.Msg != want.Msg || len(got.IDs) != len(want.IDs) {
			t.Fatalf("frame %d: %+v vs ReadFrame %+v", i, got, want)
		}
		for j := range got.IDs {
			if got.IDs[j] != want.IDs[j] {
				t.Fatalf("frame %d id %d: %d vs %d", i, j, got.IDs[j], want.IDs[j])
			}
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("drained reader returned %v, want io.EOF", err)
	}
}

// TestReadFrameStillAllocatesFresh: the package-level ReadFrame keeps its
// retain-forever contract — ids from consecutive calls never alias.
func TestReadFrameStillAllocatesFresh(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := WriteFrame(&buf, Frame{Type: FramePushBatch, IDs: []uint64{uint64(i + 1), 2}}); err != nil {
			t.Fatal(err)
		}
	}
	f1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if &f1.IDs[0] == &f2.IDs[0] {
		t.Fatal("ReadFrame reused a buffer across calls")
	}
	if f1.IDs[0] != 1 || f2.IDs[0] != 2 {
		t.Fatalf("ids corrupted: %v %v", f1.IDs, f2.IDs)
	}
}
