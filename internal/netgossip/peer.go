package netgossip

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// BatchSink absorbs batches of received identifiers in place of the peer's
// own single-goroutine sampler — typically a sharded ingestion pool
// (internal/shard) that scales to traffic one sampler cannot absorb. The
// slice is valid only for the duration of the call and is reused for the
// next wire batch: a sink must copy anything it keeps. (shard.Pool.PushBatch
// already copies ids into its own pooled payloads, so it satisfies the
// contract for free.)
type BatchSink interface {
	PushBatch(ids []uint64) error
}

// SampleSource is optionally implemented by sinks that can answer samples
// (internal/shard.Pool does); a peer with such a sink keeps serving Sample
// and Memory transparently.
type SampleSource interface {
	Sample() (uint64, bool)
	Memory() []uint64
}

// Config parameterises a peer.
type Config struct {
	// Self is this node's identifier, gossiped to neighbours every round.
	Self uint64
	// C, K, S size the knowledge-free sampler (memory and sketch shape).
	// Ignored when Sink is set.
	C, K, S int
	// Sink, when non-nil, receives every decoded batch instead of the
	// peer-local sampler: the peer becomes a network front-end feeding a
	// shared (typically sharded) sampling pool.
	Sink BatchSink
	// DisableInputStats turns off the exact received-id histogram. The
	// histogram is an unbounded map keyed by distinct id — fine for
	// simulations and tests, but a daemon on a public listener must not
	// keep exact state an attacker can grow one entry per Sybil id.
	DisableInputStats bool
	// Fanout is how many neighbours receive a batch per PushRound.
	Fanout int
	// ForwardBuffer is the number of recently heard ids re-gossiped along
	// with the own id (rumor mongering); 0 disables forwarding.
	ForwardBuffer int
	// ForwardPerPush caps how many forwarded ids join each batch.
	ForwardPerPush int
	// Seed drives the peer's private randomness.
	Seed uint64
}

func (c Config) validate() error {
	if c.Sink == nil && (c.C < 1 || c.K < 1 || c.S < 1) {
		return fmt.Errorf("netgossip: invalid sampler sizing c=%d k=%d s=%d", c.C, c.K, c.S)
	}
	if c.Fanout < 1 {
		return fmt.Errorf("netgossip: fanout must be at least 1, got %d", c.Fanout)
	}
	if c.ForwardBuffer < 0 || c.ForwardPerPush < 0 {
		return fmt.Errorf("netgossip: negative forwarding parameters")
	}
	if 1+c.ForwardPerPush > MaxBatch {
		return fmt.Errorf("netgossip: batch of %d ids exceeds protocol limit", 1+c.ForwardPerPush)
	}
	return nil
}

// Peer is one node of the gossip overlay: it owns a set of connections, a
// knowledge-free sampler fed by everything received, and a forward buffer
// for rumor mongering. All methods are safe for concurrent use.
type Peer struct {
	cfg Config

	mu      sync.Mutex
	sampler *core.KnowledgeFree
	r       *rng.Xoshiro
	forward []uint64
	fwdPos  int
	conns   []net.Conn
	input   *metrics.Histogram
	closed  bool

	readers sync.WaitGroup
}

// NewPeer creates a peer with no connections yet.
func NewPeer(cfg Config) (*Peer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	p := &Peer{
		cfg: cfg,
		r:   r,
	}
	if !cfg.DisableInputStats {
		p.input = metrics.NewHistogram()
	}
	if cfg.Sink == nil {
		sampler, err := core.NewKnowledgeFree(cfg.C, cfg.K, cfg.S, r.Split())
		if err != nil {
			return nil, err
		}
		p.sampler = sampler
	}
	if cfg.ForwardBuffer > 0 {
		p.forward = make([]uint64, 0, cfg.ForwardBuffer)
	}
	return p, nil
}

// AddConn hands a connection to the peer, which starts reading batches from
// it immediately. The peer owns the connection from this point and closes
// it on shutdown or on protocol error.
func (p *Peer) AddConn(conn net.Conn) error {
	if conn == nil {
		return errors.New("netgossip: nil connection")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return errors.New("netgossip: peer closed")
	}
	p.conns = append(p.conns, conn)
	p.readers.Add(1)
	p.mu.Unlock()
	go p.readLoop(conn)
	return nil
}

// readLoop consumes frames from one connection until error or shutdown.
// Gossip connections carry FramePushBatch upstream; keepalives are
// tolerated (and pings answered), anything else is a protocol breach that
// drops the connection. A client still speaking the retired v1 batch
// protocol trips the legacy magic on its first byte and is refused loudly:
// a FrameError naming the replacement goes back best-effort before the
// drop, so the operator of the stale client sees why instead of a silent
// reset.
func (p *Peer) readLoop(conn net.Conn) {
	defer p.readers.Done()
	// One buffer-reusing decoder per connection: a sustained batch flood
	// costs no per-frame allocations. Every consumer below (the histogram,
	// the sampler, the forward ring, the sink per its contract) copies what
	// it keeps before the next Read overwrites the buffer.
	fr := NewFrameReader(conn)
	for {
		f, err := fr.Read()
		if err != nil {
			if errors.Is(err, errLegacyMagic) {
				_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				_ = WriteFrame(conn, Frame{Type: FrameError,
					Msg: "v1 batch protocol retired: speak the framed protocol (version 2)"})
			}
			p.dropConn(conn)
			return
		}
		switch f.Type {
		case FramePushBatch:
			p.ingest(f.IDs)
		case FramePing, FramePong:
			// Keepalives are tolerated but not answered here: answering
			// would interleave writes with a concurrent PushRound on the
			// same connection, and gossip liveness already rides on the
			// push-round write path.
		default:
			p.dropConn(conn)
			return
		}
	}
}

// ingest feeds received ids into the sampler (or sink), stream statistics
// and the forward buffer. The sink push happens outside the peer lock so a
// pool applying backpressure never stalls concurrent peer operations.
func (p *Peer) ingest(ids []uint64) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	// A pure forwarding front-end (sink set, stats disabled, no rumor
	// mongering) must not spin per-id under the peer lock.
	if p.input != nil || p.sampler != nil || cap(p.forward) > 0 {
		for _, id := range ids {
			if p.input != nil {
				p.input.Add(id)
			}
			if p.sampler != nil {
				p.sampler.Process(id)
			}
			if cap(p.forward) > 0 {
				if len(p.forward) < cap(p.forward) {
					p.forward = append(p.forward, id)
				} else {
					p.forward[p.fwdPos] = id
					p.fwdPos = (p.fwdPos + 1) % cap(p.forward)
				}
			}
		}
	}
	p.mu.Unlock()
	if p.cfg.Sink != nil {
		// A closed or overloaded sink only costs stream elements, which a
		// sampling service can always afford; the connection stays up.
		_ = p.cfg.Sink.PushBatch(ids)
	}
}

// dropConn removes and closes a connection (reader exit path).
func (p *Peer) dropConn(conn net.Conn) {
	p.mu.Lock()
	for i, c := range p.conns {
		if c == conn {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	_ = conn.Close()
}

// PushRound performs one push-gossip round: Fanout randomly chosen
// neighbours each receive a batch of the own id plus up to ForwardPerPush
// forwarded ids. Writes happen outside the peer lock; a neighbour that
// fails to accept the batch is dropped. It reports how many batches were
// delivered.
func (p *Peer) PushRound() (delivered int, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errors.New("netgossip: peer closed")
	}
	if len(p.conns) == 0 {
		p.mu.Unlock()
		return 0, nil
	}
	// Choose targets and compose the batch under the lock.
	targets := make([]net.Conn, 0, p.cfg.Fanout)
	for i := 0; i < p.cfg.Fanout; i++ {
		targets = append(targets, p.conns[p.r.Intn(len(p.conns))])
	}
	batch := make([]uint64, 0, 1+p.cfg.ForwardPerPush)
	batch = append(batch, p.cfg.Self)
	for i := 0; i < p.cfg.ForwardPerPush && len(p.forward) > 0; i++ {
		batch = append(batch, p.forward[p.r.Intn(len(p.forward))])
	}
	p.mu.Unlock()

	for _, conn := range targets {
		if werr := WriteFrame(conn, Frame{Type: FramePushBatch, IDs: batch}); werr != nil {
			p.dropConn(conn)
			continue
		}
		delivered++
	}
	return delivered, nil
}

// Inject sends an arbitrary batch to every current neighbour — the
// adversarial primitive (a malicious peer flooding Sybil identifiers).
func (p *Peer) Inject(ids []uint64) error {
	p.mu.Lock()
	conns := append([]net.Conn(nil), p.conns...)
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("netgossip: peer closed")
	}
	for _, conn := range conns {
		if err := WriteFrame(conn, Frame{Type: FramePushBatch, IDs: ids}); err != nil {
			p.dropConn(conn)
		}
	}
	return nil
}

// Sample returns the sampling service's current uniform sample. With a
// sink configured it delegates to the sink when that sink can answer
// (SampleSource); otherwise ok is always false.
func (p *Peer) Sample() (uint64, bool) {
	if p.cfg.Sink != nil {
		if src, ok := p.cfg.Sink.(SampleSource); ok {
			return src.Sample()
		}
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sampler.Sample()
}

// Memory returns a copy of the sampler's memory Γ (the sink's, when a
// SampleSource sink is configured).
func (p *Peer) Memory() []uint64 {
	if p.cfg.Sink != nil {
		if src, ok := p.cfg.Sink.(SampleSource); ok {
			return src.Memory()
		}
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sampler.Memory()
}

// InputStats returns a snapshot of the received-id histogram; nil when the
// peer was created with DisableInputStats.
func (p *Peer) InputStats() map[uint64]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.input == nil {
		return nil
	}
	return p.input.Counts()
}

// NumConns returns the current number of live connections.
func (p *Peer) NumConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close shuts the peer down: all connections are closed and all reader
// goroutines joined. Idempotent.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	p.readers.Wait()
	return nil
}

// Listen accepts TCP connections on addr and adds each to the peer until
// the listener fails (e.g. because it was closed). It returns the listener
// so the caller can address and close it; the accept loop runs in a
// background goroutine that exits with the listener.
func (p *Peer) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netgossip: listen: %w", err)
	}
	p.Serve(ln)
	return ln, nil
}

// Serve accepts connections from an existing listener and adds each to the
// peer until the listener fails (e.g. because it was closed). It is Listen
// for callers that construct the listener themselves — a tls.NewListener
// wrap, a unix socket, an in-memory pipe listener in tests. The accept loop
// runs in a background goroutine that exits with the listener; the caller
// keeps ownership of ln and closes it to stop serving.
func (p *Peer) Serve(ln net.Listener) {
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if err := p.AddConn(conn); err != nil {
				_ = conn.Close()
				return
			}
		}
	}()
}

// Connect dials a TCP neighbour and adds the connection.
func (p *Peer) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("netgossip: dial %s: %w", addr, err)
	}
	return p.AddConn(conn)
}
