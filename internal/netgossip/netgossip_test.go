package netgossip

import (
	"net"
	"strings"
	"testing"
	"time"

	"nodesampling/internal/cms"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
)

func peerConfig(self uint64) Config {
	return Config{
		Self: self, C: 15, K: 8, S: 4,
		Fanout: 2, ForwardBuffer: 16, ForwardPerPush: 2,
		Seed: self + 1,
	}
}

// TestLegacyClientRefusedLoudly pins the v1 retirement contract: a client
// that opens a gossip connection and speaks the retired one-way batch
// protocol gets a FrameError naming the replacement before the peer drops
// the connection — not a silent reset.
func TestLegacyClientRefusedLoudly(t *testing.T) {
	p, err := NewPeer(peerConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := net.Pipe()
	if err := p.AddConn(a); err != nil {
		t.Fatal(err)
	}
	// The head of a v1 batch frame: magic 'u', version 1, count 1, first
	// payload byte — exactly the framed header's length, so the write
	// completes on the synchronous pipe before the refusal comes back.
	legacy := []byte{legacyMagic, 1, 0, 0, 0, 1, 0}
	if _, err := b.Write(legacy); err != nil {
		t.Fatal(err)
	}
	_ = b.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(b)
	if err != nil {
		t.Fatalf("no loud refusal frame: %v", err)
	}
	if f.Type != FrameError {
		t.Fatalf("refusal frame type %d, want FrameError", f.Type)
	}
	if !strings.Contains(f.Msg, "v1") || !strings.Contains(f.Msg, "version 2") {
		t.Fatalf("refusal message %q does not name the retired and replacement protocols", f.Msg)
	}
	waitFor(t, "legacy connection to be dropped", func() bool {
		return p.NumConns() == 0
	})
}

// TestPeerWireFormatIsFramed pins the wire bytes after the fold-in: a
// PushRound reaches the network as a FramePushBatch frame the framed
// decoder accepts — there is exactly one decoder left.
func TestPeerWireFormatIsFramed(t *testing.T) {
	p, err := NewPeer(peerConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := net.Pipe()
	if err := p.AddConn(a); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 3; i++ {
			_, _ = p.PushRound()
		}
	}()
	_ = b.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FramePushBatch {
		t.Fatalf("gossip round frame type %d, want FramePushBatch", f.Type)
	}
	if len(f.IDs) == 0 || f.IDs[0] != 11 {
		t.Fatalf("gossip batch %v, want the own id first", f.IDs)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Self: 1, C: 0, K: 8, S: 4, Fanout: 1},
		{Self: 1, C: 5, K: 0, S: 4, Fanout: 1},
		{Self: 1, C: 5, K: 8, S: 0, Fanout: 1},
		{Self: 1, C: 5, K: 8, S: 4, Fanout: 0},
		{Self: 1, C: 5, K: 8, S: 4, Fanout: 1, ForwardBuffer: -1},
		{Self: 1, C: 5, K: 8, S: 4, Fanout: 1, ForwardPerPush: MaxBatch},
	}
	for i, cfg := range bad {
		if _, err := NewPeer(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// meshedPeers wires n peers into a full mesh over in-memory pipes.
func meshedPeers(t *testing.T, n int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := NewPeer(peerConfig(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		t.Cleanup(func() { _ = p.Close() })
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := net.Pipe()
			if err := peers[i].AddConn(a); err != nil {
				t.Fatal(err)
			}
			if err := peers[j].AddConn(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	return peers
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestMeshGossipPropagatesAllIDs(t *testing.T) {
	const n = 5
	peers := meshedPeers(t, n)
	for round := 0; round < 60; round++ {
		for _, p := range peers {
			if _, err := p.PushRound(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every peer must eventually have heard every other peer's id (readers
	// are asynchronous, so poll).
	for i, p := range peers {
		p := p
		waitFor(t, "full id coverage", func() bool {
			stats := p.InputStats()
			for j := 0; j < n; j++ {
				if j != i && stats[uint64(j)] == 0 {
					return false
				}
			}
			return true
		})
		if id, ok := p.Sample(); !ok || id >= n {
			t.Fatalf("peer %d sample (%d, %v) outside the overlay", i, id, ok)
		}
		if len(p.Memory()) == 0 {
			t.Fatalf("peer %d has empty memory", i)
		}
	}
}

func TestInjectFloodIsAbsorbed(t *testing.T) {
	peers := meshedPeers(t, 4)
	attacker := peers[0]
	sybil := []uint64{1000, 1001, 1002}
	for round := 0; round < 150; round++ {
		for _, p := range peers[1:] {
			if _, err := p.PushRound(); err != nil {
				t.Fatal(err)
			}
		}
		if err := attacker.Inject(sybil); err != nil {
			t.Fatal(err)
		}
	}
	victim := peers[1]
	waitFor(t, "attack traffic to arrive", func() bool {
		return victim.InputStats()[1000] > 50
	})
	stats := victim.InputStats()
	var sybilIn, totalIn uint64
	for id, c := range stats {
		totalIn += c
		if id >= 1000 {
			sybilIn += c
		}
	}
	if frac := float64(sybilIn) / float64(totalIn); frac < 0.3 {
		t.Fatalf("attack too weak to be meaningful: sybil input share %v", frac)
	}
	// The sampler's memory must not be monopolised by the three sybil ids.
	mem := victim.Memory()
	sybilSlots := 0
	for _, id := range mem {
		if id >= 1000 {
			sybilSlots++
		}
	}
	if sybilSlots == len(mem) {
		t.Fatalf("memory fully captured by sybil ids: %v", mem)
	}
}

// TestPeerFeedsSink wires a peer to a sharded pool sink: received batches
// must land in the pool instead of a peer-local sampler, and Sample/Memory
// must answer through the sink.
func TestPeerFeedsSink(t *testing.T) {
	pool, err := shard.New(shard.Config{
		Shards:   4,
		Buffer:   16,
		Block:    true,
		Seed:     5,
		Capacity: 10,
		NewSketch: func(r *rng.Xoshiro) (*cms.Sketch, error) {
			return cms.NewWithDimensions(8, 4, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	front, err := NewPeer(Config{Self: 1, Sink: pool, Fanout: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	sender, err := NewPeer(peerConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	a, b := net.Pipe()
	if err := front.AddConn(a); err != nil {
		t.Fatal(err)
	}
	if err := sender.AddConn(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := sender.PushRound(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "ids to reach the pool", func() bool {
		return pool.Stats().Processed > 0
	})
	if id, ok := front.Sample(); !ok || id != 7 {
		t.Fatalf("front sample = (%d, %v), want the sender id 7", id, ok)
	}
	mem := front.Memory()
	if len(mem) == 0 || mem[0] != 7 {
		t.Fatalf("front memory = %v, want the sender id", mem)
	}
	// The front-end still records stream statistics itself.
	if front.InputStats()[7] == 0 {
		t.Fatal("front did not record input stats")
	}
}

func TestDisableInputStats(t *testing.T) {
	sink := &sinkOnly{}
	p, err := NewPeer(Config{Self: 1, Sink: sink, Fanout: 1, Seed: 4, DisableInputStats: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ingest([]uint64{10, 11, 12})
	if stats := p.InputStats(); stats != nil {
		t.Fatalf("InputStats = %v, want nil when disabled", stats)
	}
	if sink.n != 3 {
		t.Fatalf("sink received %d ids, want 3", sink.n)
	}
}

// sinkOnly is a BatchSink without SampleSource, to pin down the degraded
// behaviour of Sample/Memory on a pure forwarding front-end.
type sinkOnly struct{ n int }

func (s *sinkOnly) PushBatch(ids []uint64) error { s.n += len(ids); return nil }

func TestPeerWithSampleBlindSink(t *testing.T) {
	p, err := NewPeer(Config{Self: 1, Sink: &sinkOnly{}, Fanout: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok := p.Sample(); ok {
		t.Fatal("sample ok on a sample-blind sink")
	}
	if mem := p.Memory(); mem != nil {
		t.Fatalf("memory = %v, want nil", mem)
	}
}

func TestPushRoundWithoutConns(t *testing.T) {
	p, err := NewPeer(peerConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	delivered, err := p.PushRound()
	if err != nil || delivered != 0 {
		t.Fatalf("PushRound on isolated peer = (%d, %v)", delivered, err)
	}
}

func TestCloseLifecycle(t *testing.T) {
	peers := meshedPeers(t, 3)
	if err := peers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := peers[0].PushRound(); err == nil {
		t.Error("PushRound after close should fail")
	}
	if err := peers[0].Inject([]uint64{1}); err == nil {
		t.Error("Inject after close should fail")
	}
	a, _ := net.Pipe()
	if err := peers[0].AddConn(a); err == nil {
		t.Error("AddConn after close should fail")
	}
	// The surviving peers lose the connection eventually and keep working.
	waitFor(t, "neighbours to drop the closed peer", func() bool {
		return peers[1].NumConns() == 1 && peers[2].NumConns() == 1
	})
	if _, err := peers[1].PushRound(); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageOnWireDropsConnection(t *testing.T) {
	p, err := NewPeer(peerConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := net.Pipe()
	if err := p.AddConn(a); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "garbage connection to be dropped", func() bool {
		return p.NumConns() == 0
	})
}

func TestTCPEndToEnd(t *testing.T) {
	server, err := NewPeer(peerConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ln, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	client, err := NewPeer(peerConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server to accept", func() bool { return server.NumConns() == 1 })

	for i := 0; i < 30; i++ {
		if _, err := client.PushRound(); err != nil {
			t.Fatal(err)
		}
		if _, err := server.PushRound(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "ids to cross the TCP link", func() bool {
		return server.InputStats()[200] > 0 && client.InputStats()[100] > 0
	})
}

func TestConnectFailure(t *testing.T) {
	p, err := NewPeer(peerConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Connect("127.0.0.1:1"); err == nil {
		t.Error("connect to a dead port should fail")
	}
	if err := p.AddConn(nil); err == nil {
		t.Error("nil conn should fail")
	}
}
