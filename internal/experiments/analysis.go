package experiments

import (
	"fmt"
	"math"

	"nodesampling/internal/markov"
	"nodesampling/internal/stream"
	"nodesampling/internal/urn"
)

// etaGrid is the failure-probability grid of Figures 3 and 4.
func etaGrid() []float64 {
	return []float64{0.5, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
}

// Fig3 regenerates Figure 3: the targeted-attack effort L_{k,s} as a
// function of the sketch width k for s = 10 and the η_T grid.
func Fig3(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const s = 10
	ks := []int{10, 25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	if cfg.Quick {
		ks = []int{10, 50, 250, 500}
	}
	etas := etaGrid()
	t := Table{
		ID:      "fig3",
		Title:   "Figure 3: L_{k,s} (distinct malicious ids for a targeted attack), s = 10",
		Columns: []string{"k"},
		Notes:   "Exact values from Relation (2); the paper plots the same series on a log y-axis.",
	}
	for _, eta := range etas {
		t.Columns = append(t.Columns, fmt.Sprintf("L(eta=%g)", eta))
	}
	for _, k := range ks {
		row := []string{fmtInt(k)}
		for _, eta := range etas {
			l, err := urn.TargetedEffort(k, s, eta)
			if err != nil {
				return Table{}, fmt.Errorf("fig3: %w", err)
			}
			row = append(row, fmtInt(l))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4 regenerates Figure 4: the flooding-attack effort E_k as a function
// of k for the η_F grid.
func Fig4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	ks := []int{10, 25, 50, 75, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	if cfg.Quick {
		ks = []int{10, 50, 250, 500}
	}
	etas := etaGrid()
	t := Table{
		ID:      "fig4",
		Title:   "Figure 4: E_k (distinct malicious ids for a flooding attack)",
		Columns: []string{"k"},
		Notes:   "Exact values from Relation (5) via the occupancy DP.",
	}
	for _, eta := range etas {
		t.Columns = append(t.Columns, fmt.Sprintf("E(eta=%g)", eta))
	}
	for _, k := range ks {
		row := []string{fmtInt(k)}
		for _, eta := range etas {
			e, err := urn.FloodingEffort(k, eta)
			if err != nil {
				return Table{}, fmt.Errorf("fig4: %w", err)
			}
			row = append(row, fmtInt(e))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1 regenerates Table I: key values of L_{k,s} and E_k, alongside the
// values printed in the paper for direct comparison.
func Table1(Config) (Table, error) {
	rows := []struct {
		k, s        int
		eta         float64
		paperL      int
		paperE      int // −1 when the paper prints no E for this row group
		paperEQuote string
	}{
		{10, 5, 1e-1, 38, 44, "44"},
		{10, 5, 1e-4, 104, 110, "110"},
		{50, 5, 1e-1, 193, 306, "306"},
		{50, 10, 1e-1, 227, 306, "306 (shared row group)"},
		{50, 40, 1e-1, 296, 306, "306 (shared row group)"},
		{50, 5, 1e-4, 537, 651, "651"},
		{50, 10, 1e-4, 571, 651, "651 (shared row group)"},
		{50, 40, 1e-4, 640, 651, "651 (shared row group)"},
		{250, 10, 1e-1, 1138, 1617, "1,617"},
		{250, 10, 1e-4, 2871, 3363, "3,363"},
	}
	t := Table{
		ID:      "table1",
		Title:   "Table I: key values of L_{k,s} and E_k",
		Columns: []string{"k", "s", "eta", "L (ours)", "L (paper)", "E_k (ours)", "E_k (paper)"},
		Notes: "k<=50 rows match the paper exactly except E_50(1e-4) (650 vs 651, off-by-one). " +
			"The k=250 paper values are inconsistent with the paper's own Relation (5); " +
			"see EXPERIMENTS.md.",
	}
	for _, r := range rows {
		l, err := urn.TargetedEffort(r.k, r.s, r.eta)
		if err != nil {
			return Table{}, fmt.Errorf("table1: %w", err)
		}
		e, err := urn.FloodingEffort(r.k, r.eta)
		if err != nil {
			return Table{}, fmt.Errorf("table1: %w", err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(r.k), fmtInt(r.s), fmtF(r.eta),
			fmtInt(l), fmtInt(r.paperL),
			fmtInt(e), r.paperEQuote,
		})
	}
	return t, nil
}

// Transient implements the paper's announced future work: the transient
// behaviour of the sampling service. For exact small chains it reports the
// total-variation distance to the uniform stationary regime over time from
// the adversary's preferred initial memory (the c most frequent ids), and
// the worst-case mixing time — the number of stream elements after which
// the memory is provably within ε of uniform whatever the initial contents.
func Transient(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		n, c  int
		alpha float64
	}{
		{6, 2, 1},
		{6, 2, 3},
		{8, 3, 2},
		{10, 3, 2},
	}
	if cfg.Quick {
		cases = cases[:2]
	}
	checkpoints := []int{10, 100, 1000, 10000}
	t := Table{
		ID:    "transient",
		Title: "Extension (paper's future work): transient behaviour of the exact memory chain",
		Columns: []string{
			"n", "c", "zipf alpha",
			"TV@10", "TV@100", "TV@1000", "TV@10000",
			"mixing time (eps=0.05)", "spectral gap",
		},
		Notes: "TV: total-variation distance to the uniform stationary regime from the adversarial " +
			"start (memory = the c most frequent ids). Heavier input bias slows mixing because " +
			"frequent ids are admitted (and hence displaced) more rarely; the spectral gap 1-SLEM " +
			"is the asymptotic decay rate.",
	}
	for _, cse := range cases {
		pmf := normalise(stream.ZipfPMF(cse.n, cse.alpha))
		a, r, err := markov.PaperFamilies(pmf)
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		ch, err := markov.NewChain(pmf, a, r, cse.c)
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		start, err := ch.AdversarialStart()
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		prof, err := ch.MixingProfile(start, checkpoints)
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		mix, err := ch.MixingTime(0.05, 5_000_000)
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		slem, err := ch.SLEM(1_000_000, 1e-12)
		if err != nil {
			return Table{}, fmt.Errorf("transient: %w", err)
		}
		row := []string{fmtInt(cse.n), fmtInt(cse.c), fmtF(cse.alpha)}
		for _, v := range prof {
			row = append(row, fmtF(v))
		}
		row = append(row, fmtInt(mix), fmtF(1-slem))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Thm4 validates Theorems 3 and 4 numerically on exact small chains: the
// stationary distribution is uniform over states, occupancy is c/n for
// every id, and detailed balance holds.
func Thm4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		n, c  int
		alpha float64
	}{
		{6, 2, 4},
		{8, 3, 2},
		{10, 3, 1},
		{12, 4, 0.5},
	}
	if cfg.Quick {
		cases = cases[:2]
	}
	t := Table{
		ID:    "thm4",
		Title: "Validation: Theorems 3-4 on the exact memory chain (Zipf-biased input)",
		Columns: []string{
			"n", "c", "zipf alpha", "states",
			"max |pi - 1/|S||", "max |gamma - c/n|", "reversibility defect",
		},
		Notes: "All three defects must vanish (Theorem 3: reversibility; Theorem 4: gamma = c/n).",
	}
	for _, cse := range cases {
		pmf := stream.ZipfPMF(cse.n, cse.alpha)
		sum := 0.0
		for _, v := range pmf {
			sum += v
		}
		for i := range pmf {
			pmf[i] /= sum
		}
		a, r, err := markov.PaperFamilies(pmf)
		if err != nil {
			return Table{}, fmt.Errorf("thm4: %w", err)
		}
		ch, err := markov.NewChain(pmf, a, r, cse.c)
		if err != nil {
			return Table{}, fmt.Errorf("thm4: %w", err)
		}
		pi, err := ch.Stationary()
		if err != nil {
			return Table{}, fmt.Errorf("thm4: %w", err)
		}
		wantPi := 1 / float64(ch.NumStates())
		maxPi := 0.0
		for _, v := range pi {
			if d := math.Abs(v - wantPi); d > maxPi {
				maxPi = d
			}
		}
		wantGamma := float64(cse.c) / float64(cse.n)
		maxGamma := 0.0
		for _, g := range ch.OccupancyProbabilities(pi) {
			if d := math.Abs(g - wantGamma); d > maxGamma {
				maxGamma = d
			}
		}
		rev := ch.ReversibilityDefect(ch.TheoreticalStationary())
		t.Rows = append(t.Rows, []string{
			fmtInt(cse.n), fmtInt(cse.c), fmtF(cse.alpha), fmtInt(ch.NumStates()),
			fmtF(maxPi), fmtF(maxGamma), fmtF(rev),
		})
	}
	return t, nil
}
