package experiments

import (
	"fmt"
	"math"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/trace"
)

// traceSpecs returns the Table II specifications, shrunk by a factor 20 in
// Quick mode so the suite stays fast while keeping the Zipf profile.
func traceSpecs(cfg Config) []trace.Spec {
	specs := trace.TableII()
	if !cfg.Quick {
		return specs
	}
	// Shrink the stream 20x but the population 50x, preserving enough
	// stream-per-id for the samplers to reach their stationary regime in
	// quick runs (the full-scale ratio is restored in real runs).
	for i := range specs {
		specs[i].M /= 20
		specs[i].N /= 50
		specs[i].MaxFreq /= 20
	}
	return specs
}

// Table2 regenerates Table II: the statistics of the three data traces. The
// synthetic substitutes must reproduce all three statistics exactly.
func Table2(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "table2",
		Title:   "Table II: statistics of the (synthesized) data traces",
		Columns: []string{"trace", "# ids (m)", "# distinct (n)", "max freq", "calibrated zipf alpha"},
		Notes: "Synthetic traces calibrated to the paper's published statistics (see DESIGN.md " +
			"substitution table); all three statistics are matched exactly by construction.",
	}
	for _, spec := range traceSpecs(cfg) {
		tr, err := trace.Synthesize(spec, cfg.Seed)
		if err != nil {
			return Table{}, fmt.Errorf("table2: %s: %w", spec.Name, err)
		}
		alpha, err := trace.CalibrateZipfAlpha(spec)
		if err != nil {
			return Table{}, fmt.Errorf("table2: %s: %w", spec.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtInt(tr.Len()), fmtInt(tr.Distinct()), fmtInt(int(tr.MaxFreq())), fmtF(alpha),
		})
	}
	return t, nil
}

// Fig5 regenerates Figure 5: the log-log rank/frequency profile of each
// trace, sampled at log-spaced ranks.
func Fig5(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	specs := traceSpecs(cfg)
	type rf struct {
		name  string
		freqs []uint64
	}
	var series []rf
	maxN := 0
	for _, spec := range specs {
		tr, err := trace.Synthesize(spec, cfg.Seed)
		if err != nil {
			return Table{}, fmt.Errorf("fig5: %s: %w", spec.Name, err)
		}
		series = append(series, rf{name: spec.Name, freqs: tr.RankFrequency()})
		if spec.N > maxN {
			maxN = spec.N
		}
	}
	t := Table{
		ID:      "fig5",
		Title:   "Figure 5: rank/frequency distribution of each trace (log-log)",
		Columns: []string{"rank"},
		Notes:   "Paper shape: straight lines in log-log space (Zipfian), Saskatchewan with the lowest slope.",
	}
	for _, s := range series {
		t.Columns = append(t.Columns, s.name)
	}
	for _, rank := range logGrid(1, maxN, 20) {
		row := []string{fmtInt(rank)}
		for _, s := range series {
			if rank <= len(s.freqs) {
				row = append(row, fmtInt(int(s.freqs[rank-1])))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 regenerates Figure 12: the KL divergence of the input stream and of
// the sampler outputs for each trace, with the knowledge-free strategy at
// the paper's two sizing points c = k = log n and c = k = 0.01·n.
func Fig12(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const s = 10 // row count; the figure's caption fixes only c and k
	t := Table{
		ID:    "fig12",
		Title: "Figure 12: KL divergence to uniform on the (synthesized) real traces",
		Columns: []string{
			"trace", "D(input||U)", "D(kf, c=k=log n)", "D(kf, c=k=0.01n)", "D(omniscient)",
		},
		Notes: "Paper shape: input well above the outputs; kf with c=k=0.01n close to omniscient; " +
			"omniscient near zero. Sketch depth s=10 (unspecified in the paper's caption).",
	}
	for _, spec := range traceSpecs(cfg) {
		tr, err := trace.Synthesize(spec, cfg.Seed)
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		n := tr.Distinct()
		logN := int(math.Round(math.Log(float64(n))))
		if logN < 2 {
			logN = 2
		}
		pctN := n / 100
		if pctN < 2 {
			pctN = 2
		}
		oracle, err := core.NewCountOracle(tr.Counts())
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		kfSmall, err := core.NewKnowledgeFree(logN, logN, s, rng.New(rng.Mix64(cfg.Seed+11)))
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		kfLarge, err := core.NewKnowledgeFree(pctN, pctN, s, rng.New(rng.Mix64(cfg.Seed+12)))
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		om, err := core.NewOmniscient(pctN, oracle, rng.New(rng.Mix64(cfg.Seed+13)))
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		input := metrics.NewHistogram()
		hSmall := metrics.NewHistogram()
		hLarge := metrics.NewHistogram()
		hOm := metrics.NewHistogram()
		for _, id := range tr.IDs() {
			input.Add(id)
			hSmall.Add(kfSmall.Process(id))
			hLarge.Add(kfLarge.Process(id))
			hOm.Add(om.Process(id))
		}
		din, err := input.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		dSmall, err := hSmall.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		dLarge, err := hLarge.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		dOm, err := hOm.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("fig12: %s: %w", spec.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtF(din), fmtF(dSmall), fmtF(dLarge), fmtF(dOm),
		})
	}
	return t, nil
}
