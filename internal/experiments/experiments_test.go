package experiments

import (
	"strconv"
	"testing"
)

func quickCfg() Config {
	return Config{Trials: 2, Seed: 7, Workers: 4, Quick: true}
}

// parseF parses a formatted table cell back to a float.
func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func parseI(t *testing.T, cell string) int {
	t.Helper()
	v, err := strconv.Atoi(cell)
	if err != nil {
		t.Fatalf("cell %q is not an integer: %v", cell, err)
	}
	return v
}

// TestRegistryRunsEverything smoke-runs every registered experiment in
// quick mode and validates the table structure.
func TestRegistryRunsEverything(t *testing.T) {
	order, reg := Registry()
	if len(order) != len(reg) {
		t.Fatalf("registry order has %d entries for %d runners", len(order), len(reg))
	}
	for _, id := range order {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runner, ok := reg[id]
			if !ok {
				t.Fatalf("no runner registered for %q", id)
			}
			tbl, err := runner(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table id %q, want %q", tbl.ID, id)
			}
			if tbl.Title == "" || len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("%s: degenerate table %+v", id, tbl)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s row %d has %d cells for %d columns", id, i, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

// TestFig3MatchesPaperAnchors pins the L_{k,s} values at s=10 that can be
// read off the paper (Table I's k=50 and k=250 rows at eta=0.1).
func TestFig3MatchesPaperAnchors(t *testing.T) {
	tbl, err := Fig3(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[int]int{50: 227, 250: 1139}
	col := -1
	for i, c := range tbl.Columns {
		if c == "L(eta=0.1)" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("eta=0.1 column missing in %v", tbl.Columns)
	}
	found := 0
	for _, row := range tbl.Rows {
		k := parseI(t, row[0])
		if want, ok := anchors[k]; ok {
			found++
			if got := parseI(t, row[col]); got != want {
				t.Errorf("L_{%d,10}(0.1) = %d, want %d", k, got, want)
			}
		}
	}
	if found != len(anchors) {
		t.Fatalf("anchors missing from sweep")
	}
}

// TestFig4Monotone: E_k must increase with k and with smaller eta.
func TestFig4Monotone(t *testing.T) {
	tbl, err := Fig4(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(tbl.Rows); r++ {
		for c := 1; c < len(tbl.Columns); c++ {
			if parseI(t, tbl.Rows[r][c]) <= parseI(t, tbl.Rows[r-1][c]) {
				t.Fatalf("E not increasing in k at row %d col %d", r, c)
			}
		}
	}
	for _, row := range tbl.Rows {
		for c := 2; c < len(tbl.Columns); c++ {
			if parseI(t, row[c]) < parseI(t, row[c-1]) {
				t.Fatalf("E not increasing as eta shrinks in row %v", row)
			}
		}
	}
}

// TestTable1OursColumnMatchesPaperForSmallK verifies the regenerated
// Table I reports identical L values to the paper's print for k <= 50.
func TestTable1OursColumnMatchesPaperForSmallK(t *testing.T) {
	tbl, err := Table1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		k := parseI(t, row[0])
		if k > 50 {
			continue
		}
		if row[3] != row[4] {
			t.Errorf("k=%s s=%s eta=%s: ours %s != paper %s", row[0], row[1], row[2], row[3], row[4])
		}
	}
}

// TestTable2ExactStatistics: the synthetic traces must reproduce the spec
// statistics exactly (quick mode scales them, so compare to the scaled spec).
func TestTable2ExactStatistics(t *testing.T) {
	cfg := quickCfg()
	tbl, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := traceSpecs(cfg)
	if len(tbl.Rows) != len(specs) {
		t.Fatalf("%d rows for %d specs", len(tbl.Rows), len(specs))
	}
	for i, row := range tbl.Rows {
		if parseI(t, row[1]) != specs[i].M {
			t.Errorf("%s: m = %s, want %d", row[0], row[1], specs[i].M)
		}
		if parseI(t, row[2]) != specs[i].N {
			t.Errorf("%s: n = %s, want %d", row[0], row[2], specs[i].N)
		}
		if parseI(t, row[3]) != int(specs[i].MaxFreq) {
			t.Errorf("%s: max freq = %s, want %d", row[0], row[3], specs[i].MaxFreq)
		}
	}
}

// TestFig5ZipfShape: every trace's rank/frequency series must be
// non-increasing (sorted ranks) with a strictly dominant head.
func TestFig5ZipfShape(t *testing.T) {
	tbl, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col < len(tbl.Columns); col++ {
		prev := -1
		for _, row := range tbl.Rows {
			if row[col] == "-" {
				continue
			}
			v := parseI(t, row[col])
			if prev >= 0 && v > prev {
				t.Fatalf("%s: frequencies increase along ranks", tbl.Columns[col])
			}
			prev = v
		}
	}
}

// TestFig6Shape: the input stream's peak frequency must dwarf the
// omniscient output's peak at the final checkpoint, with knowledge-free in
// between (the visual claim of the isopleth).
func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	maxIn := parseF(t, last[1])
	maxKf := parseF(t, last[2])
	maxOm := parseF(t, last[3])
	// The isopleth's ordering claim: input band > knowledge-free > omniscient,
	// with the input far above the omniscient output. (At full scale the
	// input/kf separation widens further; quick mode checks the ordering.)
	if !(maxIn > maxKf && maxKf > maxOm) {
		t.Fatalf("peak ordering broken: in=%v kf=%v om=%v", maxIn, maxKf, maxOm)
	}
	if maxIn < 2*maxOm {
		t.Fatalf("input peak %v not well above omniscient %v", maxIn, maxOm)
	}
}

// TestFig7aShape: the paper's claims for the peak attack — knowledge-free
// divides the peak by an order of magnitude, omniscient restores near
// uniformity (attacked/correct ratio near 1).
func TestFig7aShape(t *testing.T) {
	tbl, err := Fig7a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: input, knowledge-free, omniscient. Column 3 = attacked/correct.
	rIn := parseF(t, tbl.Rows[0][3])
	rKf := parseF(t, tbl.Rows[1][3])
	rOm := parseF(t, tbl.Rows[2][3])
	if !(rIn > 100) {
		t.Fatalf("input attack ratio %v too small for a peak attack", rIn)
	}
	if !(rKf < rIn/5) {
		t.Fatalf("knowledge-free ratio %v not well below input %v", rKf, rIn)
	}
	if !(rOm < 3) {
		t.Fatalf("omniscient ratio %v not near uniform", rOm)
	}
	// Gains: omniscient above knowledge-free, both positive.
	gKf := parseF(t, tbl.Rows[1][4])
	gOm := parseF(t, tbl.Rows[2][4])
	if !(gOm > 0.9 && gKf > 0.3 && gOm >= gKf-0.05) {
		t.Fatalf("gain shape broken: kf=%v om=%v", gKf, gOm)
	}
}

// TestFig7bShape: under the Poisson band attack the knowledge-free strategy
// reduces the malicious band's over-representation; omniscient removes it.
func TestFig7bShape(t *testing.T) {
	tbl, err := Fig7b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rIn := parseF(t, tbl.Rows[0][3])
	rKf := parseF(t, tbl.Rows[1][3])
	rOm := parseF(t, tbl.Rows[2][3])
	if !(rIn > rKf && rKf > rOm) {
		t.Fatalf("band ratio ordering broken: in=%v kf=%v om=%v", rIn, rKf, rOm)
	}
}

// TestFig8Shape: both strategies' gains are high across population sizes;
// omniscient dominates.
func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		gKf := parseF(t, row[4])
		gOm := parseF(t, row[5])
		if gOm < 0.9 {
			t.Errorf("n=%s: omniscient gain %v below 0.9", row[0], gOm)
		}
		if gKf < 0.5 {
			t.Errorf("n=%s: knowledge-free gain %v below 0.5", row[0], gKf)
		}
		if gOm < gKf-0.05 {
			t.Errorf("n=%s: omniscient %v below knowledge-free %v", row[0], gOm, gKf)
		}
	}
}

// TestFig9GainGrowsWithM: the gains must not degrade as the stream grows
// (stationary regime reached early, then improves).
func TestFig9GainGrowsWithM(t *testing.T) {
	tbl, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tbl.Rows[0][4])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][4])
	if last < first-0.05 {
		t.Fatalf("knowledge-free gain degraded with m: %v -> %v", first, last)
	}
}

// TestFig10GainGrowsWithC: larger sampling memory is a stronger defense
// (the paper's headline remedy).
func TestFig10GainGrowsWithC(t *testing.T) {
	for _, f := range []Runner{Fig10a, Fig10b} {
		tbl, err := f(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		first := parseF(t, tbl.Rows[0][4])
		last := parseF(t, tbl.Rows[len(tbl.Rows)-1][4])
		if last < first {
			t.Fatalf("%s: gain did not grow with c: %v -> %v", tbl.ID, first, last)
		}
	}
}

// TestFig11DegradesWithMaliciousIDs: the knowledge-free gain shrinks as the
// number of over-represented ids grows (paper: vulnerable past ~10% of n).
func TestFig11DegradesWithMaliciousIDs(t *testing.T) {
	tbl, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tbl.Rows[0][3])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][3])
	if !(first > last) {
		t.Fatalf("gain did not degrade with malicious ids: %v -> %v", first, last)
	}
	if first < 0.3 {
		t.Fatalf("gain %v at 10 malicious ids unexpectedly low", first)
	}
}

// TestFig12Shape mirrors the paper's bar-chart ordering: the knowledge-free
// sampler at c=k=log n stays close to the input, the c=k=0.01n sizing is at
// least as good, and the omniscient output is far below the input. (The
// full-scale run — recorded in EXPERIMENTS.md — additionally shows
// d(kf, 0.01n) clearly below d(input).)
func TestFig12Shape(t *testing.T) {
	tbl, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		din := parseF(t, row[1])
		dLog := parseF(t, row[2])
		dPct := parseF(t, row[3])
		dOm := parseF(t, row[4])
		if dPct > dLog*1.1+0.01 {
			t.Errorf("%s: 0.01n sizing (%v) worse than log n sizing (%v)", row[0], dPct, dLog)
		}
		if dOm >= dPct {
			t.Errorf("%s: omniscient (%v) not below knowledge-free (%v)", row[0], dOm, dPct)
		}
		if dOm > din/2 {
			t.Errorf("%s: omniscient divergence %v not well below input %v", row[0], dOm, din)
		}
	}
}

// TestThm4DefectsVanish: every validation defect must be at numerical
// noise level.
func TestThm4DefectsVanish(t *testing.T) {
	tbl, err := Thm4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for c := 4; c <= 6; c++ {
			if v := parseF(t, row[c]); v > 1e-8 {
				t.Errorf("n=%s c=%s: defect %s = %v", row[0], row[1], tbl.Columns[c], v)
			}
		}
	}
}

// TestAblationMinWiseShape: the min-wise baseline must be static (zero
// late-half changes, one distinct output) while knowledge-free keeps mixing.
func TestAblationMinWiseShape(t *testing.T) {
	tbl, err := AblationMinWise(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	kfDistinct := parseI(t, tbl.Rows[0][1])
	mwDistinct := parseI(t, tbl.Rows[1][1])
	mwChanges := parseI(t, tbl.Rows[1][2])
	if mwDistinct != 1 || mwChanges != 0 {
		t.Fatalf("min-wise not static: distinct=%d changes=%d", mwDistinct, mwChanges)
	}
	if kfDistinct < 50 {
		t.Fatalf("knowledge-free only emitted %d distinct ids late", kfDistinct)
	}
}

// TestAblationEvictShape: uniform eviction must beat both non-constant
// families.
func TestAblationEvictShape(t *testing.T) {
	tbl, err := AblationEvict(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	gUniform := parseF(t, tbl.Rows[0][2])
	gFreq := parseF(t, tbl.Rows[1][2])
	gRare := parseF(t, tbl.Rows[2][2])
	if !(gUniform > gFreq && gUniform > gRare) {
		t.Fatalf("uniform eviction %v not dominant (freq %v, rare %v)", gUniform, gFreq, gRare)
	}
}

// TestAblationCUShape: the band division must grow with the sketch width k
// for the plain update (the Section V linear-in-k defence).
func TestAblationCUShape(t *testing.T) {
	tbl, err := AblationCU(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var plainDiv []float64
	for _, row := range tbl.Rows {
		if row[1] == "plain" {
			plainDiv = append(plainDiv, parseF(t, row[4]))
		}
	}
	if len(plainDiv) < 2 {
		t.Fatalf("expected at least two plain rows, got %d", len(plainDiv))
	}
	if plainDiv[len(plainDiv)-1] <= plainDiv[0] {
		t.Fatalf("band division did not grow with k: %v", plainDiv)
	}
}

// TestAblationChurnShape: with sketch halving the sampler defends the
// replaced, attacked population faster (lower attacked-id share in the
// final-quarter output and lower excess divergence).
func TestAblationChurnShape(t *testing.T) {
	tbl, err := AblationChurn(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	plainShare := parseF(t, tbl.Rows[0][1])
	halveShare := parseF(t, tbl.Rows[1][1])
	if halveShare >= plainShare {
		t.Fatalf("halving did not reduce the attacked-id share: plain %v vs halving %v", plainShare, halveShare)
	}
	plainExcess := parseF(t, tbl.Rows[0][2])
	halveExcess := parseF(t, tbl.Rows[1][2])
	if halveExcess >= plainExcess {
		t.Fatalf("halving did not reduce excess divergence: plain %v vs halving %v", plainExcess, halveExcess)
	}
}

// TestTransientShape: TV distances decrease over time, and heavier bias
// yields a larger mixing time.
func TestTransientShape(t *testing.T) {
	tbl, err := Transient(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for c := 4; c <= 6; c++ {
			if parseF(t, row[c]) > parseF(t, row[c-1])+1e-12 {
				t.Fatalf("TV increased along checkpoints in row %v", row)
			}
		}
	}
	// Quick mode keeps the (6,2) pair at alpha 1 and 3: the heavier bias
	// must mix more slowly.
	if len(tbl.Rows) >= 2 {
		mild := parseI(t, tbl.Rows[0][7])
		heavy := parseI(t, tbl.Rows[1][7])
		if heavy <= mild {
			t.Fatalf("heavier bias mixed faster: %d vs %d", heavy, mild)
		}
	}
}

// TestGossipPositiveGains: the overlay experiment must report positive mean
// steady-state gains at both attack strengths.
func TestGossipPositiveGains(t *testing.T) {
	tbl, err := Gossip(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if g := parseF(t, row[2]); g <= 0 {
			t.Errorf("burst=%s: mean gain %v not positive", row[0], g)
		}
		if p := parseF(t, row[1]); p <= 0 || p >= 1 {
			t.Errorf("burst=%s: pressure %v out of range", row[0], p)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Trials != 10 || cfg.Workers != 4 || cfg.Seed != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestLogGrid(t *testing.T) {
	g := logGrid(1, 1000, 10)
	if g[0] != 1 || g[len(g)-1] != 1000 {
		t.Fatalf("grid endpoints wrong: %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing: %v", g)
		}
	}
	if got := logGrid(5, 5, 3); len(got) != 2 || got[0] != 5 {
		t.Fatalf("degenerate grid = %v", got)
	}
}
