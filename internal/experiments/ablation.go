package experiments

import (
	"fmt"
	"math"

	"nodesampling/internal/core"
	"nodesampling/internal/gossip"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

// AblationMinWise quantifies the staticity defect of the min-wise
// permutation baseline (Bortnikov et al. [6]) that the paper's introduction
// argues against: after convergence the min-wise sample never changes,
// violating Freshness, while the knowledge-free sampler keeps renewing its
// output.
func AblationMinWise(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 200, 10, 10, 5
	m := 100000
	if cfg.Quick {
		m = 20000
	}
	src, err := stream.NewCategorical(stream.ZipfPMF(n, 1), rng.New(cfg.Seed))
	if err != nil {
		return Table{}, fmt.Errorf("ablation-minwise: %w", err)
	}
	kf, err := core.NewKnowledgeFree(c, k, s, rng.New(rng.Mix64(cfg.Seed+1)))
	if err != nil {
		return Table{}, fmt.Errorf("ablation-minwise: %w", err)
	}
	mw, err := core.NewMinWiseSampler(rng.New(rng.Mix64(cfg.Seed + 2)))
	if err != nil {
		return Table{}, fmt.Errorf("ablation-minwise: %w", err)
	}
	// Count sample changes and distinct outputs over the second half of the
	// stream (after both samplers converged).
	half := m / 2
	kfLate := metrics.NewHistogram()
	mwLate := metrics.NewHistogram()
	var kfChanges, mwChanges int
	var prevKf, prevMw uint64
	for i := 0; i < m; i++ {
		id := src.Next()
		outKf := kf.Process(id)
		outMw := mw.Process(id)
		if i >= half {
			kfLate.Add(outKf)
			mwLate.Add(outMw)
			if outKf != prevKf {
				kfChanges++
			}
			if outMw != prevMw {
				mwChanges++
			}
		}
		prevKf, prevMw = outKf, outMw
	}
	t := Table{
		ID:    "ablation-minwise",
		Title: "Ablation: knowledge-free sampler vs min-wise baseline (freshness)",
		Columns: []string{
			"sampler", "distinct outputs (late half)", "sample changes (late half)", "memory (ids)",
		},
		Notes: "The min-wise baseline converges to a single static id (0 changes after convergence); " +
			"the knowledge-free sampler keeps cycling through the population, as Freshness requires.",
	}
	t.Rows = append(t.Rows, []string{
		"knowledge-free", fmtInt(kfLate.Distinct()), fmtInt(kfChanges), fmtInt(c),
	})
	t.Rows = append(t.Rows, []string{
		"min-wise [6]", fmtInt(mwLate.Distinct()), fmtInt(mwChanges), "1",
	})
	return t, nil
}

// AblationEvict demonstrates why Theorem 4 needs constant removal weights
// r_j: frequency-dependent eviction policies break the uniform stationary
// occupancy and lower the gain.
func AblationEvict(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c = 100, 10
	m := 200000
	if cfg.Quick {
		m = 20000
	}
	pmfRaw := stream.ZipfPMF(n, 2)
	pmf := normalise(pmfRaw)
	policies := []struct {
		name   string
		option []core.Option
	}{
		{"uniform eviction (paper)", nil},
		{"evict-frequent (r_j ∝ p_j)", []core.Option{core.WithEviction(
			core.WeightedEviction{Weight: func(id uint64) float64 { return pmf[id] }})}},
		{"evict-rare (r_j ∝ 1/p_j)", []core.Option{core.WithEviction(
			core.WeightedEviction{Weight: func(id uint64) float64 { return 1 / pmf[id] }})}},
	}
	t := Table{
		ID:      "ablation-evict",
		Title:   "Ablation: eviction families r_j in the omniscient strategy (Zipf alpha=2 input)",
		Columns: []string{"eviction policy", "D(output||U)", "G_KL"},
		Notes: "Theorem 4 requires constant r_j for uniformity; non-constant families skew the " +
			"stationary occupancy towards the ids they protect.",
	}
	for _, pol := range policies {
		src, err := stream.NewCategorical(pmfRaw, rng.New(cfg.Seed))
		if err != nil {
			return Table{}, fmt.Errorf("ablation-evict: %w", err)
		}
		om, err := core.NewOmniscient(c, src, rng.New(rng.Mix64(cfg.Seed+7)), pol.option...)
		if err != nil {
			return Table{}, fmt.Errorf("ablation-evict: %w", err)
		}
		input := metrics.NewHistogram()
		output := metrics.NewHistogram()
		for i := 0; i < m; i++ {
			id := src.Next()
			input.Add(id)
			output.Add(om.Process(id))
		}
		dout, err := output.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("ablation-evict: %w", err)
		}
		din, err := input.KLvsUniform(n)
		if err != nil {
			return Table{}, fmt.Errorf("ablation-evict: %w", err)
		}
		t.Rows = append(t.Rows, []string{pol.name, fmtF(dout), fmtF(gain(din, dout))})
	}
	return t, nil
}

// AblationCU sweeps the sketch width k on the Figure 7b workload for the
// plain Count-Min update versus the conservative update (CM-CU), reporting
// by how much each divides the malicious band's over-representation. It
// quantifies two facts: the defence strengthens roughly linearly in k (the
// Section V prediction seen from the defender's side), and at the paper's
// printed k=10 the plain-CMS estimates are collision-dominated, which is
// why our faithful reproduction divides the band by ~1.2 rather than the
// paper's reported ~3 (reached here from k≈100).
func AblationCU(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, s = 1000, 10, 5
	m := 100000
	ks := []int{10, 25, 50, 100}
	if cfg.Quick {
		m = 20000
		ks = []int{10, 50}
	}
	pmf, err := poissonAttackPMF(n)
	if err != nil {
		return Table{}, fmt.Errorf("ablation-cu: %w", err)
	}
	norm := normalise(pmf)
	attacked := make(map[uint64]bool)
	for i, p := range norm {
		if p > 2.0/n {
			attacked[uint64(i)] = true
		}
	}
	bandRatio := func(h *metrics.Histogram) float64 {
		var bandSum, corSum, nb, nc float64
		for i := uint64(0); i < n; i++ {
			if attacked[i] {
				bandSum += float64(h.Count(i))
				nb++
			} else {
				corSum += float64(h.Count(i))
				nc++
			}
		}
		if corSum == 0 {
			return 0
		}
		return (bandSum / nb) / (corSum / nc)
	}
	t := Table{
		ID:    "ablation-cu",
		Title: "Ablation: plain Count-Min vs conservative update, k sweep (Figure 7b workload)",
		Columns: []string{
			"k", "update", "band ratio in", "band ratio out", "division", "G_KL",
		},
		Notes: "Settings m=100000, n=1000, c=10, s=5. 'Division' is how much the sampler shrinks " +
			"the malicious band's over-representation; the paper reports ~3 at k=10, which this " +
			"faithful implementation reaches only at k≈100.",
	}
	for _, k := range ks {
		for _, cu := range []bool{false, true} {
			src, err := stream.NewCategorical(pmf, rng.New(cfg.Seed))
			if err != nil {
				return Table{}, fmt.Errorf("ablation-cu: %w", err)
			}
			var opts []core.Option
			name := "plain"
			if cu {
				opts = append(opts, core.WithConservativeUpdate())
				name = "conservative"
			}
			kf, err := core.NewKnowledgeFree(c, k, s, rng.New(rng.Mix64(cfg.Seed+uint64(k))), opts...)
			if err != nil {
				return Table{}, fmt.Errorf("ablation-cu: %w", err)
			}
			input := metrics.NewHistogram()
			output := metrics.NewHistogram()
			for i := 0; i < m; i++ {
				id := src.Next()
				input.Add(id)
				output.Add(kf.Process(id))
			}
			rIn, rOut := bandRatio(input), bandRatio(output)
			division := 0.0
			if rOut > 0 {
				division = rIn / rOut
			}
			din, err := input.KLvsUniform(n)
			if err != nil {
				return Table{}, fmt.Errorf("ablation-cu: %w", err)
			}
			dout, err := output.KLvsUniform(n)
			if err != nil {
				return Table{}, fmt.Errorf("ablation-cu: %w", err)
			}
			t.Rows = append(t.Rows, []string{
				fmtInt(k), name, fmtF(rIn), fmtF(rOut), fmtF(division), fmtF(gain(din, dout)),
			})
		}
	}
	return t, nil
}

// AblationChurn relaxes the paper's churn-stops-at-T0 assumption with the
// adversarially hard variant: halfway through the stream the population is
// replaced AND the new population is under a peak attack. The plain
// knowledge-free sampler is slow to defend: its stale counters keep minσ at
// the old regime's level, so the new attacker enjoys admission probability
// ≈ 1 until its own estimate climbs past that stale floor. Periodic sketch
// halving (WithPeriodicHalving) decays the stale state and restores the
// defence promptly.
func AblationChurn(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 500, 25, 10, 5
	m := 200000
	if cfg.Quick {
		// Long enough that the halving-vs-plain excess-divergence gap (a
		// difference of two small KL estimates) stands clear of single-run
		// noise; 40k was borderline and flipped on hash-family realisation.
		m = 100000
	}
	half := m / 2
	attacked := uint64(n) // the new population's attacked id
	variants := []struct {
		name string
		opts []core.Option
	}{
		{"plain (paper)", nil},
		{"halving every m/40", []core.Option{core.WithPeriodicHalving(uint64(m / 40))}},
	}
	t := Table{
		ID:    "ablation-churn",
		Title: "Extension: population replaced at t=m/2 and attacked (churn after T0), with/without sketch decay",
		Columns: []string{
			"sampler", "attacked-id share of final-quarter output", "excess D(final quarter||U_new)",
		},
		Notes: "First half: uniform over ids 0..n-1. Second half: ids n..2n-1 with one id carrying " +
			"half the stream. A perfect sampler's final-quarter output is uniform over the new " +
			"population (attacked share 1/n = 0.002, excess divergence 0).",
	}
	newPMF, err := stream.PeakPMF(n, 0, float64(half), float64(half)/float64(n-1))
	if err != nil {
		return Table{}, fmt.Errorf("ablation-churn: %w", err)
	}
	for _, v := range variants {
		oldSrc, err := stream.NewCategorical(stream.UniformPMF(n), rng.New(cfg.Seed))
		if err != nil {
			return Table{}, fmt.Errorf("ablation-churn: %w", err)
		}
		newSrc, err := stream.NewCategorical(newPMF, rng.New(rng.Mix64(cfg.Seed+1)))
		if err != nil {
			return Table{}, fmt.Errorf("ablation-churn: %w", err)
		}
		kf, err := core.NewKnowledgeFree(c, k, s, rng.New(rng.Mix64(cfg.Seed+3)), v.opts...)
		if err != nil {
			return Table{}, fmt.Errorf("ablation-churn: %w", err)
		}
		lateOut := metrics.NewHistogram()
		for i := 0; i < m; i++ {
			var id uint64
			if i < half {
				id = oldSrc.Next()
			} else {
				id = newSrc.Next() + uint64(n) // the replaced, attacked population
			}
			out := kf.Process(id)
			if i >= m*3/4 {
				lateOut.Add(out)
			}
		}
		attackedShare := float64(lateOut.Count(attacked)) / float64(lateOut.Total())
		// Divergence of the final-quarter output measured over the full 2n
		// support: perfect adaptation (uniform over the n new ids) scores
		// exactly ln 2, so report the excess above that floor.
		dOut, err := lateOut.KLvsUniform(2 * n)
		if err != nil {
			return Table{}, fmt.Errorf("ablation-churn: %w", err)
		}
		t.Rows = append(t.Rows, []string{
			v.name, fmtF(attackedShare), fmtF(dOut - math.Log(2)),
		})
	}
	return t, nil
}

// Gossip runs the end-to-end overlay experiment: per-node knowledge-free
// samplers inside a push-gossip network under a Sybil flood, reporting the
// steady-state KL gain across correct nodes for increasing attack strength.
func Gossip(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	nodes, warm, measure := 120, 600, 900
	if cfg.Quick {
		nodes, warm, measure = 60, 150, 250
	}
	t := Table{
		ID:    "gossip",
		Title: "Extension: sampling service inside a simulated gossip overlay (10% malicious nodes)",
		Columns: []string{
			"burst", "sybil pressure", "mean G_KL", "min G_KL", "max G_KL", "coverage",
		},
		Notes: "Steady-state gains after warm-up; pressure is the fraction of received ids that are " +
			"sybil identifiers. Coverage counts distinct correct ids across all sampling memories.",
	}
	for _, burst := range []int{4, 12} {
		gcfg := gossip.Config{
			Nodes:             nodes,
			MaliciousFraction: 0.1,
			SybilIDs:          nodes / 2,
			Fanout:            3,
			ForwardBuffer:     16,
			Burst:             burst,
			Degree:            4,
			Seed:              cfg.Seed,
		}
		nw, err := gossip.NewNetwork(gcfg, func(_ int, r *rng.Xoshiro) (core.Sampler, error) {
			return core.NewKnowledgeFree(25, 8, 4, r)
		})
		if err != nil {
			return Table{}, fmt.Errorf("gossip: %w", err)
		}
		if err := nw.RunParallel(warm, cfg.Workers); err != nil {
			return Table{}, fmt.Errorf("gossip: %w", err)
		}
		nw.ResetStreamStats()
		if err := nw.RunParallel(measure, cfg.Workers); err != nil {
			return Table{}, fmt.Errorf("gossip: %w", err)
		}
		sum, err := nw.CorrectGains()
		if err != nil {
			return Table{}, fmt.Errorf("gossip: %w", err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(burst), fmtF(nw.SybilPressure()),
			fmtF(sum.Mean), fmtF(sum.Min), fmtF(sum.Max),
			fmtInt(nw.SampleCoverage()),
		})
	}
	return t, nil
}
