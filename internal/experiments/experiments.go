// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function from a Config to a Table of
// formatted rows — the same rows/series the paper reports — and is
// registered under the paper artifact's identifier (fig3 … fig12, table1,
// table2) plus a few validation/ablation extensions.
//
// Simulation experiments average `Trials` independent runs (the paper used
// 100); trials run concurrently on a worker pool. All randomness derives
// from Config.Seed, so a run is fully reproducible.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

// Table is a regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Config controls experiment execution.
type Config struct {
	// Trials to average for simulation experiments. The paper averaged 100;
	// 10 gives the same shapes within a couple of percent.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds trial-level parallelism (0 = 4).
	Workers int
	// Quick shrinks stream lengths and sweep grids so the whole suite runs
	// in seconds; shapes remain but absolute values get noisier. Used by
	// tests and benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Trials < 1 {
		c.Trials = 10
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner is an experiment entry point.
type Runner func(Config) (Table, error)

// Registry returns the experiment identifiers in presentation order with
// their runners.
func Registry() ([]string, map[string]Runner) {
	order := []string{
		"fig3", "fig4", "table1", "table2", "fig5", "fig6",
		"fig7a", "fig7b", "fig8", "fig9", "fig10a", "fig10b",
		"fig11", "fig12",
		"thm4", "transient",
		"ablation-minwise", "ablation-evict", "ablation-cu", "ablation-churn",
		"gossip",
	}
	m := map[string]Runner{
		"fig3":             Fig3,
		"fig4":             Fig4,
		"table1":           Table1,
		"table2":           Table2,
		"fig5":             Fig5,
		"fig6":             Fig6,
		"fig7a":            Fig7a,
		"fig7b":            Fig7b,
		"fig8":             Fig8,
		"fig9":             Fig9,
		"fig10a":           Fig10a,
		"fig10b":           Fig10b,
		"fig11":            Fig11,
		"fig12":            Fig12,
		"thm4":             Thm4,
		"ablation-minwise": AblationMinWise,
		"ablation-evict":   AblationEvict,
		"ablation-cu":      AblationCU,
		"ablation-churn":   AblationChurn,
		"transient":        Transient,
		"gossip":           Gossip,
	}
	return order, m
}

// fmtInt formats an integer cell.
func fmtInt(v int) string { return strconv.Itoa(v) }

// fmtF formats a float cell with four significant digits.
func fmtF(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// samplerFactory builds a sampler for one simulation trial. The source is
// the exact composite distribution of the trial's input stream (it
// implements core.Oracle for the omniscient strategy).
type samplerFactory func(src *stream.Categorical, r *rng.Xoshiro) (core.Sampler, error)

func omniscientFactory(c int) samplerFactory {
	return func(src *stream.Categorical, r *rng.Xoshiro) (core.Sampler, error) {
		return core.NewOmniscient(c, src, r)
	}
}

func knowledgeFreeFactory(c, k, s int) samplerFactory {
	return func(_ *stream.Categorical, r *rng.Xoshiro) (core.Sampler, error) {
		return core.NewKnowledgeFree(c, k, s, r)
	}
}

// trialResult carries the divergences measured in one simulation trial.
type trialResult struct {
	din  float64   // D_KL(input ‖ U)
	dout []float64 // per sampler: D_KL(output ‖ U)
}

// runTrial feeds one freshly drawn stream of length m through every sampler
// in parallel (all consume the same element sequence, as in the paper's
// comparisons) and returns the measured divergences over support n.
func runTrial(pmf []float64, m int, factories []samplerFactory, seed uint64) (trialResult, error) {
	n := len(pmf)
	src, err := stream.NewCategorical(pmf, rng.New(seed))
	if err != nil {
		return trialResult{}, err
	}
	samplers := make([]core.Sampler, len(factories))
	outs := make([]*metrics.Histogram, len(factories))
	seedRoot := seed ^ 0x9e3779b97f4a7c15
	for i, f := range factories {
		s, err := f(src, rng.New(rng.Mix64(seedRoot+uint64(i))))
		if err != nil {
			return trialResult{}, err
		}
		samplers[i] = s
		outs[i] = metrics.NewHistogram()
	}
	input := metrics.NewHistogram()
	for t := 0; t < m; t++ {
		id := src.Next()
		input.Add(id)
		for i, s := range samplers {
			outs[i].Add(s.Process(id))
		}
	}
	res := trialResult{dout: make([]float64, len(factories))}
	res.din, err = input.KLvsUniform(n)
	if err != nil {
		return trialResult{}, fmt.Errorf("input divergence: %w", err)
	}
	for i, h := range outs {
		res.dout[i], err = h.KLvsUniform(n)
		if err != nil {
			return trialResult{}, fmt.Errorf("output divergence (sampler %d): %w", i, err)
		}
	}
	return res, nil
}

// averageTrials runs cfg.Trials independent trials on a worker pool and
// averages the measured divergences.
func averageTrials(cfg Config, pmf []float64, m int, factories []samplerFactory) (trialResult, error) {
	cfg = cfg.withDefaults()
	results := make([]trialResult, cfg.Trials)
	errs := make([]error, cfg.Trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.Trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[t], errs[t] = runTrial(pmf, m, factories, rng.Mix64(cfg.Seed+uint64(t)*0x1001))
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return trialResult{}, err
		}
	}
	avg := trialResult{dout: make([]float64, len(factories))}
	for _, r := range results {
		avg.din += r.din
		for i, d := range r.dout {
			avg.dout[i] += d
		}
	}
	avg.din /= float64(cfg.Trials)
	for i := range avg.dout {
		avg.dout[i] /= float64(cfg.Trials)
	}
	return avg, nil
}

// gain converts a (din, dout) pair into the paper's G_KL. A non-positive
// input divergence yields NaN (undefined gain).
func gain(din, dout float64) float64 {
	if din <= 0 {
		return math.NaN()
	}
	return 1 - dout/din
}

// logGrid returns roughly `points` log-spaced integers in [lo, hi]
// (inclusive, deduplicated, sorted).
func logGrid(lo, hi, points int) []int {
	if points < 2 || lo >= hi {
		return []int{lo, hi}
	}
	set := make(map[int]struct{}, points)
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		v := int(math.Round(float64(lo) * math.Pow(float64(hi)/float64(lo), f)))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		set[v] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
