package experiments

import (
	"fmt"

	"nodesampling/internal/adversary"
	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

// peakAttackPMF is the peak-attack workload of Figures 8, 9 and 10a: the
// adversary's single id carries half the stream, the legitimate uniform
// traffic the other half. At n = 1000 and m = 100000 this is exactly the
// paper's "50000 occurrences of one id, 50 of every other" stream (the
// paper labels it a Zipf α=4 peak; a literal Zipf(4) tail would have
// probabilities below 10⁻¹², i.e. ids that never occur, contradicting the
// paper's own Figure 7a input profile).
func peakAttackPMF(n int) ([]float64, error) {
	return adversary.Peak(stream.UniformPMF(n), 0, 0.5)
}

// poissonAttackPMF is the targeted+flooding workload of Figures 6, 7b and
// 10b: legitimate uniform traffic mixed 1:1 with a truncated Poisson
// (λ = n/2) injection that over-represents the ~√n·2 ids around id n/2 —
// matching the paper's Figure 7b input profile (a base of ~50 occurrences
// per id with a band peaking near 1000).
func poissonAttackPMF(n int) ([]float64, error) {
	return stream.MixPMF(
		[]float64{0.5, 0.5},
		stream.UniformPMF(n),
		stream.TruncatedPoissonPMF(n, float64(n)/2),
	)
}

// Fig6 regenerates Figure 6: the frequency profile over time of the input
// stream versus the two strategies' outputs, under a Poisson-biased input
// (m = 40000, n = 1000, c = 15, k = 15, s = 17). The isopleth is summarised
// per time checkpoint by the maximum id frequency and the number of distinct
// ids, which captures the figure's visual claim: the input grows a bright
// high-frequency band while the omniscient output stays uniform and the
// knowledge-free output strongly flattens the band.
func Fig6(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 1000, 15, 15, 17
	m := 40000
	if cfg.Quick {
		m = 16000
	}
	pmf, err := poissonAttackPMF(n)
	if err != nil {
		return Table{}, fmt.Errorf("fig6: %w", err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(cfg.Seed))
	if err != nil {
		return Table{}, fmt.Errorf("fig6: %w", err)
	}
	om, err := core.NewOmniscient(c, src, rng.New(rng.Mix64(cfg.Seed+1)))
	if err != nil {
		return Table{}, fmt.Errorf("fig6: %w", err)
	}
	kf, err := core.NewKnowledgeFree(c, k, s, rng.New(rng.Mix64(cfg.Seed+2)))
	if err != nil {
		return Table{}, fmt.Errorf("fig6: %w", err)
	}
	input := metrics.NewHistogram()
	outOm := metrics.NewHistogram()
	outKf := metrics.NewHistogram()
	t := Table{
		ID:    "fig6",
		Title: "Figure 6: frequency profile over time (truncated Poisson input, lambda = n/2)",
		Columns: []string{
			"t", "max freq in", "max freq kf", "max freq om",
			"distinct in", "distinct kf", "distinct om",
		},
		Notes: "Settings m=40000, n=1000, c=15, k=15, s=17. The input's maximum frequency grows " +
			"steeply; the omniscient output stays near t/n; the knowledge-free output sits in between.",
	}
	checkpoints := 10
	for chk := 1; chk <= checkpoints; chk++ {
		until := m * chk / checkpoints
		for input.Total() < uint64(until) {
			id := src.Next()
			input.Add(id)
			outOm.Add(om.Process(id))
			outKf.Add(kf.Process(id))
		}
		_, maxIn := input.Max()
		_, maxKf := outKf.Max()
		_, maxOm := outOm.Max()
		t.Rows = append(t.Rows, []string{
			fmtInt(until),
			fmtInt(int(maxIn)), fmtInt(int(maxKf)), fmtInt(int(maxOm)),
			fmtInt(input.Distinct()), fmtInt(outKf.Distinct()), fmtInt(outOm.Distinct()),
		})
	}
	return t, nil
}

// fig7 is the shared core of Figures 7a and 7b: frequency distribution per
// node id for the input stream and both strategies, summarised by the
// frequencies of the attacked ids versus the correct ids plus the KL gains.
func fig7(cfg Config, id, title string, pmf []float64, attacked []uint64, notes string) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 1000, 10, 10, 5
	m := 100000
	if cfg.Quick {
		m = 10000
	}
	src, err := stream.NewCategorical(pmf, rng.New(cfg.Seed))
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", id, err)
	}
	om, err := core.NewOmniscient(c, src, rng.New(rng.Mix64(cfg.Seed+1)))
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", id, err)
	}
	kf, err := core.NewKnowledgeFree(c, k, s, rng.New(rng.Mix64(cfg.Seed+2)))
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", id, err)
	}
	input := metrics.NewHistogram()
	outOm := metrics.NewHistogram()
	outKf := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		v := src.Next()
		input.Add(v)
		outOm.Add(om.Process(v))
		outKf.Add(kf.Process(v))
	}
	isAttacked := make(map[uint64]bool, len(attacked))
	for _, a := range attacked {
		isAttacked[a] = true
	}
	meanFreq := func(h *metrics.Histogram, attackedIDs bool) float64 {
		var sum, cnt float64
		for idv := uint64(0); idv < n; idv++ {
			if isAttacked[idv] == attackedIDs {
				sum += float64(h.Count(idv))
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / cnt
	}
	gKf, err := metrics.Gain(input, outKf, n)
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", id, err)
	}
	gOm, err := metrics.Gain(input, outOm, n)
	if err != nil {
		return Table{}, fmt.Errorf("%s: %w", id, err)
	}
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"stream", "mean freq attacked ids", "mean freq correct ids", "attacked/correct ratio", "G_KL"},
		Notes:   notes,
	}
	for _, row := range []struct {
		name string
		h    *metrics.Histogram
		g    string
	}{
		{"input", input, "-"},
		{"knowledge-free", outKf, fmtF(gKf)},
		{"omniscient", outOm, fmtF(gOm)},
	} {
		att := meanFreq(row.h, true)
		cor := meanFreq(row.h, false)
		ratio := 0.0
		if cor > 0 {
			ratio = att / cor
		}
		t.Rows = append(t.Rows, []string{row.name, fmtF(att), fmtF(cor), fmtF(ratio), row.g})
	}
	return t, nil
}

// Fig7a regenerates Figure 7a: the peak attack (one id injected 50000
// times, every other id occurring 50 times; m = 100000, n = 1000, c = 10,
// k = 10, s = 5).
func Fig7a(cfg Config) (Table, error) {
	pmf, err := stream.PeakPMF(1000, 0, 50000, 50)
	if err != nil {
		return Table{}, fmt.Errorf("fig7a: %w", err)
	}
	return fig7(cfg, "fig7a",
		"Figure 7a: frequency distribution under a peak attack (50000 vs 50)",
		pmf, []uint64{0},
		"Paper shape: knowledge-free divides the peak by about 50; omniscient restores uniformity.")
}

// Fig7b regenerates Figure 7b: combined targeted + flooding attack modelled
// by a truncated Poisson input (lambda = n/2) over-representing the ~50 ids
// around id 500.
func Fig7b(cfg Config) (Table, error) {
	const n = 1000
	pmf, err := poissonAttackPMF(n)
	if err != nil {
		return Table{}, fmt.Errorf("fig7b: %w", err)
	}
	// The attacked band: ids whose probability exceeds twice the uniform
	// share (the ~50 over-represented identifiers of the figure).
	var attacked []uint64
	for i, p := range normalise(pmf) {
		if p > 2.0/n {
			attacked = append(attacked, uint64(i))
		}
	}
	return fig7(cfg, "fig7b",
		"Figure 7b: frequency distribution under targeted+flooding attacks (truncated Poisson, lambda = n/2)",
		pmf, attacked,
		fmt.Sprintf("%d ids over-represented. Paper shape: knowledge-free divides malicious frequencies by about 3; omniscient fully robust.", len(attacked)))
}

func normalise(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for i, v := range w {
		out[i] = v / sum
	}
	return out
}

// Fig8 regenerates Figure 8: gain G_KL as a function of the population size
// n under a Zipf(4) peak attack (m = 100000, k = 10, c = 10, s = 17),
// including the inset's raw KL divergences.
func Fig8(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const c, k, s = 10, 10, 17
	m := 100000
	ns := []int{10, 20, 50, 100, 200, 500, 1000}
	if cfg.Quick {
		m = 10000
		ns = []int{10, 100, 1000}
	}
	t := Table{
		ID:      "fig8",
		Title:   "Figure 8: G_KL vs population size n (peak attack)",
		Columns: []string{"n", "D(input||U)", "D(kf||U)", "D(om||U)", "G_KL kf", "G_KL om"},
		Notes:   "Settings m=100000, k=10, c=10, s=17. Paper shape: both gains above 0.9 for all n; omniscient ~1.",
	}
	for _, n := range ns {
		pmf, err := peakAttackPMF(n)
		if err != nil {
			return Table{}, fmt.Errorf("fig8: n=%d: %w", n, err)
		}
		avg, err := averageTrials(cfg, pmf, m, []samplerFactory{
			knowledgeFreeFactory(c, k, s), omniscientFactory(c),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig8: n=%d: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(n), fmtF(avg.din), fmtF(avg.dout[0]), fmtF(avg.dout[1]),
			fmtF(gain(avg.din, avg.dout[0])), fmtF(gain(avg.din, avg.dout[1])),
		})
	}
	return t, nil
}

// Fig9 regenerates Figure 9: gain G_KL as a function of the stream length m
// (n = 1000, k = 10, c = 10, s = 17, Zipf(4) peak attack).
func Fig9(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 1000, 10, 10, 17
	ms := []int{10000, 20000, 50000, 100000, 200000, 500000, 1000000}
	if cfg.Quick {
		ms = []int{10000, 50000}
	}
	pmf, err := peakAttackPMF(n)
	if err != nil {
		return Table{}, fmt.Errorf("fig9: %w", err)
	}
	t := Table{
		ID:      "fig9",
		Title:   "Figure 9: G_KL vs stream length m (peak attack)",
		Columns: []string{"m", "D(input||U)", "D(kf||U)", "D(om||U)", "G_KL kf", "G_KL om"},
		Notes: "Settings n=1000, k=10, c=10, s=17. Paper shape: omniscient converges within ~3000 " +
			"elements, knowledge-free within ~3x more; both gains climb towards 1 with m.",
	}
	for _, m := range ms {
		avg, err := averageTrials(cfg, pmf, m, []samplerFactory{
			knowledgeFreeFactory(c, k, s), omniscientFactory(c),
		})
		if err != nil {
			return Table{}, fmt.Errorf("fig9: m=%d: %w", m, err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(m), fmtF(avg.din), fmtF(avg.dout[0]), fmtF(avg.dout[1]),
			fmtF(gain(avg.din, avg.dout[0])), fmtF(gain(avg.din, avg.dout[1])),
		})
	}
	return t, nil
}

// fig10 is the shared sweep of Figures 10a/10b: gain versus the sampling
// memory size c.
func fig10(cfg Config, id, title string, pmf []float64, notes string) (Table, error) {
	cfg = cfg.withDefaults()
	const k, s = 10, 17
	m := 100000
	cs := []int{5, 10, 25, 50, 100, 200, 300, 500, 700, 1000}
	if cfg.Quick {
		m = 10000
		cs = []int{5, 50, 300}
	}
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"c", "D(input||U)", "D(kf||U)", "D(om||U)", "G_KL kf", "G_KL om"},
		Notes:   notes,
	}
	for _, c := range cs {
		avg, err := averageTrials(cfg, pmf, m, []samplerFactory{
			knowledgeFreeFactory(c, k, s), omniscientFactory(c),
		})
		if err != nil {
			return Table{}, fmt.Errorf("%s: c=%d: %w", id, c, err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(c), fmtF(avg.din), fmtF(avg.dout[0]), fmtF(avg.dout[1]),
			fmtF(gain(avg.din, avg.dout[0])), fmtF(gain(avg.din, avg.dout[1])),
		})
	}
	return t, nil
}

// Fig10a regenerates Figure 10a: gain versus memory size c under the
// Zipf(4) peak attack (m = 100000, n = 1000, k = 10, s = 17).
func Fig10a(cfg Config) (Table, error) {
	pmf, err := peakAttackPMF(1000)
	if err != nil {
		return Table{}, fmt.Errorf("fig10a: %w", err)
	}
	return fig10(cfg, "fig10a",
		"Figure 10a: G_KL vs memory size c (peak attack)",
		pmf,
		"Paper shape: the peak attack is fully masked by the knowledge-free strategy from about c=300.")
}

// Fig10b regenerates Figure 10b: gain versus memory size c under the
// targeted+flooding attack (truncated Poisson, lambda = n/2).
func Fig10b(cfg Config) (Table, error) {
	pmf, err := poissonAttackPMF(1000)
	if err != nil {
		return Table{}, fmt.Errorf("fig10b: %w", err)
	}
	return fig10(cfg, "fig10b",
		"Figure 10b: G_KL vs memory size c (targeted+flooding, truncated Poisson lambda = n/2)",
		pmf,
		"Paper shape: both attacks are masked from about c=700.")
}

// Fig11 regenerates Figure 11: the knowledge-free gain as a function of the
// number of malicious identifiers over-represented in the input stream
// (m = 100000, n = 1000, c = 50, k = 50, s = 10).
func Fig11(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const n, c, k, s = 1000, 50, 50, 10
	m := 100000
	ells := []int{10, 20, 50, 100, 200, 500, 1000}
	if cfg.Quick {
		m = 10000
		ells = []int{10, 100, 1000}
	}
	t := Table{
		ID:      "fig11",
		Title:   "Figure 11: knowledge-free G_KL vs number of malicious identifiers",
		Columns: []string{"malicious ids", "D(input||U)", "D(kf||U)", "G_KL kf"},
		Notes: "Settings m=100000, n=1000, c=50, k=50, s=10; the adversary's ids collectively carry " +
			"half the stream. Paper shape: the strategy degrades once malicious ids reach ~10% of the population.",
	}
	base := stream.UniformPMF(n)
	for _, ell := range ells {
		var pmf []float64
		var err error
		if ell >= n {
			// Every id malicious: the composite stream is uniform again;
			// report the degenerate row explicitly.
			pmf, err = adversary.OverRepresent(base, adversary.FirstIDs(n-1), 0.5)
		} else {
			pmf, err = adversary.OverRepresent(base, adversary.FirstIDs(ell), 0.5)
		}
		if err != nil {
			return Table{}, fmt.Errorf("fig11: ell=%d: %w", ell, err)
		}
		avg, err := averageTrials(cfg, pmf, m, []samplerFactory{knowledgeFreeFactory(c, k, s)})
		if err != nil {
			return Table{}, fmt.Errorf("fig11: ell=%d: %w", ell, err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(ell), fmtF(avg.din), fmtF(avg.dout[0]), fmtF(gain(avg.din, avg.dout[0])),
		})
	}
	return t, nil
}
