package autoscale

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesampling/internal/cms"
	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
)

// fakeTarget is a scriptable Target: tests set the signals a tick will
// observe and record every resize the controller issues.
type fakeTarget struct {
	mu      sync.Mutex
	sig     shard.LoadSignals
	resizes []int
	err     error
}

func (f *fakeTarget) LoadSignals() shard.LoadSignals {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sig
}

func (f *fakeTarget) Resize(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.resizes = append(f.resizes, n)
	f.sig.Shards = n
	f.sig.QueueCap = n * 16
	return nil
}

func (f *fakeTarget) set(mut func(*shard.LoadSignals)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(&f.sig)
}

func (f *fakeTarget) resized() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.resizes...)
}

func newFake(shards int) *fakeTarget {
	return &fakeTarget{sig: shard.LoadSignals{Shards: shards, QueueCap: shards * 16}}
}

// testController builds an unstarted controller with tight, deterministic
// settings; tests drive Tick with an explicit clock.
func testController(t *testing.T, f *fakeTarget, cfg Config) *Controller {
	t.Helper()
	c, err := New(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigValidation(t *testing.T) {
	f := newFake(1)
	bad := []Config{
		{Min: -1, Max: 4},
		{Min: 8, Max: 4},
		{Min: 1, Max: shard.MaxShards + 1},
		{Min: 1, Max: 4, Alpha: 1.5},
		{Min: 1, Max: 4, Alpha: -0.1},
		{Min: 1, Max: 4, GrowThreshold: 0.1, ShrinkThreshold: 0.2},
		{Min: 1, Max: 4, Interval: -time.Second},
		{Min: 1, Max: 4, Cooldown: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(f, cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	c, err := New(f, Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	st := c.State()
	if st.Min != 1 || st.Max != shard.MaxShards || st.Interval != time.Second ||
		st.Alpha != 0.3 || st.GrowThreshold != 0.5 || st.ShrinkThreshold != 0.05 ||
		st.Cooldown != 3*time.Second || st.Enabled {
		t.Fatalf("defaults not applied: %+v", st)
	}
}

func TestSustainedDropsGrowWithCooldown(t *testing.T) {
	f := newFake(1)
	c := testController(t, f, Config{
		Min: 1, Max: 8, Enabled: true,
		Alpha: 0.5, GrowThreshold: 0.5, ShrinkThreshold: 0.01,
		Interval: time.Second, Cooldown: 3 * time.Second,
	})
	now := time.Unix(1000, 0)
	// Baseline tick: no history yet, empty queues — hold.
	if d := c.Tick(now); d.Action != Hold {
		t.Fatalf("baseline tick acted: %+v", d)
	}
	// Sustained 80% drop fraction: EWMA 0.4 after one loaded tick (below
	// the threshold — one bad tick is not enough), 0.6 after two.
	tickLoaded := func() Decision {
		f.set(func(s *shard.LoadSignals) { s.Processed += 200; s.Dropped += 800 })
		now = now.Add(time.Second)
		return c.Tick(now)
	}
	if d := tickLoaded(); d.Action != Hold {
		t.Fatalf("one loaded tick already resized: %+v", d)
	}
	d := tickLoaded()
	if d.Action != Grow || d.To != 2 {
		t.Fatalf("sustained drops did not grow 1→2: %+v", d)
	}
	// Inside the cooldown the controller only observes, even under full
	// queues (the delta baseline restarted at the resize, so occupancy is
	// the pressure signal here).
	f.set(func(s *shard.LoadSignals) { s.QueueLen = s.QueueCap })
	if d := tickLoaded(); d.Action != Hold || !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("tick inside cooldown: %+v", d)
	}
	f.set(func(s *shard.LoadSignals) { s.QueueLen = 0 })
	// Past the cooldown it doubles again, clamping at Max eventually.
	now = now.Add(3 * time.Second)
	for i := 0; i < 20 && f.sig.Shards < 8; i++ {
		tickLoaded()
		now = now.Add(3 * time.Second)
	}
	if got := f.resized(); len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("grow sequence %v, want [2 4 8]", got)
	}
	// At Max, sustained pressure holds rather than erroring.
	if d := tickLoaded(); d.Action != Hold {
		t.Fatalf("tick at max resized: %+v", d)
	}
	st := c.State()
	if st.Resizes != 3 || st.Ticks == 0 {
		t.Fatalf("state after growth: %+v", st)
	}
}

func TestSingleSpikeDoesNotThrash(t *testing.T) {
	f := newFake(2)
	c := testController(t, f, Config{
		Min: 2, Max: 8, Enabled: true,
		Alpha: 0.3, GrowThreshold: 0.5, ShrinkThreshold: 0.0001,
		Interval: time.Second, Cooldown: time.Second,
	})
	now := time.Unix(2000, 0)
	c.Tick(now)
	// One tick of total overload (queues full), then quiet.
	f.set(func(s *shard.LoadSignals) { s.QueueLen = s.QueueCap })
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Hold {
		t.Fatalf("a single full-queue spike resized the plane: %+v", d)
	}
	f.set(func(s *shard.LoadSignals) { s.QueueLen = 0 })
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		if d := c.Tick(now); d.Action != Hold {
			t.Fatalf("post-spike tick %d resized: %+v", i, d)
		}
	}
	if got := f.resized(); len(got) != 0 {
		t.Fatalf("spike caused resizes: %v", got)
	}
}

func TestIdleShrinksToMin(t *testing.T) {
	f := newFake(8)
	c := testController(t, f, Config{
		Min: 2, Max: 8, Enabled: true,
		Alpha: 0.5, GrowThreshold: 0.5, ShrinkThreshold: 0.05,
		Interval: time.Second, Cooldown: 2 * time.Second,
	})
	now := time.Unix(3000, 0)
	for i := 0; i < 20 && f.sig.Shards > 2; i++ {
		c.Tick(now)
		now = now.Add(3 * time.Second) // always past the cooldown
	}
	if got := f.resized(); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("shrink sequence %v, want [4 2]", got)
	}
	// At Min an idle plane stays put.
	if d := c.Tick(now); d.Action != Hold {
		t.Fatalf("idle tick at min resized: %+v", d)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	f := newFake(4)
	c := testController(t, f, Config{
		Min: 1, Max: 8, Enabled: true,
		Alpha: 1, GrowThreshold: 0.6, ShrinkThreshold: 0.2,
		Interval: time.Second,
	})
	now := time.Unix(4000, 0)
	// 40% occupancy sits between the thresholds: hold forever (alpha 1, so
	// the EWMA equals the occupancy from the very first tick).
	f.set(func(s *shard.LoadSignals) { s.QueueLen = 2 * s.Shards * 16 / 5 })
	for i := 0; i < 8; i++ {
		now = now.Add(time.Second)
		if d := c.Tick(now); d.Action != Hold || d.Reason != "load within thresholds" {
			t.Fatalf("in-band tick acted: %+v", d)
		}
	}
}

func TestDisabledMeasuresButNeverActs(t *testing.T) {
	f := newFake(1)
	c := testController(t, f, Config{
		Min: 1, Max: 8,
		Alpha: 0.5, GrowThreshold: 0.3, ShrinkThreshold: 0.01,
		Interval: time.Second,
	})
	now := time.Unix(5000, 0)
	c.Tick(now)
	for i := 0; i < 5; i++ {
		f.set(func(s *shard.LoadSignals) { s.Processed += 100; s.Dropped += 900 })
		now = now.Add(time.Second)
		if d := c.Tick(now); d.Action != Hold || d.Reason != "disabled" {
			t.Fatalf("disabled controller acted: %+v", d)
		}
	}
	st := c.State()
	if st.EWMA < 0.3 {
		t.Fatalf("disabled controller did not keep measuring: EWMA %v", st.EWMA)
	}
	// Arming it lets the already-high EWMA act on the next tick.
	c.SetEnabled(true)
	f.set(func(s *shard.LoadSignals) { s.Processed += 100; s.Dropped += 900 })
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Grow || d.To != 2 {
		t.Fatalf("armed controller did not act on accumulated pressure: %+v", d)
	}
}

func TestTuneBoundsCorrection(t *testing.T) {
	f := newFake(2)
	c := testController(t, f, Config{
		Min: 1, Max: 8, Enabled: true, Interval: time.Second,
	})
	now := time.Unix(6000, 0)
	// Raise Min above the current count: the next tick corrects upward
	// regardless of load.
	min := 4
	if _, err := c.Tune(Tuning{Min: &min}); err != nil {
		t.Fatal(err)
	}
	if d := c.Tick(now); d.Action != Grow || d.To != 4 {
		t.Fatalf("tick after raising min: %+v", d)
	}
	// Drop Max below the current count: correct downward (past cooldown).
	min, max := 1, 2
	if _, err := c.Tune(Tuning{Min: &min, Max: &max}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	if d := c.Tick(now); d.Action != Shrink || d.To != 2 {
		t.Fatalf("tick after lowering max: %+v", d)
	}
	// Invalid combinations are rejected atomically.
	bad := 0
	if _, err := c.Tune(Tuning{Min: &bad}); err == nil {
		t.Fatal("Tune accepted min 0")
	}
	if st := c.State(); st.Min != 1 || st.Max != 2 {
		t.Fatalf("rejected Tune leaked: %+v", st)
	}
}

func TestResizeErrorRecordedAndRetried(t *testing.T) {
	f := newFake(1)
	f.err = errors.New("plane wedged")
	c := testController(t, f, Config{
		Min: 1, Max: 8, Enabled: true,
		Alpha: 1, GrowThreshold: 0.5, ShrinkThreshold: 0.01,
		Interval: time.Second, Cooldown: 10 * time.Second,
	})
	now := time.Unix(7000, 0)
	c.Tick(now)
	f.set(func(s *shard.LoadSignals) { s.QueueLen = s.QueueCap })
	now = now.Add(time.Second)
	d := c.Tick(now)
	if d.Action != Grow || d.Err == "" {
		t.Fatalf("failed resize not recorded: %+v", d)
	}
	if st := c.State(); st.Resizes != 0 || st.CooldownRemaining != 0 {
		t.Fatalf("failed resize counted or started a cooldown: %+v", st)
	}
	// The fault clears: the very next tick retries (no cooldown was set).
	f.mu.Lock()
	f.err = nil
	f.mu.Unlock()
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Grow || d.Err != "" {
		t.Fatalf("retry after cleared fault: %+v", d)
	}
	if got := f.resized(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("resizes after retry: %v", got)
	}
}

func TestCloseWithoutStart(t *testing.T) {
	c, err := New(newFake(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
}

// TestControllerAgainstLivePool runs the controller's Run loop at full
// speed against a real pool while producers, samplers, a manual resizer
// and finally Close race it — the race detector and the
// either-complete-or-closed contract are the assertions.
func TestControllerAgainstLivePool(t *testing.T) {
	p, err := shard.New(shard.Config{
		Shards: 2, Buffer: 2, Block: false, Seed: 11, Capacity: 16,
		NewSketch: func(r *rng.Xoshiro) (*cms.Sketch, error) {
			return cms.NewWithDimensions(16, 4, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, Config{
		Min: 1, Max: 8, Enabled: true,
		Interval: time.Millisecond, Cooldown: 2 * time.Millisecond,
		Alpha: 0.5, GrowThreshold: 0.2, ShrinkThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			batch := make([]uint64, 256)
			for !stop.Load() {
				for i := range batch {
					batch[i] = r.Uint64()
				}
				if err := p.PushBatch(batch); err != nil {
					return // pool closed under us: the accepted outcome
				}
			}
		}(uint64(g) + 21)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			p.SampleN(32)
			p.LoadSignals()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A manual operator fighting the controller.
		for i := 0; !stop.Load(); i++ {
			if err := p.Resize(2 + i%3); err != nil && !errors.Is(err, shard.ErrPoolClosed) {
				t.Errorf("manual resize: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	// Close the pool while the controller is still ticking: resize failures
	// must be recorded, never panic.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	c.Close()
	if st := c.State(); st.Ticks == 0 {
		t.Fatalf("controller never ticked: %+v", st)
	}
}

// TestExternalResizeResetsDeltaBaseline pins the fix for manual resizes:
// a topology change the controller did not make also quiesced the plane,
// and the counter deltas straddling that stall (queued ids dropped at the
// barrier, the stall window itself) must not be misread as load.
func TestExternalResizeResetsDeltaBaseline(t *testing.T) {
	f := newFake(4)
	c := testController(t, f, Config{
		Min: 1, Max: 8, Enabled: true,
		Alpha: 1, GrowThreshold: 0.5, ShrinkThreshold: 0.1,
		Interval: time.Second,
	})
	now := time.Unix(8000, 0)
	f.set(func(s *shard.LoadSignals) { s.QueueLen = s.QueueCap / 4 }) // in-band
	c.Tick(now)
	// A manual resize lands between ticks: epoch bumps, and the quiesce
	// stall shows up as a huge drop delta in the cumulative counters.
	f.set(func(s *shard.LoadSignals) {
		s.Epoch++
		s.Dropped += 10000
		s.QueueLen = s.QueueCap / 4
	})
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Hold || d.Pressure > 0.3 {
		t.Fatalf("manual-resize stall misread as load: %+v", d)
	}
	// With a stable epoch the same delta is real load again.
	f.set(func(s *shard.LoadSignals) { s.Dropped += 10000; s.Processed += 100 })
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Grow {
		t.Fatalf("genuine drop burst after re-baselining ignored: %+v", d)
	}
}

// TestSaturationReasonsNameTheBound: a plane pinned at Max under load (or
// at Min while idle) must say so instead of claiming the load is in-band.
func TestSaturationReasonsNameTheBound(t *testing.T) {
	f := newFake(8)
	c := testController(t, f, Config{
		Min: 8, Max: 8, Enabled: true,
		Alpha: 1, GrowThreshold: 0.5, ShrinkThreshold: 0.1,
		Interval: time.Second,
	})
	now := time.Unix(9000, 0)
	f.set(func(s *shard.LoadSignals) { s.QueueLen = s.QueueCap })
	if d := c.Tick(now); d.Action != Hold || !strings.Contains(d.Reason, "at max") {
		t.Fatalf("saturated-at-max reason: %+v", d)
	}
	f.set(func(s *shard.LoadSignals) { s.QueueLen = 0 })
	now = now.Add(time.Second)
	if d := c.Tick(now); d.Action != Hold || !strings.Contains(d.Reason, "at min") {
		t.Fatalf("idle-at-min reason: %+v", d)
	}
}
