package autoscale

import (
	"testing"
	"time"

	"nodesampling/internal/shard"
)

// staticTarget serves fixed signals without locks, so the benchmark
// measures the controller's tick/decision path alone.
type staticTarget struct{ sig shard.LoadSignals }

func (s *staticTarget) LoadSignals() shard.LoadSignals { return s.sig }
func (s *staticTarget) Resize(int) error               { return nil }

// BenchmarkControllerTick measures one control evaluation end to end:
// signal condensation, EWMA update and the decision, on a held (in-band)
// plane — the steady state a live daemon's controller spends its life in.
func BenchmarkControllerTick(b *testing.B) {
	target := &staticTarget{sig: shard.LoadSignals{
		Shards: 8, QueueCap: 8 * 64, QueueLen: 96,
		Processed: 1 << 30, Dropped: 1 << 10,
	}}
	c, err := New(target, Config{
		Min: 1, Max: 64, Enabled: true,
		Alpha: 0.3, GrowThreshold: 0.6, ShrinkThreshold: 0.01,
		Interval: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		c.Tick(now)
	}
}
