// Package autoscale implements the policy layer on top of the elastic
// shard plane: a control loop that watches a pool's load signals — queue
// occupancy, ingest drop rate and σ′ emit drops, sampled each tick from
// shard.Pool.LoadSignals — and drives Pool.Resize between a configured
// [Min, Max] shard range without operator babysitting.
//
// The paper's sampler must keep its Uniformity and Freshness guarantees
// precisely when an adversary floods the input stream with Sybil ids — the
// moment ingest queues overflow and drops begin. The mechanism (a live,
// state-preserving Resize) already exists; this package supplies the
// judgement of when to use it:
//
//   - Each tick condenses the signals into a scalar pressure in [0, 1]:
//     the worst of queue occupancy, the ingest drop fraction and the emit
//     drop fraction since the previous tick.
//   - Pressure feeds an exponentially weighted moving average, so a
//     one-batch spike cannot thrash the plane: only sustained load moves
//     the average across a threshold.
//   - Grow and shrink use separate thresholds (hysteresis) with a hold
//     band between them, and every completed resize starts a cooldown
//     during which the controller only observes.
//   - Growing doubles the shard count (floods need a fast response),
//     shrinking halves it (reclaiming capacity can afford patience); both
//     clamp to [Min, Max]. If a runtime Tune moves the bounds past the
//     current count, the next tick corrects it regardless of load.
//
// The controller never blocks ingestion itself: reading LoadSignals takes
// only the pool's read lock, and the resize it occasionally issues is the
// same quiesce-and-hand-off the operator would have triggered by hand.
package autoscale

import (
	"fmt"
	"sync"
	"time"

	"nodesampling/internal/shard"
)

// Target is the surface the controller drives. *shard.Pool satisfies it;
// cmd/unsd wraps the pool so autoscaler resizes share the daemon's admin
// gate with manual POST /resize and the snapshot ticker.
type Target interface {
	LoadSignals() shard.LoadSignals
	Resize(shards int) error
}

// Config parameterises a Controller. The zero value of every field except
// Min/Max is replaced by the documented default.
type Config struct {
	// Min and Max bound the shard range the controller may resize within.
	// Min defaults to 1, Max to shard.MaxShards.
	Min, Max int
	// Interval is the tick period of the Run loop (default 1s). It is fixed
	// for the controller's lifetime; thresholds and bounds are tunable at
	// runtime via Tune.
	Interval time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3): the
	// weight of the newest tick's pressure. Lower values demand longer
	// sustained load before the controller acts.
	Alpha float64
	// GrowThreshold: smoothed pressure at or above it grows the plane
	// (default 0.5).
	GrowThreshold float64
	// ShrinkThreshold: smoothed pressure at or below it shrinks the plane
	// (default 0.05). Must stay below GrowThreshold — the gap is the
	// hysteresis band where the controller holds.
	ShrinkThreshold float64
	// Cooldown is the post-resize freeze (default 3×Interval): after a
	// completed resize the controller only observes until it elapses, so
	// the plane settles before the next decision.
	Cooldown time.Duration
	// Enabled arms the controller at construction. A disabled controller
	// still measures (so /stats shows live pressure) but never resizes.
	Enabled bool
}

func (c Config) withDefaults() Config {
	if c.Min == 0 {
		c.Min = 1
	}
	if c.Max == 0 {
		c.Max = shard.MaxShards
	}
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.GrowThreshold == 0 {
		c.GrowThreshold = 0.5
	}
	if c.ShrinkThreshold == 0 {
		c.ShrinkThreshold = 0.05
	}
	if c.Cooldown == 0 {
		c.Cooldown = 3 * c.Interval
	}
	return c
}

func (c Config) validate() error {
	if c.Min < 1 || c.Max > shard.MaxShards || c.Min > c.Max {
		return fmt.Errorf("autoscale: shard range [%d, %d] outside [1, %d]", c.Min, c.Max, shard.MaxShards)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("autoscale: non-positive interval %v", c.Interval)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("autoscale: EWMA alpha %v outside (0, 1]", c.Alpha)
	}
	if c.ShrinkThreshold < 0 || c.GrowThreshold <= c.ShrinkThreshold {
		return fmt.Errorf("autoscale: thresholds must satisfy 0 ≤ shrink (%v) < grow (%v)", c.ShrinkThreshold, c.GrowThreshold)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("autoscale: negative cooldown %v", c.Cooldown)
	}
	return nil
}

// Action is what a tick decided to do.
type Action string

// The three possible decisions of a tick.
const (
	Hold   Action = "hold"
	Grow   Action = "grow"
	Shrink Action = "shrink"
)

// Decision is the outcome of one control tick.
type Decision struct {
	At       time.Time
	Action   Action
	From, To int     // shard count before and after (equal on Hold)
	Pressure float64 // this tick's raw pressure
	EWMA     float64 // smoothed pressure after this tick
	Reason   string
	Err      string // resize failure, empty on success
}

// State is a snapshot of the controller for operational surfaces (/stats).
type State struct {
	Enabled           bool
	Min, Max          int
	Interval          time.Duration
	Alpha             float64
	GrowThreshold     float64
	ShrinkThreshold   float64
	Cooldown          time.Duration
	EWMA              float64
	Ticks             uint64
	Resizes           uint64
	CooldownRemaining time.Duration
	Last              Decision // most recent tick's decision (usually a hold)
	LastResize        Decision // most recent completed grow/shrink
}

// Tuning is a partial runtime reconfiguration for Tune: nil fields keep
// their current value, and the combined result is validated as a whole.
type Tuning struct {
	Enabled         *bool
	Min, Max        *int
	GrowThreshold   *float64
	ShrinkThreshold *float64
	Cooldown        *time.Duration
	Alpha           *float64
}

// Controller is the load-driven autoscaler. Create one with New, launch
// the tick loop with Start, and release it with Close. All methods are
// safe for concurrent use.
type Controller struct {
	target Target

	mu            sync.Mutex
	cfg           Config
	ewma          float64
	havePrev      bool
	prev          shard.LoadSignals
	cooldownUntil time.Time
	last          Decision
	lastResize    Decision
	ticks         uint64
	resizes       uint64
	ticking       bool
	started       bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New creates a controller over target. It does not tick until Start.
func New(target Target, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{
		target: target,
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Start launches the tick loop at the configured interval. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		c.mu.Lock()
		c.started = true
		interval := c.cfg.Interval
		c.mu.Unlock()
		go func() {
			defer close(c.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					c.Tick(now)
				case <-c.stop:
					return
				}
			}
		}()
	})
}

// Close stops the tick loop and waits for it to exit. Idempotent, and safe
// on a controller that was never started.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// SetEnabled arms or disarms the controller. A disarmed controller keeps
// measuring (ticks, EWMA) but never resizes.
func (c *Controller) SetEnabled(on bool) {
	_, _ = c.Tune(Tuning{Enabled: &on})
}

// Enabled reports whether the controller may act on its decisions.
func (c *Controller) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Enabled
}

// Tune applies a partial runtime reconfiguration and returns the resulting
// state. The combined configuration is validated before any of it takes
// effect; an invalid combination changes nothing.
func (c *Controller) Tune(t Tuning) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.cfg
	if t.Enabled != nil {
		cfg.Enabled = *t.Enabled
	}
	if t.Min != nil {
		cfg.Min = *t.Min
	}
	if t.Max != nil {
		cfg.Max = *t.Max
	}
	if t.GrowThreshold != nil {
		cfg.GrowThreshold = *t.GrowThreshold
	}
	if t.ShrinkThreshold != nil {
		cfg.ShrinkThreshold = *t.ShrinkThreshold
	}
	if t.Cooldown != nil {
		cfg.Cooldown = *t.Cooldown
	}
	if t.Alpha != nil {
		cfg.Alpha = *t.Alpha
	}
	if err := cfg.validate(); err != nil {
		return State{}, err
	}
	c.cfg = cfg
	return c.stateLocked(time.Now()), nil
}

// State snapshots the controller for /stats.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateLocked(time.Now())
}

func (c *Controller) stateLocked(now time.Time) State {
	st := State{
		Enabled:         c.cfg.Enabled,
		Min:             c.cfg.Min,
		Max:             c.cfg.Max,
		Interval:        c.cfg.Interval,
		Alpha:           c.cfg.Alpha,
		GrowThreshold:   c.cfg.GrowThreshold,
		ShrinkThreshold: c.cfg.ShrinkThreshold,
		Cooldown:        c.cfg.Cooldown,
		EWMA:            c.ewma,
		Ticks:           c.ticks,
		Resizes:         c.resizes,
		Last:            c.last,
		LastResize:      c.lastResize,
	}
	if r := c.cooldownUntil.Sub(now); r > 0 {
		st.CooldownRemaining = r
	}
	return st
}

// Tick runs one control evaluation at the given time: sample the signals,
// update the smoothed pressure, decide, and act on the decision if the
// controller is enabled. The Run loop calls it per interval; tests and
// benchmarks drive it directly with explicit clocks.
func (c *Controller) Tick(now time.Time) Decision {
	c.mu.Lock()
	if c.ticking {
		// A resize issued by a previous tick is still quiescing the plane;
		// measuring through it would charge the hand-off stall to the load.
		d := Decision{At: now, Action: Hold, Reason: "resize in flight", EWMA: c.ewma}
		c.mu.Unlock()
		return d
	}
	c.ticking = true
	c.mu.Unlock()

	sig := c.target.LoadSignals()

	c.mu.Lock()
	c.ticks++
	// A topology change the controller did not make (manual POST /resize,
	// restore) also quiesced the plane; counter deltas straddling it would
	// misread that stall as load, so restart the baseline exactly as after
	// our own resizes.
	if c.havePrev && sig.Epoch != c.prev.Epoch {
		c.havePrev = false
	}
	pressure := c.pressure(sig)
	// The EWMA starts at zero and is never seeded with a raw sample, so a
	// single hostile burst right after boot cannot clear the grow threshold
	// on its own — only sustained pressure can.
	c.ewma = c.cfg.Alpha*pressure + (1-c.cfg.Alpha)*c.ewma
	c.prev, c.havePrev = sig, true
	d := c.decide(now, sig, pressure)
	if d.Action == Hold {
		c.last = d
		c.ticking = false
		c.mu.Unlock()
		return d
	}
	c.mu.Unlock()

	// The resize itself runs outside the controller lock: it blocks on the
	// pool's quiesce barrier, and State/Tune must stay responsive meanwhile.
	err := c.target.Resize(d.To)

	c.mu.Lock()
	if err != nil {
		d.Err = err.Error()
		// No cooldown on failure: the condition persists and the next tick
		// should retry (or report the same error for /stats to surface).
	} else {
		c.resizes++
		c.cooldownUntil = now.Add(c.cfg.Cooldown)
		c.lastResize = d
		// Counter deltas straddling the quiesce stall would misread the
		// hand-off as load; restart the delta baseline at the next tick.
		c.havePrev = false
	}
	c.last = d
	c.ticking = false
	c.mu.Unlock()
	return d
}

// pressure condenses one signals snapshot into a scalar in [0, 1]: the
// worst of instantaneous queue occupancy and the drop fractions (ingest
// and σ′ emit) accumulated since the previous tick.
func (c *Controller) pressure(sig shard.LoadSignals) float64 {
	p := 0.0
	if sig.QueueCap > 0 {
		p = float64(sig.QueueLen) / float64(sig.QueueCap)
	}
	if c.havePrev {
		dProc := sig.Processed - c.prev.Processed
		if dDrop := sig.Dropped - c.prev.Dropped; dDrop > 0 {
			if f := float64(dDrop) / float64(dDrop+dProc); f > p {
				p = f
			}
		}
		if dEmit := sig.EmitDropped - c.prev.EmitDropped; dEmit > 0 {
			if f := float64(dEmit) / float64(dEmit+dProc); f > p {
				p = f
			}
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// decide turns the smoothed pressure into an action. The caller holds c.mu.
func (c *Controller) decide(now time.Time, sig shard.LoadSignals, pressure float64) Decision {
	d := Decision{
		At: now, Action: Hold, From: sig.Shards, To: sig.Shards,
		Pressure: pressure, EWMA: c.ewma,
	}
	if !c.cfg.Enabled {
		d.Reason = "disabled"
		return d
	}
	switch {
	// Bounds moved under the plane (a runtime Tune): correct regardless of
	// load, still honouring the cooldown below.
	case sig.Shards < c.cfg.Min:
		d.Action, d.To = Grow, c.cfg.Min
		d.Reason = fmt.Sprintf("%d shards below configured min %d", sig.Shards, c.cfg.Min)
	case sig.Shards > c.cfg.Max:
		d.Action, d.To = Shrink, c.cfg.Max
		d.Reason = fmt.Sprintf("%d shards above configured max %d", sig.Shards, c.cfg.Max)
	case c.ewma >= c.cfg.GrowThreshold && sig.Shards < c.cfg.Max:
		to := sig.Shards * 2
		if to > c.cfg.Max {
			to = c.cfg.Max
		}
		d.Action, d.To = Grow, to
		d.Reason = fmt.Sprintf("load %.3f ≥ grow threshold %.3f", c.ewma, c.cfg.GrowThreshold)
	case c.ewma <= c.cfg.ShrinkThreshold && sig.Shards > c.cfg.Min:
		to := sig.Shards / 2
		if to < c.cfg.Min {
			to = c.cfg.Min
		}
		d.Action, d.To = Shrink, to
		d.Reason = fmt.Sprintf("load %.3f ≤ shrink threshold %.3f", c.ewma, c.cfg.ShrinkThreshold)
	default:
		// Name the saturation cases: an operator diagnosing a flooded daemon
		// must not read "load within thresholds" while the plane is pinned
		// at a bound.
		switch {
		case c.ewma >= c.cfg.GrowThreshold:
			d.Reason = fmt.Sprintf("at max %d shards, load %.3f above grow threshold", c.cfg.Max, c.ewma)
		case c.ewma <= c.cfg.ShrinkThreshold:
			d.Reason = fmt.Sprintf("at min %d shards, load %.3f below shrink threshold", c.cfg.Min, c.ewma)
		default:
			d.Reason = "load within thresholds"
		}
		return d
	}
	if remaining := c.cooldownUntil.Sub(now); remaining > 0 {
		d.Action, d.To = Hold, sig.Shards
		d.Reason = fmt.Sprintf("post-resize cooldown (%v remaining)", remaining.Round(time.Millisecond))
	}
	return d
}
