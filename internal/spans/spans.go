// Package spans is a dependency-free tracing substrate for the sampling
// service's request path. It answers one operational question the metric
// plane cannot: where does a single pushed batch spend its time between
// the wire and σ′ delivery? A Tracer makes a probabilistic 1-in-N
// sampling decision per wire batch (the unsampled hot path pays exactly
// one atomic add), sampled batches carry a small value-type Context
// through the shard plane, and finished spans land in a bounded
// lock-free ring the daemon drains into Chrome trace-event JSON on
// GET /trace.
//
// The name internal/trace was deliberately not used — that namespace
// belongs to the paper's input trace-data substrate, not to telemetry.
package spans

import (
	"sort"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute on a finished span. Values are kept as
// the small set of types the exporters can render losslessly.
type Attr struct {
	Key   string
	Value any // string, int, int64, uint64 or float64
}

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: int64(v)} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Span is one finished, immutable operation record.
type Span struct {
	Trace  uint64 // trace id shared by every span of one sampled batch
	ID     uint64 // span id, unique within the tracer
	Parent uint64 // parent span id; 0 for the root
	Name   string
	Start  int64 // wall clock, nanoseconds since the Unix epoch
	Dur    int64 // nanoseconds
	Attrs  []Attr
}

// Tracer owns the sampling decision, id allocation and the export ring.
// All methods are safe for concurrent use.
type Tracer struct {
	every uint64 // sample 1 in every; 0 disables tracing entirely
	seen  atomic.Uint64
	ids   atomic.Uint64
	ring  ring
}

// New returns a tracer sampling one in every `every` root spans into a
// ring of ringSize finished spans (oldest overwritten first). every <= 0
// disables sampling: every Root call returns an unsampled Context.
func New(every, ringSize int) *Tracer {
	t := &Tracer{}
	if every > 0 {
		t.every = uint64(every)
	}
	if ringSize < 1 {
		ringSize = 1
	}
	t.ring.slots = make([]atomic.Pointer[Span], ringSize)
	return t
}

// Enabled reports whether the tracer can ever sample.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Root makes the sampling decision for a new trace. The common path — a
// disabled tracer or an unsampled batch — costs one atomic add and
// returns the zero Context, which every downstream call treats as a
// no-op. A sampled batch gets a Context carrying a fresh trace id and an
// open root span.
func (t *Tracer) Root(name string) Context {
	if t == nil || t.every == 0 {
		return Context{}
	}
	if t.seen.Add(1)%t.every != 0 {
		return Context{}
	}
	id := t.ids.Add(1)
	return Context{
		t:     t,
		trace: id,
		span:  id,
		name:  name,
		start: time.Now().UnixNano(),
	}
}

// Context is one open span of a sampled trace, passed by value through
// the pipeline (channels included). The zero Context is the unsampled
// case: Start returns another zero Context and End does nothing, so
// instrumented code never branches on sampling itself.
type Context struct {
	t      *Tracer
	trace  uint64
	span   uint64
	parent uint64
	name   string
	start  int64
}

// Sampled reports whether this context belongs to a sampled trace.
func (c Context) Sampled() bool { return c.t != nil }

// Trace returns the trace id (0 when unsampled).
func (c Context) Trace() uint64 { return c.trace }

// Start opens a child span of c. Call End on the returned context to
// finish it; parent/child ordering of the End calls does not matter.
func (c Context) Start(name string) Context {
	if c.t == nil {
		return Context{}
	}
	return Context{
		t:      c.t,
		trace:  c.trace,
		span:   c.t.ids.Add(1),
		parent: c.span,
		name:   name,
		start:  time.Now().UnixNano(),
	}
}

// End finishes the span and publishes it to the tracer's ring. attrs are
// attached to the finished span. End on the zero Context is a no-op;
// calling End more than once publishes duplicate records, so don't.
func (c Context) End(attrs ...Attr) {
	if c.t == nil {
		return
	}
	c.t.ring.add(&Span{
		Trace:  c.trace,
		ID:     c.span,
		Parent: c.parent,
		Name:   c.name,
		Start:  c.start,
		Dur:    time.Now().UnixNano() - c.start,
		Attrs:  attrs,
	})
}

// ring is a bounded lock-free multi-producer span sink: a monotone head
// counter hands each finished span a slot, old spans are overwritten.
type ring struct {
	slots []atomic.Pointer[Span]
	head  atomic.Uint64
}

func (r *ring) add(s *Span) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// Export snapshots the ring: every retained finished span, oldest first
// (by start time, then id). The ring keeps filling while Export runs;
// the snapshot is simply whatever each slot held when read.
func (t *Tracer) Export() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.ring.slots))
	for i := range t.ring.slots {
		if s := t.ring.slots[i].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}
