package spans

import (
	"sync"
	"testing"
)

// TestSamplingOneInN: a 1-in-N tracer samples exactly count/N of count
// root decisions (the counter is deterministic, not pseudo-random), and
// every=0 disables sampling entirely.
func TestSamplingOneInN(t *testing.T) {
	tr := New(8, 64)
	sampled := 0
	for i := 0; i < 800; i++ {
		if tr.Root("ingest").Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-8 tracer sampled %d of 800, want 100", sampled)
	}

	off := New(0, 64)
	if off.Enabled() {
		t.Fatal("every=0 tracer reports Enabled")
	}
	for i := 0; i < 100; i++ {
		if off.Root("ingest").Sampled() {
			t.Fatal("disabled tracer sampled a root")
		}
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.Root("x").Sampled() {
		t.Fatal("nil tracer is not inert")
	}
}

// TestSpanTreeLinks: one sampled root with children finishing out of
// order still exports a connected tree — shared trace id, parent links
// resolving to in-trace span ids, root parented at 0.
func TestSpanTreeLinks(t *testing.T) {
	tr := New(1, 64)
	root := tr.Root("ingest")
	if !root.Sampled() {
		t.Fatal("1-in-1 tracer did not sample")
	}
	shard := root.Start("shard")
	emit := shard.Start("emit")
	delivery := emit.Start("delivery")
	emit.End()
	root.End(Int("ids", 2048))
	delivery.End()
	shard.End()

	spans := tr.Export()
	if len(spans) != 4 {
		t.Fatalf("exported %d spans, want 4", len(spans))
	}
	byID := make(map[uint64]Span)
	for _, s := range spans {
		if s.Trace != root.Trace() {
			t.Fatalf("span %s carries trace %d, want %d", s.Name, s.Trace, root.Trace())
		}
		byID[s.ID] = s
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			if s.Name != "ingest" {
				t.Fatalf("root span is %q, want ingest", s.Name)
			}
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %s parent %d not in the trace", s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots in the trace, want 1", roots)
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Fatalf("span %s has negative duration %d", s.Name, s.Dur)
		}
	}
}

// TestZeroContextIsFree: the unsampled context threads through the whole
// instrumentation surface as a no-op and publishes nothing.
func TestZeroContextIsFree(t *testing.T) {
	tr := New(1, 16)
	var zero Context
	child := zero.Start("shard")
	child.End(Int("ids", 1))
	zero.End()
	if child.Sampled() || zero.Trace() != 0 {
		t.Fatal("zero context is not inert")
	}
	if got := tr.Export(); len(got) != 0 {
		t.Fatalf("zero contexts published %d spans", len(got))
	}
}

// TestRingOverflowConcurrent is the satellite's race-clean overflow
// proof: many goroutines finishing spans into a ring far smaller than
// the span count, with concurrent Export calls, must neither race (run
// under -race in CI) nor yield more than ring-size spans, and every
// exported record must be intact.
func TestRingOverflowConcurrent(t *testing.T) {
	const (
		ringSize   = 64
		goroutines = 8
		perG       = 2000
	)
	tr := New(1, ringSize)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader while the ring churns
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range tr.Export() {
				if s.Name == "" || s.Trace == 0 || s.ID == 0 {
					t.Error("torn span exported from the ring")
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				root := tr.Root("ingest")
				child := root.Start("shard")
				child.End(Int("i", i))
				root.End()
			}
		}()
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	got := tr.Export()
	if len(got) == 0 || len(got) > ringSize {
		t.Fatalf("exported %d spans from a %d-slot ring", len(got), ringSize)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatal("export not ordered by start time")
		}
	}
}
