package loadgen

import (
	"context"
	"testing"
	"time"
)

func TestMergeReports(t *testing.T) {
	if got := MergeReports(nil); got.Offered != 0 || got.HaveDeltas {
		t.Fatalf("empty merge = %+v", got)
	}
	a := Report{
		Name: "uniform", Offered: 100, Duration: 2 * time.Second,
		Scrapes: 3, ScrapeErrors: 1,
		Gauge: []GaugePoint{
			{Elapsed: 10 * time.Millisecond, InputKL: 0.5, HasIn: true},
			{Elapsed: 30 * time.Millisecond, InputKL: 0.7, HasIn: true},
		},
		Processed: 80, Dropped: 20, HaveDeltas: true,
		PushAck:   LatencySummary{Count: 4, P50: 1 * time.Millisecond, P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond},
		SampleRPC: LatencySummary{Count: 2, P50: 5 * time.Millisecond, P95: 6 * time.Millisecond, P99: 7 * time.Millisecond, Max: 8 * time.Millisecond},
	}
	b := Report{
		Name: "uniform", Offered: 60, Duration: 3 * time.Second,
		Scrapes: 2,
		Gauge: []GaugePoint{
			{Elapsed: 20 * time.Millisecond, InputKL: 0.9, HasIn: true},
		},
		Processed: 40, Dropped: 10, HaveDeltas: true,
		PushAck:   LatencySummary{Count: 1, P50: 9 * time.Millisecond, P95: 9 * time.Millisecond, P99: 9 * time.Millisecond, Max: 9 * time.Millisecond},
		SampleRPC: LatencySummary{Count: 3, P50: 1 * time.Millisecond, P95: 2 * time.Millisecond, P99: 9 * time.Millisecond, Max: 3 * time.Millisecond},
	}
	m := MergeReports([]Report{a, b})
	if m.Name != "uniform" || m.Offered != 160 {
		t.Fatalf("merged name/offered = %q/%d", m.Name, m.Offered)
	}
	if m.Duration != 3*time.Second {
		t.Fatalf("merged duration %v, want the slowest target's 3s", m.Duration)
	}
	if m.Scrapes != 5 || m.ScrapeErrors != 1 {
		t.Fatalf("merged scrapes %d/%d, want 5/1", m.Scrapes, m.ScrapeErrors)
	}
	if m.Processed != 120 || m.Dropped != 30 || !m.HaveDeltas {
		t.Fatalf("merged deltas %+v", m)
	}
	if m.DropFraction != 30.0/150.0 {
		t.Fatalf("merged drop fraction %v", m.DropFraction)
	}
	if want := 160.0 / 3.0; m.AchievedRate < want-0.01 || m.AchievedRate > want+0.01 {
		t.Fatalf("merged achieved rate %v, want ~%v", m.AchievedRate, want)
	}
	// The gauge trajectories interleave in elapsed order: a's 10ms point,
	// b's 20ms point, a's 30ms point.
	if len(m.Gauge) != 3 {
		t.Fatalf("merged gauge has %d points", len(m.Gauge))
	}
	for i, want := range []float64{0.5, 0.9, 0.7} {
		if m.Gauge[i].InputKL != want {
			t.Fatalf("gauge point %d = %+v, want InputKL %v", i, m.Gauge[i], want)
		}
	}
	// Latency merges conservatively: counts sum, percentiles take the
	// element-wise worst across targets.
	if m.PushAck.Count != 5 || m.PushAck.P50 != 9*time.Millisecond || m.PushAck.Max != 9*time.Millisecond {
		t.Fatalf("merged push-ack %+v", m.PushAck)
	}
	if m.SampleRPC.Count != 5 || m.SampleRPC.P50 != 5*time.Millisecond ||
		m.SampleRPC.P99 != 9*time.Millisecond || m.SampleRPC.Max != 8*time.Millisecond {
		t.Fatalf("merged sample-rpc %+v", m.SampleRPC)
	}

	// One target without deltas poisons the merged deltas (a partial sum
	// would understate the fleet), but everything else still merges.
	b.HaveDeltas = false
	m = MergeReports([]Report{a, b})
	if m.HaveDeltas || m.Processed != 0 || m.Dropped != 0 || m.DropFraction != 0 {
		t.Fatalf("merge with a delta-less target = %+v", m)
	}
	if m.Offered != 160 {
		t.Fatalf("offered %d after delta poisoning, want 160", m.Offered)
	}
}

func TestRunMultiValidation(t *testing.T) {
	sink := newFrameSink(t)
	g, err := New(Config{Addr: sink.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	phases, err := StandardPhases(256, 100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMulti(context.Background(), nil, nil); err == nil {
		t.Fatal("no generators accepted")
	}
	if _, err := RunMulti(context.Background(), []*Generator{g}, nil); err == nil {
		t.Fatal("mismatched phase-list count accepted")
	}
	if _, err := RunMulti(context.Background(), []*Generator{g, g}, [][]Phase{phases, phases[:2]}); err == nil {
		t.Fatal("ragged phase lists accepted")
	}
}

// TestRunMultiAgainstSinks drives two generators through two phases in
// lockstep against separate sinks and checks the merged fleet view: offered
// ids sum across targets and every target's stream reaches its own sink.
func TestRunMultiAgainstSinks(t *testing.T) {
	sinks := []*frameSink{newFrameSink(t), newFrameSink(t)}
	gens := make([]*Generator, len(sinks))
	phaseLists := make([][]Phase, len(sinks))
	for i, sink := range sinks {
		g, err := New(Config{Addr: sink.addr(), Batch: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		phases, err := StandardPhases(256, 1024, uint64(i+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = g
		phaseLists[i] = phases[:2] // uniform + flood
	}
	reports, err := RunMulti(context.Background(), gens, phaseLists)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d merged reports, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.Offered != 2048 {
			t.Fatalf("phase %s offered %d across the fleet, want 2048", rep.Name, rep.Offered)
		}
		if rep.Duration <= 0 || rep.AchievedRate <= 0 {
			t.Fatalf("phase %s merged timing %v / %v", rep.Name, rep.Duration, rep.AchievedRate)
		}
	}
	for i, sink := range sinks {
		waitFor(t, "all pushed ids to land in each sink", func() bool {
			return sink.total() == 2048
		})
		// The flood phase concentrates 80% on id population/2 = 128 at every
		// target — the phases run per target, not split between them.
		if c := sink.count(128); c < 600 {
			t.Fatalf("sink %d saw the flood victim %d times of 1024, want the 80%% share", i, c)
		}
	}
}
