package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesampling/internal/netgossip"
)

// frameSink is a minimal framed-protocol server: it counts PushBatch ids
// and tracks per-id frequencies, which is all the generator tests need.
type frameSink struct {
	ln net.Listener

	mu     sync.Mutex
	ids    uint64
	counts map[uint64]uint64
}

func newFrameSink(t *testing.T) *frameSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &frameSink{ln: ln, counts: make(map[uint64]uint64)}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *frameSink) serve(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := netgossip.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case netgossip.FramePushBatch:
			s.mu.Lock()
			s.ids += uint64(len(f.IDs))
			for _, id := range f.IDs {
				s.counts[id]++
			}
			s.mu.Unlock()
		case netgossip.FramePing:
			if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
				return
			}
		case netgossip.FrameSample:
			if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: []uint64{1}}); err != nil {
				return
			}
		}
	}
}

func (s *frameSink) total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ids
}

func (s *frameSink) count(id uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[id]
}

func (s *frameSink) addr() string { return s.ln.Addr().String() }

// metricsStub serves a scrape whose counters advance on every hit, so delta
// logic has something to measure.
func metricsStub(t *testing.T, wantToken string) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantToken != "" && r.Header.Get("Authorization") != "Bearer "+wantToken {
			http.Error(w, "no", http.StatusUnauthorized)
			return
		}
		n := hits.Add(1)
		fmt.Fprintf(w, "# HELP unsd_pool_processed_ids_total x\n# TYPE unsd_pool_processed_ids_total counter\nunsd_pool_processed_ids_total %d\n", n*100)
		fmt.Fprintf(w, "# HELP unsd_pool_dropped_ids_total x\n# TYPE unsd_pool_dropped_ids_total counter\nunsd_pool_dropped_ids_total %d\n", n*25)
		fmt.Fprintf(w, "# HELP unsd_uniformity_input_kl x\n# TYPE unsd_uniformity_input_kl gauge\nunsd_uniformity_input_kl %g\n", 0.5+float64(n))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestGeneratorPushesAndScrapes(t *testing.T) {
	sink := newFrameSink(t)
	ms, hits := metricsStub(t, "")
	g, err := New(Config{
		Addr:           sink.addr(),
		MetricsURL:     ms.URL,
		Batch:          256,
		ScrapeInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	phases, err := StandardPhases(256, 2048, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := g.Run(context.Background(), phases[:2]) // uniform + flood
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.Offered != 2048 {
			t.Fatalf("phase %s offered %d, want 2048", rep.Name, rep.Offered)
		}
		if rep.Scrapes < 2 {
			t.Fatalf("phase %s scraped %d times, want >= 2 (start + end)", rep.Name, rep.Scrapes)
		}
		if !rep.HaveDeltas {
			t.Fatalf("phase %s has no counter deltas", rep.Name)
		}
		if rep.Processed <= 0 || rep.Dropped <= 0 {
			t.Fatalf("phase %s deltas processed=%v dropped=%v, want positive", rep.Name, rep.Processed, rep.Dropped)
		}
		if rep.DropFraction < 0.19 || rep.DropFraction > 0.21 {
			t.Fatalf("phase %s drop fraction %v, want 0.2 (stub serves 4:1)", rep.Name, rep.DropFraction)
		}
		if kl, ok := rep.MaxInputKL(); !ok || kl <= 0 {
			t.Fatalf("phase %s input KL trajectory missing (kl=%v ok=%v)", rep.Name, kl, ok)
		}
		if rep.AchievedRate <= 0 {
			t.Fatalf("phase %s achieved rate %v", rep.Name, rep.AchievedRate)
		}
	}
	if hits.Load() == 0 {
		t.Fatal("metrics endpoint never scraped")
	}
	waitFor(t, "all pushed ids to land in the sink", func() bool {
		return sink.total() == 4096
	})
	// The flood phase concentrates 80% on id n/2 = 128: the sink must see
	// it dominate.
	if c := sink.count(128); c < 1200 {
		t.Fatalf("flood victim id seen %d times of 2048, want the 80%% share", c)
	}
}

func TestGeneratorPacing(t *testing.T) {
	sink := newFrameSink(t)
	g, err := New(Config{Addr: sink.addr(), Batch: 100, Rate: 4000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	phases, err := StandardPhases(64, 1000, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reports, err := g.Run(context.Background(), phases[:1])
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 1000 ids at 4000/s is 250ms of schedule; granting generous slack for
	// CI, the run must take materially longer than unpaced (~instant) and
	// the report must agree with the wall clock.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("paced run finished in %v, want >= 200ms", elapsed)
	}
	rep := reports[0]
	if rep.AchievedRate > 6000 {
		t.Fatalf("achieved rate %v ids/s against a 4000 target", rep.AchievedRate)
	}
}

func TestGeneratorScrapeToken(t *testing.T) {
	sink := newFrameSink(t)
	ms, _ := metricsStub(t, "sekrit")
	g, err := New(Config{Addr: sink.addr(), MetricsURL: ms.URL, Token: "sekrit"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Scrape(context.Background()); err != nil {
		t.Fatalf("authorised scrape: %v", err)
	}
	if _, err := ScrapeMetrics(context.Background(), nil, ms.URL, ""); err == nil {
		t.Fatal("tokenless scrape of a gated endpoint succeeded")
	}
}

func TestGeneratorAbortsOnContext(t *testing.T) {
	sink := newFrameSink(t)
	g, err := New(Config{Addr: sink.addr(), Batch: 10, Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	phases, err := StandardPhases(64, 1_000_000, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := g.Run(ctx, phases[:1])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if len(reports) != 1 || reports[0].Offered >= 1_000_000 {
		t.Fatalf("aborted run reported %+v", reports)
	}
}

func TestGeneratorLatencySampling(t *testing.T) {
	sink := newFrameSink(t)
	g, err := New(Config{Addr: sink.addr(), Batch: 128, LatencySample: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	phases, err := StandardPhases(256, 1024, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := g.Run(context.Background(), phases[:1])
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	// 1024 ids / 128 per batch = 8 batches, every 2nd measured = 4 samples
	// of each round trip.
	if rep.PushAck.Count != 4 || rep.SampleRPC.Count != 4 {
		t.Fatalf("latency sample counts push-ack=%d sample=%d, want 4 each",
			rep.PushAck.Count, rep.SampleRPC.Count)
	}
	for _, s := range []LatencySummary{rep.PushAck, rep.SampleRPC} {
		if s.P50 <= 0 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			t.Fatalf("latency percentiles out of order: %+v", s)
		}
	}
	// Measured batches still count as pushed ids.
	waitFor(t, "all pushed ids to land in the sink", func() bool {
		return sink.total() == 1024
	})

	if _, err := New(Config{Addr: sink.addr(), LatencySample: -1}); err == nil {
		t.Fatal("negative latency sample accepted")
	}
}

func TestLatencySummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Millisecond // descending: summarize must sort
	}
	s := summarize(samples)
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond ||
		s.P99 != 99*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("percentiles %+v", s)
	}
	one := summarize([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.Max != 7*time.Millisecond {
		t.Fatalf("single-sample summary %+v", one)
	}
}

func TestChurnSourceNeverRepeats(t *testing.T) {
	src := NewChurnSource(42)
	seen := make(map[uint64]struct{}, 100_000)
	for i := 0; i < 100_000; i++ {
		id := src.Next()
		if _, dup := seen[id]; dup {
			t.Fatalf("churn source repeated id %d at draw %d", id, i)
		}
		seen[id] = struct{}{}
	}
	// Determinism per seed: a second source replays the same stream.
	a, b := NewChurnSource(7), NewChurnSource(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("churn source is not deterministic per seed")
		}
	}
}

func TestStandardPhasesValidation(t *testing.T) {
	if _, err := StandardPhases(8, 100, 1, 0); err == nil {
		t.Fatal("tiny population accepted")
	}
	if _, err := StandardPhases(256, 0, 1, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	phases, err := StandardPhases(256, 100, 1, 8000)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{PhaseUniform, PhaseFlood, PhaseChurn, PhaseSlowTrickle, PhaseRecovery}
	if len(phases) != len(names) {
		t.Fatalf("got %d phases, want %d", len(phases), len(names))
	}
	for i, ph := range phases {
		if ph.Name != names[i] {
			t.Fatalf("phase %d is %q, want %q", i, ph.Name, names[i])
		}
		if ph.Source == nil || ph.Count != 100 {
			t.Fatalf("phase %q malformed: %+v", ph.Name, ph)
		}
	}
	if phases[3].Rate != 2000 {
		t.Fatalf("slow-trickle rate %v, want rate/4 = 2000", phases[3].Rate)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:1", Rate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:1", Batch: -1}); err == nil {
		t.Fatal("negative batch accepted")
	}
	// An unreachable address fails at New, not at first push.
	if _, err := New(Config{Addr: "127.0.0.1:0", DialTimeout: time.Second}); err == nil {
		t.Fatal("dial of port 0 succeeded")
	}
}

func TestScrapeMetricsRejectsGarbage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "this is not an exposition\n")
	}))
	defer ts.Close()
	if _, err := ScrapeMetrics(context.Background(), nil, ts.URL, ""); err == nil {
		t.Fatal("garbage body parsed as an exposition")
	}
}
