// Package loadgen drives a live unsd daemon the way the paper's adversary
// drives the sampler: phased id streams — a uniform baseline, a targeted
// flood, a churn storm, a slow-trickle bias — pushed over the framed
// protocol (version 2) at a target rate, while GET /metrics is scraped so
// each phase's report carries the daemon's own view of the experiment:
// ingest counters, drop fractions, and the live uniformity gauge's
// trajectory. It is the measurement half of the observability plane: the
// telemetry package exports the gauges, loadgen exercises them against a
// running fleet and turns the scrape series into evidence.
//
// The generator is deliberately a pure client. It speaks the same wire
// protocol as any other peer (so it exercises the TLS and mTLS edge too)
// and reads only public surfaces, which keeps it honest: a report line is
// something an operator could reproduce with curl and a stopwatch.
package loadgen

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"nodesampling/client"
	"nodesampling/internal/adversary"
	"nodesampling/internal/netgossip"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
	"nodesampling/internal/telemetry"
)

// Config configures a Generator.
type Config struct {
	// Addr is the daemon's framed stream endpoint (host:port). Required.
	Addr string
	// TLS, when non-nil, wraps the connection (set RootCAs for the daemon's
	// CA and Certificates for mutual TLS).
	TLS *tls.Config
	// MetricsURL is the daemon's /metrics endpoint; empty disables scraping
	// and the per-phase reports carry no gauge trajectory.
	MetricsURL string
	// Token is the admin bearer token, needed only when the daemon runs
	// with -admin-token-all.
	Token string
	// HTTPClient overrides the scrape client (nil uses a 5s-timeout client;
	// set one with a TLS transport when MetricsURL is https).
	HTTPClient *http.Client
	// Rate is the target push rate in ids/second; 0 means unpaced (as fast
	// as the connection accepts).
	Rate float64
	// Batch is the ids-per-frame granularity, clamped to the protocol's
	// MaxBatch; 0 means 1024.
	Batch int
	// ScrapeInterval is how often /metrics is sampled during a phase; 0
	// means 250ms.
	ScrapeInterval time.Duration
	// DialTimeout bounds the connect (and TLS handshake); 0 means 10s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; 0 means 30s.
	WriteTimeout time.Duration
	// LatencySample measures client-observed latency on one in N batches:
	// the push-ack round trip (PushBatch followed by a Ping whose Pong
	// proves the daemon's read loop consumed the batch — frames on one
	// connection are handled in order) and a Sample RPC round trip
	// (FrameSample → FrameSampleResp). 0 disables latency sampling; the
	// measured batches serialise on the round trip, so a small N trades
	// throughput for latency resolution.
	LatencySample int
}

// Phase is one segment of a load run: Count ids drawn from Source, pushed
// at Rate (0 inherits the generator's rate).
type Phase struct {
	Name   string
	Source stream.Source
	Count  int
	Rate   float64
}

// GaugePoint is one /metrics observation of the uniformity gauge.
type GaugePoint struct {
	Elapsed  time.Duration // since the phase started
	InputKL  float64
	OutputKL float64
	HasIn    bool // the scrape carried an input-KL sample
	HasOut   bool
}

// Report is the outcome of one phase.
type Report struct {
	Name         string
	Offered      int           // ids pushed over the wire
	Duration     time.Duration // wall clock for the phase
	AchievedRate float64       // ids/second actually sustained
	Scrapes      int           // successful /metrics scrapes
	ScrapeErrors int
	Gauge        []GaugePoint // uniformity trajectory, one point per scrape

	// Counter deltas over the phase, from the first and last scrape
	// (NaN-free only when scraping is enabled and both scrapes succeeded).
	Processed    float64 // unsd_pool_processed_ids_total delta
	Dropped      float64 // unsd_pool_dropped_ids_total delta
	DropFraction float64 // Dropped / (Processed + Dropped), 0 when idle
	HaveDeltas   bool

	// Client-observed latency percentiles (Config.LatencySample): the
	// push-ack round trip and the Sample RPC round trip, as a caller on
	// this connection actually experienced them — the wire-side complement
	// of the daemon's own unsd_*_duration_seconds histograms.
	PushAck   LatencySummary
	SampleRPC LatencySummary
}

// MaxInputKL returns the highest input divergence observed in the phase
// (0, false when the gauge never reported).
func (r Report) MaxInputKL() (float64, bool) {
	max, ok := 0.0, false
	for _, p := range r.Gauge {
		if p.HasIn && (!ok || p.InputKL > max) {
			max, ok = p.InputKL, true
		}
	}
	return max, ok
}

// FinalInputKL returns the last observed input divergence.
func (r Report) FinalInputKL() (float64, bool) {
	for i := len(r.Gauge) - 1; i >= 0; i-- {
		if r.Gauge[i].HasIn {
			return r.Gauge[i].InputKL, true
		}
	}
	return 0, false
}

// Generator pushes phased id streams at a live daemon.
type Generator struct {
	cfg       Config
	conn      net.Conn
	hc        *http.Client
	pingToken uint64
}

// New validates cfg and dials the stream endpoint.
func New(cfg Config) (*Generator, error) {
	if cfg.Addr == "" {
		return nil, errors.New("loadgen: no stream address")
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("loadgen: negative rate %v", cfg.Rate)
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("loadgen: negative batch %d", cfg.Batch)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1024
	}
	if cfg.LatencySample < 0 {
		return nil, fmt.Errorf("loadgen: negative latency sample interval %d", cfg.LatencySample)
	}
	if cfg.Batch > netgossip.MaxBatch {
		cfg.Batch = netgossip.MaxBatch
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 250 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	d := net.Dialer{Timeout: cfg.DialTimeout}
	var (
		conn net.Conn
		err  error
	)
	if cfg.TLS != nil {
		conn, err = tls.DialWithDialer(&d, "tcp", cfg.Addr, cfg.TLS)
	} else {
		conn, err = d.Dial("tcp", cfg.Addr)
	}
	if err != nil {
		return nil, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	return &Generator{cfg: cfg, conn: conn, hc: hc}, nil
}

// Close releases the stream connection.
func (g *Generator) Close() error { return g.conn.Close() }

// Run executes the phases in order and returns one report per completed
// phase. A push failure or context cancellation aborts the run; the reports
// accumulated so far come back alongside the error.
func (g *Generator) Run(ctx context.Context, phases []Phase) ([]Report, error) {
	reports := make([]Report, 0, len(phases))
	for _, ph := range phases {
		rep, err := g.runPhase(ctx, ph)
		reports = append(reports, rep)
		if err != nil {
			return reports, fmt.Errorf("loadgen: phase %s: %w", ph.Name, err)
		}
	}
	return reports, nil
}

func (g *Generator) runPhase(ctx context.Context, ph Phase) (Report, error) {
	rep := Report{Name: ph.Name}
	if ph.Source == nil {
		return rep, errors.New("nil source")
	}
	if ph.Count <= 0 {
		return rep, fmt.Errorf("non-positive count %d", ph.Count)
	}
	rate := ph.Rate
	if rate == 0 {
		rate = g.cfg.Rate
	}

	start := time.Now()
	var first, last *telemetry.Scrape
	scrape := func() {
		if g.cfg.MetricsURL == "" {
			return
		}
		s, err := g.Scrape(ctx)
		if err != nil {
			rep.ScrapeErrors++
			return
		}
		rep.Scrapes++
		if first == nil {
			first = s
		}
		last = s
		pt := GaugePoint{Elapsed: time.Since(start)}
		pt.InputKL, pt.HasIn = s.Value("unsd_uniformity_input_kl")
		pt.OutputKL, pt.HasOut = s.Value("unsd_uniformity_output_kl")
		rep.Gauge = append(rep.Gauge, pt)
	}
	scrape()
	nextScrape := start.Add(g.cfg.ScrapeInterval)

	batch := make([]uint64, 0, g.cfg.Batch)
	var pushAcks, sampleRTTs []time.Duration
	sent, batches := 0, 0
	for sent < ph.Count {
		if err := ctx.Err(); err != nil {
			rep.Duration = time.Since(start)
			return rep, err
		}
		n := g.cfg.Batch
		if left := ph.Count - sent; left < n {
			n = left
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, ph.Source.Next())
		}
		batches++
		if g.cfg.LatencySample > 0 && batches%g.cfg.LatencySample == 0 {
			ack, err := g.pushAck(batch)
			if err != nil {
				rep.Duration = time.Since(start)
				return rep, err
			}
			pushAcks = append(pushAcks, ack)
			rtt, err := g.sampleRTT(1)
			if err != nil {
				rep.Duration = time.Since(start)
				return rep, err
			}
			sampleRTTs = append(sampleRTTs, rtt)
		} else if err := g.push(batch); err != nil {
			rep.Duration = time.Since(start)
			return rep, err
		}
		sent += n
		rep.Offered = sent

		// Pacing: the batch that just went out "costs" n/rate seconds;
		// sleep until the schedule catches up, scraping on the way.
		if rate > 0 {
			due := start.Add(time.Duration(float64(sent) / rate * float64(time.Second)))
			for {
				now := time.Now()
				if !now.Before(due) {
					break
				}
				wait := due.Sub(now)
				if g.cfg.MetricsURL != "" && nextScrape.Before(due) {
					if w := nextScrape.Sub(now); w < wait {
						wait = w
					}
				}
				if wait > 0 {
					select {
					case <-ctx.Done():
						rep.Duration = time.Since(start)
						return rep, ctx.Err()
					case <-time.After(wait):
					}
				}
				if g.cfg.MetricsURL != "" && !time.Now().Before(nextScrape) {
					scrape()
					nextScrape = time.Now().Add(g.cfg.ScrapeInterval)
				}
			}
		} else if g.cfg.MetricsURL != "" && !time.Now().Before(nextScrape) {
			scrape()
			nextScrape = time.Now().Add(g.cfg.ScrapeInterval)
		}
	}
	scrape()
	rep.Duration = time.Since(start)
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.AchievedRate = float64(rep.Offered) / secs
	}
	rep.PushAck = summarize(pushAcks)
	rep.SampleRPC = summarize(sampleRTTs)
	if first != nil && last != nil && rep.Scrapes >= 2 {
		p0, ok0 := first.Value("unsd_pool_processed_ids_total")
		p1, ok1 := last.Value("unsd_pool_processed_ids_total")
		d0, ok2 := first.Value("unsd_pool_dropped_ids_total")
		d1, ok3 := last.Value("unsd_pool_dropped_ids_total")
		if ok0 && ok1 && ok2 && ok3 {
			rep.Processed = p1 - p0
			rep.Dropped = d1 - d0
			if total := rep.Processed + rep.Dropped; total > 0 {
				rep.DropFraction = rep.Dropped / total
			}
			rep.HaveDeltas = true
		}
	}
	return rep, nil
}

// push writes one PushBatch frame under the write deadline.
func (g *Generator) push(ids []uint64) error {
	if err := g.conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout)); err != nil {
		return err
	}
	return netgossip.WriteFrame(g.conn, netgossip.Frame{Type: netgossip.FramePushBatch, IDs: ids})
}

// readFrame reads one frame under a read deadline, surfacing a FrameError
// from the daemon as a Go error.
func (g *Generator) readFrame() (netgossip.Frame, error) {
	if err := g.conn.SetReadDeadline(time.Now().Add(g.cfg.WriteTimeout)); err != nil {
		return netgossip.Frame{}, err
	}
	f, err := netgossip.ReadFrame(g.conn)
	if err != nil {
		return netgossip.Frame{}, err
	}
	if f.Type == netgossip.FrameError {
		return netgossip.Frame{}, fmt.Errorf("daemon error: %s", f.Msg)
	}
	return f, nil
}

// pushAck pushes one batch and measures the client-observed acknowledgement
// latency: the daemon handles a connection's frames strictly in order, so a
// Pong answered after the batch proves the batch went through the ingest
// funnel (uniformity probe, histogram, pool hand-off) before the clock
// stopped. This generator never subscribes, so the only inbound traffic is
// the responses it solicits.
func (g *Generator) pushAck(ids []uint64) (time.Duration, error) {
	g.pingToken++
	began := time.Now()
	if err := g.push(ids); err != nil {
		return 0, err
	}
	if err := g.conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout)); err != nil {
		return 0, err
	}
	if err := netgossip.WriteFrame(g.conn, netgossip.Frame{Type: netgossip.FramePing, Token: g.pingToken}); err != nil {
		return 0, err
	}
	f, err := g.readFrame()
	if err != nil {
		return 0, err
	}
	if f.Type != netgossip.FramePong || f.Token != g.pingToken {
		return 0, fmt.Errorf("loadgen: expected pong %d, got frame type %d token %d", g.pingToken, f.Type, f.Token)
	}
	return time.Since(began), nil
}

// sampleRTT measures one Sample RPC round trip over the framed protocol.
func (g *Generator) sampleRTT(n uint32) (time.Duration, error) {
	began := time.Now()
	if err := g.conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout)); err != nil {
		return 0, err
	}
	if err := netgossip.WriteFrame(g.conn, netgossip.Frame{Type: netgossip.FrameSample, N: n}); err != nil {
		return 0, err
	}
	f, err := g.readFrame()
	if err != nil {
		return 0, err
	}
	if f.Type != netgossip.FrameSampleResp {
		return 0, fmt.Errorf("loadgen: expected sample response, got frame type %d", f.Type)
	}
	return time.Since(began), nil
}

// Scrape fetches and parses the daemon's /metrics once. It is the client
// half of the exposition surface: any tool wanting the daemon's counters
// without a Prometheus server goes through here.
func (g *Generator) Scrape(ctx context.Context) (*telemetry.Scrape, error) {
	return ScrapeMetrics(ctx, g.hc, g.cfg.MetricsURL, g.cfg.Token)
}

// ScrapeMetrics GETs a Prometheus text exposition endpoint and parses it,
// presenting token as a bearer credential when non-empty. It is
// client.ScrapeMetrics re-exported at the generator's level so loadgen
// callers need only this package.
func ScrapeMetrics(ctx context.Context, hc *http.Client, url, token string) (*telemetry.Scrape, error) {
	return client.ScrapeMetrics(ctx, hc, url, token)
}

// Scenario names for StandardPhases.
const (
	PhaseUniform     = "uniform"
	PhaseFlood       = "targeted-flood"
	PhaseChurn       = "churn-storm"
	PhaseSlowTrickle = "slow-trickle"
	PhaseRecovery    = "recovery"
)

// churnSource emits ever-fresh ids — every draw is an identifier the
// daemon has never seen, the stream of a population churning faster than
// the sampler's memory. Deterministic per seed.
type churnSource struct {
	next uint64
	salt uint64
}

func (c *churnSource) Next() uint64 {
	c.next++
	return rng.Mix64(c.next ^ c.salt)
}

// NewChurnSource returns a Source whose every id is new, derived from seed.
func NewChurnSource(seed uint64) stream.Source {
	return &churnSource{salt: rng.Mix64(seed ^ 0x9e3779b97f4a7c15)}
}

// StandardPhases builds the canonical unsload scenario over a population of
// n ids: a uniform baseline, a targeted flood (one victim id carrying 80%
// of the stream — the paper's peak attack), a churn storm of never-repeated
// ids, a slow-trickle bias (32 colluding ids quietly holding 30%), and a
// uniform recovery tail. Each phase pushes `count` ids; the trickle phase
// runs at a quarter of the configured rate to model the low-and-slow
// attacker (unpaced generators keep it unpaced).
func StandardPhases(n, count int, seed uint64, rate float64) ([]Phase, error) {
	if n < 64 {
		return nil, fmt.Errorf("loadgen: population %d too small (need >= 64)", n)
	}
	if count <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive phase count %d", count)
	}
	base := stream.UniformPMF(n)

	uniformSrc, err := stream.NewCategorical(base, rng.New(seed))
	if err != nil {
		return nil, err
	}
	floodPMF, err := adversary.Peak(base, uint64(n/2), 0.8)
	if err != nil {
		return nil, err
	}
	floodSrc, err := stream.NewCategorical(floodPMF, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	tricklePMF, err := adversary.OverRepresent(base, adversary.FirstIDs(32), 0.3)
	if err != nil {
		return nil, err
	}
	trickleSrc, err := stream.NewCategorical(tricklePMF, rng.New(seed+2))
	if err != nil {
		return nil, err
	}
	recoverySrc, err := stream.NewCategorical(base, rng.New(seed+3))
	if err != nil {
		return nil, err
	}
	return []Phase{
		{Name: PhaseUniform, Source: uniformSrc, Count: count},
		{Name: PhaseFlood, Source: floodSrc, Count: count},
		{Name: PhaseChurn, Source: NewChurnSource(seed), Count: count},
		{Name: PhaseSlowTrickle, Source: trickleSrc, Count: count, Rate: rate / 4},
		{Name: PhaseRecovery, Source: recoverySrc, Count: count},
	}, nil
}
