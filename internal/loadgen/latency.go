package loadgen

import (
	"sort"
	"time"
)

// LatencySummary condenses one phase's client-observed round-trip samples
// into the percentiles an operator reads off a dashboard. Percentiles are
// nearest-rank over the collected samples; the zero value means nothing
// was measured (latency sampling disabled, or the phase was too short to
// hit a sampled batch).
type LatencySummary struct {
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// summarize sorts samples in place and reads off the percentile summary.
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return LatencySummary{
		Count: len(samples),
		P50:   percentile(samples, 0.50),
		P95:   percentile(samples, 0.95),
		P99:   percentile(samples, 0.99),
		Max:   samples[len(samples)-1],
	}
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
