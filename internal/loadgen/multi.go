package loadgen

// Multi-target runs: one generator per cluster member, driven in phase
// lockstep, with the per-target phase reports merged into a fleet view.
// Against an unsd cluster this is the honest way to measure the plane —
// ingest enters at every member (each batch is then routed to its owner
// internally), and the merged uniformity trajectory shows what the fleet
// as a whole absorbed.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RunMulti drives several generators through their phase lists in
// lockstep: phase j starts on every target together and the run waits for
// all of them before phase j+1 (so a flood phase hits the whole fleet at
// once, the way an adversary would). phases[i] belongs to gens[i]; all
// lists must be the same length, and phase j should carry the same name
// everywhere (typically StandardPhases with per-target seeds). Returns one
// merged report per phase. The first per-target error aborts after the
// current phase completes everywhere; merged reports for completed phases
// come back alongside it.
func RunMulti(ctx context.Context, gens []*Generator, phases [][]Phase) ([]Report, error) {
	if len(gens) == 0 {
		return nil, errors.New("loadgen: no generators")
	}
	if len(phases) != len(gens) {
		return nil, fmt.Errorf("loadgen: %d phase lists for %d generators", len(phases), len(gens))
	}
	nPhases := len(phases[0])
	for i, ph := range phases {
		if len(ph) != nPhases {
			return nil, fmt.Errorf("loadgen: phase list %d has %d phases, want %d", i, len(ph), nPhases)
		}
	}
	merged := make([]Report, 0, nPhases)
	for j := 0; j < nPhases; j++ {
		reports := make([]Report, len(gens))
		errs := make([]error, len(gens))
		var wg sync.WaitGroup
		for i, g := range gens {
			wg.Add(1)
			go func(i int, g *Generator) {
				defer wg.Done()
				reports[i], errs[i] = g.runPhase(ctx, phases[i][j])
			}(i, g)
		}
		wg.Wait()
		merged = append(merged, MergeReports(reports))
		for i, err := range errs {
			if err != nil {
				return merged, fmt.Errorf("loadgen: target %d phase %s: %w", i, phases[i][j].Name, err)
			}
		}
	}
	return merged, nil
}

// MergeReports folds per-target reports of the same phase into one fleet
// report: offered ids and scrape counts sum, the duration is the slowest
// target's (the fleet is done when its last member is), the achieved rate
// is the fleet's aggregate push rate, and the gauge trajectories interleave
// in elapsed order — each point is one member's /metrics view at that
// moment. Latency summaries merge conservatively: counts sum, percentiles
// take the worst (element-wise max) across targets, so a merged P99 never
// understates any member's.
func MergeReports(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	out := Report{Name: reports[0].Name, HaveDeltas: true}
	for _, r := range reports {
		out.Offered += r.Offered
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
		out.Scrapes += r.Scrapes
		out.ScrapeErrors += r.ScrapeErrors
		out.Gauge = append(out.Gauge, r.Gauge...)
		out.Processed += r.Processed
		out.Dropped += r.Dropped
		if !r.HaveDeltas {
			out.HaveDeltas = false
		}
		out.PushAck = mergeLatency(out.PushAck, r.PushAck)
		out.SampleRPC = mergeLatency(out.SampleRPC, r.SampleRPC)
	}
	sort.SliceStable(out.Gauge, func(i, j int) bool {
		return out.Gauge[i].Elapsed < out.Gauge[j].Elapsed
	})
	if !out.HaveDeltas {
		out.Processed, out.Dropped = 0, 0
	}
	if total := out.Processed + out.Dropped; total > 0 {
		out.DropFraction = out.Dropped / total
	}
	if secs := out.Duration.Seconds(); secs > 0 {
		out.AchievedRate = float64(out.Offered) / secs
	}
	return out
}

// mergeLatency folds one summary into an accumulator: summed counts,
// worst-case percentiles.
func mergeLatency(a, b LatencySummary) LatencySummary {
	return LatencySummary{
		Count: a.Count + b.Count,
		P50:   maxDuration(a.P50, b.P50),
		P95:   maxDuration(a.P95, b.P95),
		P99:   maxDuration(a.P99, b.P99),
		Max:   maxDuration(a.Max, b.Max),
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
