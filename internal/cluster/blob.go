package cluster

import (
	"encoding/binary"
	"fmt"

	"nodesampling/internal/netgossip"
)

// Migration is the unit of a live shard hand-off: the slot range changing
// hands, the placement epoch the transfer installs, the Γ ids that live in
// the range, and the sampler's opaque marshalled frequency state (produced
// by the pool's export, merged by the target's import). Strategy names the
// sampler so a mismatched target fails loudly before touching its pool.
type Migration struct {
	Epoch    uint64
	FromSlot uint32
	ToSlot   uint32
	Strategy string
	IDs      []uint64
	State    []byte
}

// blobMagic versions the migration wire blob independently of the frame
// protocol: the frame carries opaque bytes, this header says what they are.
var blobMagic = [4]byte{'U', 'N', 'S', 'M'}

const blobVersion = 1

// maxBlobStrategy bounds the strategy-name field on decode.
const maxBlobStrategy = 256

// EncodeMigration serialises a Migration into one blob bounded by the
// frame layer's MaxMigratePayload.
//
// Layout (all integers big-endian):
//
//	"UNSM" | version u32 | epoch u64 | fromSlot u32 | toSlot u32 |
//	len(strategy) u32 | strategy | len(ids) u32 | ids u64... |
//	len(state) u32 | state
func EncodeMigration(m Migration) ([]byte, error) {
	if len(m.Strategy) == 0 || len(m.Strategy) > maxBlobStrategy {
		return nil, fmt.Errorf("cluster: migration strategy name length %d out of [1, %d]", len(m.Strategy), maxBlobStrategy)
	}
	if m.FromSlot > m.ToSlot {
		return nil, fmt.Errorf("cluster: migration slot range [%d, %d] inverted", m.FromSlot, m.ToSlot)
	}
	size := 4 + 4 + 8 + 4 + 4 + 4 + len(m.Strategy) + 4 + 8*len(m.IDs) + 4 + len(m.State)
	if size > netgossip.MaxMigratePayload {
		return nil, fmt.Errorf("cluster: migration blob %d bytes exceeds %d", size, netgossip.MaxMigratePayload)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, blobMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, blobVersion)
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, m.FromSlot)
	buf = binary.BigEndian.AppendUint32(buf, m.ToSlot)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Strategy)))
	buf = append(buf, m.Strategy...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.IDs)))
	for _, id := range m.IDs {
		buf = binary.BigEndian.AppendUint64(buf, id)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.State)))
	buf = append(buf, m.State...)
	return buf, nil
}

// blobReader is a bounds-checked sequential decoder: every read validates
// the remaining length first, so a truncated or hostile blob yields a
// clean error instead of a panic.
type blobReader struct {
	b   []byte
	off int
}

func (r *blobReader) need(n int) error {
	if len(r.b)-r.off < n {
		return fmt.Errorf("cluster: migration blob truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
	}
	return nil
}

func (r *blobReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *blobReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *blobReader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// DecodeMigration parses and validates a migration blob. Returned slices
// are freshly allocated (the frame payload buffer they arrive in belongs
// to the connection's reader).
func DecodeMigration(blob []byte) (Migration, error) {
	var m Migration
	r := &blobReader{b: blob}
	magic, err := r.bytes(4)
	if err != nil {
		return m, err
	}
	if [4]byte(magic) != blobMagic {
		return m, fmt.Errorf("cluster: bad migration blob magic %q", magic)
	}
	version, err := r.u32()
	if err != nil {
		return m, err
	}
	if version != blobVersion {
		return m, fmt.Errorf("cluster: unsupported migration blob version %d", version)
	}
	if m.Epoch, err = r.u64(); err != nil {
		return m, err
	}
	if m.FromSlot, err = r.u32(); err != nil {
		return m, err
	}
	if m.ToSlot, err = r.u32(); err != nil {
		return m, err
	}
	if m.FromSlot > m.ToSlot {
		return m, fmt.Errorf("cluster: migration slot range [%d, %d] inverted", m.FromSlot, m.ToSlot)
	}
	sn, err := r.u32()
	if err != nil {
		return m, err
	}
	if sn == 0 || sn > maxBlobStrategy {
		return m, fmt.Errorf("cluster: migration strategy name length %d out of [1, %d]", sn, maxBlobStrategy)
	}
	name, err := r.bytes(int(sn))
	if err != nil {
		return m, err
	}
	m.Strategy = string(name)
	idn, err := r.u32()
	if err != nil {
		return m, err
	}
	if int(idn) > (len(blob)-r.off)/8 {
		return m, fmt.Errorf("cluster: migration blob claims %d ids with %d bytes left", idn, len(blob)-r.off)
	}
	m.IDs = make([]uint64, idn)
	for i := range m.IDs {
		if m.IDs[i], err = r.u64(); err != nil {
			return m, err
		}
	}
	stn, err := r.u32()
	if err != nil {
		return m, err
	}
	state, err := r.bytes(int(stn))
	if err != nil {
		return m, err
	}
	m.State = append([]byte(nil), state...)
	if r.off != len(blob) {
		return m, fmt.Errorf("cluster: migration blob has %d trailing bytes", len(blob)-r.off)
	}
	return m, nil
}
